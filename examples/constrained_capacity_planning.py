"""Capacity planning: how much per-processor memory does a deadline need?

The original industrial question of the paper (§2.2/§7): given a hard
per-processor storage capacity M, find the best achievable makespan — and
conversely, how much capacity must be provisioned before the makespan stops
suffering.  This example sweeps the capacity from "barely enough for the
largest task" to "effectively unlimited" and reports the feasibility and
makespan the §7 resolution achieves at every point, for both an
independent-task batch and a task graph.

Run with::

    python examples/constrained_capacity_planning.py
"""

from __future__ import annotations

from repro import solve_constrained
from repro.core.bounds import mmax_lower_bound
from repro.dag import gaussian_elimination_dag
from repro.utils.tables import format_table
from repro.workloads import bimodal_instance


def sweep(instance, label: str) -> None:
    lb = mmax_lower_bound(instance)
    print(f"{label}: n={instance.n}, m={instance.m}, memory lower bound LB={lb:.1f}")
    rows = []
    for factor in (1.0, 1.2, 1.5, 2.0, 2.5, 3.0, 5.0):
        capacity = factor * lb
        outcome = solve_constrained(instance, capacity)
        rows.append([
            f"{factor:.1f} x LB",
            "yes" if outcome.feasible else "NO",
            f"{outcome.cmax:.1f}" if outcome.feasible else "-",
            f"{outcome.mmax:.1f}" if outcome.feasible else "-",
            f"{outcome.cmax_guarantee:.2f}" if outcome.cmax_guarantee != float("inf") else "none",
            outcome.strategy or "-",
        ])
    print(format_table(
        ["capacity", "feasible", "Cmax", "Mmax", "Cmax guarantee", "strategy"], rows,
    ))
    print()


def main() -> None:
    batch = bimodal_instance(n=60, m=6, seed=3)
    sweep(batch, "independent batch (bimodal jobs)")

    dag = gaussian_elimination_dag(matrix_size=7, m=6, seed=3)
    sweep(dag, "task graph (Gaussian elimination, 7x7)")

    print("Reading the tables: below LB nothing can fit (certified infeasible);")
    print("between LB and 2xLB the solver may still find schedules but without guarantees;")
    print("from 2xLB upwards feasibility is guaranteed and the makespan guarantee tightens")
    print("as the capacity slack grows (Corollary 3 read at delta = M / LB).")


if __name__ == "__main__":
    main()
