"""Pareto explorer: let a decision maker pick the trade-off after the fact.

Section 6 of the paper contrasts absolute approximation (one schedule) with
Pareto-set approximation (a menu of schedules).  Because every algorithm in
the paper is tunable through its Δ parameter, sweeping Δ yields such a menu
"for free".  This example builds the menu for an anti-correlated batch and
for a task graph, prints it, and then answers two planning questions:

* "what is the best makespan if each node only has X memory?"
* "how little memory can we get away with if the deadline is Y?"

Run with::

    python examples/pareto_explorer.py
"""

from __future__ import annotations

from repro import approximate_pareto_set, approximate_pareto_set_dag
from repro.core.bounds import cmax_lower_bound, mmax_lower_bound
from repro.dag import gaussian_elimination_dag
from repro.utils.tables import format_table
from repro.workloads import anti_correlated_instance


def explore_independent() -> None:
    batch = anti_correlated_instance(n=80, m=6, seed=11, correlation=0.9)
    lb_c, lb_m = cmax_lower_bound(batch), mmax_lower_bound(batch)
    menu = approximate_pareto_set(batch, epsilon=0.2)
    print(f"independent batch: {batch.name}")
    print(f"  Graham bounds: Cmax >= {lb_c:.1f}, Mmax >= {lb_m:.1f}")
    rows = [
        [i, f"{c:.1f}", f"{c / lb_c:.3f}", f"{m:.1f}", f"{m / lb_m:.3f}"]
        for i, (c, m) in enumerate(menu.points)
    ]
    print(format_table(["#", "Cmax", "Cmax/LB", "Mmax", "Mmax/LB"], rows))

    capacity = 1.3 * lb_m
    pick = menu.best_under_memory(capacity)
    if pick is not None:
        print(f"  -> best makespan with at most {capacity:.1f} memory per node: Cmax = {pick.cmax:.1f}")
    deadline = 1.2 * lb_c
    pick2 = menu.best_under_makespan(deadline)
    if pick2 is not None:
        print(f"  -> least memory with deadline {deadline:.1f}: Mmax = {pick2.mmax:.1f}")
    print()


def explore_dag() -> None:
    app = gaussian_elimination_dag(matrix_size=8, m=6, seed=11)
    lb_c, lb_m = cmax_lower_bound(app), mmax_lower_bound(app)
    menu = approximate_pareto_set_dag(app, epsilon=0.2)
    print(f"task graph: {app.name}")
    print(f"  Graham bounds: Cmax >= {lb_c:.1f}, Mmax >= {lb_m:.1f}")
    rows = [
        [i, f"{c:.1f}", f"{c / lb_c:.3f}", f"{m:.1f}", f"{m / lb_m:.3f}"]
        for i, (c, m) in enumerate(menu.points)
    ]
    print(format_table(["#", "Cmax", "Cmax/LB", "Mmax", "Mmax/LB"], rows))
    print()
    print("Reading the menus: each row is a non-dominated schedule produced at one delta;")
    print("a decision maker (or the constrained solver of Section 7) picks a row instead of")
    print("committing to a single trade-off in advance.")


def main() -> None:
    explore_independent()
    explore_dag()


if __name__ == "__main__":
    main()
