"""Pareto explorer: let a decision maker pick the trade-off after the fact.

Section 6 of the paper contrasts absolute approximation (one schedule) with
Pareto-set approximation (a menu of schedules).  Because every algorithm in
the paper is tunable through its Δ parameter, sweeping Δ yields such a menu
"for free".  With the unified solver facade the sweep is just a list of
spec strings handed to :func:`repro.solve_many`; the non-dominated results
form the menu.  This example builds the menu for an anti-correlated batch
(``sbo`` specs) and for a task graph (``rls`` specs), prints it, and then
answers two planning questions:

* "what is the best makespan if each node only has X memory?" — answered
  with the capability-aware ``constrained(budget=...)`` solver;
* "how little memory can we get away with if the deadline is Y?" — read
  off the menu.

Run with::

    python examples/pareto_explorer.py
"""

from __future__ import annotations

from typing import List, Sequence

from repro import SolveResult, solve, solve_many
from repro.core.bounds import cmax_lower_bound, mmax_lower_bound
from repro.core.pareto import ParetoFront
from repro.dag import gaussian_elimination_dag
from repro.utils.tables import format_table
from repro.workloads import anti_correlated_instance

SBO_DELTAS = (0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0)
RLS_DELTAS = (2.1, 2.25, 2.5, 3.0, 4.0, 6.0, 8.0)


def build_menu(instance, specs: Sequence[str], workers: int = 2) -> List[SolveResult]:
    """Solve every spec (in parallel) and keep the non-dominated results."""
    results = solve_many(instance, specs, workers=workers)
    front: ParetoFront[SolveResult] = ParetoFront(dim=2)
    for result in results:
        if result.feasible:
            front.add((result.cmax, result.mmax), payload=result)
    return [p.payload for p in front.points() if p.payload is not None]


def print_menu(instance, menu: List[SolveResult]) -> None:
    lb_c, lb_m = cmax_lower_bound(instance), mmax_lower_bound(instance)
    print(f"  Graham bounds: Cmax >= {lb_c:.1f}, Mmax >= {lb_m:.1f}")
    rows = [
        [i, r.spec, f"{r.cmax:.1f}", f"{r.cmax / lb_c:.3f}", f"{r.mmax:.1f}", f"{r.mmax / lb_m:.3f}"]
        for i, r in enumerate(menu)
    ]
    print(format_table(["#", "spec", "Cmax", "Cmax/LB", "Mmax", "Mmax/LB"], rows))


def explore_independent() -> None:
    batch = anti_correlated_instance(n=80, m=6, seed=11, correlation=0.9)
    print(f"independent batch: {batch.name}")
    menu = build_menu(batch, [f"sbo(delta={d}, inner=lpt)" for d in SBO_DELTAS])
    print_menu(batch, menu)

    lb_c, lb_m = cmax_lower_bound(batch), mmax_lower_bound(batch)
    # Planning question 1: hard per-node memory capacity -> the §7 solver.
    capacity = 1.3 * lb_m
    constrained = solve(batch, "constrained", budget=capacity)
    if constrained.feasible:
        print(f"  -> best makespan with at most {capacity:.1f} memory per node: "
              f"Cmax = {constrained.cmax:.1f} (strategy: {constrained.provenance['strategy']})")
    # Planning question 2: deadline -> cheapest menu entry that meets it.
    deadline = 1.2 * lb_c
    meeting = [r for r in menu if r.cmax <= deadline]
    if meeting:
        pick = min(meeting, key=lambda r: r.mmax)
        print(f"  -> least memory with deadline {deadline:.1f}: Mmax = {pick.mmax:.1f} ({pick.spec})")
    print()


def explore_dag() -> None:
    app = gaussian_elimination_dag(matrix_size=8, m=6, seed=11)
    print(f"task graph: {app.name}")
    menu = build_menu(app, [f"rls(delta={d}, order=bottom-level)" for d in RLS_DELTAS])
    print_menu(app, menu)
    print()
    print("Reading the menus: each row is a non-dominated schedule produced at one delta;")
    print("a decision maker (or the constrained solver of Section 7) picks a row instead of")
    print("committing to a single trade-off in advance.")


def main() -> None:
    explore_independent()
    explore_dag()


if __name__ == "__main__":
    main()
