"""Quickstart: bi-objective scheduling of independent tasks with SBO_delta.

Run with::

    python examples/quickstart.py

Builds a small independent-task instance, runs the paper's SBO_delta
algorithm at a few trade-off settings, compares against the single-
objective corner baselines and the exact Pareto front, and validates one
schedule in the discrete-event simulator.
"""

from __future__ import annotations

from repro import Instance, evaluate, sbo, simulate_schedule
from repro.algorithms import (
    makespan_oblivious_schedule,
    memory_oblivious_schedule,
    pareto_front_exact,
)
from repro.simulator import render_gantt
from repro.utils.tables import format_table


def main() -> None:
    # Ten tasks: processing times p and storage sizes s, two processors.
    instance = Instance.from_lists(
        p=[8, 7, 6, 5, 4, 4, 3, 3, 2, 1],
        s=[1, 2, 9, 8, 2, 7, 6, 1, 5, 4],
        m=2,
        name="quickstart",
    )

    rows = []
    # Corner baselines: optimize one objective, ignore the other.
    mem_oblivious = memory_oblivious_schedule(instance)
    mk_oblivious = makespan_oblivious_schedule(instance)
    rows.append(["memory-oblivious LPT", mem_oblivious.cmax, mem_oblivious.mmax])
    rows.append(["makespan-oblivious LMS", mk_oblivious.cmax, mk_oblivious.mmax])

    # SBO_delta interpolates between the corners: small delta protects the
    # makespan, large delta protects memory.
    for delta in (0.25, 1.0, 4.0):
        result = sbo(instance, delta=delta)
        rows.append(
            [
                f"SBO(delta={delta}) guarantee=({result.cmax_guarantee:.2f}, {result.mmax_guarantee:.2f})",
                result.cmax,
                result.mmax,
            ]
        )

    # Exact Pareto front for reference (the instance is small).
    front = pareto_front_exact(instance)
    rows.append(["exact Pareto front", " / ".join(f"{c:g}" for c, _ in front.values()),
                 " / ".join(f"{m:g}" for _, m in front.values())])

    print(format_table(["schedule", "Cmax", "Mmax"], rows))

    # Replay the balanced schedule in the simulator and show its Gantt chart.
    balanced = sbo(instance, delta=1.0)
    report = simulate_schedule(balanced.schedule)
    assert report.ok, report.violations
    print()
    print(f"simulated balanced schedule: Cmax={report.cmax:g}, Mmax={report.mmax:g}, "
          f"sum Ci={report.sum_ci:g}")
    print(report.gantt(width=50))
    print()
    print("objective record:", evaluate(balanced.schedule))


if __name__ == "__main__":
    main()
