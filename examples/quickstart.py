"""Quickstart: bi-objective scheduling through the unified ``solve()`` facade.

Run with::

    python examples/quickstart.py

Builds a small independent-task instance, runs the paper's SBO_delta
algorithm at a few trade-off settings — every algorithm is selected by a
solver *spec string* like ``"sbo(delta=1.0, inner=lpt)"`` — compares
against the single-objective corner baselines and the exact Pareto front,
and validates one schedule in the discrete-event simulator.
"""

from __future__ import annotations

from repro import Instance, available_solvers, evaluate, simulate_schedule, solve, solve_many
from repro.algorithms import pareto_front_exact
from repro.utils.tables import format_table


def main() -> None:
    # Ten tasks: processing times p and storage sizes s, two processors.
    instance = Instance.from_lists(
        p=[8, 7, 6, 5, 4, 4, 3, 3, 2, 1],
        s=[1, 2, 9, 8, 2, 7, 6, 1, 5, 4],
        m=2,
        name="quickstart",
    )

    rows = []
    # Corner baselines: optimize one objective, ignore the other.  LPT on
    # time is the memory-oblivious corner; LPT on memory (the §2.1
    # symmetry) is the makespan-oblivious corner.
    for spec in ("lpt(objective=time)", "lpt(objective=memory)"):
        result = solve(instance, spec)
        rows.append([result.spec, result.cmax, result.mmax])

    # SBO_delta interpolates between the corners: small delta protects the
    # makespan, large delta protects memory.  solve_many() batches the
    # sweep (workers>1 would fan it out over a process pool).
    sweep = solve_many(instance, [f"sbo(delta={d}, inner=lpt)" for d in (0.25, 1.0, 4.0)])
    for result in sweep:
        g_c, g_m = result.guarantee_pair()
        rows.append([f"{result.spec} guarantee=({g_c:.2f}, {g_m:.2f})", result.cmax, result.mmax])

    # Exact Pareto front for reference (the instance is small).
    front = pareto_front_exact(instance)
    rows.append(["exact Pareto front", " / ".join(f"{c:g}" for c, _ in front.values()),
                 " / ".join(f"{m:g}" for _, m in front.values())])

    print(format_table(["schedule", "Cmax", "Mmax"], rows))

    print()
    print("registered solvers:", ", ".join(available_solvers()))
    print("DAG-capable solvers:", ", ".join(available_solvers(supports_dag=True)))

    # Replay the balanced schedule in the simulator and show its Gantt chart.
    balanced = solve(instance, "sbo(delta=1.0)")
    report = simulate_schedule(balanced.schedule)
    assert report.ok, report.violations
    print()
    print(f"simulated balanced schedule: Cmax={report.cmax:g}, Mmax={report.mmax:g}, "
          f"sum Ci={report.sum_ci:g} (solved in {balanced.wall_time * 1e3:.2f} ms)")
    print(report.gantt(width=50))
    print()
    print("objective record:", evaluate(balanced.schedule))
    print("provenance:", balanced.provenance["spec"], "| version", balanced.provenance["version"])


if __name__ == "__main__":
    main()
