"""Embedded multi-SoC pipeline: DAG scheduling under a per-SoC code-store budget.

The paper's motivating embedded scenario: an application expressed as a
task graph must be mapped onto a multi-System-on-Chip platform where each
SoC has a limited instruction store.  Every task's code is resident on the
SoC that runs it for the whole mission, so storage accumulates per SoC.

This example builds a streaming pipeline task graph (fork-join phases, like
a radio or video pipeline), schedules it with RLS_delta at several memory
budgets, compares against memory-oblivious Graham list scheduling, and
replays the chosen mapping in the discrete-event simulator with a hard
capacity to prove the budget is honoured.

Run with::

    python examples/embedded_soc_pipeline.py
"""

from __future__ import annotations

from repro import rls
from repro.algorithms import graham_dag_schedule
from repro.core.bounds import cmax_lower_bound, mmax_lower_bound
from repro.dag import dag_summary, fork_join_dag
from repro.simulator import render_gantt, simulate_schedule
from repro.utils.tables import format_table
from repro.workloads.distributions import integer_sampler


def main() -> None:
    # A 4-phase streaming pipeline, 6-wide, on a 4-SoC platform.  Processing
    # times are small integers (cycles x 1000); code sizes are in KiB.
    app = fork_join_dag(
        n_phases=4,
        width=6,
        m=4,
        seed=7,
        p_sampler=integer_sampler(2, 12),
        s_sampler=integer_sampler(8, 64),
    )
    summary = dag_summary(app)
    print(f"application: {app.name}")
    print(f"  tasks={summary.n_tasks} edges={summary.n_edges} "
          f"critical path={summary.critical_path_length:g} width={summary.width} "
          f"avg parallelism={summary.average_parallelism:.2f}")
    lb_memory = mmax_lower_bound(app)
    lb_time = cmax_lower_bound(app)
    print(f"  Graham bounds: Cmax >= {lb_time:g}, per-SoC store >= {lb_memory:g} KiB")
    print()

    # Memory-oblivious baseline: plain Graham list scheduling.
    baseline = graham_dag_schedule(app, priority="lpt")
    rows = [["Graham list scheduling (memory-oblivious)", baseline.cmax, baseline.mmax, "-"]]

    # RLS_delta at tightening code-store budgets.
    for delta in (6.0, 3.0, 2.2):
        result = rls(app, delta=delta, order="bottom-level")
        rows.append(
            [
                f"RLS(delta={delta}) budget={result.memory_budget:g} KiB",
                result.cmax,
                result.mmax,
                f"{result.cmax_guarantee:.2f}" if result.cmax_guarantee != float("inf") else "none",
            ]
        )
    print(format_table(["mapping", "Cmax", "max SoC store (KiB)", "Cmax guarantee"], rows))
    print()

    # Deploy the tightest mapping: replay it with a hard capacity equal to the
    # budget so the simulator would flag any overflow.
    chosen = rls(app, delta=2.2, order="bottom-level")
    report = simulate_schedule(chosen.schedule, memory_capacity=chosen.memory_budget)
    assert report.ok, report.violations
    print(f"deployed mapping simulated OK: Cmax={report.cmax:g}, "
          f"per-SoC stores={['%g' % v for v in report.memory_per_processor]}")
    print(report.gantt(width=64))


if __name__ == "__main__":
    main()
