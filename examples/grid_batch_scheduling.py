"""Grid batch scheduling: makespan, result-storage and early feedback.

The paper's grid motivation (large physics productions): a batch of
independent analysis jobs must be spread over a site's worker nodes.  Each
job produces output files that stay on the node's scratch disk until the
batch completes (cumulative storage), and users want early partial results
(small mean completion time) on top of a short batch and balanced disks.

This example uses the tri-objective extension of the paper (RLS_delta with
SPT tie-breaking) and compares it against SBO_delta and the corner
baselines on a realistic anti-correlated workload (quick filter jobs with
huge outputs, long simulation jobs with small outputs).

Run with::

    python examples/grid_batch_scheduling.py
"""

from __future__ import annotations

from repro import sbo, tri_objective_schedule
from repro.algorithms import memory_oblivious_schedule, spt_schedule
from repro.core.bounds import cmax_lower_bound, mmax_lower_bound, sum_ci_lower_bound
from repro.utils.tables import format_table
from repro.workloads import anti_correlated_instance


def main() -> None:
    # 120 jobs on 8 worker nodes; long jobs have small outputs and vice versa.
    batch = anti_correlated_instance(n=120, m=8, seed=42, correlation=0.9)
    lb_c = cmax_lower_bound(batch)
    lb_m = mmax_lower_bound(batch)
    opt_sum_ci = sum_ci_lower_bound(batch)
    print(f"batch: {batch.name}  (Cmax >= {lb_c:.1f}, disk >= {lb_m:.1f}, "
          f"optimal sum Ci = {opt_sum_ci:.0f})")
    print()

    rows = []

    # Corner baselines.
    lpt = memory_oblivious_schedule(batch)
    spt = spt_schedule(batch)
    rows.append(["LPT (makespan only)", lpt.cmax / lb_c, lpt.mmax / lb_m, lpt.sum_ci / opt_sum_ci])
    rows.append(["SPT (mean completion only)", spt.cmax / lb_c, spt.mmax / lb_m, spt.sum_ci / opt_sum_ci])

    # SBO_delta: bi-objective, no sum-Ci guarantee.
    for delta in (0.5, 1.0, 2.0):
        res = sbo(batch, delta=delta)
        rows.append([f"SBO(delta={delta})", res.cmax / lb_c, res.mmax / lb_m,
                     res.schedule.sum_ci / opt_sum_ci])

    # Tri-objective RLS_delta + SPT: guarantees on all three objectives.
    for delta in (2.5, 3.0, 4.0):
        res = tri_objective_schedule(batch, delta=delta)
        g_c, g_m, g_s = res.guarantees
        rows.append([
            f"tri-objective RLS(delta={delta}) guarantees=({g_c:.2f},{g_m:.2f},{g_s:.2f})",
            res.cmax / lb_c,
            res.mmax / lb_m,
            res.sum_ci / res.sum_ci_optimal,
        ])

    print(format_table(
        ["policy", "Cmax / LB", "disk / LB", "sum Ci / optimal"],
        [[name, f"{c:.3f}", f"{m:.3f}", f"{s:.3f}"] for name, c, m, s in rows],
    ))
    print()
    print("Reading the table: LPT wins on makespan but can pile outputs on one node;")
    print("SPT wins on mean completion time but ignores both other objectives;")
    print("the paper's algorithms trade a bounded factor on each objective instead.")


if __name__ == "__main__":
    main()
