"""Unit tests for repro.core.bounds."""

from __future__ import annotations

import pytest

from repro.algorithms.exact import exact_cmax, exact_mmax
from repro.algorithms.spt import optimal_sum_ci
from repro.core.bounds import (
    cmax_lower_bound,
    critical_path_length,
    critical_path_lower_bound,
    graham_memory_lower_bound,
    mmax_lower_bound,
    sum_ci_lower_bound,
)
from repro.core.instance import Instance
from repro.workloads.independent import uniform_instance


class TestMemoryLowerBound:
    def test_area_dominates(self):
        inst = Instance.from_lists(p=[1, 1, 1, 1], s=[2, 2, 2, 2], m=2)
        assert mmax_lower_bound(inst) == 4.0  # sum 8 / 2

    def test_max_task_dominates(self):
        inst = Instance.from_lists(p=[1, 1], s=[10, 1], m=4)
        assert mmax_lower_bound(inst) == 10.0

    def test_alias(self, small_instance):
        assert graham_memory_lower_bound(small_instance) == mmax_lower_bound(small_instance)

    def test_empty_instance(self):
        inst = Instance.from_lists(p=[], s=[], m=3)
        assert mmax_lower_bound(inst) == 0.0

    def test_bound_is_valid(self, medium_instance):
        assert mmax_lower_bound(medium_instance) <= exact_mmax(medium_instance) + 1e-9

    def test_dag_same_as_independent(self, diamond_dag):
        assert mmax_lower_bound(diamond_dag) == mmax_lower_bound(diamond_dag.as_independent())


class TestCmaxLowerBound:
    def test_independent_area(self):
        inst = Instance.from_lists(p=[3, 3, 3, 3], s=[1, 1, 1, 1], m=2)
        assert cmax_lower_bound(inst) == 6.0

    def test_independent_max_task(self):
        inst = Instance.from_lists(p=[10, 1], s=[1, 1], m=4)
        assert cmax_lower_bound(inst) == 10.0

    def test_bound_is_valid(self, medium_instance):
        assert cmax_lower_bound(medium_instance) <= exact_cmax(medium_instance) + 1e-9

    def test_dag_uses_critical_path(self, chain_instance):
        # Chain of p = 1,2,3,2,1 => CP = 9 even though total/m = 3
        assert cmax_lower_bound(chain_instance) == 9.0

    def test_diamond_critical_path(self, diamond_dag):
        # longest chain a(2) -> c(4) -> d(1) = 7
        assert critical_path_length(diamond_dag) == 7.0
        assert critical_path_lower_bound(diamond_dag) == 7.0
        assert cmax_lower_bound(diamond_dag) == 7.0

    def test_independent_critical_path_is_max_task(self, small_instance):
        assert critical_path_length(small_instance) == 4.0

    def test_empty(self):
        inst = Instance.from_lists(p=[], s=[], m=2)
        assert cmax_lower_bound(inst) == 0.0


class TestSumCiLowerBound:
    def test_single_processor(self):
        inst = Instance.from_lists(p=[3, 1, 2], s=[0, 0, 0], m=1)
        # SPT order 1,2,3 -> completions 1,3,6 -> 10
        assert sum_ci_lower_bound(inst) == 10.0

    def test_two_processors(self):
        inst = Instance.from_lists(p=[1, 2, 3, 4], s=[0] * 4, m=2)
        # SPT: 1->P0(1), 2->P1(2), 3->P0(4), 4->P1(6) => 1+2+4+6 = 13
        assert sum_ci_lower_bound(inst) == 13.0

    def test_matches_spt_schedule_value(self):
        inst = uniform_instance(30, 3, seed=5)
        assert sum_ci_lower_bound(inst) == pytest.approx(optimal_sum_ci(inst))

    def test_more_processors_never_worse(self):
        inst = uniform_instance(20, 2, seed=7)
        assert sum_ci_lower_bound(inst.with_m(4)) <= sum_ci_lower_bound(inst) + 1e-9
