"""Golden-fixture generator for the regression suite (tests/test_golden.py).

Defines a small fixed instance suite and the spec list pinned per
instance, computes every (instance, spec) result through the unified
facade, and writes ``tests/golden/golden.json``.  Run it only when an
output change is *intended* (a new solver, or a consciously accepted
behaviour change)::

    PYTHONPATH=src python tests/make_golden.py

The fixture pins, bit-for-bit: the content hash of every instance, the
measured objective values, the guarantee tuples, and feasibility — so
any refactor that silently changes solver output fails loudly in CI.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.core.instance import DAGInstance, Instance
from repro.extensions.uniform_machines import UniformInstance
from repro.solvers import available_solvers, solve

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "golden.json"

#: Specs every independent-task instance is pinned against.  ``exact``
#: keeps the suite small (n <= 8) so branch-and-bound stays instant.
INDEPENDENT_SPECS = [
    "lpt",
    "lpt(objective=memory)",
    "list",
    "spt",
    "multifit",
    "exact",
    "ptas",
    "ptas-fine",
    "sbo(delta=0.5)",
    "sbo(delta=1.0)",
    "sbo(delta=2.0, inner=multifit)",
    "rls(delta=2.5)",
    "trio(delta=2.5)",
    "pareto_approx(epsilon=0.5)",
    "uniform_list",
    "uniform_rls(delta=2.5)",
]

#: Specs pinned on the precedence-constrained instance (DAG-capable only).
DAG_SPECS = [
    "rls(delta=2.5)",
    "rls(delta=3.0, order=bottom-level)",
    "pareto_approx(epsilon=0.5)",
]


def golden_instances() -> Dict[str, Instance]:
    """The fixed instance suite: hand-coded, RNG-free, exact-solver sized."""
    return {
        "small-independent": Instance.from_lists(
            p=[4, 3, 2, 2, 1, 6, 5], s=[1, 5, 2, 4, 3, 2, 6], m=3,
            name="small-independent",
        ),
        "ties-independent": Instance.from_lists(
            p=[3, 3, 3, 2, 2, 2], s=[2, 2, 2, 3, 3, 3], m=2,
            name="ties-independent",
        ),
        "dag-diamond": DAGInstance.from_lists(
            p=[2, 3, 1, 4, 2, 5], s=[3, 1, 2, 2, 4, 1], m=2,
            edges=[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5)],
            name="dag-diamond",
        ),
        "uniform-3speeds": UniformInstance.from_lists(
            p=[6, 5, 4, 3, 2, 1], s=[1, 2, 3, 1, 2, 3], speeds=[1.0, 2.0, 4.0],
            name="uniform-3speeds",
        ),
    }


def golden_specs(name: str, instance: Instance) -> List[str]:
    if isinstance(instance, DAGInstance) and not instance.is_independent():
        specs = list(DAG_SPECS)
    else:
        specs = list(INDEPENDENT_SPECS)
    # A per-instance memory budget keeps `constrained` feasible but tight.
    budget = round(0.7 * instance.tasks.total_s, 6)
    specs.append(f"constrained(budget={budget})")
    return specs


def compute_cases() -> List[Dict[str, object]]:
    cases: List[Dict[str, object]] = []
    for name, instance in golden_instances().items():
        for spec in golden_specs(name, instance):
            result = solve(instance, spec, cache=False)
            cases.append({
                "instance": name,
                "spec": spec,
                "solver": result.solver,
                "canonical_spec": result.spec,
                "feasible": result.feasible,
                "cmax": result.cmax,
                "mmax": result.mmax,
                "sum_ci": result.sum_ci,
                "guarantee": list(result.guarantee),
            })
    return cases


def build_fixture() -> Dict[str, object]:
    return {
        "format": 1,
        "instance_hashes": {
            name: instance.content_hash()
            for name, instance in golden_instances().items()
        },
        "solvers_covered": sorted({spec.split("(")[0] for name, inst in
                                   golden_instances().items()
                                   for spec in golden_specs(name, inst)}),
        "registered_solvers": available_solvers(),
        "cases": compute_cases(),
    }


def main() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    fixture = build_fixture()
    GOLDEN_PATH.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(fixture['cases'])} golden cases to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
