"""Golden-fixture generator for the regression suite (tests/test_golden.py).

Defines a small fixed instance suite and the spec list pinned per
instance, computes every (instance, spec) result through the unified
facade, and writes ``tests/golden/golden.json``.  Run it only when an
output change is *intended* (a new solver, or a consciously accepted
behaviour change)::

    PYTHONPATH=src python tests/make_golden.py

``--via-service`` computes the very same cases through a running
:class:`~repro.service.SolverService` instead of direct ``solve()``
calls.  Because the service is bit-identical to the facade, the written
fixture is identical either way — regenerating with ``--via-service``
doubles as an end-to-end check of the serving path.

The fixture pins, bit-for-bit: the content hash of every instance, the
measured objective values, the guarantee tuples, and feasibility — so
any refactor that silently changes solver output fails loudly in CI.
It also pins ``service_cases``: one case per solver family that the
golden suite replays through a live ``SolverService``
(tests/test_golden.py) so the serving layer is exercised end to end on
every run.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.instance import DAGInstance, Instance
from repro.extensions.uniform_machines import UniformInstance
from repro.periodic import PeriodicInstance, PeriodicTask
from repro.solvers import available_solvers, solve

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "golden.json"

#: Specs every independent-task instance is pinned against.  ``exact``
#: keeps the suite small (n <= 8) so branch-and-bound stays instant.
INDEPENDENT_SPECS = [
    "lpt",
    "lpt(objective=memory)",
    "list",
    "spt",
    "multifit",
    "exact",
    "ptas",
    "ptas-fine",
    "sbo(delta=0.5)",
    "sbo(delta=1.0)",
    "sbo(delta=2.0, inner=multifit)",
    "rls(delta=2.5)",
    "trio(delta=2.5)",
    "pareto_approx(epsilon=0.5)",
    "uniform_list",
    "uniform_rls(delta=2.5)",
]

#: Specs pinned on the precedence-constrained instance (DAG-capable only).
DAG_SPECS = [
    "rls(delta=2.5)",
    "rls(delta=3.0, order=bottom-level)",
    "pareto_approx(epsilon=0.5)",
]

#: Specs pinned on the periodic instance: every native deadline-aware
#: solver, plus one-shot solvers served through the transparent
#: hyperperiod unroll (``exact`` works here because the instance unrolls
#: to 9 jobs, inside its 10-job cap).
PERIODIC_SPECS = [
    "periodic_edf",
    "periodic_edf(partition=first-fit)",
    "periodic_rm",
    "periodic_rm(preemptive=false)",
    "periodic_list",
    "lpt",
    "list",
    "exact",
    "sbo(delta=1.0)",
]


def golden_instances() -> Dict[str, Instance]:
    """The fixed instance suite: hand-coded, RNG-free, exact-solver sized."""
    return {
        "small-independent": Instance.from_lists(
            p=[4, 3, 2, 2, 1, 6, 5], s=[1, 5, 2, 4, 3, 2, 6], m=3,
            name="small-independent",
        ),
        "ties-independent": Instance.from_lists(
            p=[3, 3, 3, 2, 2, 2], s=[2, 2, 2, 3, 3, 3], m=2,
            name="ties-independent",
        ),
        "dag-diamond": DAGInstance.from_lists(
            p=[2, 3, 1, 4, 2, 5], s=[3, 1, 2, 2, 4, 1], m=2,
            edges=[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5)],
            name="dag-diamond",
        ),
        "uniform-3speeds": UniformInstance.from_lists(
            p=[6, 5, 4, 3, 2, 1], s=[1, 2, 3, 1, 2, 3], speeds=[1.0, 2.0, 4.0],
            name="uniform-3speeds",
        ),
        # Dyadic wcet/periods -> exact float hyperperiod (8) and 9 jobs,
        # small enough for every unroll-capped solver including `exact`.
        "periodic-harmonic": PeriodicInstance(
            [
                PeriodicTask(id="a", wcet=1.0, s=2.0, period=2.0),
                PeriodicTask(id="b", wcet=1.0, s=1.0, period=4.0),
                PeriodicTask(id="c", wcet=0.5, s=3.0, period=4.0),
                PeriodicTask(id="d", wcet=2.0, s=1.5, period=8.0),
            ],
            m=2,
            name="periodic-harmonic",
        ),
    }


def golden_specs(name: str, instance: Instance) -> List[str]:
    if getattr(instance, "kind", None) == "periodic":
        # No constrained-budget case: the budget heuristic below keys on
        # one-shot task storage; periodic memory is a per-solver extra.
        return list(PERIODIC_SPECS)
    if isinstance(instance, DAGInstance) and not instance.is_independent():
        specs = list(DAG_SPECS)
    else:
        specs = list(INDEPENDENT_SPECS)
    # A per-instance memory budget keeps `constrained` feasible but tight.
    budget = round(0.7 * instance.tasks.total_s, 6)
    specs.append(f"constrained(budget={budget})")
    return specs


def _case_record(name: str, spec: str, result) -> Dict[str, object]:
    return {
        "instance": name,
        "spec": spec,
        "solver": result.solver,
        "canonical_spec": result.spec,
        "feasible": result.feasible,
        "cmax": result.cmax,
        "mmax": result.mmax,
        "sum_ci": result.sum_ci,
        "guarantee": list(result.guarantee),
    }


def compute_cases() -> List[Dict[str, object]]:
    cases: List[Dict[str, object]] = []
    for name, instance in golden_instances().items():
        for spec in golden_specs(name, instance):
            result = solve(instance, spec, cache=False)
            cases.append(_case_record(name, spec, result))
    return cases


def compute_cases_via_service(workers: int = 2) -> List[Dict[str, object]]:
    """The same cases, computed through a live :class:`SolverService`."""
    import asyncio

    from repro.service import SolverService

    async def run() -> List[Dict[str, object]]:
        cases: List[Dict[str, object]] = []
        async with SolverService(workers=workers, max_pending=128) as svc:
            for name, instance in golden_instances().items():
                for spec in golden_specs(name, instance):
                    result = await svc.solve(instance, spec)
                    cases.append(_case_record(name, spec, result))
        return cases

    return asyncio.run(run())


def service_case_refs(cases: List[Dict[str, object]]) -> List[Dict[str, str]]:
    """One pinned (instance, spec) reference per solver family.

    The golden suite replays exactly these through a live
    ``SolverService`` and compares against the pinned case values, so the
    serving path is exercised end to end without re-running all cases.
    """
    seen: set = set()
    refs: List[Dict[str, str]] = []
    for case in cases:
        if case["solver"] in seen:
            continue
        seen.add(case["solver"])
        refs.append({"instance": str(case["instance"]), "spec": str(case["spec"])})
    return refs


def build_fixture(via_service: bool = False, workers: int = 2) -> Dict[str, object]:
    cases = compute_cases_via_service(workers) if via_service else compute_cases()
    return {
        "format": 1,
        "instance_hashes": {
            name: instance.content_hash()
            for name, instance in golden_instances().items()
        },
        "solvers_covered": sorted({spec.split("(")[0] for name, inst in
                                   golden_instances().items()
                                   for spec in golden_specs(name, inst)}),
        "registered_solvers": available_solvers(),
        "cases": cases,
        "service_cases": service_case_refs(cases),
    }


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--via-service", action="store_true",
        help="compute every case through a SolverService (end-to-end check of "
             "the serving path; the written fixture is identical either way)",
    )
    parser.add_argument("--workers", type=int, default=2,
                        help="service worker processes for --via-service")
    args = parser.parse_args(argv)

    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    fixture = build_fixture(via_service=args.via_service, workers=args.workers)
    GOLDEN_PATH.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
    path_kind = "the solver service" if args.via_service else "direct solve()"
    print(f"wrote {len(fixture['cases'])} golden cases (computed via {path_kind}) "
          f"to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
