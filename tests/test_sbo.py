"""Unit tests for repro.core.sbo (Algorithm 1 and Properties 1-2)."""

from __future__ import annotations


import pytest

from repro.algorithms.exact import exact_cmax, exact_mmax
from repro.core.instance import DAGInstance, Instance
from repro.core.sbo import sbo, sbo_guarantee, sbo_tradeoff_curve
from repro.core.validation import validate_schedule
from repro.workloads.independent import (
    anti_correlated_instance,
    uniform_instance,
    workload_suite,
)


class TestSBOGuarantee:
    def test_values(self):
        assert sbo_guarantee(1.0) == (2.0, 2.0)
        assert sbo_guarantee(2.0) == (3.0, 1.5)
        assert sbo_guarantee(0.5) == (1.5, 3.0)

    def test_with_rho(self):
        c, m = sbo_guarantee(1.0, rho1=1.5, rho2=2.0)
        assert c == pytest.approx(3.0)
        assert m == pytest.approx(4.0)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            sbo_guarantee(0.0)
        with pytest.raises(ValueError):
            sbo_guarantee(-1.0)

    def test_tradeoff_curve(self):
        curve = sbo_tradeoff_curve([0.5, 1.0, 2.0])
        assert curve[1] == (1.0, 2.0, 2.0)
        # Cmax guarantee increases with delta, Mmax guarantee decreases.
        assert curve[0][1] < curve[1][1] < curve[2][1]
        assert curve[0][2] > curve[1][2] > curve[2][2]

    def test_symmetry_of_curve(self):
        # Guarantee at delta and 1/delta are mirror images.
        c1, m1 = sbo_guarantee(3.0)
        c2, m2 = sbo_guarantee(1.0 / 3.0)
        assert c1 == pytest.approx(m2)
        assert m1 == pytest.approx(c2)


class TestSBOAlgorithm:
    def test_invalid_delta(self, small_instance):
        with pytest.raises(ValueError):
            sbo(small_instance, delta=0.0)

    def test_rejects_precedence(self):
        dag = DAGInstance.from_lists(p=[1, 1], s=[1, 1], m=2, edges=[(0, 1)])
        with pytest.raises(ValueError, match="independent"):
            sbo(dag, delta=1.0)

    def test_accepts_edgeless_dag(self, small_instance):
        result = sbo(small_instance.as_dag(), delta=1.0)
        assert validate_schedule(result.schedule).ok

    def test_schedule_is_valid(self, medium_instance):
        result = sbo(medium_instance, delta=1.0)
        assert validate_schedule(result.schedule).ok
        assert set(result.schedule.assignment) == set(medium_instance.tasks.ids)

    def test_result_fields(self, medium_instance):
        result = sbo(medium_instance, delta=2.0)
        assert result.delta == 2.0
        assert result.reference_cmax == result.pi1.cmax
        assert result.reference_mmax == result.pi2.mmax
        assert result.cmax == result.schedule.cmax
        assert result.mmax == result.schedule.mmax
        assert result.cmax_guarantee == pytest.approx((1 + 2.0) * result.rho1)
        assert result.mmax_guarantee == pytest.approx((1 + 0.5) * result.rho2)

    def test_memory_driven_set_matches_threshold(self, medium_instance):
        result = sbo(medium_instance, delta=1.0)
        C, M = result.reference_cmax, result.reference_mmax
        for task in medium_instance.tasks:
            follows_memory = task.id in result.memory_driven_tasks
            expected = task.p / C < 1.0 * task.s / M
            assert follows_memory == expected

    @pytest.mark.parametrize("delta", [0.25, 0.5, 1.0, 2.0, 4.0])
    @pytest.mark.parametrize("solver", ["lpt", "list", "multifit"])
    def test_property_1_and_2_guarantees(self, delta, solver):
        """The central theorem: measured ratios never exceed (1+d)rho1 / (1+1/d)rho2."""
        for seed in range(3):
            inst = uniform_instance(10, 3, seed=seed)
            result = sbo(inst, delta=delta, cmax_solver=solver)
            c_star = exact_cmax(inst)
            m_star = exact_mmax(inst)
            assert result.cmax <= result.cmax_guarantee * c_star * (1 + 1e-9)
            assert result.mmax <= result.mmax_guarantee * m_star * (1 + 1e-9)

    def test_guarantees_hold_on_adversarial_workload(self):
        for seed in range(3):
            inst = anti_correlated_instance(9, 3, seed=seed)
            result = sbo(inst, delta=1.0)
            assert result.cmax <= 2 * (4 / 3) * exact_cmax(inst) * (1 + 1e-9)
            assert result.mmax <= 2 * (4 / 3) * exact_mmax(inst) * (1 + 1e-9)

    def test_extreme_delta_recovers_corner_schedules(self, medium_instance):
        # Tiny delta: almost every task follows pi1 (the makespan schedule).
        tiny = sbo(medium_instance, delta=1e-9)
        assert tiny.schedule.assignment == tiny.pi1.assignment
        # Huge delta: almost every task follows pi2 (the memory schedule).
        huge = sbo(medium_instance, delta=1e9)
        assert huge.schedule.assignment == huge.pi2.assignment

    def test_delta_monotone_guarantees(self, medium_instance):
        deltas = [0.25, 0.5, 1.0, 2.0, 4.0]
        results = [sbo(medium_instance, d) for d in deltas]
        for r1, r2 in zip(results, results[1:]):
            assert r1.cmax_guarantee <= r2.cmax_guarantee + 1e-12
            assert r1.mmax_guarantee >= r2.mmax_guarantee - 1e-12

    def test_zero_memory_tasks(self, zero_memory_instance):
        result = sbo(zero_memory_instance, delta=1.0)
        assert validate_schedule(result.schedule).ok
        # With no memory demand every task follows the makespan schedule.
        assert result.schedule.assignment == result.pi1.assignment

    def test_zero_processing_tasks(self):
        inst = Instance.from_lists(p=[0, 0, 0], s=[3, 2, 1], m=2)
        result = sbo(inst, delta=1.0)
        assert validate_schedule(result.schedule).ok
        assert result.schedule.assignment == result.pi2.assignment

    def test_single_task(self, single_task_instance):
        result = sbo(single_task_instance, delta=1.0)
        assert result.cmax == 5 and result.mmax == 7

    def test_custom_solver_callable(self, medium_instance):
        def trivial_solver(instance, objective):
            from repro.algorithms.list_scheduling import list_schedule

            return list_schedule(instance, objective=objective), 2.0 - 1.0 / instance.m

        result = sbo(medium_instance, delta=1.0, cmax_solver=trivial_solver)
        assert validate_schedule(result.schedule).ok

    def test_different_solvers_for_each_objective(self, medium_instance):
        result = sbo(medium_instance, delta=1.0, cmax_solver="lpt", mmax_solver="multifit")
        assert validate_schedule(result.schedule).ok
        assert result.rho1 != result.rho2

    def test_exact_subsolver_gives_pure_delta_guarantee(self, small_instance):
        result = sbo(small_instance, delta=1.0, cmax_solver="exact")
        assert result.cmax_guarantee == pytest.approx(2.0)
        assert result.cmax <= 2.0 * exact_cmax(small_instance) + 1e-9

    def test_workload_suite_guarantees_via_upper_bounds(self):
        # Larger instances where exact optima are out of reach: since
        # OPT <= LPT value, checking against the LPT value is a valid (if
        # conservative) upper-bound certificate for the guarantee.
        from repro.algorithms.lpt import lpt_schedule

        for name, inst in workload_suite(80, 4, seed=3).items():
            result = sbo(inst, delta=1.0)
            cmax_upper = lpt_schedule(inst, objective="time").cmax
            mmax_upper = lpt_schedule(inst, objective="memory").mmax
            assert result.cmax <= result.cmax_guarantee * cmax_upper * (1 + 1e-9), name
            assert result.mmax <= result.mmax_guarantee * mmax_upper * (1 + 1e-9), name
