"""Documentation sanity tests: the README code blocks actually run.

A reproduction is only usable if its front-door documentation is correct;
these tests extract the Python code blocks from README.md and execute them,
and check that the documented CLI entry points exist.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
README = REPO_ROOT / "README.md"


def python_code_blocks():
    text = README.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert blocks, "README.md should contain python code blocks"
    return blocks


class TestReadme:
    def test_readme_exists_and_mentions_paper(self):
        text = README.read_text()
        assert "Scheduling with Storage Constraints" in text
        assert "IPDPS" in text

    @pytest.mark.parametrize("index", range(len(python_code_blocks())))
    def test_python_blocks_execute(self, index):
        block = python_code_blocks()[index]
        namespace: dict = {}
        exec(compile(block, f"README-block-{index}", "exec"), namespace)  # noqa: S102

    def test_design_and_experiments_docs_exist(self):
        assert (REPO_ROOT / "DESIGN.md").exists()
        assert (REPO_ROOT / "EXPERIMENTS.md").exists()
        design = (REPO_ROOT / "DESIGN.md").read_text()
        # Every experiment id referenced by the harness is indexed in DESIGN.md.
        for exp_id in ("FIG-1", "FIG-2", "FIG-3", "EXT-T1", "EXT-T2", "EXT-T3", "EXT-T4",
                       "EXT-A1", "EXT-A2", "EXT-A3", "EXT-A4", "EXT-O1", "EXT-P1"):
            assert exp_id in design, exp_id

    def test_experiments_md_reports_matches(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        assert "MISMATCH" not in text
        assert "FIG-3" in text


class TestCLIEntryPoint:
    def test_module_help(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"], capture_output=True, text=True, timeout=120
        )
        assert proc.returncode == 0
        for command in ("generate", "schedule", "experiments", "report"):
            assert command in proc.stdout
