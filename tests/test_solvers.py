"""Unit tests for the unified solver facade (repro.solvers).

Covers the spec mini-language (parsing, round-tripping, error messages),
the capability-aware registry, the solve() facade and its SolveResult
protocol, the solve_many batch runner (serial/parallel parity), and the
deprecated repro.algorithms.registry shim.
"""

from __future__ import annotations

import math

import pytest

from repro import (
    DAGInstance,
    Instance,
    SolverSpec,
    SpecError,
    SolverCapabilityError,
    solve,
    solve_many,
)
from repro.core.objectives import ObjectiveValues
from repro.core.rls import rls
from repro.core.sbo import sbo
from repro.core.trio import tri_objective_schedule
from repro.core.constrained import solve_constrained
from repro.solvers import (
    available_solvers,
    describe_solvers,
    get_entry,
    solver_capabilities,
)


@pytest.fixture
def inst() -> Instance:
    return Instance.from_lists(p=[8, 7, 6, 5, 4, 4, 3, 3, 2, 1],
                               s=[1, 2, 9, 8, 2, 7, 6, 1, 5, 4], m=2)


@pytest.fixture
def dag() -> DAGInstance:
    from repro.dag.generators import random_dag_suite

    return random_dag_suite(3, seed=0)["layered"]


# --------------------------------------------------------------------------- #
# SolverSpec: parsing and round-tripping
# --------------------------------------------------------------------------- #
class TestSolverSpec:
    @pytest.mark.parametrize("text", [
        "lpt",
        "sbo(delta=0.5, inner=lpt)",
        "rls(delta=2)",
        "rls(delta=2.5, order=bottom-level)",
        "trio",
        "constrained(budget=10.5)",
        "ptas(epsilon=0.1)",
        "ptas-fine",
        "list(objective=memory)",
    ])
    def test_round_trip(self, text):
        spec = SolverSpec.parse(text)
        assert SolverSpec.parse(str(spec)) == spec
        assert SolverSpec.parse(spec.canonical()) == spec

    def test_value_types(self):
        spec = SolverSpec.parse("x(a=2, b=2.5, c=true, d=none, e=word, f='quo ted')")
        assert spec.params == {"a": 2, "b": 2.5, "c": True, "d": None,
                               "e": "word", "f": "quo ted"}
        assert isinstance(spec.params["a"], int)
        assert isinstance(spec.params["b"], float)

    def test_parse_passthrough(self):
        spec = SolverSpec("sbo", {"delta": 1.0})
        assert SolverSpec.parse(spec) is spec

    def test_hashable_and_defensively_copied(self):
        params = {"delta": 1.0, "inner": "lpt"}
        spec = SolverSpec("sbo", params)
        assert spec == SolverSpec("sbo", {"inner": "lpt", "delta": 1.0})
        assert len({spec, SolverSpec("sbo", dict(params)), SolverSpec("rls")}) == 2
        params["delta"] = 9.0  # caller's dict is decoupled from the spec
        assert spec.params["delta"] == 1.0

    def test_with_params(self):
        base = SolverSpec.parse("sbo(inner=lpt)")
        updated = base.with_params(delta=2.0)
        assert updated.params == {"inner": "lpt", "delta": 2.0}
        assert base.params == {"inner": "lpt"}  # immutable

    @pytest.mark.parametrize("bad", [
        "", "(delta=1)", "sbo(delta=1", "sbo(delta)", "sbo(delta=1, delta=2)",
        "sbo(1delta=2)", "sbo(delta=@@)", "sbo junk", "x(k='unterminated)",
    ])
    def test_malformed(self, bad):
        with pytest.raises(SpecError):
            SolverSpec.parse(bad)

    @pytest.mark.parametrize("value", [
        "a'b", 'a"b', "a,b", "a\\b", "a, b 'and' c", "comma,quote'mix"
    ])
    def test_round_trip_awkward_strings(self, value):
        spec = SolverSpec("x", {"k": value})
        assert SolverSpec.parse(str(spec)).params == {"k": value}

    def test_quoted_value_with_comma_splits_correctly(self):
        spec = SolverSpec.parse("x(a='one,two', b=3)")
        assert spec.params == {"a": "one,two", "b": 3}


# --------------------------------------------------------------------------- #
# Registry: capabilities, enumeration, validation errors
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_all_solvers_registered(self):
        names = available_solvers()
        for expected in ("sbo", "rls", "trio", "constrained", "lpt", "spt",
                         "list", "multifit", "ptas", "ptas-fine", "exact",
                         "pareto_approx", "uniform_list", "uniform_rls"):
            assert expected in names

    def test_capability_filtering(self):
        assert available_solvers(supports_dag=True) == ["constrained", "pareto_approx", "rls"]
        assert available_solvers(supports_constraint=True) == ["constrained"]
        bi = available_solvers(is_bi_objective=True)
        assert set(bi) == {"sbo", "rls", "trio", "constrained", "pareto_approx", "uniform_rls"}
        assert "sbo" not in available_solvers(is_bi_objective=False)

    def test_solver_capabilities(self):
        caps = solver_capabilities("rls")
        assert caps.supports_dag and caps.is_bi_objective
        assert not caps.supports_constraint

    def test_unknown_solver_lists_alternatives(self, inst):
        with pytest.raises(SpecError, match="available solvers"):
            solve(inst, "quantum")

    def test_unknown_solver_suggests_close_match(self, inst):
        with pytest.raises(SpecError, match="did you mean"):
            solve(inst, "slo")

    def test_unknown_parameter_lists_valid(self, inst):
        with pytest.raises(SpecError, match="valid parameters: delta, inner, inner_mmax"):
            solve(inst, "sbo(gamma=1)")

    def test_bad_parameter_type(self, inst):
        with pytest.raises(SpecError, match="expects float"):
            solve(inst, "sbo(delta=lpt)")

    def test_bad_parameter_choice(self, inst):
        with pytest.raises(SpecError, match="must be one of"):
            solve(inst, "rls(order=zigzag)")

    def test_nonpositive_delta(self, inst):
        with pytest.raises(SpecError, match="must be > 0"):
            solve(inst, "sbo(delta=-1)")

    def test_negative_budget_is_a_spec_error(self, inst):
        # Usage error (SpecError) like every other bad parameter — not a
        # mid-run solver failure.
        with pytest.raises(SpecError, match="must be >= 0"):
            solve(inst, "constrained(budget=-5)")

    def test_missing_required_parameter(self, inst):
        with pytest.raises(SpecError, match="requires parameter 'budget'"):
            solve(inst, "constrained")

    @pytest.mark.parametrize("spec", [
        "constrained(budget=1, refine=none)",   # int param is not nullable
        "sbo(inner=none)",                       # str param with non-None default
        "rls(order=none)",
        "sbo(delta=none)",
    ])
    def test_none_rejected_for_non_nullable_params(self, inst, spec):
        with pytest.raises(SpecError, match="got none"):
            solve(inst, spec)

    def test_none_accepted_for_nullable_param(self, inst):
        # inner_mmax defaults to None, so an explicit none is valid.
        result = solve(inst, "sbo(delta=1.0, inner_mmax=none)")
        assert result.feasible

    def test_entry_guarantee_function(self):
        entry = get_entry("sbo")
        g = entry.guarantee(4, {"delta": 1.0, "inner": "exact"})
        assert g == pytest.approx((2.0, 2.0))
        rls_entry = get_entry("rls")
        assert rls_entry.guarantee(4, {"delta": 4.0})[1] == pytest.approx(4.0)

    def test_describe_solvers_records(self):
        records = {rec["name"]: rec for rec in describe_solvers()}
        assert records["constrained"]["supports_constraint"] is True
        assert "budget:float(required)" in records["constrained"]["params"]


# --------------------------------------------------------------------------- #
# solve(): the facade and SolveResult protocol
# --------------------------------------------------------------------------- #
class TestSolve:
    @pytest.mark.parametrize("spec", [
        "sbo(delta=1.0, inner=lpt)", "rls(delta=2)", "trio",
        "lpt", "spt", "list", "multifit", "ptas(epsilon=0.2)", "exact",
    ])
    def test_protocol_fields(self, inst, spec):
        result = solve(inst, spec)
        assert result.feasible and result.schedule is not None
        assert isinstance(result.objectives, ObjectiveValues)
        assert result.cmax == result.schedule.cmax
        assert result.mmax == result.schedule.mmax
        assert len(result.guarantee) in (2, 3)
        assert result.wall_time >= 0.0
        assert result.provenance["solver"] == SolverSpec.parse(spec).name
        assert result.provenance["spec"].startswith(result.provenance["solver"])
        assert "version" in result.provenance

    def test_keyword_overrides(self, inst):
        a = solve(inst, "sbo", delta=0.5, inner="lpt")
        b = solve(inst, "sbo(delta=0.5, inner=lpt)")
        assert a.schedule.assignment == b.schedule.assignment

    def test_numpy_scalar_params_produce_reparseable_provenance(self, inst):
        np = pytest.importorskip("numpy")
        result = solve(inst, "sbo", delta=np.float64(0.5))
        assert result.spec == "sbo(delta=0.5, inner=lpt)"
        replay = solve(inst, result.spec)  # provenance reproduces the call
        assert replay.schedule.assignment == result.schedule.assignment
        assert isinstance(result.provenance["params"]["delta"], float)
        # Integral numpy scalars normalize too (int param).
        budget = solve(inst, "constrained", budget=np.float64(50), refine=np.int64(5))
        assert isinstance(budget.provenance["params"]["refine"], int)

    def test_constrained_budget(self, inst):
        budget = sum(t.s for t in inst.tasks)
        result = solve(inst, "constrained", budget=budget)
        assert result.feasible
        assert result.mmax <= budget + 1e-9
        assert "strategy" in result.provenance

    def test_constrained_infeasible(self, inst):
        result = solve(inst, "constrained(budget=0.5)")
        assert not result.feasible
        assert result.schedule is None
        assert math.isinf(result.cmax)
        assert result.provenance["certified_infeasible"] is True

    def test_dag_capability_rejection(self, dag):
        for spec in ("sbo(delta=1)", "trio", "lpt"):
            with pytest.raises(SolverCapabilityError, match="DAG-capable"):
                solve(dag, spec)

    def test_dag_capable_solvers_run(self, dag):
        rls_result = solve(dag, "rls(delta=2.5, order=bottom-level)")
        assert rls_result.feasible
        con = solve(dag, "constrained", budget=10.0 * sum(t.s for t in dag.tasks))
        assert con.feasible

    def test_edge_free_dag_coerced(self, dag):
        independent = dag.as_independent().as_dag()
        assert independent.is_independent()
        result = solve(independent, "sbo(delta=1.0)")
        assert result.feasible

    def test_trio_guarantee_triple(self, inst):
        result = solve(inst, "trio(delta=4)")
        assert len(result.guarantee) == 3
        assert result.guarantee[2] == pytest.approx(2.5)


# --------------------------------------------------------------------------- #
# Facade vs direct calls: identical schedules
# --------------------------------------------------------------------------- #
class TestFacadeEquivalence:
    def test_sbo_identical(self, inst):
        direct = sbo(inst, delta=1.0, cmax_solver="lpt")
        facade = solve(inst, "sbo(delta=1.0, inner=lpt)")
        assert facade.schedule.assignment == direct.schedule.assignment
        assert facade.guarantee == (direct.cmax_guarantee, direct.mmax_guarantee)
        assert facade.raw.memory_driven_tasks == direct.memory_driven_tasks

    def test_rls_identical(self, dag):
        direct = rls(dag, delta=3.0, order="bottom-level")
        facade = solve(dag, "rls(delta=3.0, order=bottom-level)")
        assert facade.schedule.assignment == direct.schedule.assignment
        assert facade.raw.marked_processors == direct.marked_processors

    def test_trio_identical(self, inst):
        direct = tri_objective_schedule(inst, delta=3.0)
        facade = solve(inst, "trio(delta=3.0)")
        assert facade.schedule.assignment == direct.schedule.assignment
        assert facade.raw.sum_ci_optimal == direct.sum_ci_optimal

    def test_constrained_identical(self, inst):
        budget = 1.5 * max(t.s for t in inst.tasks) + 5
        direct = solve_constrained(inst, memory_capacity=budget)
        facade = solve(inst, "constrained", budget=budget)
        assert facade.feasible == direct.feasible
        if direct.feasible:
            assert facade.cmax == direct.cmax and facade.mmax == direct.mmax


# --------------------------------------------------------------------------- #
# solve_many: batch runner
# --------------------------------------------------------------------------- #
class TestSolveMany:
    def test_cross_product_order(self, inst):
        other = Instance.from_lists(p=[3, 2, 1], s=[1, 2, 3], m=2)
        results = solve_many([inst, other], ["lpt", "spt"])
        assert [r.solver for r in results] == ["lpt", "spt", "lpt", "spt"]
        assert results[0].schedule.instance.n == inst.n
        assert results[2].schedule.instance.n == other.n

    def test_single_instance_single_spec(self, inst):
        results = solve_many(inst, "sbo(delta=1.0)")
        assert len(results) == 1 and results[0].feasible

    def test_parallel_matches_serial(self, inst):
        other = Instance.from_lists(p=[5, 4, 3, 2, 1], s=[2, 2, 2, 2, 2], m=2)
        specs = ["sbo(delta=0.5)", "sbo(delta=2.0)", "rls(delta=2.5)", "trio(delta=3)"]
        serial = solve_many([inst, other], specs, workers=1)
        parallel = solve_many([inst, other], specs, workers=2)
        assert len(serial) == len(parallel) == 8
        assert [r.objectives for r in serial] == [r.objectives for r in parallel]
        assert [r.spec for r in serial] == [r.spec for r in parallel]

    def test_per_call_timing(self, inst):
        results = solve_many([inst], ["lpt", "sbo(delta=1.0)"])
        assert all(r.wall_time >= 0.0 for r in results)

    def test_invalid_spec_fails_before_dispatch(self, inst):
        with pytest.raises(SpecError):
            solve_many([inst], ["lpt", "sbo(delta=1"], workers=2)

    @pytest.mark.parametrize("bad", ["sbp(delta=1)", "sbo(delta=-1)", "sbo(gamma=2)"])
    def test_unknown_name_and_bad_params_fail_before_dispatch(self, inst, bad):
        # Full validation (name + params) happens before any pool is spawned.
        with pytest.raises(SpecError):
            solve_many([inst] * 4, bad, workers=4)

    def test_workers_validation(self, inst):
        with pytest.raises(ValueError, match="workers"):
            solve_many([inst], "lpt", workers=0)

    def test_empty(self):
        assert solve_many([], ["lpt"]) == []


# --------------------------------------------------------------------------- #
# Deprecated shim: repro.algorithms.registry
# --------------------------------------------------------------------------- #
class TestDeprecatedShim:
    def test_get_solver_warns_and_matches(self, inst):
        with pytest.warns(DeprecationWarning):
            from repro.algorithms.registry import get_solver

            legacy_schedule, legacy_rho = get_solver("lpt")(inst, "time")
        facade = solve(inst, "lpt(objective=time)")
        assert legacy_schedule.assignment == facade.schedule.assignment
        assert facade.guarantee[0] == pytest.approx(legacy_rho)

    def test_available_solvers_warns(self):
        with pytest.warns(DeprecationWarning):
            from repro.algorithms.registry import available_solvers as legacy_available

            names = legacy_available()
        assert names == sorted(["list", "lpt", "multifit", "ptas", "ptas-fine", "exact"])

    def test_shim_unknown_name_keeps_keyerror(self):
        with pytest.warns(DeprecationWarning):
            from repro.algorithms.registry import get_solver

            with pytest.raises(KeyError, match="unknown solver"):
                get_solver("quantum")
