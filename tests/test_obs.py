"""Observability layer: tracing, unified metrics, profiling, structured logs.

Covers the `repro.obs` subsystem end to end:

* trace context — ids, wire form, tolerant parsing, the bounded span
  ring, and cross-layer propagation (client → router → shard → kernel
  under ONE trace id through a real 2-shard inproc cluster);
* unified metrics — typed primitives, the *exact* fixed-boundary
  histogram merge (property-tested against the histogram of the
  concatenated samples), the structured wire form, the stats-snapshot
  adapters, Prometheus text exposition (scrape-parsed), and the
  `metrics` wire op / HTTP scrape endpoint;
* profiling — `ProfileScope` phase accounting through the solver
  facade, zero-cost when disabled;
* structured logs — gating, `_force`, the slow-request log, and the
  autoscale decision event;
* the protocol-boundary NaN sanitisation (idle stats round-trip as
  `null` on every registered framing);
* the `FamilyLatency` family cap (client-controlled names cannot grow
  memory without bound);
* the `repro stats` / `repro top` / `repro trace dump` CLI clients.
"""

from __future__ import annotations

import asyncio
import json
import math
import re
import threading
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import _render_stats, build_parser, main
from repro.core.instance import Instance
from repro.obs.adapters import (
    add_profile_metrics,
    build_metrics_registry,
    registry_from_router,
    registry_from_service_stats,
)
from repro.obs.httpd import CONTENT_TYPE, start_metrics_server
from repro.obs.logging import LOG, CapturedEvents, log_event, set_log_sink
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    merge_registry_dicts,
)
from repro.obs.profile import (
    PROFILER,
    ProfileScope,
    disable_profiling,
    enable_profiling,
)
from repro.obs.trace import (
    RECORDER,
    SpanRecorder,
    disable_tracing,
    enable_tracing,
    new_span_id,
    new_trace_id,
    parse_wire_trace,
    wire_trace,
)
from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.protocol import (
    available_framings,
    sanitize_non_finite,
    solve_request,
)
from repro.service.server import serve_tcp
from repro.service.service import SolverService
from repro.service.stats import FamilyLatency

pytestmark = pytest.mark.obs


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def inst():
    return Instance.from_lists(p=[4, 3, 2, 2, 1], s=[1, 5, 2, 4, 3], m=2)


@pytest.fixture(autouse=True)
def _reset_obs_state():
    """Every test leaves the process-global observability state off/empty.

    The global REGISTRY is deliberately *not* cleared: its histogram
    objects (REQUEST_LATENCY / PHASE_LATENCY) are module-level singletons
    the serving code holds references to — tests assert on deltas or use
    private registries instead.
    """
    yield
    disable_tracing(clear=True)
    disable_metrics()
    disable_profiling(reset=True)
    LOG.enabled = False
    set_log_sink(None)


# --------------------------------------------------------------------------- #
# trace context: ids, wire form, tolerant parsing
# --------------------------------------------------------------------------- #
class TestTraceContext:
    def test_id_formats(self):
        tid, sid = new_trace_id(), new_span_id()
        assert re.fullmatch(r"[0-9a-f]{16}", tid)
        assert re.fullmatch(r"[0-9a-f]{8}", sid)
        assert new_trace_id() != tid  # vanishing collision odds

    def test_wire_round_trip(self):
        field = wire_trace("abc123", "def456")
        assert field == {"id": "abc123", "span": "def456"}
        assert parse_wire_trace(field) == ("abc123", "def456")

    @pytest.mark.parametrize("garbage", [
        None, 42, "abc", [], {}, {"span": "x"}, {"id": ""}, {"id": 7},
        {"id": "ok", "span": 9}, {"id": "ok", "span": ""},
    ])
    def test_tolerant_parse(self, garbage):
        parsed = parse_wire_trace(garbage)
        if isinstance(garbage, dict) and garbage.get("id") == "ok":
            assert parsed == ("ok", None)  # bad span degrades, id survives
        else:
            assert parsed is None

    def test_wire_field_absent_when_untraced(self, inst):
        # The byte-identical contract: no ingress → no trace key at all.
        payload = solve_request(inst, "lpt")
        assert "trace" not in payload
        assert payload == solve_request(inst, "lpt", trace=None)


# --------------------------------------------------------------------------- #
# the span ring
# --------------------------------------------------------------------------- #
class TestSpanRecorder:
    def test_disabled_by_default(self):
        assert SpanRecorder().enabled is False
        assert RECORDER.enabled is False

    def test_record_and_filter(self):
        rec = SpanRecorder()
        rec.record("kernel", "service", "t1", "s1", "p1", 0.0, 0.5, family="lpt")
        rec.record("route", "router", "t2", "s2", None, 1.0, 0.1)
        assert len(rec) == 2
        only = rec.snapshot("t1")
        assert [s["name"] for s in only] == ["kernel"]
        assert only[0]["family"] == "lpt"
        assert only[0]["parent"] == "p1"

    def test_ring_bound_and_dropped(self):
        rec = SpanRecorder(capacity=4)
        for i in range(10):
            rec.record("recv", "wire", "t", f"s{i}", None, float(i), 0.0)
        assert len(rec) == 4
        assert rec.dropped == 6
        # Keeps the most recent spans.
        assert [s["span"] for s in rec.snapshot()] == ["s6", "s7", "s8", "s9"]
        rec.clear()
        assert len(rec) == 0 and rec.dropped == 0

    def test_jsonl_export(self):
        rec = SpanRecorder()
        rec.record("encode", "wire", "t", "s", None, 0.0, 0.001, nbytes=42)
        lines = rec.to_jsonl().splitlines()
        assert len(lines) == 1
        span = json.loads(lines[0])
        assert span["name"] == "encode" and span["nbytes"] == 42

    def test_span_context_manager_records_errors(self):
        rec = SpanRecorder()
        with pytest.raises(ValueError):
            with rec.span("kernel", "service", "t9", parent_id="p"):
                raise ValueError("boom")
        (span,) = rec.snapshot()
        assert span["error"] == "ValueError"
        assert span["parent"] == "p" and span["dur"] >= 0.0

    def test_enable_disable_helpers(self):
        enable_tracing(capacity=8)
        assert RECORDER.enabled and RECORDER.capacity == 8
        RECORDER.record("recv", "wire", "t", "s", None, 0.0, 0.0)
        disable_tracing(clear=True)
        assert not RECORDER.enabled and len(RECORDER) == 0


# --------------------------------------------------------------------------- #
# metric primitives
# --------------------------------------------------------------------------- #
class TestMetricPrimitives:
    def test_counter_monotone(self):
        c = Counter("x_total", "help", ("k",))
        c.inc(2, "a")
        c.inc(3, "a")
        assert c.value("a") == 5
        with pytest.raises(ValueError):
            c.inc(-1, "a")
        with pytest.raises(ValueError):
            c.inc(1)  # label arity mismatch

    def test_gauge_up_down(self):
        g = Gauge("depth")
        g.set(4)
        g.dec()
        assert g.value() == 3

    def test_histogram_observe_and_quantile(self):
        h = Histogram("lat", boundaries=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.05, 0.5, 5.0):
            h.observe(v)
        data = h.collect()[()]
        assert data["count"] == 5
        assert data["buckets"] == [1, 2, 1, 1]  # last = +Inf overflow
        assert h.quantile(0.5) == 0.1
        # +Inf hits report the largest finite boundary.
        assert h.quantile(1.0) == 1.0
        assert math.isnan(Histogram("empty", boundaries=(1.0,)).quantile(0.5))

    def test_histogram_rejects_bad_boundaries(self):
        for bad in ((), (1.0, 1.0), (2.0, 1.0), (1.0, math.inf)):
            with pytest.raises(ValueError):
                Histogram("h", boundaries=bad)

    def test_registry_type_conflicts(self):
        reg = MetricsRegistry()
        reg.counter("a_total")
        with pytest.raises(ValueError):
            reg.gauge("a_total")
        with pytest.raises(ValueError):
            reg.counter("a_total", labelnames=("k",))
        assert reg.counter("a_total") is reg.counter("a_total")

    def test_render_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "h", ("k",)).inc(1, 'we"ird\nname')
        text = reg.render()
        assert 'k="we\\"ird\\nname"' in text


# --------------------------------------------------------------------------- #
# the exact histogram merge (the property the count-weighted percentile
# merge in repro.cluster.stats could never make)
# --------------------------------------------------------------------------- #
_BOUNDS = (0.001, 0.01, 0.1, 1.0)


def _hist_of(samples):
    h = Histogram("lat", labelnames=("f",), boundaries=_BOUNDS)
    for v in samples:
        h.observe(v, "x")
    return h


class TestHistogramMergeProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.lists(st.floats(min_value=0.0, max_value=5.0,
                               allow_nan=False, allow_infinity=False),
                     max_size=40),
            min_size=1, max_size=5,
        )
    )
    def test_merge_equals_concatenation(self, shards):
        """Per-shard histograms merged == histogram of all samples."""
        merged = merge_registry_dicts(
            [{"lat": _registry_entry(_hist_of(chunk))} for chunk in shards]
        )
        combined = _hist_of([v for chunk in shards for v in chunk])
        got = merged.get("lat").collect()
        want = combined.collect()
        if not want:
            assert got == want  # no samples anywhere → no series anywhere
            return
        assert got[("x",)]["buckets"] == want[("x",)]["buckets"]
        assert got[("x",)]["count"] == want[("x",)]["count"]
        assert got[("x",)]["sum"] == pytest.approx(want[("x",)]["sum"])
        # Estimated quantiles agree too (same buckets → same estimate).
        for q in (0.5, 0.9, 0.99):
            assert merged.get("lat").quantile(q, "x") == combined.quantile(q, "x")

    def test_merge_series_rejects_mismatched_buckets(self):
        h = Histogram("lat", boundaries=_BOUNDS)
        with pytest.raises(ValueError):
            h.merge_series((), [1, 2], 0.1, 3)


def _registry_entry(histogram):
    reg = MetricsRegistry()
    reg._metrics[histogram.name] = histogram  # private: pack one metric
    return reg.to_dict()[histogram.name]


# --------------------------------------------------------------------------- #
# structured wire form
# --------------------------------------------------------------------------- #
class TestRegistryWireForm:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "c", ("k",)).inc(3, "a")
        reg.gauge("g", "g").set(7)
        reg.histogram("h", "h", boundaries=(0.1, 1.0)).observe(0.5)
        return reg

    def test_round_trip(self):
        reg = self._populated()
        clone = MetricsRegistry.from_dict(reg.to_dict())
        assert clone.render() == reg.render()
        # JSON-serializable (it rides the `metrics` wire op).
        json.dumps(reg.to_dict())

    def test_merge_sums(self):
        a, b = self._populated(), self._populated()
        merged = merge_registry_dicts([a.to_dict(), b.to_dict()])
        assert merged.get("c_total").value("a") == 6
        assert merged.get("g").value() == 14  # gauges sum across shards
        assert merged.get("h").collect()[()]["count"] == 2


# --------------------------------------------------------------------------- #
# adapters: stats snapshots → registry
# --------------------------------------------------------------------------- #
class TestAdapters:
    def test_flat_service_shape(self):
        payload = {
            "submitted": 10, "completed": 8, "queue_depth": 2,
            "latency_count": 8,
            "families": {"lpt": {"count": 8, "p50": 0.01, "p99": float("nan")}},
            "tenants": {"acme": {"admitted": 5, "in_flight": 1, "weight": 2.0}},
        }
        reg = registry_from_service_stats(payload)
        assert reg.get("repro_submitted_total").value() == 10
        assert reg.get("repro_queue_depth").value() == 2
        assert reg.get("repro_family_latency_seconds").value("lpt", "p50") == 0.01
        # NaN percentiles are skipped, not exported as NaN samples.
        assert ("lpt", "p99") not in reg.get("repro_family_latency_seconds").collect()
        assert reg.get("repro_tenant_admitted_total").value("acme") == 5

    def test_cluster_shape_reads_nested_keys(self):
        payload = {
            "cluster": True,
            "totals": {"submitted": 4, "in_flight": 1},
            "router": {"routed": 4, "lost": 0, "shards_alive": 2},
            "shards": {"shard-0": {}, "shard-1": {}},
            "families": {},
        }
        reg = registry_from_service_stats(payload)
        assert reg.get("repro_submitted_total").value() == 4
        assert reg.get("repro_router_routed_total").value() == 4
        assert reg.get("repro_shards_alive").value() == 2
        assert reg.get("repro_shards_reporting").value() == 2

    def test_router_counters_split_gauges(self):
        reg = registry_from_router({"routed": 9, "shards_draining": 1})
        assert reg.get("repro_router_routed_total").value() == 9
        assert reg.get("repro_shards_draining").value() == 1

    def test_profile_adapter(self):
        enable_profiling()
        with ProfileScope("sbo", "kernel"):
            pass
        reg = add_profile_metrics(MetricsRegistry())
        assert reg.get("repro_profile_calls_total").value("sbo", "kernel") == 1
        assert reg.get("repro_profile_seconds_total").value("sbo", "kernel") >= 0


# --------------------------------------------------------------------------- #
# NaN sanitisation at the protocol boundary (satellite: every framing)
# --------------------------------------------------------------------------- #
class TestNonFiniteSanitisation:
    def test_sanitize_unit(self):
        value = {"a": float("nan"), "b": [1.0, float("inf")],
                 "c": {"d": -float("inf"), "e": "x"}, "f": 3}
        assert sanitize_non_finite(value) == {
            "a": None, "b": [1.0, None], "c": {"d": None, "e": "x"}, "f": 3,
        }

    @pytest.mark.parametrize("framing", available_framings())
    def test_idle_stats_round_trip_every_framing(self, framing):
        """An idle service's NaN-filled latency snapshot arrives as null.

        Runs once per *registered* framing (msgpack joins automatically
        when installed) — the sanitized snapshot must decode identically
        on all of them.
        """
        async def scenario():
            async with SolverService(workers=1) as svc:
                shutdown = asyncio.Event()
                server = await serve_tcp(svc, "127.0.0.1", 0, shutdown)
                port = server.sockets[0].getsockname()[1]
                try:
                    client = await ServiceClient.connect("127.0.0.1", port)
                    if framing != "json":
                        assert await client.negotiate([framing]) == framing
                    stats = await client.stats()
                    await client.close()
                finally:
                    shutdown.set()
                    server.close()
                    await server.wait_closed()
                return stats

        stats = run(scenario())
        for quantile in ("p50", "p90", "p99", "mean", "max"):
            assert stats[f"latency_{quantile}"] is None  # was nan; wire-safe null
        json.dumps(stats)  # strict-JSON clean all the way through


# --------------------------------------------------------------------------- #
# FamilyLatency cap (satellite: client-controlled family names)
# --------------------------------------------------------------------------- #
class TestFamilyLatencyCap:
    def test_eviction_is_least_recently_recorded(self):
        fam = FamilyLatency(window=8, max_families=3)
        for name in ("a", "b", "c"):
            fam.record(name, 0.1)
        fam.record("a", 0.2)   # refresh a → b is now oldest
        fam.record("d", 0.3)   # evicts b
        snap = fam.snapshot()
        assert sorted(snap) == ["a", "c", "d"]
        assert fam.evicted == 1
        assert snap["a"]["count"] == 2  # refreshed family kept its window

    def test_cap_bounds_memory_under_churn(self):
        fam = FamilyLatency(window=4, max_families=5)
        for i in range(100):
            fam.record(f"family-{i}", 0.01)
        assert len(fam.snapshot()) == 5
        assert fam.evicted == 95

    def test_validation(self):
        with pytest.raises(ValueError):
            FamilyLatency(max_families=0)

    def test_service_config_threads_the_cap(self):
        assert ServiceConfig(latency_families_max=7).latency_families_max == 7
        with pytest.raises(ValueError):
            ServiceConfig(latency_families_max=0)


# --------------------------------------------------------------------------- #
# structured logs + slow-request log
# --------------------------------------------------------------------------- #
class TestStructuredLog:
    def test_gated_by_default(self):
        events = []
        set_log_sink(events.append)
        log_event("shard_dead", shard="s-1")
        assert events == []
        log_event("slow_request", _force=True, family="lpt")
        assert len(events) == 1
        assert events[0]["event"] == "slow_request"
        assert "ts" in events[0]

    def test_captured_events_helper(self):
        with CapturedEvents() as events:
            log_event("autoscale", action="up", shards=3)
            log_event("other")
        assert len(events.of("autoscale")) == 1
        assert events.of("autoscale")[0]["shards"] == 3
        assert LOG.enabled is False  # restored on exit

    def test_autoscale_decisions_are_logged(self):
        from repro.cluster.autoscaler import Autoscaler

        class _StubRouter:
            from repro.cluster.config import ClusterConfig
            config = ClusterConfig()
            def shard_names(self, include_draining=True):
                return ["shard-0", "shard-1"]

        scaler = Autoscaler(_StubRouter())
        with CapturedEvents() as events:
            scaler._record("up", 8.25)
        (record,) = events.of("autoscale")
        assert record["action"] == "up"
        assert record["avg"] == 8.25
        assert record["shards"] == 2
        assert scaler.log[-1]["action"] == "up"

    def test_slow_request_log_through_the_service(self, inst):
        async def scenario():
            config = ServiceConfig(workers=1, slow_request_threshold=1e-9)
            async with SolverService(config) as svc:
                with CapturedEvents() as events:
                    await svc.solve(inst, "lpt")
            return events

        events = run(scenario())
        slow = events.of("slow_request")
        assert len(slow) >= 1
        assert slow[0]["family"] == "lpt"
        assert slow[0]["seconds"] > 0
        assert "trace" in slow[0]  # null when untraced, the id when traced

    def test_slow_request_threshold_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(slow_request_threshold=0.0)
        assert ServiceConfig(slow_request_threshold=0.5).slow_request_threshold == 0.5


# --------------------------------------------------------------------------- #
# profiling through the solver facade
# --------------------------------------------------------------------------- #
class TestProfiling:
    def test_disabled_is_inert(self, inst):
        from repro.solvers import solve

        solve(inst, "lpt", cache=False)
        assert PROFILER.snapshot() == {}

    def test_facade_phases(self, inst, tmp_path):
        from repro.solvers import solve

        enable_profiling()
        solve(inst, "lpt", cache=str(tmp_path / "cache"))
        snap = PROFILER.snapshot()["lpt"]
        for phase in ("validation", "hashing", "kernel", "serialization"):
            assert snap[phase]["count"] >= 1
            assert snap[phase]["seconds"] >= 0.0
        # A cache hit skips the kernel but still validates and hashes.
        solve(inst, "lpt", cache=str(tmp_path / "cache"))
        snap = PROFILER.snapshot()["lpt"]
        assert snap["kernel"]["count"] == 1
        assert snap["validation"]["count"] == 2

    def test_scope_is_reentrant_and_exception_safe(self):
        enable_profiling()
        with pytest.raises(RuntimeError):
            with ProfileScope("f", "kernel"):
                raise RuntimeError
        assert PROFILER.snapshot()["f"]["kernel"]["count"] == 1


# --------------------------------------------------------------------------- #
# Prometheus exposition: scrape-parse validation
# --------------------------------------------------------------------------- #
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?\d+(\.\d+)?([eE][+-]?\d+)?|NaN|[+-]Inf)$"
)


def assert_valid_exposition(text: str) -> None:
    """Minimal Prometheus text-format (0.0.4) parser/validator."""
    typed = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram", "untyped")
            typed[name] = kind
            continue
        if line.startswith("#"):
            continue
        assert _SAMPLE_RE.match(line), f"malformed sample line: {line!r}"
        metric = line.split("{")[0].split(" ")[0]
        base = re.sub(r"_(bucket|sum|count|total)$", "", metric)
        assert metric in typed or base in typed or metric.rsplit("_", 1)[0] in typed, (
            f"sample {metric!r} has no TYPE header"
        )


class TestExposition:
    def test_render_is_scrape_parseable(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "X", ("k",)).inc(2, "a b")
        reg.gauge("repro_g", "G").set(1.5)
        h = reg.histogram("repro_h_seconds", "H", boundaries=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        text = reg.render()
        assert_valid_exposition(text)
        # Histogram invariants: cumulative buckets, +Inf == count.
        assert 'repro_h_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_h_seconds_count 2" in text

    def test_build_metrics_registry_combines_sources(self):
        payload = {"submitted": 2, "families": {}}
        reg = build_metrics_registry(payload, {"routed": 2})
        text = reg.render()
        assert_valid_exposition(text)
        assert "repro_submitted_total 2" in text
        assert "repro_router_routed_total 2" in text


# --------------------------------------------------------------------------- #
# the HTTP scrape endpoint
# --------------------------------------------------------------------------- #
class TestMetricsHttpd:
    async def _http(self, port, request):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(request)
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        head, _, body = raw.partition(b"\r\n\r\n")
        return head.decode("latin-1"), body.decode()

    def test_get_scrapes_and_post_is_405(self):
        async def scenario():
            server = await start_metrics_server(
                lambda: "repro_up 1\n", host="127.0.0.1", port=0
            )
            port = server.sockets[0].getsockname()[1]
            try:
                ok = await self._http(
                    port, b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                bad = await self._http(
                    port, b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            finally:
                server.close()
                await server.wait_closed()
            return ok, bad

        (ok_head, ok_body), (bad_head, _) = run(scenario())
        assert "200 OK" in ok_head
        assert CONTENT_TYPE in ok_head
        assert ok_body == "repro_up 1\n"
        assert "405" in bad_head

    def test_async_provider(self):
        async def scenario():
            async def provider():
                return "repro_async 7\n"

            server = await start_metrics_server(provider, port=0)
            port = server.sockets[0].getsockname()[1]
            try:
                _, body = await self._http(
                    port, b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
            finally:
                server.close()
                await server.wait_closed()
            return body

        assert run(scenario()) == "repro_async 7\n"


# --------------------------------------------------------------------------- #
# service wire ops: trace + metrics end to end over TCP
# --------------------------------------------------------------------------- #
class TestServiceObservabilityOps:
    def test_traced_solve_metrics_and_trace_dump(self, inst):
        async def scenario():
            config = ServiceConfig(workers=1, trace=True, metrics=True)
            async with SolverService(config) as svc:
                shutdown = asyncio.Event()
                server = await serve_tcp(svc, "127.0.0.1", 0, shutdown)
                port = server.sockets[0].getsockname()[1]
                try:
                    client = await ServiceClient.connect(
                        "127.0.0.1", port, trace=True)
                    await client.solve(inst, "lpt")
                    text = await client.metrics()
                    spans = await client.trace_dump()
                    await client.close()
                finally:
                    shutdown.set()
                    server.close()
                    await server.wait_closed()
                return text, spans

        text, spans = run(scenario())
        assert_valid_exposition(text)
        assert 'repro_request_latency_seconds_count{family="lpt"}' in text
        names = {s["name"] for s in spans}
        assert {"recv", "admission", "queue_wait", "kernel",
                "dispatch", "encode"} <= names
        # One trace id covers the whole request (plus the client root).
        trace_ids = {s["trace"] for s in spans}
        assert len(trace_ids) == 1
        # The worker phases nest under the dispatch span.
        by_name = {s["name"]: s for s in spans}
        assert by_name["kernel"]["parent"] == by_name["dispatch"]["span"]
        assert by_name["queue_wait"]["parent"] == by_name["dispatch"]["span"]
        # The client recorded its root span locally under the same id.
        client_spans = RECORDER.snapshot(next(iter(trace_ids)))
        assert any(s["name"] == "request" for s in client_spans)

    def test_trace_op_filter_and_clear(self, inst):
        async def scenario():
            config = ServiceConfig(workers=1, trace=True)
            async with SolverService(config) as svc:
                shutdown = asyncio.Event()
                server = await serve_tcp(svc, "127.0.0.1", 0, shutdown)
                port = server.sockets[0].getsockname()[1]
                try:
                    client = await ServiceClient.connect("127.0.0.1", port)
                    tid = new_trace_id()
                    await client.request(solve_request(
                        inst, "lpt", trace=wire_trace(tid, new_span_id())))
                    mine = await client.trace_dump(trace_id=tid)
                    nothing = await client.trace_dump(trace_id="absent", clear=True)
                    after = await client.trace_dump()
                    await client.close()
                finally:
                    shutdown.set()
                    server.close()
                    await server.wait_closed()
                return tid, mine, nothing, after

        tid, mine, nothing, after = run(scenario())
        assert mine and all(s["trace"] == tid for s in mine)
        assert nothing == []
        assert after == []  # clear=True emptied the ring


# --------------------------------------------------------------------------- #
# cross-layer propagation: one trace id through a 2-shard cluster
# --------------------------------------------------------------------------- #
@pytest.mark.cluster
class TestClusterTracePropagation:
    def test_one_trace_id_router_to_kernel(self, inst):
        from repro.cluster.config import ClusterConfig
        from repro.cluster.router import ClusterRouter

        async def scenario():
            config = ClusterConfig(shards=2, max_shards=4, backend="inproc",
                                   workers=1, cache=False, trace=True)
            async with ClusterRouter(config) as router:
                tid = new_trace_id()
                request = solve_request(
                    inst, "lpt", trace=wire_trace(tid, new_span_id()))
                response = await router.handle(request)
                assert response["ok"], response
                metrics = await router.handle({"op": "metrics", "id": 1})
                return tid, RECORDER.snapshot(tid), metrics

        tid, spans, metrics = run(scenario())
        by_name = {}
        for span in spans:
            assert span["trace"] == tid
            by_name[span["name"]] = span
        # Router tier recorded the routing decision...
        assert by_name["route"]["component"] == "router"
        assert "shard" in by_name["route"]
        # ...and the shard's service spans nest under it: route → dispatch
        # (unique-job lifetime) → kernel (worker execution).
        assert by_name["dispatch"]["parent"] == by_name["route"]["span"]
        assert by_name["kernel"]["parent"] == by_name["dispatch"]["span"]
        assert by_name["admission"]["parent"] == by_name["route"]["span"]
        # The cluster `metrics` op fans out and merges shard registries.
        assert metrics["ok"]
        assert_valid_exposition(metrics["text"])

    def test_untraced_cluster_records_nothing(self, inst):
        from repro.cluster.config import ClusterConfig
        from repro.cluster.router import ClusterRouter

        async def scenario():
            config = ClusterConfig(shards=1, backend="inproc",
                                   workers=1, cache=False)
            async with ClusterRouter(config) as router:
                response = await router.handle(solve_request(inst, "lpt"))
                assert response["ok"]
                return len(RECORDER)

        assert run(scenario()) == 0


# --------------------------------------------------------------------------- #
# the CLI clients: repro stats / top / trace dump
# --------------------------------------------------------------------------- #
@contextmanager
def _live_service(**overrides):
    """A real TCP service in a daemon thread (the CLI runs its own loop)."""
    config = ServiceConfig(workers=1, **overrides)
    started = threading.Event()
    box = {}

    def runner():
        async def serve():
            async with SolverService(config) as svc:
                shutdown = asyncio.Event()
                server = await serve_tcp(svc, "127.0.0.1", 0, shutdown)
                box["port"] = server.sockets[0].getsockname()[1]
                box["loop"] = asyncio.get_running_loop()
                box["shutdown"] = shutdown
                started.set()
                try:
                    await shutdown.wait()
                finally:
                    server.close()
                    await server.wait_closed()

        try:
            asyncio.run(serve())
        except Exception as exc:  # pragma: no cover - startup failure
            box["error"] = exc
            started.set()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(30), "service thread failed to start"
    if "error" in box:
        raise box["error"]
    try:
        yield box["port"]
    finally:
        box["loop"].call_soon_threadsafe(box["shutdown"].set)
        thread.join(timeout=30)


class TestCliObservability:
    def test_parser_accepts_new_flags(self):
        parser = build_parser()
        args = parser.parse_args([
            "serve", "--port", "0", "--trace", "--metrics-port", "0",
            "--slow-request-threshold", "0.5",
        ])
        assert args.trace and args.metrics_port == 0
        assert args.slow_request_threshold == 0.5
        args = parser.parse_args(["cluster", "--trace", "--metrics-port", "9100"])
        assert args.trace and args.metrics_port == 9100
        args = parser.parse_args(["trace", "dump", "--port", "7", "--clear"])
        assert args.action == "dump" and args.clear

    def test_render_stats_service_shape(self):
        text = _render_stats({
            "submitted": 3, "completed": 2, "pending": 1,
            "families": {"lpt": {"count": 2, "p50": 0.004, "p99": None,
                                 "mean": 0.005, "p90": 0.004, "max": 0.01}},
        })
        assert "submitted=3" in text
        assert "lpt" in text and "4.00" in text
        assert "-" in text  # sanitized (null) percentile renders as a dash

    def test_render_stats_cluster_shape(self):
        text = _render_stats({
            "cluster": True,
            "router": {"shards_alive": 2, "routed": 5, "retried": 0, "lost": 0},
            "totals": {"submitted": 5, "completed": 5},
            "families": {},
            "tenants": {"acme": {"admitted": 4, "rejected": 1,
                                 "in_flight": 0, "backlog": 0}},
        })
        assert "2 shards alive" in text
        assert "acme" in text

    def test_stats_top_trace_against_live_service(self, inst, capsys):
        with _live_service(trace=True) as port:
            client_code = run(self._drive(port, inst))
            assert client_code is None

            assert main(["stats", "--port", str(port)]) == 0
            plain = capsys.readouterr().out
            assert "submitted=1" in plain and "lpt" in plain

            assert main(["stats", "--port", str(port), "--json"]) == 0
            snapshot = json.loads(capsys.readouterr().out)
            assert snapshot["submitted"] == 1

            assert main(["top", "--port", str(port), "--iterations", "2",
                         "--interval", "0.01", "--no-clear"]) == 0
            top_out = capsys.readouterr().out
            assert top_out.count("repro top") == 2

            assert main(["trace", "dump", "--port", str(port)]) == 0
            lines = [l for l in capsys.readouterr().out.splitlines() if l]
            spans = [json.loads(line) for line in lines]
            assert {"kernel", "dispatch"} <= {s["name"] for s in spans}

    async def _drive(self, port, inst):
        client = await ServiceClient.connect("127.0.0.1", port, trace=True)
        await client.solve(inst, "lpt")
        await client.close()

    def test_trace_dump_to_file(self, inst, tmp_path, capsys):
        out = tmp_path / "spans.jsonl"
        with _live_service(trace=True) as port:
            run(self._drive(port, inst))
            assert main(["trace", "dump", "--port", str(port),
                         "--output", str(out)]) == 0
        spans = [json.loads(line) for line in out.read_text().splitlines()]
        assert spans and all("trace" in s for s in spans)

    def test_stats_unreachable_is_clean(self, capsys):
        async def free_port():
            server = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()
            return port

        port = run(free_port())
        assert main(["stats", "--port", str(port)]) == 1
        assert "error:" in capsys.readouterr().err
