"""Wire-protocol fast path: JSON safety, orjson gating, framing negotiation.

Covers the three wire-layer changes of the kernel fast-path PR:

* the deep ``_is_json_safe`` check with the ``provenance_truncated``
  marker (deeply nested provenance used to be *silently* dropped past
  depth 3);
* the ``orjson`` encode/decode fast path — exercised through a stub
  module, since the accelerator is optional and absent here: payloads
  containing non-finite floats must take the stdlib path (orjson would
  silently serialize ``inf`` as ``null``), strict payloads may take the
  fast path, and both produce the identical documented wire format;
* framing negotiation — a test-registered length-prefixed JSON framing
  drives the whole negotiate/switch machinery over a real TCP server
  without needing msgpack installed, and clients that never negotiate
  keep speaking line-delimited JSON untouched.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import replace

import pytest

import repro.service.protocol as protocol
from repro.core.instance import Instance
from repro.service.client import ServiceClient
from repro.service.protocol import (
    DEFAULT_FRAMING,
    FRAME_HEADER,
    Framing,
    ProtocolError,
    available_framings,
    choose_framing,
    decode_message,
    encode_message,
    get_framing,
    negotiate_request,
    register_framing,
    result_to_payload,
)
from repro.service.server import serve_tcp
from repro.service.service import SolverService
from repro.solvers import solve


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def inst():
    return Instance.from_lists(p=[4, 3, 2, 2, 1], s=[1, 5, 2, 4, 3], m=2)


# --------------------------------------------------------------------------- #
# deep JSON safety + provenance_truncated (the silent-truncation bugfix)
# --------------------------------------------------------------------------- #
class TestProvenanceDepth:
    def _result_with_extras(self, inst, extras):
        result = solve(inst, "lpt", cache=False)
        return replace(result, provenance={**result.provenance, **extras})

    def test_depth_four_provenance_survives(self, inst):
        # Depth-4 nesting was silently dropped by the old depth-3 cutoff.
        deep = {"l1": {"l2": {"l3": {"l4": "value"}}}}
        payload = result_to_payload(self._result_with_extras(inst, {"deep": deep}))
        assert payload["extras"]["deep"] == deep
        assert "provenance_truncated" not in payload
        # And it must round-trip the wire intact.
        decoded = decode_message(encode_message(payload))
        assert decoded["extras"]["deep"] == deep

    def test_very_deep_provenance_survives(self, inst):
        nested: object = "leaf"
        for _ in range(20):
            nested = {"n": nested}
        payload = result_to_payload(self._result_with_extras(inst, {"deep": nested}))
        assert payload["extras"]["deep"] == nested
        assert "provenance_truncated" not in payload

    def test_unserializable_extra_is_marked_not_silent(self, inst):
        result = self._result_with_extras(
            inst, {"native": object(), "fine": {"a": [1, 2]}}
        )
        payload = result_to_payload(result)
        assert payload["extras"]["fine"] == {"a": [1, 2]}
        assert "native" not in payload["extras"]
        assert payload["provenance_truncated"] == ["native"]

    def test_non_string_keys_are_marked(self, inst):
        payload = result_to_payload(
            self._result_with_extras(inst, {"intkeys": {1: "x"}})
        )
        assert payload["provenance_truncated"] == ["intkeys"]

    def test_pathological_depth_still_bounded(self, inst):
        nested: object = "leaf"
        for _ in range(500):
            nested = [nested]
        payload = result_to_payload(self._result_with_extras(inst, {"mad": nested}))
        assert payload["provenance_truncated"] == ["mad"]


# --------------------------------------------------------------------------- #
# orjson gating (via stub: the accelerator is not installed in CI)
# --------------------------------------------------------------------------- #
class _FakeOrjson:
    """Mimics orjson's contract: strict JSON only, bytes out, TypeError on
    non-string keys, rejects Infinity/NaN literals on parse.  ``dumps``
    raises ``ValueError`` if a non-finite float ever reaches it — which is
    exactly the bug the ``_has_non_finite`` guard must prevent."""

    class JSONDecodeError(ValueError):
        pass

    calls: list

    def __init__(self):
        self.calls = []

    def dumps(self, obj) -> bytes:
        self._check_keys(obj)
        self.calls.append("dumps")
        return json.dumps(obj, separators=(",", ":"), allow_nan=False).encode()

    def loads(self, data):
        self.calls.append("loads")

        def reject(const):
            raise _FakeOrjson.JSONDecodeError(f"non-finite literal {const}")

        try:
            return json.loads(data, parse_constant=reject)
        except json.JSONDecodeError as exc:
            raise _FakeOrjson.JSONDecodeError(str(exc)) from None

    @classmethod
    def _check_keys(cls, obj):
        if isinstance(obj, dict):
            for k, v in obj.items():
                if not isinstance(k, str):
                    raise TypeError(f"non-str key {k!r}")
                cls._check_keys(v)
        elif isinstance(obj, (list, tuple)):
            for v in obj:
                cls._check_keys(v)


class TestOrjsonGate:
    @pytest.fixture
    def fake(self, monkeypatch):
        stub = _FakeOrjson()
        monkeypatch.setattr(protocol, "_orjson", stub)
        return stub

    def test_strict_payload_takes_fast_path(self, fake):
        payload = {"op": "solve", "spec": "lpt", "n": 3, "xs": [1.5, 2.0]}
        line = encode_message(payload)
        assert "dumps" in fake.calls
        # Byte-identical to the documented stdlib wire format.
        assert line == (json.dumps(payload, separators=(",", ":")) + "\n").encode()
        assert decode_message(line) == payload

    def test_non_finite_payload_falls_back_to_stdlib(self, fake):
        payload = {"guarantee": [2.0, math.inf], "nan": math.nan}
        line = encode_message(payload)  # must NOT raise, must NOT nullify
        assert b"Infinity" in line
        assert "dumps" not in fake.calls
        decoded = decode_message(line)
        assert decoded["guarantee"][1] == math.inf
        assert math.isnan(decoded["nan"])

    def test_non_finite_nested_in_tuple_detected(self, fake):
        line = encode_message({"t": ({"x": [math.inf]},)})
        assert b"Infinity" in line and "dumps" not in fake.calls

    def test_non_str_keys_fall_back(self, fake):
        # stdlib json coerces int keys to strings; orjson raises TypeError.
        line = encode_message({"m": {1: "x"}})
        assert decode_message(line) == {"m": {"1": "x"}}

    def test_decode_falls_back_on_infinity_literal(self, fake):
        decoded = decode_message(b'{"cmax": Infinity}\n')
        assert decoded["cmax"] == math.inf
        assert "loads" in fake.calls  # tried the fast path first

    def test_decode_invalid_json_still_protocol_error(self, fake):
        with pytest.raises(ProtocolError):
            decode_message(b"{nope\n")

    def test_without_accelerator_everything_works(self, monkeypatch):
        monkeypatch.setattr(protocol, "_orjson", None)
        payload = {"a": [1.0, math.inf], "b": "x"}
        assert decode_message(encode_message(payload)) == payload


# --------------------------------------------------------------------------- #
# framing registry
# --------------------------------------------------------------------------- #
def _len_json_framing(name="len-json") -> Framing:
    """Length-prefixed JSON: exercises the binary frame path sans msgpack."""

    def decode_body(body: bytes):
        try:
            obj = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"bad len-json body: {exc}") from None
        if not isinstance(obj, dict):
            raise ProtocolError("len-json frame must decode to an object")
        return obj

    return Framing(
        name,
        encode_body=lambda payload: json.dumps(payload).encode(),
        decode_body=decode_body,
    )


@pytest.fixture
def len_json():
    framing = register_framing(_len_json_framing())
    try:
        yield framing
    finally:
        protocol._FRAMINGS.pop(framing.name, None)


class TestFramingRegistry:
    def test_default_framing_always_first(self):
        names = available_framings()
        assert names[0] == DEFAULT_FRAMING

    def test_msgpack_advertised_only_when_importable(self):
        try:
            import msgpack  # noqa: F401

            assert "msgpack" in available_framings()
        except ImportError:
            assert "msgpack" not in available_framings()
            # Registered but unavailable: negotiation degrades to default.
            assert choose_framing(["msgpack"]).name == DEFAULT_FRAMING

    def test_duplicate_registration_rejected(self, len_json):
        with pytest.raises(ValueError, match="already registered"):
            register_framing(_len_json_framing())
        register_framing(_len_json_framing(), replace=True)  # explicit override ok

    def test_unknown_framing_lookup(self):
        with pytest.raises(ProtocolError, match="unknown framing"):
            get_framing("carrier-pigeon")

    def test_choose_framing_prefers_first_available(self, len_json):
        assert choose_framing(["carrier-pigeon", "len-json", "json"]).name == "len-json"
        assert choose_framing([]).name == DEFAULT_FRAMING
        assert choose_framing([42, None]).name == DEFAULT_FRAMING

    def test_choose_framing_rejects_non_list(self):
        with pytest.raises(ProtocolError):
            choose_framing("json")

    def test_length_prefixed_frame_layout(self, len_json):
        frame = len_json.encode({"a": 1})
        (length,) = FRAME_HEADER.unpack(frame[: FRAME_HEADER.size])
        body = frame[FRAME_HEADER.size:]
        assert length == len(body)
        assert len_json.decode_body(body) == {"a": 1}

    def test_negotiate_request_builder(self):
        payload = negotiate_request(["msgpack", "json"], request_id=7)
        assert payload == {"op": "negotiate", "framings": ["msgpack", "json"], "id": 7}


# --------------------------------------------------------------------------- #
# negotiation over a live TCP server
# --------------------------------------------------------------------------- #
class TestNegotiationTCP:
    def _serve(self):
        return SolverService(workers=1)

    def test_negotiate_switch_and_solve(self, inst, len_json):
        async def scenario():
            async with self._serve() as svc:
                server = await serve_tcp(svc, port=0)
                port = server.sockets[0].getsockname()[1]
                client = await ServiceClient.connect(port=port)
                try:
                    pong = await client.ping()
                    assert "len-json" in pong["framings"]
                    assert client.framing == DEFAULT_FRAMING

                    name = await client.negotiate(["len-json"])
                    assert name == "len-json"
                    assert client.framing == "len-json"

                    # Full request/response over the binary framing.
                    payload = await client.solve(inst, "lpt")
                    direct = solve(inst, "lpt", cache=False)
                    assert payload["cmax"] == direct.cmax
                    assert payload["mmax"] == direct.mmax
                    assert dict(map(tuple, payload["assignment"])) == \
                        direct.schedule.assignment

                    # Ping flows over the new framing too.
                    pong = await client.ping()
                    assert pong["pong"] is True

                    # And the connection can negotiate back down to JSON.
                    assert await client.negotiate(["json"]) == "json"
                    assert (await client.ping())["pong"] is True
                finally:
                    await client.close()
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_unavailable_preference_degrades_to_json(self, inst):
        async def scenario():
            async with self._serve() as svc:
                server = await serve_tcp(svc, port=0)
                port = server.sockets[0].getsockname()[1]
                client = await ServiceClient.connect(port=port)
                try:
                    name = await client.negotiate(["carrier-pigeon"])
                    assert name == DEFAULT_FRAMING
                    assert client.framing == DEFAULT_FRAMING
                    assert (await client.solve(inst, "lpt"))["feasible"]
                finally:
                    await client.close()
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_old_client_untouched_by_negotiating_peer(self, inst, len_json):
        async def scenario():
            async with self._serve() as svc:
                server = await serve_tcp(svc, port=0)
                port = server.sockets[0].getsockname()[1]
                modern = await ServiceClient.connect(port=port)
                legacy_reader, legacy_writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                try:
                    await modern.negotiate(["len-json"])
                    # The legacy connection still speaks raw line JSON.
                    from repro.service.protocol import solve_request

                    request = solve_request(inst, "lpt", request_id="legacy-1")
                    legacy_writer.write((json.dumps(request) + "\n").encode())
                    await legacy_writer.drain()
                    line = await legacy_reader.readline()
                    response = json.loads(line)
                    assert response["ok"] and response["id"] == "legacy-1"
                    # Meanwhile the negotiated connection works in parallel.
                    assert (await modern.solve(inst, "lpt"))["feasible"]
                finally:
                    legacy_writer.close()
                    await modern.close()
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_solve_payload_with_negotiate_substring_not_intercepted(self, len_json):
        # A request merely *containing* the word must go to the normal
        # handler (the sniff is an optimization, not a parser).
        async def scenario():
            async with self._serve() as svc:
                server = await serve_tcp(svc, port=0)
                port = server.sockets[0].getsockname()[1]
                client = await ServiceClient.connect(port=port)
                try:
                    inst2 = Instance.from_lists(
                        p=[1, 2], s=[1, 1], m=1, name="negotiate-me"
                    )
                    payload = await client.solve(inst2, "lpt")
                    assert payload["feasible"]
                    assert client.framing == DEFAULT_FRAMING
                finally:
                    await client.close()
                server.close()
                await server.wait_closed()

        run(scenario())


class TestFramingAvailabilityProbe:
    def test_probe_failure_means_unavailable(self):
        def boom():
            raise RuntimeError("probe exploded")

        framing = Framing("probed", lambda p: b"", lambda b: {}, probe=boom)
        assert framing.available is False

    def test_probe_true_means_available(self):
        framing = Framing("probed", lambda p: b"", lambda b: {}, probe=lambda: True)
        assert framing.available is True
