"""Unit tests for repro.algorithms.list_scheduling, lpt and spt."""

from __future__ import annotations

import pytest

from repro.algorithms.list_scheduling import graham_dag_schedule, list_schedule, resolve_order
from repro.algorithms.lpt import lpt_guarantee, lpt_schedule
from repro.algorithms.spt import optimal_sum_ci, spt_schedule
from repro.core.bounds import cmax_lower_bound, mmax_lower_bound
from repro.core.instance import DAGInstance, Instance
from repro.core.validation import validate_schedule
from repro.workloads.independent import uniform_instance


class TestResolveOrder:
    def test_named_orders(self, small_instance):
        assert [t.id for t in resolve_order(small_instance, "spt")] == [4, 2, 3, 1, 0]
        assert [t.id for t in resolve_order(small_instance, "lpt")] == [0, 1, 2, 3, 4]
        assert [t.id for t in resolve_order(small_instance, "lms")][0] == 1
        assert [t.id for t in resolve_order(small_instance, None)] == [0, 1, 2, 3, 4]

    def test_explicit_order(self, small_instance):
        order = resolve_order(small_instance, [4, 3, 2, 1, 0])
        assert [t.id for t in order] == [4, 3, 2, 1, 0]

    def test_explicit_order_incomplete(self, small_instance):
        with pytest.raises(ValueError, match="every task"):
            resolve_order(small_instance, [0, 1])

    def test_unknown_name(self, small_instance):
        with pytest.raises(ValueError, match="unknown order"):
            resolve_order(small_instance, "zigzag")


class TestListSchedule:
    def test_greedy_time(self):
        inst = Instance.from_lists(p=[3, 3, 3, 3], s=[1, 1, 1, 1], m=2)
        sched = list_schedule(inst)
        assert sched.cmax == 6.0

    def test_greedy_memory(self):
        inst = Instance.from_lists(p=[1, 1, 1, 1], s=[4, 4, 4, 4], m=2)
        sched = list_schedule(inst, objective="memory")
        assert sched.mmax == 8.0

    def test_unknown_objective(self, small_instance):
        with pytest.raises(ValueError, match="objective"):
            list_schedule(small_instance, objective="energy")

    def test_schedule_is_valid(self, medium_instance):
        assert validate_schedule(list_schedule(medium_instance)).ok

    def test_graham_guarantee_on_random_instances(self):
        for seed in range(5):
            inst = uniform_instance(25, 4, seed=seed)
            sched = list_schedule(inst)
            assert sched.cmax <= (2 - 1 / inst.m) * cmax_lower_bound(inst) * (1 + 1e-9)

    def test_all_tasks_assigned(self, medium_instance):
        sched = list_schedule(medium_instance, order="lpt")
        assert set(sched.assignment.keys()) == set(medium_instance.tasks.ids)

    def test_single_processor(self):
        inst = Instance.from_lists(p=[1, 2, 3], s=[1, 1, 1], m=1)
        sched = list_schedule(inst)
        assert sched.cmax == 6.0

    def test_more_processors_than_tasks(self):
        inst = Instance.from_lists(p=[5, 3], s=[1, 1], m=8)
        sched = list_schedule(inst)
        assert sched.cmax == 5.0

    def test_empty_instance(self):
        inst = Instance.from_lists(p=[], s=[], m=2)
        sched = list_schedule(inst)
        assert sched.cmax == 0.0


class TestLPT:
    def test_lpt_guarantee_value(self):
        assert lpt_guarantee(1) == pytest.approx(1.0)
        assert lpt_guarantee(2) == pytest.approx(4 / 3 - 1 / 6)
        with pytest.raises(ValueError):
            lpt_guarantee(0)

    def test_lpt_beats_guarantee_on_random(self):
        for seed in range(5):
            inst = uniform_instance(30, 4, seed=seed)
            sched = lpt_schedule(inst)
            assert sched.cmax <= lpt_guarantee(4) * cmax_lower_bound(inst) * (1 + 1e-9)

    def test_lpt_memory_objective(self):
        for seed in range(3):
            inst = uniform_instance(30, 4, seed=seed)
            sched = lpt_schedule(inst, objective="memory")
            assert sched.mmax <= lpt_guarantee(4) * mmax_lower_bound(inst) * (1 + 1e-9)

    def test_lpt_classic_worst_case_example(self):
        # Classic LPT worst case on 2 processors: p = 5,4,3,3,3 has optimum 9
        # but LPT yields 10 (still within the 4/3 - 1/(3m) = 7/6 factor).
        inst = Instance.from_lists(p=[5, 4, 3, 3, 3], s=[0] * 5, m=2)
        assert lpt_schedule(inst).cmax == 10.0
        assert 10.0 <= lpt_guarantee(2) * 9.0


class TestSPT:
    def test_spt_sum_ci_optimal_single_proc(self):
        inst = Instance.from_lists(p=[3, 1, 2], s=[0, 0, 0], m=1)
        assert spt_schedule(inst).sum_ci == 10.0
        assert optimal_sum_ci(inst) == 10.0

    def test_spt_never_worse_than_lpt_on_sum_ci(self):
        for seed in range(5):
            inst = uniform_instance(20, 3, seed=seed)
            assert spt_schedule(inst).sum_ci <= lpt_schedule(inst).sum_ci + 1e-9

    def test_spt_valid(self, medium_instance):
        assert validate_schedule(spt_schedule(medium_instance)).ok


class TestGrahamDAGSchedule:
    def test_respects_precedence(self, diamond_dag):
        sched = graham_dag_schedule(diamond_dag)
        assert validate_schedule(sched).ok
        assert sched.start_of("d") >= max(sched.completion_of("b"), sched.completion_of("c"))

    def test_chain_runs_sequentially(self, chain_instance):
        sched = graham_dag_schedule(chain_instance)
        assert sched.cmax == 9.0  # sum of the chain

    def test_graham_bound_on_dag(self, diamond_dag):
        sched = graham_dag_schedule(diamond_dag)
        assert sched.cmax <= (2 - 1 / diamond_dag.m) * cmax_lower_bound(diamond_dag) + 1e-9

    def test_no_unnecessary_idle(self):
        # Two independent tasks on two processors must run in parallel.
        inst = DAGInstance.from_lists(p=[5, 5], s=[1, 1], m=2)
        sched = graham_dag_schedule(inst)
        assert sched.cmax == 5.0

    def test_independent_instance_lifted(self, small_instance):
        sched = graham_dag_schedule(small_instance)
        assert validate_schedule(sched).ok
        assert set(sched.assignment.keys()) == set(small_instance.tasks.ids)

    def test_priority_affects_ties_not_validity(self, diamond_dag):
        for priority in ("arbitrary", "spt", "lpt"):
            sched = graham_dag_schedule(diamond_dag, priority=priority)
            assert validate_schedule(sched).ok
