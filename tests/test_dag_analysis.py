"""Unit tests for repro.dag.analysis."""

from __future__ import annotations

import pytest

from repro.core.instance import DAGInstance
from repro.dag.analysis import (
    bottom_levels,
    critical_path,
    critical_path_length,
    dag_summary,
    graph_width,
    parallelism_profile,
    top_levels,
)
from repro.dag.generators import chain_dag, fork_join_dag


class TestLevels:
    def test_diamond_top_levels(self, diamond_dag):
        tl = top_levels(diamond_dag)
        assert tl["a"] == 0.0
        assert tl["b"] == 2.0
        assert tl["c"] == 2.0
        assert tl["d"] == 6.0  # after c (2 + 4)

    def test_diamond_bottom_levels(self, diamond_dag):
        bl = bottom_levels(diamond_dag)
        assert bl["d"] == 1.0
        assert bl["b"] == 4.0
        assert bl["c"] == 5.0
        assert bl["a"] == 7.0

    def test_chain_levels(self, chain_instance):
        tl = top_levels(chain_instance)
        bl = bottom_levels(chain_instance)
        assert tl["t0"] == 0.0 and bl["t0"] == 9.0
        assert tl["t4"] == 8.0 and bl["t4"] == 1.0


class TestCriticalPath:
    def test_diamond(self, diamond_dag):
        assert critical_path_length(diamond_dag) == 7.0
        path = critical_path(diamond_dag)
        assert path[0] == "a" and path[-1] == "d"
        assert "c" in path and "b" not in path

    def test_chain_is_whole_graph(self, chain_instance):
        assert critical_path(chain_instance) == [f"t{i}" for i in range(5)]
        assert critical_path_length(chain_instance) == 9.0

    def test_empty_dag(self):
        empty = DAGInstance.from_lists(p=[], s=[], m=1)
        assert critical_path(empty) == []
        assert critical_path_length(empty) == 0.0

    def test_path_edges_exist(self, diamond_dag):
        path = critical_path(diamond_dag)
        for u, v in zip(path, path[1:]):
            assert diamond_dag.graph.has_edge(u, v)


class TestWidth:
    def test_diamond_width(self, diamond_dag):
        assert graph_width(diamond_dag) == 2

    def test_chain_width(self, chain_instance):
        assert graph_width(chain_instance) == 1

    def test_independent_width_is_n(self):
        inst = DAGInstance.from_lists(p=[1, 1, 1, 1], s=[1] * 4, m=2)
        assert graph_width(inst) == 4

    def test_fork_join_width(self):
        dag = fork_join_dag(1, 5, m=2, seed=0)
        assert graph_width(dag) == 5

    def test_empty(self):
        assert graph_width(DAGInstance.from_lists(p=[], s=[], m=1)) == 0


class TestParallelismProfile:
    def test_chain_profile_never_exceeds_one(self, chain_instance):
        profile = parallelism_profile(chain_instance, time_step=0.5)
        assert profile
        assert max(count for _, count in profile) == 1

    def test_diamond_profile_peak_two(self, diamond_dag):
        profile = parallelism_profile(diamond_dag, time_step=0.5)
        assert max(count for _, count in profile) == 2

    def test_invalid_step(self, diamond_dag):
        with pytest.raises(ValueError):
            parallelism_profile(diamond_dag, time_step=0.0)

    def test_empty(self):
        assert parallelism_profile(DAGInstance.from_lists(p=[], s=[], m=1)) == []


class TestSummary:
    def test_diamond_summary(self, diamond_dag):
        s = dag_summary(diamond_dag)
        assert s.n_tasks == 4 and s.n_edges == 4
        assert s.critical_path_length == 7.0
        assert s.total_work == 10.0
        assert s.total_storage == 14.0
        assert s.width == 2
        assert s.depth == 3
        assert s.average_parallelism == pytest.approx(10.0 / 7.0)

    def test_chain_summary(self):
        dag = chain_dag(6, m=2, seed=0)
        s = dag_summary(dag)
        assert s.width == 1 and s.depth == 6
        assert s.average_parallelism == pytest.approx(1.0)
