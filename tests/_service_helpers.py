"""Module-level test solvers for the service suite.

The callables live at module level so their :class:`SolverEntry` pickles
and ships into worker processes, exactly like user-registered solvers in
:func:`repro.solvers.solve_many` (see ``tests/_spawn_helper.py``).

``sleepy`` is a deterministic solver with a controllable duration and an
optional *execution token file*: every actual execution appends one line
to the file, so tests can count how many times the underlying
computation really ran (across processes — the file is the only channel
worker processes share with the test) and distinguish coalesced fan-out
from duplicated work.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Dict, Iterator

from repro.solvers import ParamSpec, SolverCapabilities, SolverEntry, register
from repro.solvers.registry import _REGISTRY


def run_sleepy(instance, params: Dict[str, object]):
    """LPT-schedule after sleeping; optionally log the execution."""
    from repro.algorithms.lpt import lpt_schedule

    token = params.get("token")
    if token:
        with open(str(token), "a") as fh:
            fh.write("run\n")
    time.sleep(float(params["seconds"]))  # type: ignore[arg-type]
    inst = instance.as_independent() if hasattr(instance, "as_independent") else instance
    return lpt_schedule(inst), (math.inf, math.inf), None, {}


def make_sleepy_entry(name: str = "sleepy") -> SolverEntry:
    return SolverEntry(
        name=name,
        summary="test-only solver: sleeps, then LPT (service concurrency tests)",
        capabilities=SolverCapabilities(),
        params=(
            ParamSpec("seconds", float, default=0.2, nonnegative=True,
                      doc="how long the fake computation takes"),
            ParamSpec("token", str, default=None,
                      doc="file every real execution appends one line to"),
        ),
        run=run_sleepy,
        guarantee=None,
    )


def count_executions(token_path) -> int:
    """Number of times a ``sleepy`` spec with this token actually ran."""
    try:
        with open(str(token_path)) as fh:
            return sum(1 for _ in fh)
    except FileNotFoundError:
        return 0


@contextmanager
def registered(entry: SolverEntry) -> Iterator[SolverEntry]:
    """Register a test entry and always unregister it afterwards."""
    register(entry, replace=True)
    try:
        yield entry
    finally:
        _REGISTRY.pop(entry.name, None)
