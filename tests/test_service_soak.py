"""Soak tests: many async clients hammering one small SolverService.

Marked ``soak`` so the heavy profile can be selected (``-m soak``) or
excluded (``-m "not soak"``) independently of the fast suite.  The
default profile is CI-sized (a few seconds); scale it up via environment
variables for a real soak::

    REPRO_SOAK_CLIENTS=64 REPRO_SOAK_REQUESTS=100 \\
        pytest -m soak tests/test_service_soak.py

Invariants checked while the storm runs and after it settles:

* **no lost or duplicated requests** — every client receives exactly one
  response per request, every response matches the direct ``solve()``
  ground truth for its (instance, spec) pair, and the stats ledger
  balances (``lost == 0``);
* **the bounded queue actually bounds** — a sampler coroutine polls the
  stats during the storm and asserts ``pending <= max_pending`` at every
  sample (and that the bound was actually reached, so the assertion has
  teeth);
* **timeout churn leaves no zombies** — a storm mixing impossible
  deadlines with normal requests drains to idle gauges and keeps serving.
"""

from __future__ import annotations

import asyncio
import os
import random

import pytest

from repro.core.instance import Instance
from repro.service import (
    ServiceConfig,
    ServiceOverloadedError,
    ServiceTimeoutError,
    SolverService,
)
from repro.solvers import LRUCache, solve

from _service_helpers import make_sleepy_entry, registered

pytestmark = pytest.mark.soak

#: CI-profile defaults; raise via environment for a long soak.
CLIENTS = int(os.environ.get("REPRO_SOAK_CLIENTS", "10"))
REQUESTS_PER_CLIENT = int(os.environ.get("REPRO_SOAK_REQUESTS", "15"))
SEED = int(os.environ.get("REPRO_SOAK_SEED", "20260728"))

SPECS = [
    "lpt",
    "spt",
    "multifit",
    "sbo(delta=0.5)",
    "sbo(delta=2.0)",
    "rls(delta=2.5)",
    "trio(delta=2.5)",
]


def instance_pool(count: int = 6, n: int = 10):
    rng = random.Random(SEED)
    return [
        Instance.from_lists(
            p=[round(rng.uniform(1, 20), 3) for _ in range(n)],
            s=[round(rng.uniform(1, 20), 3) for _ in range(n)],
            m=rng.randint(2, 4),
            name=f"soak-{i}",
        )
        for i in range(count)
    ]


def test_mixed_spec_storm_no_lost_or_duplicated_requests():
    instances = instance_pool()
    # Ground truth, computed once per unique (instance, spec) pair.
    expected = {
        (i, spec): solve(inst, spec, cache=False)
        for i, inst in enumerate(instances)
        for spec in SPECS
    }
    config = ServiceConfig(
        workers=2, max_pending=8, backpressure="wait", cache=LRUCache(maxsize=256)
    )

    async def scenario():
        async with SolverService(config) as svc:
            bound_reached = False
            storm_over = asyncio.Event()

            async def sampler():
                nonlocal bound_reached
                while not storm_over.is_set():
                    stats = svc.stats()
                    assert stats.pending <= config.max_pending, (
                        f"queue bound violated mid-storm: {stats}"
                    )
                    if stats.pending == config.max_pending:
                        bound_reached = True
                    await asyncio.sleep(0.002)

            async def client(client_id: int):
                rng = random.Random(SEED + client_id)
                responses = 0
                for _ in range(REQUESTS_PER_CLIENT):
                    idx = rng.randrange(len(instances))
                    spec = rng.choice(SPECS)
                    result = await svc.solve(instances[idx], spec)
                    truth = expected[(idx, spec)]
                    assert result.objectives == truth.objectives
                    assert result.guarantee == truth.guarantee
                    assert result.solver == truth.solver
                    assert result.spec == truth.spec
                    assert result.schedule.assignment == truth.schedule.assignment
                    responses += 1
                return responses

            sampler_task = asyncio.create_task(sampler())
            counts = await asyncio.gather(*(client(i) for i in range(CLIENTS)))
            storm_over.set()
            await sampler_task

            # One response per request, nothing lost, nothing duplicated.
            total = CLIENTS * REQUESTS_PER_CLIENT
            assert counts == [REQUESTS_PER_CLIENT] * CLIENTS
            stats = svc.stats()
            assert stats.submitted == total
            assert stats.lost == 0
            assert stats.cache_hits + stats.coalesced + stats.completed == total
            # Dedup really happened: at most one computation per unique pair.
            assert stats.completed <= len(expected)
            assert bound_reached or stats.cache_hits > total // 2, (
                "storm too weak to exercise the bound — raise REQUESTS_PER_CLIENT"
            )
            # The storm settles to idle gauges.
            assert stats.pending == 0 and stats.queue_depth == 0 and stats.in_flight == 0
            assert stats.latency_count == total

    asyncio.run(scenario())


def test_timeout_churn_leaves_service_healthy(tmp_path):
    """Impossible deadlines mixed with normal traffic must not leak jobs."""
    instances = instance_pool(count=4, n=6)

    async def scenario():
        with registered(make_sleepy_entry()):
            config = ServiceConfig(workers=2, max_pending=6, backpressure="wait")
            async with SolverService(config) as svc:

                async def impatient(client_id: int):
                    rng = random.Random(SEED + 1000 + client_id)
                    timeouts = 0
                    for _ in range(max(2, REQUESTS_PER_CLIENT // 3)):
                        inst = instances[rng.randrange(len(instances))]
                        try:
                            await svc.solve(
                                inst,
                                f"sleepy(seconds=0.3, token='{tmp_path / 'x.log'}')",
                                timeout=0.01,
                            )
                        except ServiceTimeoutError:
                            timeouts += 1
                    return timeouts

                async def patient(client_id: int):
                    rng = random.Random(SEED + 2000 + client_id)
                    for _ in range(max(2, REQUESTS_PER_CLIENT // 3)):
                        inst = instances[rng.randrange(len(instances))]
                        result = await svc.solve(inst, "lpt")
                        assert result.feasible
                    return True

                outcomes = await asyncio.gather(
                    *(impatient(i) for i in range(max(2, CLIENTS // 2))),
                    *(patient(i) for i in range(max(2, CLIENTS // 2))),
                )
                assert sum(o for o in outcomes if o is not True) > 0  # timeouts fired

                # Every abandoned job's worker must finish and be reclaimed.
                for _ in range(600):
                    stats = svc.stats()
                    if stats.pending == 0 and stats.in_flight == 0 and stats.queue_depth == 0:
                        break
                    await asyncio.sleep(0.05)
                stats = svc.stats()
                assert stats.pending == 0 and stats.in_flight == 0, f"zombies: {stats}"
                assert stats.lost == 0
                # Still serving normally after the churn.
                result = await svc.solve(instances[0], "sbo(delta=1.0)")
                assert result.feasible

    asyncio.run(scenario())


def test_sustained_reject_storm_is_accounted(tmp_path):
    """Reject-policy churn: every submission ends served or rejected."""
    instances = instance_pool(count=8, n=6)

    async def scenario():
        with registered(make_sleepy_entry()):
            config = ServiceConfig(workers=1, max_pending=2, backpressure="reject")
            async with SolverService(config) as svc:
                served = rejected = 0
                for _ in range(max(3, REQUESTS_PER_CLIENT // 3)):
                    tasks = [
                        asyncio.create_task(
                            svc.solve(inst, f"sleepy(seconds=0.05, token='{tmp_path / 'r.log'}')")
                        )
                        for inst in instances
                    ]
                    for outcome in await asyncio.gather(*tasks, return_exceptions=True):
                        if isinstance(outcome, Exception):
                            assert isinstance(outcome, ServiceOverloadedError)
                            rejected += 1
                        else:
                            served += 1
                stats = svc.stats()
                assert rejected > 0 and served > 0
                assert stats.rejected == rejected
                assert stats.lost == 0
                assert stats.pending == 0

    asyncio.run(scenario())
