"""Unit tests for repro.core.trio (Corollary 4, Lemma 6)."""

from __future__ import annotations

import math

import pytest

from repro.core.bounds import cmax_lower_bound, mmax_lower_bound, sum_ci_lower_bound
from repro.core.instance import DAGInstance
from repro.core.rls import rls_guarantee
from repro.core.trio import tri_objective_guarantee, tri_objective_schedule
from repro.core.validation import validate_schedule
from repro.workloads.independent import uniform_instance, workload_suite


class TestTriObjectiveGuarantee:
    def test_formula(self):
        c, m, s = tri_objective_guarantee(3.0, 4)
        assert m == 3.0
        assert s == pytest.approx(3.0)  # 2 + 1/(3-2)
        assert c == pytest.approx(rls_guarantee(3.0, 4)[0])

    def test_no_guarantee_at_or_below_two(self):
        _, _, s = tri_objective_guarantee(2.0, 4)
        assert math.isinf(s)

    def test_sum_ci_guarantee_decreases_with_delta(self):
        values = [tri_objective_guarantee(d, 4)[2] for d in (2.5, 3.0, 4.0, 10.0)]
        assert all(a >= b for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(2.125)


class TestTriObjectiveSchedule:
    def test_rejects_dags(self):
        dag = DAGInstance.from_lists(p=[1, 1], s=[1, 1], m=2, edges=[(0, 1)])
        with pytest.raises(ValueError, match="independent"):
            tri_objective_schedule(dag, delta=3.0)

    def test_accepts_edgeless_dag(self, small_instance):
        result = tri_objective_schedule(small_instance.as_dag(), delta=3.0)
        assert validate_schedule(result.schedule).ok

    def test_all_three_guarantees_hold(self):
        for seed in range(4):
            inst = uniform_instance(30, 4, seed=seed)
            for delta in (2.5, 3.0, 5.0):
                result = tri_objective_schedule(inst, delta=delta)
                g_c, g_m, g_s = result.guarantees
                assert result.mmax <= delta * mmax_lower_bound(inst) + 1e-9
                assert result.cmax <= g_c * cmax_lower_bound(inst) * (1 + 1e-9)
                assert result.sum_ci <= g_s * result.sum_ci_optimal * (1 + 1e-9)

    def test_sum_ci_reference_is_spt_value(self, medium_instance):
        result = tri_objective_schedule(medium_instance, delta=3.0)
        assert result.sum_ci_optimal == pytest.approx(sum_ci_lower_bound(medium_instance))

    def test_guarantees_property(self, medium_instance):
        result = tri_objective_schedule(medium_instance, delta=4.0)
        g = result.guarantees
        assert g[1] == 4.0
        assert g[2] == pytest.approx(2.5)

    def test_loose_delta_approaches_spt_quality(self):
        # With an effectively unlimited memory budget, the SPT-ordered RLS
        # behaves like SPT list scheduling, which is optimal on sum Ci.
        for seed in range(3):
            inst = uniform_instance(40, 4, seed=seed)
            result = tri_objective_schedule(inst, delta=1e6)
            assert result.sum_ci == pytest.approx(result.sum_ci_optimal, rel=1e-6)

    def test_across_workload_suite(self):
        for name, inst in workload_suite(40, 4, seed=9).items():
            result = tri_objective_schedule(inst, delta=3.0)
            assert validate_schedule(result.schedule).ok, name
            assert result.sum_ci <= 3.0 * result.sum_ci_optimal * (1 + 1e-9), name
