"""Unit tests for repro.core.impossibility (Section 4)."""

from __future__ import annotations


import pytest

from repro.algorithms.exact import exact_cmax, exact_mmax, pareto_front_exact
from repro.core.impossibility import (
    figure3_series,
    impossibility_domain,
    instance_lemma1,
    instance_lemma2,
    instance_lemma3,
    is_ratio_impossible,
    lemma1_optima,
    lemma1_pareto_values,
    lemma2_frontier,
    lemma2_optima,
    lemma2_pareto_values,
    lemma3_optima,
    lemma3_pareto_values,
)


class TestLemma1:
    def test_instance_shape(self):
        inst = instance_lemma1(0.01)
        assert inst.n == 3 and inst.m == 2
        assert inst.tasks.max_p == 1.0

    def test_bad_epsilon(self):
        with pytest.raises(ValueError):
            instance_lemma1(0.0)
        with pytest.raises(ValueError):
            instance_lemma1(0.6)

    def test_optima_match_exact_solvers(self):
        eps = 0.01
        inst = instance_lemma1(eps)
        c_star, m_star = lemma1_optima(eps)
        assert exact_cmax(inst) == pytest.approx(c_star)
        assert exact_mmax(inst) == pytest.approx(m_star)

    def test_pareto_front_matches_closed_form(self):
        eps = 0.01
        inst = instance_lemma1(eps)
        front = sorted(pareto_front_exact(inst).values())
        expected = sorted(lemma1_pareto_values(eps))
        assert len(front) == 2
        for (a, b), (c, d) in zip(front, expected):
            assert a == pytest.approx(c) and b == pytest.approx(d)


class TestLemma2:
    def test_instance_shape(self):
        inst = instance_lemma2(3, 2, 0.01)
        assert inst.n == 2 * 3 + 3 - 1
        assert inst.m == 3

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            instance_lemma2(1, 2)
        with pytest.raises(ValueError):
            instance_lemma2(2, 1)
        with pytest.raises(ValueError):
            instance_lemma2(2, 2, epsilon=1.5)

    def test_optima_match_exact_solvers(self):
        eps = 0.01
        inst = instance_lemma2(2, 2, eps)
        c_star, m_star = lemma2_optima(2, 2, eps)
        assert exact_cmax(inst) == pytest.approx(c_star)
        assert exact_mmax(inst) == pytest.approx(m_star)

    def test_frontier_formula(self):
        points = lemma2_frontier(3, 4)
        assert len(points) == 5
        assert points[0] == (1.0, 1.0 + 2.0)
        assert points[-1] == (1.0 + 4 / 12, 1.0)

    def test_frontier_monotone(self):
        points = lemma2_frontier(4, 8)
        for (c1, m1), (c2, m2) in zip(points, points[1:]):
            assert c1 < c2 and m1 > m2

    def test_pareto_values_match_exact_enumeration(self):
        eps = 1e-3
        inst = instance_lemma2(2, 2, eps)
        measured = sorted(pareto_front_exact(inst).values())
        expected = sorted(lemma2_pareto_values(2, 2, eps))
        assert len(measured) == len(expected)
        for (a, b), (c, d) in zip(measured, expected):
            assert a == pytest.approx(c) and b == pytest.approx(d)


class TestLemma3:
    def test_instance_shape(self):
        inst = instance_lemma3(0.25)
        assert inst.n == 3 and inst.m == 2

    def test_optima(self):
        inst = instance_lemma3(0.25)
        assert exact_cmax(inst) == pytest.approx(1.0)
        assert exact_mmax(inst) == pytest.approx(1.0)
        assert lemma3_optima() == (1.0, 1.0)

    def test_pareto_front_matches_closed_form(self):
        eps = 0.3
        inst = instance_lemma3(eps)
        measured = sorted(pareto_front_exact(inst).values())
        expected = sorted(lemma3_pareto_values(eps))
        assert len(measured) == 3
        for (a, b), (c, d) in zip(measured, expected):
            assert a == pytest.approx(c) and b == pytest.approx(d)

    def test_bad_epsilon(self):
        with pytest.raises(ValueError):
            instance_lemma3(0.5)


class TestImpossibilityDomain:
    def test_known_impossible_points(self):
        # Better than (3/2, 3/2) is impossible on any m >= 2.
        assert is_ratio_impossible(1.4, 1.4, m=2)
        assert is_ratio_impossible(1.0, 1.9, m=2)
        assert is_ratio_impossible(1.9, 1.0, m=2)

    def test_known_achievable_points(self):
        # SBO at delta = 1 achieves (2+eps, 2+eps): not impossible.
        assert not is_ratio_impossible(2.05, 2.05, m=4)
        # Very loose ratios are clearly possible.
        assert not is_ratio_impossible(3.0, 3.0, m=4)

    def test_symmetry(self):
        assert is_ratio_impossible(1.0, 1.5, m=3) == is_ratio_impossible(1.5, 1.0, m=3)

    def test_single_processor_never_impossible(self):
        assert not is_ratio_impossible(1.0, 1.0, m=1)

    def test_more_processors_exclude_more(self):
        # (1.05, 2.5) beats a Lemma 2 point when m is large enough but not for m=2.
        assert not is_ratio_impossible(1.05, 2.5, m=2, k_max=32)
        assert is_ratio_impossible(1.05, 2.5, m=4, k_max=32)

    def test_domain_points_sorted_and_nondominated(self):
        domain = impossibility_domain(3, k=16)
        for (c1, m1), (c2, m2) in zip(domain, domain[1:]):
            assert c1 <= c2
        for p in domain:
            for q in domain:
                if p != q:
                    assert not (q[0] <= p[0] and q[1] <= p[1])


class TestFigure3Series:
    def test_structure(self):
        series = figure3_series(m_values=(2, 3), k=8, deltas=(0.5, 1.0, 2.0))
        assert set(series["staircases"].keys()) == {2, 3}
        assert series["lemma3_point"] == (1.5, 1.5)
        assert (1.0, 2.0) in series["lemma1_points"]
        assert len(series["sbo_curve"]) == 3
        assert series["sbo_curve"][1] == (2.0, 2.0)

    def test_curve_outside_domain(self):
        series = figure3_series(m_values=(2, 3, 4), k=16, deltas=tuple(0.25 * i for i in range(1, 20)))
        for rc, rm in series["sbo_curve"]:
            assert not is_ratio_impossible(rc - 1e-9, rm - 1e-9, m=4, k_max=16)
