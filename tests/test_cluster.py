"""Tests for the sharded cluster layer (repro.cluster).

Coverage map:

* **routing** — content-addressed request keys (field-order and id
  independent), rendezvous ownership (deterministic, minimal remapping
  when the shard set changes);
* **policy** — the autoscaler hysteresis state machine, pure;
* **router over inproc shards** — solve parity with direct ``solve()``,
  cluster-wide coalescing of identical requests, error relaying,
  session pinning/isolation, bit-identical cross-shard handoff
  (property-tested over schedulers x seeds, with and without a
  windowed-ack buffer in flight), shard-kill recovery mid-batch with no
  lost or duplicated results, graceful drain on scale-down, autoscaler
  scale-up/down/supervision, merged stats;
* **process shards end-to-end** — the acceptance scenario: a real
  4-shard ``repro serve`` subprocess cluster behind a TCP front end
  under mixed solve + streaming-session load, bit-identical to
  single-process results, surviving one shard kill and one session
  handoff with a balanced ledger.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster import (
    Autoscaler,
    AutoscalerPolicy,
    ClusterConfig,
    ClusterError,
    ClusterRouter,
    request_key,
    rank,
    route,
)
from repro.core.instance import Instance
from repro.core.task import Task
from repro.online import create_online, stochastic_trace
from repro.service.client import ServiceClient
from repro.service.protocol import solve_request
from repro.service.server import serve_tcp
from repro.solvers import LRUCache, solve
from repro.workloads.independent import workload_suite

from _service_helpers import count_executions, make_sleepy_entry, registered

pytestmark = pytest.mark.cluster


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def inst() -> Instance:
    return Instance.from_lists(p=[4, 3, 2, 2, 1, 6, 5], s=[1, 5, 2, 4, 3, 2, 6], m=3)


def inproc_config(**overrides) -> ClusterConfig:
    defaults = dict(shards=2, min_shards=1, max_shards=4, backend="inproc",
                    workers=1, cache=LRUCache(), session_ttl=None)
    defaults.update(overrides)
    return ClusterConfig(**defaults)


# --------------------------------------------------------------------------- #
# routing
# --------------------------------------------------------------------------- #
class TestRouting:
    def test_request_key_ignores_id_and_field_order(self, inst):
        a = solve_request(inst, "sbo(delta=1.0)", request_id=1)
        b = {"spec": "sbo(delta=1.0)", "instance": inst.to_dict(), "op": "solve",
             "id": "zz"}
        assert request_key(a) == request_key(b)

    def test_request_key_separates_content(self, inst):
        base = solve_request(inst, "sbo(delta=1.0)")
        other_spec = solve_request(inst, "sbo(delta=2.0)")
        other_inst = solve_request(
            Instance.from_lists(p=[1, 2], s=[1, 2], m=2), "sbo(delta=1.0)"
        )
        assert request_key(base) != request_key(other_spec)
        assert request_key(base) != request_key(other_inst)
        params = solve_request(inst, "sbo(delta=1.0)", params={"delta": 2.0})
        assert request_key(base) != request_key(params)

    def test_route_deterministic_and_total(self):
        shards = [f"shard-{i}" for i in range(1, 6)]
        keys = [f"key-{i}" for i in range(200)]
        first = [route(k, shards) for k in keys]
        assert first == [route(k, shards) for k in keys]
        assert all(owner in shards for owner in first)
        # Every shard owns a reasonable slice of the keyspace.
        counts = {s: first.count(s) for s in shards}
        assert all(counts[s] > 0 for s in shards), counts

    def test_route_empty_and_rank_order(self):
        assert route("key", []) is None
        shards = ["a", "b", "c"]
        order = rank("key", shards)
        assert sorted(order) == sorted(shards)
        assert order[0] == route("key", shards)

    def test_minimal_remapping_on_scale(self):
        """Removing one shard only remaps the keys that shard owned."""
        shards = [f"shard-{i}" for i in range(1, 5)]
        keys = [f"key-{i}" for i in range(300)]
        before = {k: route(k, shards) for k in keys}
        removed = "shard-2"
        survivors = [s for s in shards if s != removed]
        after = {k: route(k, survivors) for k in keys}
        for key in keys:
            if before[key] != removed:
                assert after[key] == before[key], key
        # And adding it back restores the original ownership exactly.
        assert {k: route(k, shards) for k in keys} == before


# --------------------------------------------------------------------------- #
# config + policy
# --------------------------------------------------------------------------- #
class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="min_shards"):
            ClusterConfig(min_shards=0)
        with pytest.raises(ValueError, match="max_shards"):
            ClusterConfig(min_shards=3, max_shards=2)
        with pytest.raises(ValueError, match="shards"):
            ClusterConfig(shards=9, max_shards=4)
        with pytest.raises(ValueError, match="backend"):
            ClusterConfig(backend="thread")
        with pytest.raises(ValueError, match="scale_up_at"):
            ClusterConfig(scale_up_at=1.0, scale_down_at=1.0)
        with pytest.raises(ValueError, match="hysteresis"):
            ClusterConfig(hysteresis=0)

    def test_shard_service_config_carries_knobs(self):
        config = ClusterConfig(workers=3, max_pending=7, backpressure="reject",
                               auto_timeouts=True, session_ttl=None)
        svc_config = config.shard_service_config()
        assert svc_config.workers == 3
        assert svc_config.max_pending == 7
        assert svc_config.backpressure == "reject"
        assert svc_config.auto_timeouts is True
        assert svc_config.session_ttl is None

    def test_process_backend_rejects_object_cache(self):
        config = ClusterConfig(backend="process", cache=LRUCache())
        with pytest.raises(TypeError, match="directory"):
            run(ClusterRouter(config).start())


class TestAutoscalerPolicy:
    def test_hysteresis_sequences(self):
        policy = AutoscalerPolicy(scale_up_at=8, scale_down_at=1, hysteresis=2)
        readings = (9, 0.5, 9, 9, 9, 9, 4, 0.5, 0.5)
        verdicts = [policy.observe(x) for x in readings]
        assert verdicts == [None, None, None, "up", None, "up", None, None, "down"]

    def test_mid_band_resets_streaks(self):
        policy = AutoscalerPolicy(scale_up_at=8, scale_down_at=1, hysteresis=2)
        assert policy.observe(9) is None
        assert policy.observe(5) is None  # mid-band: reset
        assert policy.observe(9) is None
        assert policy.observe(9) == "up"

    def test_hysteresis_one_acts_immediately(self):
        policy = AutoscalerPolicy(scale_up_at=2, scale_down_at=0.5, hysteresis=1)
        assert policy.observe(3) == "up"
        assert policy.observe(0) == "down"

    def test_validation(self):
        with pytest.raises(ValueError):
            AutoscalerPolicy(scale_up_at=1, scale_down_at=1, hysteresis=1)
        with pytest.raises(ValueError):
            AutoscalerPolicy(scale_up_at=2, scale_down_at=1, hysteresis=0)


# --------------------------------------------------------------------------- #
# the router over inproc shards
# --------------------------------------------------------------------------- #
class TestClusterSolve:
    SPECS = ["lpt", "multifit", "sbo(delta=1.0)", "rls(delta=2.5)"]

    def test_parity_across_shard_counts(self):
        instances = list(workload_suite(30, 3, seed=0).values())[:3]

        async def scenario(shards: int):
            async with ClusterRouter(inproc_config(shards=shards)) as router:
                results = {}
                for i, instance in enumerate(instances):
                    for spec in self.SPECS:
                        results[(i, spec)] = await router.solve(instance, spec)
                stats = await router.stats()
            return results, stats

        one, stats_one = run(scenario(1))
        three, stats_three = run(scenario(3))
        for (i, spec), payload in one.items():
            direct = solve(instances[i], spec, cache=False)
            for label, got in (("1-shard", payload), ("3-shard", three[(i, spec)])):
                assert got["cmax"] == direct.cmax, (label, spec)
                assert got["mmax"] == direct.mmax
                assert got["guarantee"] == list(direct.guarantee)
                assert got["spec"] == direct.spec
                assert dict(map(tuple, got["assignment"])) == direct.schedule.assignment
        assert stats_one.lost == 0 and stats_three.lost == 0

    def test_identical_requests_share_one_shard_and_execution(self, tmp_path, inst):
        """Cluster-wide coalescing: N racing identical requests, one compute."""
        token = tmp_path / "token"

        async def scenario():
            with registered(make_sleepy_entry()):
                async with ClusterRouter(inproc_config(shards=3, cache=False)) as router:
                    spec = f"sleepy(seconds=0.3, token='{token}')"
                    payloads = await asyncio.gather(
                        *(router.solve(inst, spec) for _ in range(8))
                    )
                    stats = await router.stats()
            return payloads, stats

        payloads, stats = run(scenario())
        assert count_executions(token) == 1
        assert stats.totals["coalesced"] == 7
        assert len({p["cmax"] for p in payloads}) == 1
        assert stats.lost == 0

    def test_error_responses_relay_remote_type(self, inst):
        async def scenario():
            async with ClusterRouter(inproc_config()) as router:
                response = await router.handle(
                    {"op": "solve", "instance": inst.to_dict(), "spec": "nope()",
                     "id": 7}
                )
                with pytest.raises(ClusterError, match="SpecError"):
                    await router.solve(inst, "nope()")
            return response

        response = run(scenario())
        assert response["id"] == 7 and not response["ok"]
        assert response["error"]["type"] == "SpecError"

    def test_solve_retries_on_killed_shard(self, tmp_path, inst):
        """Kill the owning shard mid-execution: retried elsewhere, one response."""
        token = tmp_path / "token"

        async def scenario():
            with registered(make_sleepy_entry()):
                config = inproc_config(shards=2, cache=False)
                async with ClusterRouter(config) as router:
                    # Warm both worker pools so the sleep dominates timing.
                    for name in router.shard_names():
                        await router.shard(name).request(
                            {"op": "solve", "instance": inst.to_dict(), "spec": "lpt"}
                        )
                    spec = f"sleepy(seconds=1.0, token='{token}')"
                    victim = route(
                        request_key(solve_request(inst, spec)), router.shard_names()
                    )
                    job = asyncio.create_task(router.solve(inst, spec))
                    await asyncio.sleep(0.3)  # the job is executing on ``victim``
                    await router.shard(victim).kill()
                    payload = await job
                    stats = await router.stats()
            return payload, stats, victim

        payload, stats, victim = run(scenario())
        direct = solve(inst, "lpt", cache=False)  # sleepy schedules via LPT
        assert payload["cmax"] == direct.schedule.cmax
        assert dict(map(tuple, payload["assignment"])) == direct.schedule.assignment
        assert stats.router["retried"] == 1
        assert stats.router["shards_lost"] == 1
        assert victim not in stats.shards
        assert stats.lost == 0  # the surviving shard's ledger balances

    def test_kill_mid_batch_no_lost_no_duplicates(self, tmp_path):
        """The satellite scenario: one shard dies under a concurrent batch."""
        instances = [
            Instance.from_lists(
                p=[float(1 + j + i) for j in range(6)],
                s=[float(1 + (j * 7 + i) % 5) for j in range(6)],
                m=3,
            )
            for i in range(8)
        ]
        cache = LRUCache()

        async def scenario():
            with registered(make_sleepy_entry()):
                config = inproc_config(shards=2, cache=cache)
                async with ClusterRouter(config) as router:
                    for name in router.shard_names():
                        await router.shard(name).request(
                            {"op": "solve", "instance": instances[0].to_dict(),
                             "spec": "lpt"}
                        )
                    specs = [
                        f"sleepy(seconds=0.4, token='{tmp_path / f'tok{i}'}')"
                        for i in range(len(instances))
                    ]
                    jobs = [
                        asyncio.create_task(router.solve(instance, spec))
                        for instance, spec in zip(instances, specs)
                    ]
                    await asyncio.sleep(0.2)
                    victim = router.shard_names()[0]
                    await router.shard(victim).kill()
                    payloads = await asyncio.gather(*jobs)
                    stats = await router.stats()
            return payloads, stats

        payloads, stats = run(scenario())
        # Exactly one response per request, bit-identical to direct solve.
        assert len(payloads) == len(instances)
        for instance, payload in zip(instances, payloads):
            direct = solve(instance, "lpt", cache=False)
            assert payload["cmax"] == direct.schedule.cmax
            assert dict(map(tuple, payload["assignment"])) == direct.schedule.assignment
        assert stats.lost == 0
        assert stats.router["shards_lost"] == 1
        # Cache-consistent: every shard's own ledger balances too — nothing
        # was double-answered or silently dropped by the retry.
        for shard_stats in stats.shards.values():
            assert shard_stats["lost"] == 0


class TestClusterSessions:
    def test_pinning_isolation_and_close(self):
        trace = stochastic_trace(n=24, m=3, seed=3)

        async def scenario():
            async with ClusterRouter(inproc_config(shards=2)) as router:
                a = await router.handle({"op": "session_open", "spec": "online_greedy",
                                         "m": 3})
                b = await router.handle({"op": "session_open",
                                         "spec": "online_sbo(delta=1.0)", "m": 3})
                assert a["ok"] and b["ok"]
                # Least-loaded placement spreads the two sessions apart.
                assert a["shard"] != b["shard"]
                for event in trace:
                    ra = await router.handle({
                        "op": "session_submit", "session": a["session"],
                        "task": {"id": event.task.id, "p": event.task.p,
                                 "s": event.task.s}})
                    rb = await router.handle({
                        "op": "session_submit", "session": b["session"],
                        "task": {"id": event.task.id, "p": event.task.p,
                                 "s": event.task.s}})
                    assert ra["ok"] and rb["ok"]
                result_a = await router.handle({"op": "session_result",
                                                "session": a["session"]})
                closed = await router.handle({"op": "session_close",
                                              "session": a["session"]})
                after = await router.handle({"op": "session_submit",
                                             "session": a["session"],
                                             "task": {"id": "x", "p": 1, "s": 1}})
                stats = await router.stats()
            return result_a, closed, after, stats

        result_a, closed, after, stats = run(scenario())
        local = create_online("online_greedy", m=3)
        for event in trace:
            local.submit(event.task)
        expected = local.finalize()
        assert result_a["result"]["cmax"] == expected.cmax
        assert dict(map(tuple, result_a["result"]["assignment"])) \
            == expected.schedule.assignment
        assert closed["ok"] and closed["closed"]
        assert not after["ok"] and "unknown session" in after["error"]["message"]
        assert stats.router["sessions_pinned"] == 1  # b still open
        assert stats.lost == 0

    def test_unknown_session_and_lost_shard_session(self):
        # journal off: the pre-journal contract — a crash loses the session,
        # but now with the stable ``session_lost`` error code.
        async def scenario():
            async with ClusterRouter(
                inproc_config(shards=2, session_journal=False)
            ) as router:
                unknown = await router.handle({"op": "session_result",
                                               "session": "csess-99"})
                opened = await router.handle({"op": "session_open",
                                              "spec": "online_greedy", "m": 2})
                await router.shard(opened["shard"]).kill()
                lost = await router.handle({"op": "session_submit",
                                            "session": opened["session"],
                                            "task": {"id": 0, "p": 1, "s": 1}})
                stats = await router.stats()
            return unknown, lost, stats

        unknown, lost, stats = run(scenario())
        assert not unknown["ok"] and "unknown session" in unknown["error"]["message"]
        assert not lost["ok"] and "lost with" in lost["error"]["message"]
        assert lost["error"]["type"] == "SessionLostError"
        assert lost["error"]["code"] == "session_lost"
        assert stats.router["sessions_lost"] == 1
        assert stats.router["sessions_replayed"] == 0

    @pytest.mark.parametrize("spec", [
        "online_greedy",
        "online_greedy(objective=memory)",
        "online_sbo(delta=0.5)",
        "online_sbo(delta=2.0)",
    ])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_handoff_bit_identical_placements(self, spec, seed):
        """Property: handoff mid-stream never changes a single placement."""
        trace = stochastic_trace(n=40, m=4, seed=seed)
        events = list(trace)
        cut = len(events) // 2

        async def scenario():
            async with ClusterRouter(inproc_config(shards=2)) as router:
                opened = await router.handle({"op": "session_open", "spec": spec,
                                              "m": 4})
                placements = []
                for event in events[:cut]:
                    ack = await router.handle({
                        "op": "session_submit", "session": opened["session"],
                        "task": {"id": event.task.id, "p": event.task.p,
                                 "s": event.task.s}})
                    placements.extend(map(tuple, ack["placements"]))
                outcome = await router.session_handoff(opened["session"])
                assert outcome["ok"], outcome
                assert outcome["from"] == opened["shard"]
                assert outcome["shard"] != opened["shard"]
                assert outcome["n"] == cut
                for event in events[cut:]:
                    ack = await router.handle({
                        "op": "session_submit", "session": opened["session"],
                        "task": {"id": event.task.id, "p": event.task.p,
                                 "s": event.task.s}})
                    placements.extend(map(tuple, ack["placements"]))
                result = await router.handle({"op": "session_result",
                                              "session": opened["session"]})
                stats = await router.stats()
            return placements, result, stats

        placements, result, stats = run(scenario())
        local = create_online(spec, m=4)
        expected_placements = [(e.task.id, local.submit(e.task)) for e in events]
        expected = local.finalize()
        assert placements == expected_placements
        assert result["result"]["cmax"] == expected.cmax
        assert result["result"]["mmax"] == expected.mmax
        assert result["result"]["guarantee"] == list(expected.guarantee)
        assert dict(map(tuple, result["result"]["assignment"])) \
            == expected.schedule.assignment
        assert stats.router["handoffs"] == 1
        assert stats.totals["sessions_restored"] == 1

    def test_handoff_carries_windowed_ack_buffer(self):
        """Unacknowledged placements migrate with the session."""
        tasks = [Task(id=i, p=float(i % 5 + 1), s=float(i % 3 + 1)) for i in range(12)]

        async def scenario():
            async with ClusterRouter(inproc_config(shards=2)) as router:
                opened = await router.handle({"op": "session_open",
                                              "spec": "online_greedy", "m": 3})
                sid = opened["session"]
                for task in tasks[:5]:
                    ack = await router.handle({
                        "op": "session_submit", "session": sid, "ack": False,
                        "task": {"id": task.id, "p": task.p, "s": task.s}})
                    assert ack is None
                outcome = await router.session_handoff(sid)
                assert outcome["ok"], outcome
                final = await router.handle({
                    "op": "session_submit", "session": sid,
                    "task": {"id": tasks[5].id, "p": tasks[5].p, "s": tasks[5].s}})
            return final

        final = run(scenario())
        assert final["ok"]
        local = create_online("online_greedy", m=3)
        expected = [(t.id, local.submit(t)) for t in tasks[:6]]
        assert [tuple(p) for p in final["placements"]] == expected

    def test_handoff_to_explicit_and_missing_target(self):
        async def scenario():
            async with ClusterRouter(inproc_config(shards=2)) as router:
                opened = await router.handle({"op": "session_open",
                                              "spec": "online_greedy", "m": 2})
                other = next(n for n in router.shard_names()
                             if n != opened["shard"])
                ok = await router.handle({"op": "session_handoff",
                                          "session": opened["session"],
                                          "target": other})
                bad = await router.handle({"op": "session_handoff",
                                           "session": opened["session"],
                                           "target": "shard-404"})
                unknown = await router.handle({"op": "session_handoff",
                                               "session": "csess-404"})
            return ok, bad, unknown

        ok, bad, unknown = run(scenario())
        assert ok["ok"] and ok["shard"] != ok["from"]
        assert not bad["ok"] and "NoShardAvailable" in bad["error"]["type"]
        assert not unknown["ok"]


class TestScaleDownDrain:
    def test_remove_shard_migrates_sessions_and_finishes_jobs(self, tmp_path):
        token = tmp_path / "token"
        inst = Instance.from_lists(p=[4, 3, 2, 2, 1], s=[1, 5, 2, 4, 3], m=2)

        async def scenario():
            with registered(make_sleepy_entry()):
                async with ClusterRouter(inproc_config(shards=2, cache=False)) as router:
                    for name in router.shard_names():
                        await router.shard(name).request(
                            {"op": "solve", "instance": inst.to_dict(), "spec": "lpt"}
                        )
                    opened = await router.handle({"op": "session_open",
                                                  "spec": "online_greedy", "m": 2})
                    victim = opened["shard"]
                    for i in range(6):
                        await router.handle({
                            "op": "session_submit", "session": opened["session"],
                            "task": {"id": i, "p": float(i + 1), "s": 1.0}})
                    # Put an in-flight job on the victim so drain has work.
                    spec = f"sleepy(seconds=0.5, token='{token}')"
                    request = solve_request(inst, spec)
                    owner = route(request_key(request), router.shard_names())
                    job = None
                    if owner == victim:
                        job = asyncio.create_task(router.solve(inst, spec))
                        await asyncio.sleep(0.1)
                    await router.remove_shard(victim)
                    if job is not None:
                        await job
                    # The session survived the retirement, on another shard.
                    ack = await router.handle({
                        "op": "session_submit", "session": opened["session"],
                        "task": {"id": 6, "p": 7.0, "s": 1.0}})
                    stats = await router.stats()
            return victim, ack, stats

        victim, ack, stats = run(scenario())
        assert ack["ok"] and ack["shard"] != victim
        assert ack["n"] == 7
        assert stats.router["shards_retired"] == 1
        assert stats.router["handoffs"] == 1
        assert stats.lost == 0

    def test_cannot_retire_last_shard(self):
        async def scenario():
            async with ClusterRouter(inproc_config(shards=1)) as router:
                with pytest.raises(ClusterError, match="last routable"):
                    await router.remove_shard(router.shard_names()[0])

        run(scenario())


class TestAutoscaler:
    def test_supervision_replaces_dead_shard(self):
        async def scenario():
            config = inproc_config(shards=2, min_shards=2, max_shards=4)
            async with ClusterRouter(config) as router:
                scaler = Autoscaler(router)
                victim = router.shard_names()[0]
                await router.shard(victim).kill()
                action = await scaler.tick()
                names = router.shard_names()
            return action, victim, names

        action, victim, names = run(scenario())
        assert action == "replace"
        assert len(names) == 2 and victim not in names

    def test_scale_up_under_queue_pressure_and_down_when_idle(self, tmp_path):
        async def scenario():
            with registered(make_sleepy_entry()):
                config = inproc_config(
                    shards=2, min_shards=2, max_shards=3, cache=False,
                    scale_up_at=1.0, scale_down_at=0.25, hysteresis=1,
                )
                async with ClusterRouter(config) as router:
                    scaler = Autoscaler(router)
                    inst = Instance.from_lists(p=[2, 1], s=[1, 1], m=1)
                    for name in router.shard_names():
                        await router.shard(name).request(
                            {"op": "solve", "instance": inst.to_dict(), "spec": "lpt"}
                        )
                    jobs = [
                        asyncio.create_task(router.solve(
                            inst,
                            f"sleepy(seconds=0.8, token='{tmp_path / f't{i}'}')",
                        ))
                        for i in range(8)
                    ]
                    await asyncio.sleep(0.2)  # queues build behind 1 worker/shard
                    up = await scaler.tick()
                    await asyncio.gather(*jobs)
                    down = None
                    for _ in range(4):  # idle now: average queue depth is 0
                        down = await scaler.tick()
                        if down == "down":
                            break
                    names = router.shard_names()
                    stats = await router.stats()
            return up, down, names, stats

        up, down, names, stats = run(scenario())
        assert up == "up"
        assert down == "down"
        assert len(names) == 2  # back at min_shards
        assert stats.router["shards_started"] == 3
        assert stats.router["shards_retired"] == 1
        assert stats.lost == 0

    def test_pick_victim_prefers_unpinned_newest(self):
        async def scenario():
            config = inproc_config(shards=3, min_shards=1, max_shards=4)
            async with ClusterRouter(config) as router:
                scaler = Autoscaler(router)
                opened = await router.handle({"op": "session_open",
                                              "spec": "online_greedy", "m": 2})
                victim = scaler.pick_victim()
                assert victim != opened["shard"]
                # Among unpinned shards, the newest goes first.
                unpinned = [n for n in router.shard_names()
                            if n != opened["shard"]]
                assert victim == max(
                    unpinned, key=lambda n: int(n.rsplit("-", 1)[-1])
                )

        run(scenario())


class TestClusterStatsMerge:
    def test_families_and_totals_merge(self, inst):
        async def scenario():
            async with ClusterRouter(inproc_config(shards=2)) as router:
                for spec in ("lpt", "multifit", "sbo(delta=1.0)", "sbo(delta=2.0)"):
                    await router.solve(inst, spec)
                stats = await router.stats()
            return stats

        stats = run(scenario())
        assert stats.totals["submitted"] == 4
        assert stats.lost == 0
        assert set(stats.families) >= {"lpt", "multifit", "sbo"}
        assert stats.families["sbo"]["count"] == 2
        assert stats.families["sbo"]["p50"] > 0
        payload = stats.to_dict()
        assert payload["cluster"] is True
        assert payload["router"]["routed"] == 4


# --------------------------------------------------------------------------- #
# acceptance: real subprocess shards behind a TCP front end
# --------------------------------------------------------------------------- #
class TestProcessClusterEndToEnd:
    SPECS = ["lpt", "multifit", "sbo(delta=1.0)", "rls(delta=2.5)", "trio(delta=2.5)"]

    def test_four_shard_mixed_load_kill_and_handoff(self, tmp_path):
        instances = list(workload_suite(30, 3, seed=0).values())[:4]
        trace = stochastic_trace(n=40, m=4, seed=0)
        tasks = [event.task for event in trace]

        async def scenario():
            config = ClusterConfig(
                shards=4, min_shards=1, max_shards=4, backend="process",
                workers=1, cache=str(tmp_path / "cache"),
            )
            async with ClusterRouter(config) as router:
                shutdown = asyncio.Event()
                server = await serve_tcp(None, port=0, shutdown=shutdown,
                                         handler=router.handle)
                port = server.sockets[0].getsockname()[1]
                client = await ServiceClient.connect(port=port)
                try:
                    # Streaming session with windowed acks, opened first so a
                    # pinned shard exists before the kill.
                    session = await client.session_open("online_sbo(delta=1.0)", m=4)
                    placements = await session.submit_windowed(tasks[:20], ack_every=8)

                    # Mixed solve load.
                    solves = await asyncio.gather(*(
                        client.solve(instances[i % len(instances)],
                                     self.SPECS[i % len(self.SPECS)])
                        for i in range(15)
                    ))

                    # Kill one shard that hosts no session, mid-life.
                    pinned = {pin for pin, _ in router._sessions.values()}
                    victim = next(n for n in router.shard_names()
                                  if n not in pinned)
                    await router.shard(victim).kill()

                    # Handoff the session and keep streaming.
                    handoff = await client.request(
                        {"op": "session_handoff", "session": session.id}
                    )
                    placements += await session.submit_windowed(
                        tasks[20:], ack_every=8
                    )
                    wire_result = await session.result()
                    await session.close()

                    # More solves after the kill — the cluster keeps serving.
                    solves += await asyncio.gather(*(
                        client.solve(instances[i % len(instances)],
                                     self.SPECS[(i + 2) % len(self.SPECS)])
                        for i in range(10)
                    ))
                    stats = await client.stats()
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()
            return placements, wire_result, handoff, solves, stats, victim

        (placements, wire_result, handoff, solves,
         stats, victim) = run(scenario())

        # Session: bit-identical to the in-process scheduler, through a
        # subprocess cluster, a kill, and a handoff.
        local = create_online("online_sbo(delta=1.0)", m=4)
        expected_placements = [(t.id, local.submit(t)) for t in tasks]
        expected = local.finalize()
        assert [tuple(p) for p in placements] == expected_placements
        assert handoff["ok"] and handoff["shard"] != handoff["from"]
        assert wire_result["cmax"] == expected.cmax
        assert wire_result["mmax"] == expected.mmax
        assert wire_result["guarantee"] == list(expected.guarantee)
        assert wire_result["spec"] == expected.spec
        assert dict(map(tuple, wire_result["assignment"])) \
            == expected.schedule.assignment

        # Solves: every response bit-identical to direct solve().
        for i, payload in enumerate(solves):
            spec = self.SPECS[i % len(self.SPECS)] if i < 15 \
                else self.SPECS[(i - 15 + 2) % len(self.SPECS)]
            direct = solve(instances[i % len(instances)] if i < 15
                           else instances[(i - 15) % len(instances)],
                           spec, cache=False)
            assert payload["cmax"] == direct.cmax, (i, spec)
            assert payload["mmax"] == direct.mmax
            assert payload["guarantee"] == list(direct.guarantee)
            assert dict(map(tuple, payload["assignment"])) \
                == direct.schedule.assignment

        # Ledgers: nothing lost anywhere, the kill and handoff are recorded.
        assert stats["cluster"] is True
        assert stats["totals"]["lost"] == 0
        assert stats["router"]["shards_lost"] == 1
        assert stats["router"]["handoffs"] == 1
        assert victim not in stats["shards"]


# --------------------------------------------------------------------------- #
# the `repro cluster` CLI
# --------------------------------------------------------------------------- #
class TestClusterCLI:
    def test_invalid_config_rejected(self, capsys):
        from repro.cli import main

        assert main(["cluster", "--shards", "0"]) == 2
        assert "shards" in capsys.readouterr().err
        assert main(["cluster", "--min-shards", "3", "--max-shards", "2"]) == 2
        assert "max_shards" in capsys.readouterr().err

    def test_live_cluster_cli_serves_and_shuts_down(self, inst):
        import re
        import subprocess
        import sys
        from pathlib import Path

        src = Path(__file__).resolve().parent.parent / "src"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "cluster", "--port", "0",
             "--shards", "2", "--backend", "inproc", "--no-autoscale"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        try:
            banner = proc.stderr.readline().decode()
            match = re.search(r"listening on 127\.0\.0\.1:(\d+)", banner)
            assert match, f"no listening banner in {banner!r}"
            assert "2 inproc shards" in banner
            port = int(match.group(1))

            async def scenario():
                client = await ServiceClient.connect(port=port)
                try:
                    pong = await client.ping()
                    payload = await client.solve(inst, "sbo(delta=1.0)")
                    stats = await client.stats()
                    await client.shutdown()
                finally:
                    await client.close()
                return pong, payload, stats

            pong, payload, stats = run(scenario())
            assert pong["cluster"] is True and pong["shards"] == 2
            direct = solve(inst, "sbo(delta=1.0)", cache=False)
            assert payload["cmax"] == direct.cmax
            assert dict(map(tuple, payload["assignment"])) \
                == direct.schedule.assignment
            assert stats["cluster"] is True and stats["totals"]["lost"] == 0
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:  # pragma: no cover - only on test failure
                proc.kill()
                proc.wait(timeout=10)


class TestReviewRegressions:
    """Fixes from the PR review: mid-request shard loss, noack contract,
    and the autoscaler's draining-shard average."""

    def test_session_op_on_shard_dying_mid_request_reports_loss(self):
        # journal off: a mid-request crash loses the session with the typed
        # ``session_lost`` code, and later ops on the id stay typed too
        # (tombstone) instead of degrading to "unknown session".
        async def scenario():
            async with ClusterRouter(
                inproc_config(shards=2, session_journal=False)
            ) as router:
                opened = await router.handle({"op": "session_open",
                                              "spec": "online_greedy", "m": 2})
                sid = opened["session"]
                shard = router.shard(opened["shard"])

                async def dying_request(payload):
                    raise ConnectionError("shard fell over mid-request")

                shard.request = dying_request  # the op is already in flight
                lost = await router.handle({
                    "op": "session_submit", "session": sid,
                    "task": {"id": 0, "p": 1.0, "s": 1.0}})
                again = await router.handle({
                    "op": "session_submit", "session": sid,
                    "task": {"id": 1, "p": 1.0, "s": 1.0}})
                counters = router.router_counters()
            return lost, again, counters, opened["shard"]

        lost, again, counters, victim = run(scenario())
        assert not lost["ok"]
        assert "lost with shard" in lost["error"]["message"]
        assert lost["error"]["type"] == "SessionLostError"
        assert lost["error"]["code"] == "session_lost"
        assert not again["ok"]
        assert again["error"]["type"] == "SessionLostError"
        assert again["error"]["code"] == "session_lost"
        assert counters["sessions_lost"] == 1
        assert counters["shards_lost"] == 1
        assert counters["sessions_pinned"] == 0

    def test_session_op_on_shard_dying_mid_request_replays_with_journal(self):
        # journal on (the default): the same crash is a transparent failover —
        # the op retries on the survivor and the placements stay bit-identical.
        async def scenario():
            async with ClusterRouter(inproc_config(shards=2)) as router:
                opened = await router.handle({"op": "session_open",
                                              "spec": "online_greedy", "m": 2})
                sid = opened["session"]
                first = await router.handle({
                    "op": "session_submit", "session": sid,
                    "task": {"id": 0, "p": 3.0, "s": 1.0}})
                shard = router.shard(opened["shard"])

                async def dying_request(payload):
                    raise ConnectionError("shard fell over mid-request")

                shard.request = dying_request  # the op is already in flight
                survived = await router.handle({
                    "op": "session_submit", "session": sid,
                    "task": {"id": 1, "p": 1.0, "s": 1.0}})
                counters = router.router_counters()
            return opened, first, survived, counters

        opened, first, survived, counters = run(scenario())
        assert first["ok"] and first["placements"] == [[0, 0]]
        assert survived["ok"]
        assert survived["shard"] != opened["shard"]
        assert survived["placements"] == [[1, 1]]  # least-loaded proc, as ever
        assert counters["sessions_replayed"] == 1
        assert counters["sessions_lost"] == 0
        assert counters["replays_failed"] == 0
        assert counters["sessions_pinned"] == 1

    def test_noack_line_never_produces_a_response(self):
        async def scenario():
            async with ClusterRouter(inproc_config(shards=2)) as router:
                unknown = await router.handle({
                    "op": "session_submit", "session": "csess-404", "ack": False,
                    "task": {"id": 0, "p": 1.0, "s": 1.0}})
                bad_field = await router.handle({
                    "op": "session_submit", "session": 7, "ack": False,
                    "task": {"id": 0, "p": 1.0, "s": 1.0}})
                # A shard dying under an unacked line is also silent.
                opened = await router.handle({"op": "session_open",
                                              "spec": "online_greedy", "m": 2})
                shard = router.shard(opened["shard"])

                async def dying_send(payload):
                    raise ConnectionError("gone")

                shard.send = dying_send
                dying = await router.handle({
                    "op": "session_submit", "session": opened["session"],
                    "ack": False, "task": {"id": 0, "p": 1.0, "s": 1.0}})
            return unknown, bad_field, dying

        unknown, bad_field, dying = run(scenario())
        assert unknown is None
        assert bad_field is None
        assert dying is None

    def test_autoscaler_average_ignores_draining_backlog(self):
        async def scenario():
            config = inproc_config(shards=3, min_shards=1, max_shards=3,
                                   scale_up_at=2.0, scale_down_at=0.5,
                                   hysteresis=1)
            async with ClusterRouter(config) as router:
                scaler = Autoscaler(router)
                draining = router.shard_names()[0]
                router.shard(draining).draining = True
                # Fake a big backlog on the draining shard only: the stats
                # fan-out reads per-shard payloads, so patch its stats op.
                shard = router.shard(draining)
                real_request = shard.request

                async def inflated(payload):
                    response = await real_request(payload)
                    if payload.get("op") == "stats" and response.get("ok"):
                        response["stats"] = {**response["stats"], "queue_depth": 50}
                    return response

                shard.request = inflated
                verdict = await scaler.tick()
                streaks = (scaler.policy.up_streak, scaler.policy.down_streak)
            return verdict, streaks

        verdict, streaks = run(scenario())
        # 50 queued on the draining shard must not read as cluster pressure:
        # the routable average is 0, which votes *down*, not up.
        assert verdict == "down"
        assert streaks == (0, 0)


class TestReviewRegressionsRoundTwo:
    def test_integer_ack_rejected_not_treated_as_acked(self):
        """`0 == False` must not let a non-bool ack slip through."""
        from repro.service import ServiceConfig, SolverService
        from repro.service.server import handle_request

        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                opened = await handle_request(
                    svc, {"op": "session_open", "spec": "online_greedy", "m": 2}
                )
                return await handle_request(svc, {
                    "op": "session_submit", "session": opened["session"],
                    "ack": 0, "task": {"id": 0, "p": 1.0, "s": 1.0}})

        response = run(scenario())
        assert not response["ok"]
        assert "'ack' must be a JSON boolean" in response["error"]["message"]

    def test_expired_backend_session_frees_router_pin(self):
        """A TTL-expired session must not leak its pin forever."""
        async def scenario():
            config = inproc_config(shards=2, session_ttl=0.05)
            async with ClusterRouter(config) as router:
                opened = await router.handle({"op": "session_open",
                                              "spec": "online_greedy", "m": 2})
                sid = opened["session"]
                await asyncio.sleep(0.15)  # backend TTL sweep expires it
                touched = await router.handle({
                    "op": "session_submit", "session": sid,
                    "task": {"id": 0, "p": 1.0, "s": 1.0}})
                pinned_after_touch = router.router_counters()["sessions_pinned"]

                # The lazy sweep also reaps pins nobody ever touches again.
                abandoned = await router.handle({"op": "session_open",
                                                 "spec": "online_greedy", "m": 2})
                router._session_touch[abandoned["session"]] -= 10.0
                swept = router.router_counters()["sessions_pinned"]
            return touched, pinned_after_touch, swept

        touched, pinned_after_touch, swept = run(scenario())
        assert not touched["ok"]  # the expiry is reported to the client...
        assert pinned_after_touch == 0  # ...and the ghost pin is gone
        assert swept == 0

    def test_cluster_drain_op_protocol_parity(self, inst):
        async def scenario():
            async with ClusterRouter(inproc_config(shards=2)) as router:
                await router.solve(inst, "lpt")
                response = await router.handle({"op": "drain", "timeout": 10})
                bad = await router.handle({"op": "drain", "timeout": "x"})
            return response, bad

        response, bad = run(scenario())
        assert response["ok"] and response["drained"] is True
        assert response["pending"] == 0
        assert not bad["ok"] and "'timeout'" in bad["error"]["message"]
