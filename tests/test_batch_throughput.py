"""Throughput behaviour of the rewritten ``solve_many``.

Covers the three levels of work elimination (dedup, cache, instance
batching), serial/parallel bit-for-bit parity with caching on, and the
spawn-platform regression: custom registry entries are resolved in the
parent and shipped to workers (or fall back to serial when unpicklable)
instead of silently failing under the ``spawn`` start method.
"""

from __future__ import annotations

import math

import pytest

from repro.core.instance import Instance
from repro.solvers import (
    DiskCache,
    LRUCache,
    SolverCapabilities,
    SolverEntry,
    register,
    solve,
    solve_many,
)
from repro.solvers.registry import _REGISTRY, is_builtin

import _spawn_helper


@pytest.fixture
def inst():
    return Instance.from_lists(p=[4, 3, 2, 2, 1], s=[1, 5, 2, 4, 3], m=2, name="a")


@pytest.fixture
def other():
    return Instance.from_lists(p=[5, 4, 3, 2, 1, 9], s=[2, 2, 2, 2, 2, 1], m=3, name="b")


def _values(results):
    return [(r.spec, r.feasible, r.cmax, r.mmax, r.sum_ci, r.guarantee) for r in results]


@pytest.fixture
def custom_solver():
    """Register the picklable test solver; restore the registry afterwards."""
    _spawn_helper.CALLS["count"] = 0
    register(_spawn_helper.make_entry(), replace=True)
    yield "reverse_list"
    _REGISTRY.pop("reverse_list", None)


class TestDedup:
    def test_duplicate_jobs_one_computation(self, inst, custom_solver):
        results = solve_many([inst, inst], [custom_solver, custom_solver])
        assert len(results) == 4
        assert _spawn_helper.CALLS["count"] == 1  # 4 jobs, 1 distinct computation
        stats = results[0].provenance["batch"]
        # No cache configured: hit/miss counters stay 0 (no lookup happened).
        assert stats == {"jobs": 4, "unique": 1, "deduped": 3,
                         "cache_hits": 0, "cache_misses": 0}
        assert len({_values([r])[0] for r in results}) == 1

    def test_equal_content_different_objects_deduped(self, custom_solver):
        twin_a = Instance.from_lists(p=[1, 2, 3], s=[3, 2, 1], m=2, name="x")
        twin_b = Instance.from_lists(p=[1, 2, 3], s=[3, 2, 1], m=2, name="y")
        assert twin_a is not twin_b
        results = solve_many([twin_a, twin_b], custom_solver)
        assert _spawn_helper.CALLS["count"] == 1
        assert results[0].provenance["batch"]["unique"] == 1

    def test_dedupe_off_recomputes(self, inst, custom_solver):
        results = solve_many([inst, inst], custom_solver, dedupe=False)
        assert _spawn_helper.CALLS["count"] == 2
        assert results[0].provenance["batch"]["deduped"] == 0
        assert _values(results)[0] == _values(results)[1]

    def test_distinct_jobs_not_deduped(self, inst, other):
        results = solve_many([inst, other], ["lpt", "spt"])
        assert results[0].provenance["batch"] == {
            "jobs": 4, "unique": 4, "deduped": 0, "cache_hits": 0, "cache_misses": 0,
        }


class TestCacheWarmRuns:
    SPECS = ["sbo(delta=0.5)", "sbo(delta=2.0)", "rls(delta=2.5)", "trio(delta=3)"]

    def test_second_run_all_hits(self, inst, other, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        cold = solve_many([inst, other], self.SPECS, cache=cache)
        assert cold[0].provenance["batch"]["cache_misses"] == 8
        assert all(r.provenance["cache"] == "miss" for r in cold)

        warm = solve_many([inst, other], self.SPECS, cache=DiskCache(tmp_path / "cache"))
        stats = warm[0].provenance["batch"]
        assert stats["cache_hits"] == 8 and stats["cache_misses"] == 0
        assert all(r.provenance["cache"] == "hit" for r in warm)
        assert _values(warm) == _values(cold)

    def test_cache_shared_with_plain_solve(self, inst):
        cache = LRUCache()
        direct = solve(inst, "sbo(delta=1.0)", cache=cache)
        batched = solve_many([inst], "sbo(delta=1.0)", cache=cache)
        assert batched[0].provenance["cache"] == "hit"
        assert batched[0].objectives == direct.objectives

    def test_dedup_and_cache_counters_compose(self, inst, tmp_path):
        cache = DiskCache(tmp_path)
        solve_many([inst], "lpt", cache=cache)
        stats = solve_many([inst, inst], ["lpt", "spt"], cache=cache)[0].provenance["batch"]
        assert stats == {"jobs": 4, "unique": 2, "deduped": 2,
                         "cache_hits": 1, "cache_misses": 1}

    def test_custom_solver_bypasses_cache(self, inst, custom_solver, tmp_path):
        # A runtime-registered solver's implementation is invisible to the
        # cache key, so its results are never stored or served from cache.
        cache = DiskCache(tmp_path)
        first = solve_many([inst], [custom_solver, "lpt"], cache=cache)
        second = solve_many([inst], [custom_solver, "lpt"], cache=cache)
        assert len(cache) == 1  # only the builtin lpt result was stored
        assert "cache" not in first[0].provenance and "cache" not in second[0].provenance
        assert second[1].provenance["cache"] == "hit"
        assert second[0].provenance["batch"] == {
            "jobs": 2, "unique": 2, "deduped": 0, "cache_hits": 1, "cache_misses": 0,
        }
        assert _spawn_helper.CALLS["count"] == 2  # recomputed on the warm run


class TestSerialParallelParity:
    SPECS = ["sbo(delta=0.5)", "sbo(delta=2.0)", "rls(delta=2.5)", "trio(delta=3)", "lpt"]

    def test_bit_for_bit_parity_with_caching_on(self, inst, other, tmp_path):
        serial = solve_many([inst, other], self.SPECS, workers=1,
                            cache=DiskCache(tmp_path / "serial"))
        parallel = solve_many([inst, other], self.SPECS, workers=3,
                              cache=DiskCache(tmp_path / "parallel"))
        assert len(serial) == len(parallel) == 10
        assert _values(serial) == _values(parallel)
        assert [r.schedule.assignment for r in serial] == \
               [r.schedule.assignment for r in parallel]
        # Fresh caches on both sides: identical miss accounting too.
        assert [r.provenance["batch"] for r in serial] == \
               [r.provenance["batch"] for r in parallel]

    def test_parallel_warm_run_skips_the_pool(self, inst, other, tmp_path):
        cache = DiskCache(tmp_path)
        solve_many([inst, other], self.SPECS, workers=1, cache=cache)
        warm = solve_many([inst, other], self.SPECS, workers=3, cache=cache)
        assert all(r.provenance["cache"] == "hit" for r in warm)

    def test_instance_batching_keeps_job_order(self, inst, other):
        results = solve_many([inst, other], ["lpt", "spt", "multifit"], workers=2)
        assert [r.solver for r in results] == ["lpt", "spt", "multifit"] * 2
        assert results[0].schedule.instance.n == inst.n
        assert results[3].schedule.instance.n == other.n


class TestSpawnPlatform:
    """Regression for the documented spawn caveat: runtime-registered
    entries must reach (or bypass) worker processes on any platform."""

    def test_custom_entry_shipped_under_spawn(self, inst, other, custom_solver):
        results = solve_many([inst, other], [custom_solver, "lpt"],
                             workers=2, start_method="spawn")
        assert [r.solver for r in results] == [custom_solver, "lpt"] * 2
        assert all(r.feasible for r in results)
        # Shipped entries really ran in the workers, not the parent.
        assert _spawn_helper.CALLS["count"] == 0
        expected = solve(inst, custom_solver, cache=False)
        assert results[0].cmax == expected.cmax
        assert results[0].provenance["custom"] is True

    def test_unpicklable_entry_falls_back_to_serial(self, inst, other):
        register(SolverEntry(
            name="lambda_solver", summary="unpicklable test entry",
            capabilities=SolverCapabilities(), params=(),
            run=lambda instance, params: (  # noqa: E731 - deliberately a lambda
                __import__("repro.algorithms.lpt", fromlist=["lpt_schedule"]).lpt_schedule(
                    instance.as_independent() if hasattr(instance, "as_independent")
                    else instance
                ),
                (math.inf, math.inf), None, {},
            ),
        ), replace=True)
        try:
            results = solve_many([inst, other], ["lambda_solver", "lpt"],
                                 workers=2, start_method="spawn")
            assert [r.solver for r in results] == ["lambda_solver", "lpt"] * 2
            assert all(r.feasible for r in results)
        finally:
            _REGISTRY.pop("lambda_solver", None)

    def test_is_builtin_classification(self, custom_solver):
        assert is_builtin("sbo") and is_builtin("uniform_rls")
        assert not is_builtin(custom_solver)

    def test_replaced_builtin_shipped_under_spawn(self, inst, other):
        # Overriding a builtin name with register(replace=True) must reach
        # spawn workers too — otherwise they silently run the stock entry.
        original = _REGISTRY["lpt"]
        register(_spawn_helper.make_entry("lpt"), replace=True)
        try:
            assert not is_builtin("lpt")
            results = solve_many([inst, other], "lpt", workers=2, start_method="spawn")
            assert all(r.provenance.get("custom") is True for r in results)
        finally:
            _REGISTRY["lpt"] = original
            assert is_builtin("lpt")
