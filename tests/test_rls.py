"""Unit tests for repro.core.rls (Algorithm 2, Lemma 4, Corollaries 2-3)."""

from __future__ import annotations

import math

import pytest

from repro.core.bounds import cmax_lower_bound, mmax_lower_bound
from repro.core.instance import Instance
from repro.core.rls import (
    InfeasibleDeltaError,
    minimum_feasible_delta,
    rls,
    rls_guarantee,
)
from repro.core.validation import validate_schedule
from repro.dag.generators import fork_join_dag, layered_dag, random_dag_suite
from repro.workloads.independent import uniform_instance


class TestRLSGuarantee:
    def test_below_two_no_guarantee(self):
        assert rls_guarantee(1.5, 4) == (math.inf, math.inf)

    def test_at_two_only_memory(self):
        c, m = rls_guarantee(2.0, 4)
        assert math.isinf(c) and m == 2.0

    def test_above_two_formula(self):
        c, m = rls_guarantee(3.0, 4)
        assert m == 3.0
        assert c == pytest.approx(2 + 1 / 1 - 2 / (4 * 1))

    def test_large_delta_approaches_graham_bound(self):
        # As delta -> infinity the bound tends to 2 - 1/m, Graham's classical ratio.
        c, _ = rls_guarantee(1000.0, 8)
        assert c == pytest.approx(2.0 - 1.0 / 8.0, abs=0.01)

    def test_cmax_guarantee_decreases_with_delta(self):
        values = [rls_guarantee(d, 4)[0] for d in (2.5, 3.0, 4.0, 8.0)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_cmax_guarantee_increases_with_m(self):
        # (delta-1)/(m(delta-2)) shrinks as m grows => the bound grows with m.
        assert rls_guarantee(3.0, 2)[0] <= rls_guarantee(3.0, 16)[0]

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            rls_guarantee(3.0, 0)


class TestRLSIndependent:
    def test_invalid_delta(self, small_instance):
        with pytest.raises(ValueError):
            rls(small_instance, delta=0.0)

    def test_memory_budget_respected(self, medium_instance):
        for delta in (2.0, 2.5, 3.0, 5.0):
            result = rls(medium_instance, delta=delta)
            lb = mmax_lower_bound(medium_instance)
            assert result.mmax <= delta * lb + 1e-9
            assert result.memory_budget == pytest.approx(delta * lb)

    def test_schedule_valid(self, medium_instance):
        result = rls(medium_instance, delta=3.0)
        assert validate_schedule(result.schedule).ok

    def test_delta_two_always_feasible_random(self):
        for seed in range(5):
            inst = uniform_instance(25, 4, seed=seed)
            result = rls(inst, delta=2.0)
            assert result.mmax <= 2.0 * mmax_lower_bound(inst) + 1e-9

    def test_cmax_guarantee_against_lower_bound(self):
        for seed in range(5):
            inst = uniform_instance(25, 4, seed=seed)
            for delta in (2.5, 3.0, 4.0):
                result = rls(inst, delta=delta)
                guarantee, _ = rls_guarantee(delta, inst.m)
                assert result.cmax <= guarantee * cmax_lower_bound(inst) * (1 + 1e-9)

    def test_marked_processors_lemma4_bound(self):
        for seed in range(5):
            inst = uniform_instance(30, 6, seed=seed)
            for delta in (2.5, 3.0, 4.0):
                result = rls(inst, delta=delta)
                assert len(result.marked_processors) <= math.floor(inst.m / (delta - 1.0))

    def test_infeasible_small_delta(self):
        # Two tasks each needing the full LB cannot both respect 1.1 * LB on
        # separate... here: LB = max(s)=10 (m=2, sum=20/2=10); delta=1.05 =>
        # budget 10.5; three tasks of 10 cannot fit two per processor.
        inst = Instance.from_lists(p=[1, 1, 1], s=[10, 10, 10], m=2)
        with pytest.raises(InfeasibleDeltaError):
            rls(inst, delta=1.05)

    def test_infeasible_error_fields(self):
        inst = Instance.from_lists(p=[1, 1, 1], s=[10, 10, 10], m=2)
        with pytest.raises(InfeasibleDeltaError) as exc:
            rls(inst, delta=1.05)
        assert exc.value.delta == 1.05
        assert exc.value.budget == pytest.approx(1.05 * 15.0)

    def test_zero_memory_instance(self, zero_memory_instance):
        result = rls(zero_memory_instance, delta=3.0)
        assert result.mmax == 0.0
        assert validate_schedule(result.schedule).ok

    def test_single_task(self, single_task_instance):
        result = rls(single_task_instance, delta=3.0)
        assert result.cmax == 5.0 and result.mmax == 7.0

    def test_order_options(self, medium_instance):
        for order in ("arbitrary", "spt", "lpt", "bottom-level"):
            result = rls(medium_instance, delta=3.0, order=order)
            assert validate_schedule(result.schedule).ok
            assert result.order == order

    def test_explicit_order(self, medium_instance):
        ids = list(reversed(medium_instance.tasks.ids))
        result = rls(medium_instance, delta=3.0, order=ids)
        assert validate_schedule(result.schedule).ok
        assert result.order == "explicit"

    def test_bad_explicit_order(self, medium_instance):
        with pytest.raises(ValueError, match="every task"):
            rls(medium_instance, delta=3.0, order=[0, 1])

    def test_bad_order_name(self, medium_instance):
        with pytest.raises(ValueError, match="unknown order"):
            rls(medium_instance, delta=3.0, order="random")


class TestRLSDAG:
    def test_precedence_respected(self, diamond_dag):
        result = rls(diamond_dag, delta=3.0)
        assert validate_schedule(result.schedule).ok

    def test_chain_schedules_sequentially(self, chain_instance):
        result = rls(chain_instance, delta=3.0)
        assert result.cmax == 9.0

    def test_memory_budget_on_dags(self):
        for seed in range(3):
            dag = layered_dag(5, 4, m=4, seed=seed)
            for delta in (2.0, 3.0):
                result = rls(dag, delta=delta)
                assert result.mmax <= delta * mmax_lower_bound(dag) + 1e-9
                assert validate_schedule(result.schedule).ok

    def test_cmax_guarantee_on_dag_suite(self):
        for name, dag in random_dag_suite(4, seed=1).items():
            result = rls(dag, delta=3.0)
            guarantee, _ = rls_guarantee(3.0, dag.m)
            assert result.cmax <= guarantee * cmax_lower_bound(dag) * (1 + 1e-9), name

    def test_fork_join_parallelism_exploited(self):
        dag = fork_join_dag(1, 8, m=8, seed=0)
        result = rls(dag, delta=8.0)
        # With a loose memory budget the fork-join phase must exploit most of
        # the parallelism: strictly better than serialising everything.
        assert result.cmax < dag.tasks.total_p

    def test_no_start_before_predecessors(self, diamond_dag):
        result = rls(diamond_dag, delta=4.0)
        sched = result.schedule
        for u, v in diamond_dag.graph.edges():
            assert sched.start_of(v) >= sched.completion_of(u) - 1e-9

    def test_guarantee_fields(self, diamond_dag):
        result = rls(diamond_dag, delta=2.5)
        c, m = rls_guarantee(2.5, 2)
        assert result.cmax_guarantee == pytest.approx(c)
        assert result.mmax_guarantee == pytest.approx(m)
        assert result.memory_lower_bound == pytest.approx(mmax_lower_bound(diamond_dag))


class TestMinimumFeasibleDelta:
    def test_never_above_two(self):
        for seed in range(3):
            inst = uniform_instance(15, 3, seed=seed)
            assert minimum_feasible_delta(inst) <= 2.0 + 1e-9

    def test_result_is_feasible(self, medium_instance):
        d = minimum_feasible_delta(medium_instance)
        rls(medium_instance, max(d, d + 1e-9))  # must not raise

    def test_hard_instance_needs_nearly_two(self):
        inst = Instance.from_lists(p=[1, 1, 1, 1], s=[10, 10, 10, 10], m=2)
        # LB = 20; two tasks per processor is forced => min delta = 1.
        assert minimum_feasible_delta(inst) == pytest.approx(1.0, abs=1e-2)

    def test_single_big_task_min_delta(self):
        inst = Instance.from_lists(p=[1, 1, 1], s=[30, 1, 1], m=2)
        # LB = 30 (max task); the big task alone fits at delta = 1.
        d = minimum_feasible_delta(inst)
        assert d <= 1.1

    def test_zero_memory(self, zero_memory_instance):
        assert minimum_feasible_delta(zero_memory_instance) == 0.0
