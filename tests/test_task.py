"""Unit tests for repro.core.task."""

from __future__ import annotations

import math

import pytest

from repro.core.task import Task, TaskSet


class TestTask:
    def test_basic_construction(self):
        t = Task(id=1, p=3.0, s=2.0)
        assert t.id == 1
        assert t.p == 3.0
        assert t.s == 2.0
        assert t.label is None

    def test_label(self):
        t = Task(id="x", p=1, s=1, label="kernel")
        assert t.label == "kernel"

    def test_negative_processing_time_rejected(self):
        with pytest.raises(ValueError, match="processing time"):
            Task(id=0, p=-1.0, s=1.0)

    def test_negative_storage_rejected(self):
        with pytest.raises(ValueError, match="storage size"):
            Task(id=0, p=1.0, s=-0.5)

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            Task(id=0, p=float("nan"), s=1.0)

    def test_infinite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            Task(id=0, p=1.0, s=float("inf"))

    def test_zero_values_allowed(self):
        t = Task(id=0, p=0.0, s=0.0)
        assert t.p == 0.0 and t.s == 0.0

    def test_density(self):
        assert Task(id=0, p=6, s=3).density == 2.0

    def test_density_zero_storage(self):
        assert Task(id=0, p=5, s=0).density == math.inf

    def test_density_zero_both(self):
        assert Task(id=0, p=0, s=0).density == 0.0

    def test_density_zero_processing(self):
        assert Task(id=0, p=0, s=4).density == 0.0

    def test_with_id(self):
        t = Task(id=0, p=1, s=2, label="l")
        u = t.with_id("new")
        assert u.id == "new" and u.p == 1 and u.s == 2 and u.label == "l"

    def test_scaled(self):
        t = Task(id=0, p=2, s=4)
        u = t.scaled(p_factor=3, s_factor=0.5)
        assert u.p == 6 and u.s == 2

    def test_frozen(self):
        t = Task(id=0, p=1, s=1)
        with pytest.raises(AttributeError):
            t.p = 2  # type: ignore[misc]

    def test_equality(self):
        assert Task(id=0, p=1, s=2) == Task(id=0, p=1, s=2)
        assert Task(id=0, p=1, s=2) != Task(id=0, p=1, s=3)


class TestTaskSet:
    def test_from_lists(self):
        ts = TaskSet.from_lists(p=[1, 2, 3], s=[4, 5, 6])
        assert len(ts) == 3
        assert ts[0].p == 1 and ts[2].s == 6

    def test_from_lists_custom_ids(self):
        ts = TaskSet.from_lists(p=[1, 2], s=[3, 4], ids=["a", "b"])
        assert ts["a"].p == 1 and ts["b"].s == 4

    def test_from_lists_length_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            TaskSet.from_lists(p=[1, 2], s=[3])

    def test_from_lists_ids_length_mismatch(self):
        with pytest.raises(ValueError, match="ids"):
            TaskSet.from_lists(p=[1, 2], s=[3, 4], ids=["only-one"])

    def test_duplicate_id_rejected(self):
        ts = TaskSet([Task(id=0, p=1, s=1)])
        with pytest.raises(ValueError, match="duplicate"):
            ts.add(Task(id=0, p=2, s=2))

    def test_add_non_task_rejected(self):
        ts = TaskSet()
        with pytest.raises(TypeError):
            ts.add((1, 2, 3))  # type: ignore[arg-type]

    def test_contains_and_getitem(self):
        ts = TaskSet.from_lists(p=[1], s=[2])
        assert 0 in ts
        assert 1 not in ts
        with pytest.raises(KeyError):
            ts[42]

    def test_iteration_preserves_order(self):
        ts = TaskSet.from_lists(p=[5, 1, 3], s=[1, 1, 1])
        assert [t.p for t in ts] == [5, 1, 3]

    def test_aggregates(self):
        ts = TaskSet.from_lists(p=[1, 2, 3], s=[4, 5, 6])
        assert ts.total_p == 6
        assert ts.total_s == 15
        assert ts.max_p == 3
        assert ts.max_s == 6

    def test_aggregates_empty(self):
        ts = TaskSet()
        assert ts.total_p == 0 and ts.max_p == 0 and ts.max_s == 0

    def test_processing_times_and_storage_sizes(self):
        ts = TaskSet.from_lists(p=[1, 2], s=[3, 4])
        assert ts.processing_times() == {0: 1, 1: 2}
        assert ts.storage_sizes() == {0: 3, 1: 4}

    def test_sorted_by_p(self):
        ts = TaskSet.from_lists(p=[3, 1, 2], s=[1, 1, 1])
        assert [t.p for t in ts.sorted_by("p")] == [1, 2, 3]

    def test_sorted_by_s_reverse(self):
        ts = TaskSet.from_lists(p=[1, 1, 1], s=[3, 1, 2])
        assert [t.s for t in ts.sorted_by("s", reverse=True)] == [3, 2, 1]

    def test_sorted_by_density(self):
        ts = TaskSet.from_lists(p=[4, 1], s=[1, 4])
        assert [t.id for t in ts.sorted_by("density")] == [1, 0]

    def test_sorted_by_unknown_key(self):
        ts = TaskSet.from_lists(p=[1], s=[1])
        with pytest.raises(ValueError, match="unknown sort key"):
            ts.sorted_by("weight")

    def test_sort_stability_ties_in_insertion_order(self):
        ts = TaskSet.from_lists(p=[2, 2, 2], s=[1, 1, 1])
        assert [t.id for t in ts.spt_order()] == [0, 1, 2]

    def test_spt_lpt_lms(self):
        ts = TaskSet.from_lists(p=[3, 1, 2], s=[2, 3, 1])
        assert [t.id for t in ts.spt_order()] == [1, 2, 0]
        assert [t.id for t in ts.lpt_order()] == [0, 2, 1]
        assert [t.id for t in ts.lms_order()] == [1, 0, 2]

    def test_swapped(self):
        ts = TaskSet.from_lists(p=[1, 2], s=[3, 4])
        sw = ts.swapped()
        assert [t.p for t in sw] == [3, 4]
        assert [t.s for t in sw] == [1, 2]

    def test_swapped_is_involution(self):
        ts = TaskSet.from_lists(p=[1, 2, 5], s=[3, 4, 0])
        assert ts.swapped().swapped() == ts

    def test_subset(self):
        ts = TaskSet.from_lists(p=[1, 2, 3], s=[4, 5, 6])
        sub = ts.subset([2, 0])
        assert len(sub) == 2
        assert [t.id for t in sub] == [0, 2]  # preserves original order

    def test_subset_unknown_id(self):
        ts = TaskSet.from_lists(p=[1], s=[1])
        with pytest.raises(KeyError):
            ts.subset([0, 99])

    def test_as_tuples(self):
        ts = TaskSet.from_lists(p=[1, 2], s=[3, 4])
        assert ts.as_tuples() == [(0, 1, 3), (1, 2, 4)]

    def test_equality(self):
        a = TaskSet.from_lists(p=[1, 2], s=[3, 4])
        b = TaskSet.from_lists(p=[1, 2], s=[3, 4])
        c = TaskSet.from_lists(p=[2, 1], s=[4, 3])
        assert a == b
        assert a != c
