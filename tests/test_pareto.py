"""Unit tests for repro.core.pareto."""

from __future__ import annotations

import pytest

from repro.core.pareto import ParetoFront, dominates, pareto_filter, weakly_dominates


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1, 1), (2, 2))
        assert dominates((1, 2), (1, 3))
        assert not dominates((1, 2), (1, 2))
        assert not dominates((1, 3), (2, 2))

    def test_weak_dominance(self):
        assert weakly_dominates((1, 2), (1, 2))
        assert weakly_dominates((1, 1), (1, 2))
        assert not weakly_dominates((2, 1), (1, 2))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            dominates((1, 2), (1, 2, 3))


class TestParetoFilter:
    def test_basic(self):
        pts = [(1, 3), (2, 2), (3, 1), (3, 3), (2, 2)]
        assert pareto_filter(pts) == [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)]

    def test_all_dominated_by_one(self):
        pts = [(1, 1), (2, 2), (3, 3)]
        assert pareto_filter(pts) == [(1.0, 1.0)]

    def test_empty(self):
        assert pareto_filter([]) == []

    def test_single_point(self):
        assert pareto_filter([(5, 5)]) == [(5.0, 5.0)]


class TestParetoFront:
    def test_add_and_query(self):
        front = ParetoFront()
        assert front.add((2, 2), "a")
        assert front.add((1, 3), "b")
        assert not front.add((3, 3), "dominated")
        assert len(front) == 2
        assert front.values() == [(1.0, 3.0), (2.0, 2.0)]

    def test_new_point_evicts_dominated(self):
        front = ParetoFront()
        front.add((2, 2))
        front.add((3, 3))  # rejected
        assert front.add((1, 1))
        assert front.values() == [(1.0, 1.0)]

    def test_duplicate_point_rejected(self):
        front = ParetoFront()
        assert front.add((1, 1), "first")
        assert not front.add((1, 1), "second")
        assert front.payloads() == ["first"]

    def test_extend(self):
        front = ParetoFront()
        added = front.extend([((1, 2), None), ((2, 1), None), ((3, 3), None)])
        assert added == 2

    def test_dominates_point_and_contains(self):
        front = ParetoFront()
        front.add((1, 2))
        assert front.dominates_point((2, 3))
        assert not front.dominates_point((1, 2))
        assert front.contains((1, 2))
        assert not front.contains((1.5, 2))

    def test_best_on(self):
        front = ParetoFront()
        front.add((1, 5), "a")
        front.add((4, 2), "b")
        assert front.best_on(0).payload == "a"
        assert front.best_on(1).payload == "b"

    def test_best_on_empty_raises(self):
        with pytest.raises(ValueError):
            ParetoFront().best_on(0)

    def test_best_on_bad_coordinate(self):
        front = ParetoFront()
        front.add((1, 1))
        with pytest.raises(ValueError):
            front.best_on(5)

    def test_wrong_dimension_rejected(self):
        front = ParetoFront(dim=2)
        with pytest.raises(ValueError):
            front.add((1, 2, 3))

    def test_nonfinite_rejected(self):
        front = ParetoFront()
        with pytest.raises(ValueError):
            front.add((float("inf"), 1))

    def test_three_dimensional_front(self):
        front = ParetoFront(dim=3)
        front.add((1, 1, 5))
        front.add((1, 1, 4))
        assert front.values() == [(1.0, 1.0, 4.0)]

    def test_iteration_sorted(self):
        front = ParetoFront()
        front.add((3, 1))
        front.add((1, 3))
        assert [pt.values for pt in front] == [(1.0, 3.0), (3.0, 1.0)]

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            ParetoFront(dim=0)
