"""Failure-path tests for the cluster layer (PR 8).

Coverage map:

* **orphan-pin reaping** — ``remove_shard`` with a failed session handoff
  must not leave a pin pointing at the retired shard: journal on, the
  session replays onto a survivor; journal off, it is an *accounted*
  loss with the stable ``session_lost`` error code (the regression this
  PR fixes);
* **drain-timeout threading** — ``ProcessShard.stop`` honours
  ``ClusterConfig.drain_timeout`` instead of a hardcoded 10 s;
* **counter balance** — property test over randomized kill/attach/solve
  sequences: ``routed == completed + retried + lost`` at every quiescent
  point, and every request receives exactly one response;
* **remove_shard vs supervision race** — a shard dying *while* its
  graceful retirement awaits the drain is reaped once (no double-counted
  loss, no dropped replacement);
* **RemoteShard** — attach an already-running ``repro serve`` by
  address, probe health over the wire, reap on consecutive probe
  failures with journal replay of its pinned sessions, sever-not-shutdown
  on detach;
* **acceptance** — a 3-shard cluster (2 local + 1 attached over real
  TCP) survives a SIGKILL of the remote holding a mid-stream windowed
  session: the journal replays it onto a survivor bit-identically to an
  uninterrupted run, with zero lost requests.

Tests that need a live TCP remote carry the ``remote`` marker on top of
the package-wide ``cluster`` one (deselect with ``-m 'not remote'``).
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.cluster import (
    Autoscaler,
    ClusterConfig,
    ClusterError,
    ClusterRouter,
    ProcessShard,
    RemoteShard,
)
from repro.core.instance import Instance
from repro.online import create_online, stochastic_trace
from repro.service import ServiceConfig, SolverService
from repro.service.client import ServiceClient
from repro.service.server import serve_tcp
from repro.solvers import LRUCache, solve

pytestmark = pytest.mark.cluster


def run(coro):
    return asyncio.run(coro)


def inproc_config(**overrides) -> ClusterConfig:
    defaults = dict(shards=2, min_shards=1, max_shards=4, backend="inproc",
                    workers=1, cache=LRUCache(), session_ttl=None)
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def task_payload(task) -> dict:
    return {"id": task.id, "p": task.p, "s": task.s}


def wedge_export(shard):
    """Make a shard's ``session_export`` op fail (everything else passes)."""
    real_request = shard.request

    async def wedged(payload):
        if payload.get("op") == "session_export":
            return {"ok": False, "error": {"type": "RuntimeError",
                                           "message": "export wedged"}}
        return await real_request(payload)

    shard.request = wedged


# --------------------------------------------------------------------------- #
# satellite: remove_shard must never orphan a pin on a failed handoff
# --------------------------------------------------------------------------- #
class TestOrphanPinReap:
    def test_failed_handoff_on_retire_is_accounted_loss_without_journal(self):
        # Regression: a handoff failure during remove_shard used to leave
        # the pin pointing at the popped shard — the next op hit an unknown
        # shard instead of a typed error, and the loss was never counted.
        async def scenario():
            config = inproc_config(shards=2, session_journal=False)
            async with ClusterRouter(config) as router:
                opened = await router.handle({"op": "session_open",
                                              "spec": "online_greedy", "m": 2})
                sid, pin = opened["session"], opened["shard"]
                wedge_export(router.shard(pin))
                await router.remove_shard(pin)
                counters = router.router_counters()
                after = await router.handle({
                    "op": "session_submit", "session": sid,
                    "task": {"id": 0, "p": 1.0, "s": 1.0}})
                names = router.shard_names()
            return pin, counters, after, names

        pin, counters, after, names = run(scenario())
        assert pin not in names
        assert counters["handoff_failures"] == 1
        assert counters["sessions_lost"] == 1
        assert counters["sessions_pinned"] == 0  # the pin was reaped, not leaked
        assert counters["shards_retired"] == 1
        assert not after["ok"]
        assert after["error"]["type"] == "SessionLostError"
        assert after["error"]["code"] == "session_lost"
        assert "reopen and resubmit" in after["error"]["message"]

    def test_failed_handoff_on_retire_replays_from_journal(self):
        trace = stochastic_trace(n=10, m=3, seed=5)
        events = list(trace)

        async def scenario():
            async with ClusterRouter(inproc_config(shards=2)) as router:
                opened = await router.handle({"op": "session_open",
                                              "spec": "online_greedy", "m": 3})
                sid, pin = opened["session"], opened["shard"]
                placements = []
                for event in events[:5]:
                    ack = await router.handle({
                        "op": "session_submit", "session": sid,
                        "task": task_payload(event.task)})
                    placements.extend(map(tuple, ack["placements"]))
                wedge_export(router.shard(pin))
                await router.remove_shard(pin)
                mid = router.router_counters()
                for event in events[5:]:
                    ack = await router.handle({
                        "op": "session_submit", "session": sid,
                        "task": task_payload(event.task)})
                    assert ack["ok"] and ack["shard"] != pin
                    placements.extend(map(tuple, ack["placements"]))
                result = await router.handle({"op": "session_result",
                                              "session": sid})
            return placements, result, mid

        placements, result, mid = run(scenario())
        assert mid["handoff_failures"] == 1
        assert mid["sessions_replayed"] == 1
        assert mid["sessions_lost"] == 0
        assert mid["sessions_pinned"] == 1  # survived the retirement
        local = create_online("online_greedy", m=3)
        expected_placements = [(e.task.id, local.submit(e.task)) for e in events]
        expected = local.finalize()
        assert placements == expected_placements
        assert result["result"]["cmax"] == expected.cmax
        assert dict(map(tuple, result["result"]["assignment"])) \
            == expected.schedule.assignment


# --------------------------------------------------------------------------- #
# satellite: ProcessShard.stop honours ClusterConfig.drain_timeout
# --------------------------------------------------------------------------- #
class TestDrainTimeoutThreading:
    def test_process_shard_stop_timeout_parameter(self):
        assert ProcessShard("s")._stop_timeout == 10.0  # standalone default
        assert ProcessShard("s", stop_timeout=3.5)._stop_timeout == 3.5

    def test_router_threads_drain_timeout_to_spawned_shards(self, tmp_path):
        config = ClusterConfig(
            shards=1, min_shards=1, max_shards=4, backend="process",
            cache=str(tmp_path / "cache"), drain_timeout=7.25,
        )
        shard = ClusterRouter(config)._make_shard("shard-1")
        assert isinstance(shard, ProcessShard)
        assert shard._stop_timeout == 7.25


# --------------------------------------------------------------------------- #
# satellite: per-counter balance under randomized failure sequences
# --------------------------------------------------------------------------- #
class TestCounterBalance:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_routed_equals_completed_plus_retried_plus_lost(self, seed):
        """Property: every routing decision ends in exactly one outcome."""
        instances = [
            Instance.from_lists(p=[4, 3, 2, 2, 1, i + 1], s=[1, 5, 2, 4, 3, 2], m=3)
            for i in range(6)
        ]
        specs = ["lpt", "multifit", "sbo(delta=1.0)"]

        async def scenario():
            rng = random.Random(seed)
            config = inproc_config(shards=3, min_shards=1, max_shards=6,
                                   router_cache=0)
            async with ClusterRouter(config) as router:
                wounded = set()

                def wound(name):
                    # The shard stays routable but dies under the request —
                    # the path that exercises retried (and, once nothing is
                    # left, lost).
                    async def dying(payload):
                        raise ConnectionError(f"{name} died mid-request")
                    router.shard(name).request = dying
                    wounded.add(name)

                responses = []
                for step in range(24):
                    healthy = [n for n in router.shard_names()
                               if n not in wounded]
                    if healthy and rng.random() < 0.25:
                        wound(rng.choice(healthy))
                    if rng.random() < 0.2:
                        try:
                            await router.add_shard()
                        except ClusterError:
                            pass  # at max_shards
                    responses.append(await router.handle({
                        "op": "solve",
                        "instance": instances[step % len(instances)].to_dict(),
                        "spec": specs[step % len(specs)]}))
                # Terminal stage: every survivor dies → the lost path.
                for name in router.shard_names():
                    if name not in wounded:
                        wound(name)
                responses.append(await router.handle({
                    "op": "solve", "instance": instances[0].to_dict(),
                    "spec": "lpt"}))
                counters = router.router_counters()
            return responses, counters

        responses, counters = run(scenario())
        # Exactly one response per request, and the ledger balances.
        assert all(isinstance(r, dict) for r in responses)
        assert counters["routed"] == (counters["completed"]
                                      + counters["retried"]
                                      + counters["lost"])
        assert counters["completed"] == sum(bool(r["ok"]) for r in responses)
        assert counters["lost"] == sum(not r["ok"] for r in responses)
        assert counters["lost"] >= 1  # the terminal stage really was terminal
        for r in responses:
            if not r["ok"]:
                assert r["error"]["type"] == "NoShardAvailableError"


# --------------------------------------------------------------------------- #
# satellite: remove_shard racing the autoscaler's supervision
# --------------------------------------------------------------------------- #
class TestRemoveShardSupervisionRace:
    def test_shard_dying_during_graceful_retire_is_reaped_once(self):
        # remove_shard parks in the drain await; the shard dies there; the
        # autoscaler's supervision tick reaps it and spawns a replacement
        # *before* remove_shard resumes.  The identity-checked pop must not
        # double-count the loss or disturb the replacement.
        async def scenario():
            config = inproc_config(shards=2, min_shards=2, max_shards=4)
            async with ClusterRouter(config) as router:
                scaler = Autoscaler(router)
                name = router.shard_names()[0]
                victim = router.shard(name)
                release = asyncio.Event()
                real_request = victim.request

                async def slow_drain(payload):
                    if payload.get("op") == "drain":
                        await release.wait()
                        raise ConnectionError("died during drain")
                    return await real_request(payload)

                victim.request = slow_drain
                retire = asyncio.create_task(router.remove_shard(name))
                await asyncio.sleep(0.01)  # retire is parked in the drain
                await victim.kill()        # ...and the backend dies under it
                action = await scaler.tick()
                release.set()
                await retire
                counters = router.router_counters()
                names = router.shard_names()
            return action, counters, names, name

        action, counters, names, victim = run(scenario())
        assert action == "replace"
        assert counters["shards_lost"] == 1      # not 2: reaped exactly once
        assert counters["shards_retired"] == 0
        assert counters["shards_started"] == 3   # 2 initial + the replacement
        assert counters["shards_alive"] == 2
        assert victim not in names and len(names) == 2


# --------------------------------------------------------------------------- #
# RemoteShard: attach, probe, reap, sever-not-shutdown
# --------------------------------------------------------------------------- #
class TestRemoteShardAttach:
    def test_parse_and_config_validation(self):
        with pytest.raises(ValueError, match="expected host:port"):
            RemoteShard.parse("remote-1", "no-port-here")
        with pytest.raises(ValueError, match="expected host:port"):
            RemoteShard.parse("remote-1", ":8373")
        shard = RemoteShard.parse("remote-1", "solver-02:8373")
        assert (shard.host, shard.port) == ("solver-02", 8373)
        assert shard.spawned is False and shard.address == "solver-02:8373"
        # shards=0 is only meaningful when remotes supply the capacity.
        config = ClusterConfig(shards=0, min_shards=1, max_shards=2,
                               attach="127.0.0.1:8373")
        assert config.attach == ("127.0.0.1:8373",)
        with pytest.raises(ValueError, match="attached remote"):
            ClusterConfig(shards=0, min_shards=1, max_shards=2)
        with pytest.raises(ValueError, match="not a host:port address"):
            ClusterConfig(shards=1, attach=["nope"])

    def test_attach_respects_max_shards(self):
        async def scenario():
            config = inproc_config(shards=1, min_shards=1, max_shards=1)
            async with ClusterRouter(config) as router:
                with pytest.raises(ClusterError, match="max_shards"):
                    await router.attach_shard("127.0.0.1:8373")

        run(scenario())

    @pytest.mark.remote
    def test_attach_probe_route_and_sever_on_detach(self):
        inst = Instance.from_lists(p=[4, 3, 2, 2, 1], s=[1, 5, 2, 4, 3], m=2)

        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as service:
                server = await serve_tcp(service, port=0,
                                         shutdown=asyncio.Event())
                port = server.sockets[0].getsockname()[1]
                try:
                    config = inproc_config(shards=1)
                    async with ClusterRouter(config) as router:
                        remote = await router.attach_shard(f"127.0.0.1:{port}")
                        pong = await remote.probe(timeout=5.0)
                        names = router.shard_names()
                        payload = await router.solve(inst, "sbo(delta=1.0)")
                        counters = router.router_counters()
                    # Detach severed only the connection: the remote —
                    # somebody else's process — must still be serving.
                    after = await ServiceClient.connect(port=port)
                    try:
                        still_up = await after.ping()
                    finally:
                        await after.close()
                finally:
                    server.close()
                    await server.wait_closed()
            return remote, pong, names, payload, counters, still_up

        remote, pong, names, payload, counters, still_up = run(scenario())
        assert remote.name in names and remote.name.startswith("remote-")
        assert pong["pong"] is True
        assert set(pong["load"]) == {"queue_depth", "in_flight", "pending",
                                     "sessions_open"}
        assert remote.last_load == pong["load"]
        assert counters["shards_attached"] == 1 and counters["shards_alive"] == 2
        direct = solve(inst, "sbo(delta=1.0)", cache=False)
        assert payload["cmax"] == direct.cmax
        assert still_up["pong"] is True

    @pytest.mark.remote
    def test_probe_failure_streak_reaps_remote_and_replays_session(self):
        trace = stochastic_trace(n=8, m=2, seed=7)
        events = list(trace)

        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as service:
                server = await serve_tcp(service, port=0,
                                         shutdown=asyncio.Event())
                port = server.sockets[0].getsockname()[1]
                try:
                    config = inproc_config(shards=1, probe_failures=2,
                                           probe_interval=60.0)
                    async with ClusterRouter(config) as router:
                        remote = await router.attach_shard(f"127.0.0.1:{port}")
                        opened = await router.handle({
                            "op": "session_open", "spec": "online_greedy",
                            "m": 2})
                        sid = opened["session"]
                        # Ties in pin count break by name: remote-N < shard-N.
                        assert opened["shard"] == remote.name
                        placements = []
                        for event in events[:4]:
                            ack = await router.handle({
                                "op": "session_submit", "session": sid,
                                "task": task_payload(event.task)})
                            placements.extend(map(tuple, ack["placements"]))

                        async def dead(payload):
                            raise ConnectionError("link down")

                        remote.request = dead  # the wire goes dark
                        first = await router.probe_remotes()
                        attached_after_first = remote.name in router.shard_names()
                        second = await router.probe_remotes()
                        counters = router.router_counters()
                        for event in events[4:]:
                            ack = await router.handle({
                                "op": "session_submit", "session": sid,
                                "task": task_payload(event.task)})
                            assert ack["ok"] and ack["shard"] == "shard-1"
                            placements.extend(map(tuple, ack["placements"]))
                        result = await router.handle({"op": "session_result",
                                                      "session": sid})
                        names = router.shard_names()
                finally:
                    server.close()
                    await server.wait_closed()
            return (first, attached_after_first, second, counters, placements,
                    result, names, remote.name)

        (first, attached_after_first, second, counters, placements,
         result, names, remote_name) = run(scenario())
        assert first == 1 and attached_after_first  # one strike: still in
        assert second == 1 and remote_name not in names  # two strikes: reaped
        assert counters["probes"] == 2
        assert counters["probe_failures"] == 2
        assert counters["shards_lost"] == 1
        assert counters["sessions_replayed"] == 1  # reaping replayed its pin
        assert counters["sessions_lost"] == 0
        local = create_online("online_greedy", m=2)
        expected_placements = [(e.task.id, local.submit(e.task)) for e in events]
        expected = local.finalize()
        assert placements == expected_placements
        assert result["result"]["cmax"] == expected.cmax

    @pytest.mark.remote
    def test_stats_survives_remote_dying_between_probe_rounds(self):
        """A dead-but-not-yet-reaped remote must fail requests fast.

        ``ClusterRouter.stats`` fans ``{"op": "stats"}`` out to every
        shard with no timeout.  Once the client's reader hits EOF it
        fails the futures pending *at that moment* — but a request
        issued afterwards used to park a fresh future that no reader
        would ever resolve, hanging the whole stats op until the probe
        loop happened to reap the remote (or forever, with a long
        ``probe_interval``).  The client now latches a dead state at
        EOF and raises ``ConnectionError`` immediately.
        """

        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as service:
                server = await serve_tcp(service, port=0,
                                         shutdown=asyncio.Event())
                port = server.sockets[0].getsockname()[1]
                try:
                    # probe_interval=60: no probe round will reap the
                    # remote before stats() fans out — the exact window
                    # the hang lived in.
                    config = inproc_config(shards=1, probe_interval=60.0)
                    async with ClusterRouter(config) as router:
                        remote = await router.attach_shard(
                            f"127.0.0.1:{port}")
                        client = remote._client
                        # Drop the transport under the handle and wait
                        # for the reader to see it die.
                        client._writer.close()
                        await client._reader_task
                        with pytest.raises(ConnectionError):
                            await asyncio.wait_for(
                                remote.request({"op": "ping"}), timeout=2.0)
                        stats = await asyncio.wait_for(router.stats(),
                                                       timeout=5.0)
                        counters = router.router_counters()
                        return remote.alive, remote.name, stats, counters
                finally:
                    server.close()
                    await server.wait_closed()

        alive, remote_name, stats, counters = run(scenario())
        assert alive is False  # stats' ConnectionError marked it dead
        assert counters["shards_lost"] == 1
        assert counters["shards_alive"] == 1  # the local shard carries on


# --------------------------------------------------------------------------- #
# acceptance: SIGKILL of a remote holding a mid-stream session
# --------------------------------------------------------------------------- #
class TestRemoteFailoverEndToEnd:
    @pytest.mark.remote
    def test_three_shard_cluster_survives_sigkill_of_pinned_remote(self, tmp_path):
        import os
        import re
        import signal
        import subprocess
        import sys
        from pathlib import Path

        trace = stochastic_trace(n=30, m=3, seed=11)
        events = list(trace)
        cut = len(events) // 2

        src = Path(__file__).resolve().parent.parent / "src"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1", "--cache", str(tmp_path / "remote-cache")],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            start_new_session=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        try:
            banner = proc.stderr.readline().decode()
            match = re.search(r"listening on 127\.0\.0\.1:(\d+)", banner)
            assert match, f"no listening banner in {banner!r}"
            port = int(match.group(1))

            async def submit(router, sid, event, acked):
                request = {"op": "session_submit", "session": sid,
                           "task": task_payload(event.task)}
                if not acked:
                    request["ack"] = False
                return await router.handle(request)

            async def scenario():
                config = inproc_config(
                    shards=2, attach=f"127.0.0.1:{port}",
                    probe_interval=0.2, probe_failures=1,
                )
                async with ClusterRouter(config) as router:
                    opened = await router.handle({
                        "op": "session_open", "spec": "online_sbo(delta=1.0)",
                        "m": 3})
                    sid = opened["session"]
                    # 3 routable shards, and the session pins to the remote.
                    assert len(router.shard_names()) == 3
                    assert opened["shard"].startswith("remote-")
                    placements = []
                    # Every 4th line unacked — including the *last* one
                    # before the kill, so a windowed batch is in flight.
                    for i, event in enumerate(events[:cut]):
                        ack = await submit(router, sid, event,
                                           acked=i % 4 != 2)
                        if ack is not None:
                            placements.extend(map(tuple, ack["placements"]))

                    # The remote host dies hard, windowed batch in flight.
                    os.killpg(proc.pid, signal.SIGKILL)
                    proc.wait(timeout=10)

                    for i, event in enumerate(events[cut:]):
                        ack = await submit(router, sid, event,
                                           acked=i % 4 != 1)
                        if ack is not None:
                            assert ack["ok"], ack
                            assert not ack["shard"].startswith("remote-")
                            placements.extend(map(tuple, ack["placements"]))
                    result = await router.handle({"op": "session_result",
                                                  "session": sid})
                    stats = await router.stats()
                return opened, placements, result, stats

            opened, placements, result, stats = run(scenario())
        finally:
            if proc.poll() is None:  # pragma: no cover - only on test failure
                import os
                import signal

                os.killpg(proc.pid, signal.SIGKILL)
                proc.wait(timeout=10)

        # Bit-identical to the uninterrupted single-scheduler run: every
        # placement (including the unacked lines in flight at the kill,
        # flushed by later acks) and the final objectives.
        local = create_online("online_sbo(delta=1.0)", m=3)
        expected_placements = [(e.task.id, local.submit(e.task)) for e in events]
        expected = local.finalize()
        assert placements == expected_placements
        assert result["ok"]
        assert result["result"]["cmax"] == expected.cmax
        assert result["result"]["mmax"] == expected.mmax
        assert dict(map(tuple, result["result"]["assignment"])) \
            == expected.schedule.assignment

        # Ledgers: the crash is a replay, not a loss, and nothing leaks.
        assert stats.lost == 0
        assert stats.router["sessions_replayed"] == 1
        assert stats.router["sessions_lost"] == 0
        assert stats.router["replays_failed"] == 0
        assert stats.router["shards_attached"] == 1
        assert stats.router["shards_lost"] == 1
        assert stats.router["sessions_pinned"] == 1
