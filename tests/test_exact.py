"""Unit tests for repro.algorithms.exact."""

from __future__ import annotations

import itertools

import pytest

from repro.algorithms.exact import (
    ExactSizeError,
    exact_cmax,
    exact_constrained_cmax,
    exact_mmax,
    exact_schedule,
    pareto_front_exact,
)
from repro.algorithms.lpt import lpt_schedule
from repro.core.instance import Instance
from repro.core.validation import validate_schedule
from repro.workloads.independent import uniform_instance


def brute_force_cmax(instance: Instance) -> float:
    """Reference: enumerate every assignment."""
    best = float("inf")
    tasks = instance.tasks.tasks
    for combo in itertools.product(range(instance.m), repeat=instance.n):
        loads = [0.0] * instance.m
        for task, proc in zip(tasks, combo):
            loads[proc] += task.p
        best = min(best, max(loads))
    return best


class TestExactCmax:
    def test_matches_brute_force(self):
        for seed in range(4):
            inst = uniform_instance(7, 3, seed=seed)
            assert exact_cmax(inst) == pytest.approx(brute_force_cmax(inst))

    def test_known_value(self):
        inst = Instance.from_lists(p=[5, 4, 3, 3, 3], s=[0] * 5, m=2)
        assert exact_cmax(inst) == 9.0

    def test_single_processor(self):
        inst = Instance.from_lists(p=[1, 2, 3], s=[0] * 3, m=1)
        assert exact_cmax(inst) == 6.0

    def test_empty(self):
        inst = Instance.from_lists(p=[], s=[], m=2)
        assert exact_cmax(inst) == 0.0

    def test_never_above_lpt(self):
        for seed in range(4):
            inst = uniform_instance(10, 3, seed=seed)
            assert exact_cmax(inst) <= lpt_schedule(inst).cmax + 1e-9

    def test_size_limit(self):
        inst = uniform_instance(30, 2, seed=0)
        with pytest.raises(ExactSizeError):
            exact_cmax(inst)

    def test_exact_mmax_is_swapped_cmax(self, medium_instance):
        assert exact_mmax(medium_instance) == pytest.approx(exact_cmax(medium_instance.swapped()))


class TestExactSchedule:
    def test_schedule_achieves_optimum(self, medium_instance):
        sched = exact_schedule(medium_instance, objective="time")
        assert sched.cmax == pytest.approx(exact_cmax(medium_instance))
        assert validate_schedule(sched).ok

    def test_memory_objective(self, medium_instance):
        sched = exact_schedule(medium_instance, objective="memory")
        assert sched.mmax == pytest.approx(exact_mmax(medium_instance))

    def test_unknown_objective(self, small_instance):
        with pytest.raises(ValueError):
            exact_schedule(small_instance, objective="entropy")


class TestParetoFrontExact:
    def test_small_front(self, small_instance):
        front = pareto_front_exact(small_instance)
        values = front.values()
        assert values  # non-empty
        # Front points are mutually non-dominated.
        for a in values:
            for b in values:
                if a != b:
                    assert not (a[0] <= b[0] and a[1] <= b[1])

    def test_extremes_match_single_objective_optima(self, small_instance):
        front = pareto_front_exact(small_instance)
        best_c = front.best_on(0).values[0]
        best_m = front.best_on(1).values[1]
        assert best_c == pytest.approx(exact_cmax(small_instance))
        assert best_m == pytest.approx(exact_mmax(small_instance))

    def test_payload_schedules_achieve_their_values(self, small_instance):
        front = pareto_front_exact(small_instance, keep_schedules=True)
        for point in front.points():
            sched = point.payload
            assert sched is not None
            assert (sched.cmax, sched.mmax) == point.values
            assert validate_schedule(sched).ok

    def test_no_schedules_when_disabled(self, small_instance):
        front = pareto_front_exact(small_instance, keep_schedules=False)
        assert all(p.payload is None for p in front.points())

    def test_empty_instance(self):
        inst = Instance.from_lists(p=[], s=[], m=2)
        front = pareto_front_exact(inst)
        assert front.values() == [(0.0, 0.0)]

    def test_size_limit(self):
        inst = uniform_instance(20, 2, seed=0)
        with pytest.raises(ExactSizeError):
            pareto_front_exact(inst)

    def test_symmetry_of_swapped_instance(self, small_instance):
        front = set(pareto_front_exact(small_instance).values())
        swapped_front = set(pareto_front_exact(small_instance.swapped()).values())
        assert {(m, c) for c, m in front} == swapped_front


class TestExactConstrained:
    def test_matches_pareto_front(self, small_instance):
        front = pareto_front_exact(small_instance)
        # Pick the memory value of the front's memory-optimal point as capacity.
        capacity = front.best_on(1).values[1]
        best = exact_constrained_cmax(small_instance, capacity)
        assert best is not None
        assert best.mmax <= capacity + 1e-9
        expected = min(c for c, m in front.values() if m <= capacity + 1e-9)
        assert best.cmax == pytest.approx(expected)

    def test_infeasible_capacity(self, small_instance):
        assert exact_constrained_cmax(small_instance, 0.5) is None

    def test_loose_capacity_gives_cmax_optimum(self, small_instance):
        best = exact_constrained_cmax(small_instance, 1e9)
        assert best is not None
        assert best.cmax == pytest.approx(exact_cmax(small_instance))
