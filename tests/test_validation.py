"""Unit tests for repro.core.validation."""

from __future__ import annotations

import pytest

from repro.core.schedule import DAGSchedule, Schedule
from repro.core.validation import ValidationError, check_schedule, validate_schedule


class TestIndependentValidation:
    def test_valid_schedule(self, small_instance):
        sched = Schedule(small_instance, {0: 0, 1: 1, 2: 0, 3: 1, 4: 0})
        report = validate_schedule(sched)
        assert report.ok and not report.violations
        assert bool(report) is True

    def test_capacity_violation(self, small_instance):
        sched = Schedule(small_instance, {0: 0, 1: 0, 2: 0, 3: 0, 4: 0})
        report = validate_schedule(sched, memory_capacity=10.0)
        assert not report.ok
        assert any("capacity" in v or "exceeding" in v for v in report.violations)

    def test_capacity_satisfied(self, small_instance):
        sched = Schedule(small_instance, {0: 0, 1: 1, 2: 0, 3: 1, 4: 0})
        assert validate_schedule(sched, memory_capacity=9.0).ok

    def test_check_schedule_raises(self, small_instance):
        sched = Schedule(small_instance, {0: 0, 1: 0, 2: 0, 3: 0, 4: 0})
        with pytest.raises(ValidationError):
            check_schedule(sched, memory_capacity=1.0)

    def test_check_schedule_passes(self, small_instance):
        sched = Schedule(small_instance, {0: 0, 1: 1, 2: 0, 3: 1, 4: 0})
        check_schedule(sched)  # does not raise


class TestDAGValidation:
    def _valid(self, diamond_dag) -> DAGSchedule:
        return DAGSchedule(
            diamond_dag,
            {"a": 0, "b": 0, "c": 1, "d": 0},
            {"a": 0.0, "b": 2.0, "c": 2.0, "d": 6.0},
        )

    def test_valid_dag_schedule(self, diamond_dag):
        assert validate_schedule(self._valid(diamond_dag)).ok

    def test_overlap_detected(self, diamond_dag):
        sched = DAGSchedule(
            diamond_dag,
            {"a": 0, "b": 0, "c": 1, "d": 0},
            {"a": 0.0, "b": 1.0, "c": 2.0, "d": 6.0},  # b overlaps a on P0
        )
        report = validate_schedule(sched)
        assert not report.ok
        assert any("overlap" in v for v in report.violations)

    def test_precedence_violation_detected(self, diamond_dag):
        sched = DAGSchedule(
            diamond_dag,
            {"a": 0, "b": 1, "c": 1, "d": 0},
            {"a": 0.0, "b": 1.0, "c": 4.0, "d": 8.0},  # b starts before a completes
        )
        report = validate_schedule(sched)
        assert not report.ok
        assert any("precedence" in v for v in report.violations)

    def test_multiple_violations_all_reported(self, diamond_dag):
        sched = DAGSchedule(
            diamond_dag,
            {"a": 0, "b": 0, "c": 0, "d": 0},
            {"a": 0.0, "b": 0.0, "c": 0.0, "d": 0.0},
        )
        report = validate_schedule(sched)
        assert not report.ok
        assert len(report.violations) >= 2

    def test_zero_length_tasks_no_false_overlap(self, zero_memory_instance):
        dag = zero_memory_instance.as_dag()
        sched = DAGSchedule(
            dag,
            {t.id: 0 for t in dag.tasks},
            {0: 0.0, 1: 3.0, 2: 5.0, 3: 6.0},
        )
        assert validate_schedule(sched).ok

    def test_raise_if_invalid_message(self, diamond_dag):
        sched = DAGSchedule(
            diamond_dag,
            {"a": 0, "b": 0, "c": 1, "d": 0},
            {"a": 0.0, "b": 0.5, "c": 2.0, "d": 6.0},
        )
        report = validate_schedule(sched)
        with pytest.raises(ValidationError):
            report.raise_if_invalid()
