"""Smoke tests: every script under examples/ runs to completion.

The examples double as living documentation of the unified solve() API,
so each one is executed in a subprocess (with src/ on the path, matching
the documented `PYTHONPATH=src` invocation) and must exit cleanly and
produce output.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES_DIR = REPO_ROOT / "examples"

EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLE_SCRIPTS) >= 5


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.name)
def test_example_runs(script: Path):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, f"{script.name} failed:\n{proc.stderr}"
    assert proc.stdout.strip(), f"{script.name} produced no output"
