"""Unit tests for repro.core.pareto_approx."""

from __future__ import annotations

import pytest

from repro.algorithms.exact import pareto_front_exact
from repro.core.bounds import cmax_lower_bound, mmax_lower_bound
from repro.core.pareto import dominates
from repro.core.pareto_approx import (
    approximate_pareto_set,
    approximate_pareto_set_dag,
    delta_grid,
)
from repro.core.validation import validate_schedule
from repro.dag.generators import layered_dag
from repro.workloads.independent import anti_correlated_instance, uniform_instance


class TestDeltaGrid:
    def test_geometric_spacing(self):
        grid = delta_grid(0.5, 1.0, 8.0)
        assert grid[0] == 1.0 and grid[-1] == 8.0
        for a, b in zip(grid, grid[1:]):
            assert b <= a * 1.5 + 1e-12

    def test_single_point_when_min_equals_max(self):
        assert delta_grid(0.25, 2.0, 2.0) == [2.0]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            delta_grid(0.0, 1.0, 2.0)
        with pytest.raises(ValueError):
            delta_grid(0.5, 3.0, 2.0)
        with pytest.raises(ValueError):
            delta_grid(0.5, 0.0, 2.0)


class TestApproximateParetoSetIndependent:
    def test_front_is_nondominated(self):
        inst = anti_correlated_instance(40, 4, seed=2)
        approx = approximate_pareto_set(inst, epsilon=0.3)
        points = approx.points
        assert points
        for a in points:
            for b in points:
                if a != b:
                    assert not dominates(a, b) or not dominates(b, a)

    def test_schedules_are_valid_and_match_points(self):
        inst = uniform_instance(30, 3, seed=1)
        approx = approximate_pareto_set(inst, epsilon=0.5)
        for point, schedule in zip(approx.points, approx.front.payloads()):
            assert schedule is not None
            assert validate_schedule(schedule).ok
            assert (schedule.cmax, schedule.mmax) == point

    def test_covers_both_extremes(self):
        inst = anti_correlated_instance(40, 4, seed=5)
        approx = approximate_pareto_set(inst, epsilon=0.25)
        best_c = min(c for c, _ in approx.points)
        best_m = min(m for _, m in approx.points)
        # The extreme points must be within the corner guarantees of the bounds.
        assert best_c <= 2.0 * cmax_lower_bound(inst) * (1 + 1e-9)
        assert best_m <= 2.0 * mmax_lower_bound(inst) * (1 + 1e-9)

    def test_best_under_memory_and_makespan(self):
        inst = anti_correlated_instance(40, 4, seed=7)
        approx = approximate_pareto_set(inst, epsilon=0.25)
        capacity = sorted(m for _, m in approx.points)[len(approx.points) // 2]
        chosen = approx.best_under_memory(capacity)
        assert chosen is not None and chosen.mmax <= capacity + 1e-9
        deadline = sorted(c for c, _ in approx.points)[len(approx.points) // 2]
        chosen2 = approx.best_under_makespan(deadline)
        assert chosen2 is not None and chosen2.cmax <= deadline + 1e-9

    def test_best_under_impossible_budget_returns_none(self):
        inst = uniform_instance(20, 3, seed=0)
        approx = approximate_pareto_set(inst, epsilon=0.5)
        assert approx.best_under_memory(0.0) is None

    def test_not_far_from_exact_front_on_small_instances(self):
        inst = uniform_instance(9, 3, seed=4)
        approx = approximate_pareto_set(inst, epsilon=0.2, solver="exact")
        exact = pareto_front_exact(inst).values()
        # Every exact point is covered within the SBO guarantee factors.
        for c_star, m_star in exact:
            assert any(
                c <= 2.2 * max(c_star, 1e-12) and m <= 2.2 * max(m_star, 1e-12)
                for c, m in approx.points
            )

    def test_metadata(self):
        inst = uniform_instance(15, 2, seed=0)
        approx = approximate_pareto_set(inst, epsilon=0.5, delta_min=0.5, delta_max=4.0)
        assert approx.algorithm == "sbo"
        assert approx.epsilon == 0.5
        assert approx.deltas[0] == 0.5 and approx.deltas[-1] == 4.0
        assert len(approx) == len(approx.points)


class TestApproximateParetoSetDAG:
    def test_dag_front_valid(self):
        dag = layered_dag(5, 4, m=4, seed=3)
        approx = approximate_pareto_set_dag(dag, epsilon=0.3)
        assert approx.algorithm == "rls"
        assert approx.points
        lb = mmax_lower_bound(dag)
        for (c, m), schedule in zip(approx.points, approx.front.payloads()):
            assert validate_schedule(schedule).ok
            assert m <= 16.0 * lb + 1e-9

    def test_infeasible_deltas_skipped(self):
        # delta_min below the feasibility threshold: those grid points are skipped.
        dag = layered_dag(4, 3, m=2, seed=0)
        approx = approximate_pareto_set_dag(dag, epsilon=0.5, delta_min=0.1)
        assert approx.points  # the >= 2 part of the grid always succeeds
        assert all(d > 0 for d in approx.deltas)

    def test_invalid_delta_min(self):
        dag = layered_dag(3, 2, m=2, seed=0)
        with pytest.raises(ValueError):
            approximate_pareto_set_dag(dag, delta_min=0.0)

    def test_independent_instance_accepted(self):
        inst = uniform_instance(20, 3, seed=2)
        approx = approximate_pareto_set_dag(inst, epsilon=0.5)
        assert approx.points
