"""Tests for the content-addressed result cache (repro.solvers.cache).

Three property families, exercised with seeded-random instances:

* ``content_hash`` is **stable** — the same content always hashes the
  same, across construction paths, cosmetic renames, JSON round-trips,
  and process restarts (a pinned literal digest guards the format);
* ``content_hash`` is **collision-distinct** — any semantic perturbation
  (p, s, m, task order, edges, speeds) changes the digest;
* cached and uncached ``solve()`` results agree **field by field**.
"""

from __future__ import annotations

import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.instance import DAGInstance, Instance
from repro.core.task import Task, TaskSet
from repro.extensions.uniform_machines import UniformInstance
from repro.solvers import (
    DiskCache,
    LRUCache,
    cache_key,
    configure_cache,
    default_cache,
    solve,
)

# A fixed reference instance and the pinned *literal* digest of its content.
# If the pin fails, the hash format changed: every persistent cache in the
# wild is silently invalidated, so bump this constant *consciously*.
REFERENCE = Instance.from_lists(p=[4, 3, 2, 2, 1], s=[1, 5, 2, 4, 3], m=2)
REFERENCE_HASH = "3d7197ccfe57dd3fce443c9de431e8480cf115e5903bb8623adb3c1f16558b72"


def random_instance(rng: random.Random, n: int = 8, m: int = 3) -> Instance:
    p = [round(rng.uniform(1, 50), 3) for _ in range(n)]
    s = [round(rng.uniform(1, 50), 3) for _ in range(n)]
    return Instance.from_lists(p=p, s=s, m=m)


class TestContentHashStability:
    def test_pinned_reference_digest(self):
        # REFERENCE_HASH is a hard-coded literal, so this really detects a
        # fingerprint-format change (unlike comparing the function to itself).
        assert REFERENCE.content_hash() == REFERENCE_HASH

    def test_identity_invariance_across_construction_paths(self):
        via_lists = Instance.from_lists(p=[4, 3, 2, 2, 1], s=[1, 5, 2, 4, 3], m=2)
        via_tasks = Instance(
            TaskSet(Task(id=i, p=p, s=s) for i, (p, s) in
                    enumerate(zip([4, 3, 2, 2, 1], [1, 5, 2, 4, 3]))),
            m=2,
        )
        via_json = Instance.from_json(via_lists.to_json())
        assert via_lists.content_hash() == via_tasks.content_hash() == via_json.content_hash()
        assert via_lists.content_hash() == REFERENCE_HASH

    def test_name_and_label_are_cosmetic(self):
        renamed = Instance.from_lists(p=[4, 3, 2, 2, 1], s=[1, 5, 2, 4, 3], m=2, name="zzz")
        assert renamed.content_hash() == REFERENCE_HASH
        labelled = Instance(
            TaskSet(Task(id=i, p=t.p, s=t.s, label=f"task-{i}")
                    for i, t in enumerate(REFERENCE.tasks)),
            m=2,
        )
        assert labelled.content_hash() == REFERENCE_HASH

    def test_stable_across_process_restart(self):
        code = (
            "from repro.core.instance import Instance\n"
            "inst = Instance.from_lists(p=[4, 3, 2, 2, 1], s=[1, 5, 2, 4, 3], m=2)\n"
            "print(inst.content_hash())\n"
        )
        src = Path(__file__).resolve().parents[1] / "src"
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == REFERENCE_HASH

    def test_json_roundtrip_preserves_hash_randomized(self):
        rng = random.Random(20260728)
        for _ in range(25):
            inst = random_instance(rng, n=rng.randint(1, 12), m=rng.randint(1, 5))
            assert Instance.from_json(inst.to_json()).content_hash() == inst.content_hash()

    def test_dag_roundtrip_preserves_hash(self):
        dag = DAGInstance.from_lists(
            p=[3, 2, 1, 4], s=[1, 1, 2, 2], m=2, edges=[(0, 1), (0, 2), (2, 3)]
        )
        assert DAGInstance.from_json(dag.to_json()).content_hash() == dag.content_hash()


class TestContentHashDistinctness:
    def test_semantic_perturbations_change_hash(self):
        rng = random.Random(1234)
        for _ in range(25):
            inst = random_instance(rng)
            base = inst.content_hash()
            tasks = inst.tasks.as_tuples()
            idx = rng.randrange(len(tasks))
            perturbed_p = [(i, p + 0.5, s) if j == idx else (i, p, s)
                           for j, (i, p, s) in enumerate(tasks)]
            perturbed_s = [(i, p, s + 0.5) if j == idx else (i, p, s)
                           for j, (i, p, s) in enumerate(tasks)]
            for triples in (perturbed_p, perturbed_s):
                other = Instance.from_lists(
                    p=[p for _, p, _ in triples], s=[s for _, _, s in triples],
                    ids=[i for i, _, _ in triples], m=inst.m,
                )
                assert other.content_hash() != base
            assert inst.with_m(inst.m + 1).content_hash() != base

    def test_task_order_matters(self):
        # Task order is the tie-breaking "arbitrary total ordering" of the
        # paper, so reordering can change solver output — must change the key.
        a = Instance.from_lists(p=[1, 2], s=[2, 1], m=2, ids=["x", "y"])
        b = Instance.from_lists(p=[2, 1], s=[1, 2], m=2, ids=["y", "x"])
        assert a.content_hash() != b.content_hash()

    def test_kind_edges_and_speeds_distinguish(self):
        base = Instance.from_lists(p=[3, 2, 1], s=[1, 1, 1], m=2)
        as_dag = base.as_dag()
        with_edge = DAGInstance.from_lists(p=[3, 2, 1], s=[1, 1, 1], m=2, edges=[(0, 1)])
        reversed_edge = DAGInstance.from_lists(p=[3, 2, 1], s=[1, 1, 1], m=2, edges=[(1, 0)])
        uniform = UniformInstance.from_lists(p=[3, 2, 1], s=[1, 1, 1], speeds=[1.0, 1.0])
        faster = UniformInstance.from_lists(p=[3, 2, 1], s=[1, 1, 1], speeds=[1.0, 2.0])
        hashes = [inst.content_hash()
                  for inst in (base, as_dag, with_edge, reversed_edge, uniform, faster)]
        assert len(set(hashes)) == len(hashes)

    def test_cache_key_includes_spec(self):
        assert cache_key(REFERENCE, "lpt(objective=time)") != cache_key(
            REFERENCE, "lpt(objective=memory)"
        )
        assert cache_key(REFERENCE_HASH, "lpt") == cache_key(REFERENCE, "lpt")

    def test_cache_key_includes_version(self, monkeypatch):
        # A version bump must invalidate persistent caches: intended
        # behaviour changes ship as releases, and stale results from an
        # older solver must not be served as hits.
        import repro

        before = cache_key(REFERENCE, "lpt")
        monkeypatch.setattr(repro, "__version__", repro.__version__ + ".post-test")
        assert cache_key(REFERENCE, "lpt") != before


class TestCachedSolveEquivalence:
    SPECS = [
        "lpt", "sbo(delta=0.5)", "sbo(delta=2.0, inner=multifit)",
        "rls(delta=2.5)", "trio(delta=2.5)", "constrained(budget=9)",
        "pareto_approx(epsilon=0.5)",
    ]

    @pytest.mark.parametrize("spec", SPECS)
    def test_hit_matches_miss_field_by_field(self, spec):
        inst = Instance.from_lists(p=[4, 3, 2, 2, 1, 6], s=[1, 5, 2, 4, 3, 2], m=3)
        cache = LRUCache()
        cold = solve(inst, spec, cache=cache)
        warm = solve(inst, spec, cache=cache)
        assert cold.provenance["cache"] == "miss"
        assert warm.provenance["cache"] == "hit"
        assert warm.objectives == cold.objectives
        assert warm.guarantee == cold.guarantee
        assert warm.feasible == cold.feasible
        if cold.feasible:
            assert warm.schedule.assignment == cold.schedule.assignment
        # wall_time is preserved from the original computation; everything
        # else in provenance except the hit/miss marker must be identical.
        assert warm.wall_time == cold.wall_time
        cold_prov = {k: v for k, v in cold.provenance.items() if k != "cache"}
        warm_prov = {k: v for k, v in warm.provenance.items() if k != "cache"}
        assert warm_prov == cold_prov
        # ... and both match a cache-free solve on the measured objectives.
        plain = solve(inst, spec, cache=False)
        assert plain.objectives == cold.objectives
        assert "cache" not in plain.provenance

    def test_uncached_solve_untouched_by_default(self):
        result = solve(REFERENCE, "lpt")
        assert "cache" not in result.provenance


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(maxsize=2)
        r = solve(REFERENCE, "lpt", cache=False)
        cache.put("a", r)
        cache.put("b", r)
        assert cache.get("a") is not None  # refresh "a": "b" becomes LRU
        cache.put("c", r)
        assert len(cache) == 2
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None

    def test_stats_counters(self):
        cache = LRUCache()
        solve(REFERENCE, "lpt", cache=cache)
        solve(REFERENCE, "lpt", cache=cache)
        solve(REFERENCE, "spt", cache=cache)
        assert cache.stats.hits == 1 and cache.stats.misses == 2
        assert cache.stats.lookups == 3
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)


class TestDiskCache:
    def test_persists_across_cache_objects(self, tmp_path):
        first = DiskCache(tmp_path / "cache")
        cold = solve(REFERENCE, "rls(delta=2.5)", cache=first)
        assert cold.provenance["cache"] == "miss"
        second = DiskCache(tmp_path / "cache")  # fresh object, same directory
        warm = solve(REFERENCE, "rls(delta=2.5)", cache=second)
        assert warm.provenance["cache"] == "hit"
        assert warm.objectives == cold.objectives
        assert len(second) == 1

    def test_path_argument_builds_disk_cache(self, tmp_path):
        directory = tmp_path / "bypath"
        cold = solve(REFERENCE, "lpt", cache=str(directory))
        warm = solve(REFERENCE, "lpt", cache=str(directory))
        assert cold.provenance["cache"] == "miss"
        assert warm.provenance["cache"] == "hit"

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        solve(REFERENCE, "lpt", cache=cache)
        entry = next((tmp_path).rglob("*.pkl"))
        entry.write_bytes(b"not a pickle")
        fresh = DiskCache(tmp_path)
        result = solve(REFERENCE, "lpt", cache=fresh)
        assert result.provenance["cache"] == "miss"
        assert result.feasible

    def test_clear(self, tmp_path):
        cache = DiskCache(tmp_path)
        solve(REFERENCE, "lpt", cache=cache)
        solve(REFERENCE, "spt", cache=cache)
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0

    def test_unpicklable_result_degrades_to_uncached(self, tmp_path):
        # Storing must never raise: a result whose native object cannot be
        # pickled is simply not written (caching is an optimization).
        from dataclasses import replace

        cache = DiskCache(tmp_path)
        result = solve(REFERENCE, "lpt", cache=False)
        poisoned = replace(result, raw=lambda: None)  # lambdas do not pickle
        cache.put("some-key", poisoned)
        assert len(cache) == 0
        assert cache.get("some-key") is None


class TestProcessDefault:
    def teardown_method(self):
        configure_cache(None)

    def test_configure_and_disable(self):
        installed = configure_cache()
        assert default_cache() is installed and isinstance(installed, LRUCache)
        first = solve(REFERENCE, "lpt")
        second = solve(REFERENCE, "lpt")
        assert first.provenance["cache"] == "miss"
        assert second.provenance["cache"] == "hit"
        # cache=False bypasses the default; the default stays warm.
        bypass = solve(REFERENCE, "lpt", cache=False)
        assert "cache" not in bypass.provenance
        configure_cache(None)
        assert default_cache() is None
        assert "cache" not in solve(REFERENCE, "lpt").provenance

    def test_configure_with_directory(self, tmp_path):
        configure_cache(tmp_path / "proc-cache")
        assert isinstance(default_cache(), DiskCache)
        solve(REFERENCE, "lpt")
        assert len(default_cache()) == 1

    def test_invalid_cache_argument(self):
        with pytest.raises(TypeError):
            solve(REFERENCE, "lpt", cache=3.14)

    def test_cache_true_requires_installed_default(self):
        # Per-call arguments must not have process-wide side effects, and a
        # call-local cache could never hit — so plain True is an error.
        configure_cache(None)
        with pytest.raises(TypeError, match="configure_cache"):
            solve(REFERENCE, "lpt", cache=True)
        assert default_cache() is None

    def test_cache_true_uses_installed_default(self):
        installed = configure_cache()
        solve(REFERENCE, "lpt", cache=True)
        assert solve(REFERENCE, "lpt", cache=True).provenance["cache"] == "hit"
        assert installed.stats.hits == 1

    def test_custom_solver_never_cached(self):
        from repro.solvers import SolverCapabilities, SolverEntry, register
        from repro.solvers.registry import _REGISTRY

        def run_custom(instance, params):
            import math
            from repro.algorithms.lpt import lpt_schedule
            return lpt_schedule(instance), (math.inf, math.inf), None, {}

        register(SolverEntry(
            name="custom_cachetest", summary="test",
            capabilities=SolverCapabilities(), params=(), run=run_custom,
        ), replace=True)
        try:
            cache = LRUCache()
            first = solve(REFERENCE, "custom_cachetest", cache=cache)
            second = solve(REFERENCE, "custom_cachetest", cache=cache)
            assert len(cache) == 0 and cache.stats.lookups == 0
            assert "cache" not in first.provenance
            assert "cache" not in second.provenance
        finally:
            _REGISTRY.pop("custom_cachetest", None)


class TestDiskCacheSharding:
    def test_entries_land_in_key_prefix_shards(self, tmp_path):
        cache = DiskCache(tmp_path)
        solve(REFERENCE, "lpt", cache=cache)
        solve(REFERENCE, "spt", cache=cache)
        files = list(tmp_path.rglob("*.pkl"))
        assert len(files) == 2
        for path in files:
            assert path.parent != tmp_path, "entry not sharded into a subdirectory"
            assert path.parent.name == path.stem[:2]

    def test_every_golden_key_round_trips(self, tmp_path):
        # Sharding must be a pure layout change: every (instance, spec) key
        # of the golden corpus stores and loads through the sharded paths.
        import json

        from make_golden import GOLDEN_PATH, golden_instances
        from repro.solvers import get_entry
        from repro.solvers.spec import SolverSpec

        cache = DiskCache(tmp_path / "golden-cache")
        payload = solve(REFERENCE, "lpt", cache=False)
        instances = golden_instances()
        keys = []
        for case in json.loads(GOLDEN_PATH.read_text())["cases"]:
            spec = SolverSpec.parse(case["spec"])
            entry = get_entry(spec.name)
            canonical = entry.canonical_spec(entry.bind(spec.params))
            keys.append(cache_key(instances[case["instance"]], canonical))
        assert len(set(keys)) == len(keys)
        for key in keys:
            cache.put(key, payload)
        assert len(cache) == len(keys)
        for key in keys:
            assert cache.get(key) is not None, f"key {key} did not round-trip"

    def test_legacy_flat_entry_still_served(self, tmp_path):
        # Entries written by the pre-sharding layout must keep hitting.
        import pickle

        sharded = DiskCache(tmp_path)
        result = solve(REFERENCE, "lpt", cache=False)
        key = cache_key(REFERENCE, "lpt(objective=time)")
        (tmp_path / f"{key}.pkl").write_bytes(pickle.dumps(result))
        assert len(sharded) == 1
        assert sharded.get(key) is not None
        sharded.clear()
        assert len(sharded) == 0

    def test_storing_over_legacy_entry_removes_the_flat_copy(self, tmp_path):
        # Re-storing a migrated key must not leave two files for one key
        # (double-counted size would eat the max_bytes budget forever).
        import pickle

        cache = DiskCache(tmp_path)
        result = solve(REFERENCE, "lpt", cache=False)
        key = cache_key(REFERENCE, "lpt(objective=time)")
        (tmp_path / f"{key}.pkl").write_bytes(pickle.dumps(result))
        cache.put(key, result)
        assert len(cache) == 1
        assert not (tmp_path / f"{key}.pkl").exists()
        assert cache._path(key).exists()
        assert cache.size_bytes() == sum(
            p.stat().st_size for p in tmp_path.rglob("*.pkl")
        )


class TestDiskCacheEviction:
    @staticmethod
    def _fill(cache, count):
        result = solve(REFERENCE, "lpt", cache=False)
        keys = [f"{i:02x}{'0' * 62}" for i in range(count)]
        for key in keys:
            cache.put(key, result)
        return keys

    @staticmethod
    def _total_bytes(directory):
        return sum(p.stat().st_size for p in directory.rglob("*.pkl"))

    def test_unbounded_by_default(self, tmp_path):
        cache = DiskCache(tmp_path)
        self._fill(cache, 8)
        assert len(cache) == 8

    def test_trim_respects_max_bytes(self, tmp_path):
        probe = DiskCache(tmp_path / "probe")
        self._fill(probe, 1)
        entry_size = self._total_bytes(tmp_path / "probe")
        assert entry_size > 0

        bound = 3 * entry_size + entry_size // 2  # room for exactly 3 entries
        cache = DiskCache(tmp_path / "bounded", max_bytes=bound)
        self._fill(cache, 10)
        assert self._total_bytes(tmp_path / "bounded") <= bound
        assert 1 <= len(cache) <= 3
        assert cache.size_bytes() == self._total_bytes(tmp_path / "bounded")

    def test_trim_evicts_least_recently_used_first(self, tmp_path):
        import os as _os

        cache = DiskCache(tmp_path, max_bytes=10**9)
        keys = self._fill(cache, 4)
        # Pin explicit recency: keys[0] oldest ... keys[3] newest, then
        # refresh keys[0] with a hit (hits bump mtime) so keys[1] is LRU.
        for rank, key in enumerate(keys):
            _os.utime(cache._path(key), (1000.0 + rank, 1000.0 + rank))
        now = 2000.0
        _os.utime(cache._path(keys[0]), (now, now))
        entry_size = cache._path(keys[0]).stat().st_size
        cache.max_bytes = 2 * entry_size + entry_size // 2
        cache._trim()
        assert cache.get(keys[1]) is None and cache.get(keys[2]) is None
        assert cache.get(keys[0]) is not None and cache.get(keys[3]) is not None

    def test_eviction_survives_fresh_cache_object(self, tmp_path):
        # A new DiskCache on a populated directory scans sizes lazily and
        # still enforces the bound on its first store.
        seed = DiskCache(tmp_path)
        self._fill(seed, 6)
        entry_size = self._total_bytes(tmp_path) // 6
        cache = DiskCache(tmp_path, max_bytes=2 * entry_size + entry_size // 2)
        cache.put("f" * 64, solve(REFERENCE, "lpt", cache=False))
        assert self._total_bytes(tmp_path) <= cache.max_bytes

    def test_invalid_max_bytes(self, tmp_path):
        with pytest.raises(ValueError):
            DiskCache(tmp_path, max_bytes=0)


class TestCorruptEntryAccounting:
    """The corrupt-entry bugfix: bad entries are unlinked *and* counted."""

    def test_corrupt_pickle_is_unlinked_and_counted(self, tmp_path):
        cache = DiskCache(tmp_path)
        solve(REFERENCE, "lpt", cache=cache)
        entry = next(tmp_path.rglob("*.pkl"))
        entry.write_bytes(b"not a pickle")
        fresh = DiskCache(tmp_path)
        key = entry.stem
        assert fresh.get(key) is None
        assert not entry.exists(), "corrupt entry must be removed from disk"
        assert fresh.stats.corrupt == 1

    def test_stale_non_result_payload_is_unlinked_and_counted(self, tmp_path):
        # A cleanly-unpickling payload that is not a SolveResult (a foreign
        # writer's leftovers) previously skipped the isinstance branch but
        # stayed on disk, re-read and re-skipped on every lookup.
        import pickle as _pickle

        cache = DiskCache(tmp_path)
        key = "ab" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(exist_ok=True)
        path.write_bytes(_pickle.dumps({"stale": "payload"}))
        assert cache.get(key) is None
        assert not path.exists(), "stale entry must be removed from disk"
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1

    def test_corrupt_counter_resets(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.stats.corrupt = 3
        cache.stats.reset()
        assert cache.stats.corrupt == 0

    def test_healthy_entries_unaffected(self, tmp_path):
        cache = DiskCache(tmp_path)
        miss = solve(REFERENCE, "lpt", cache=cache)
        hit = solve(REFERENCE, "lpt", cache=cache)
        assert miss.provenance["cache"] == "miss"
        assert hit.provenance["cache"] == "hit"
        assert cache.stats.corrupt == 0


class TestGetMany:
    def test_lru_get_many_matches_serial_gets(self):
        cache = LRUCache(maxsize=8)
        a = solve(REFERENCE, "lpt", cache=False)
        b = solve(REFERENCE, "spt", cache=False)
        cache.put("ka", a)
        cache.put("kb", b)
        got = cache.get_many(["ka", "missing", "kb"])
        assert got[0] is a and got[1] is None and got[2] is b
        assert cache.stats.hits == 2 and cache.stats.misses == 1

    def test_get_many_refreshes_lru_recency(self):
        cache = LRUCache(maxsize=2)
        a = solve(REFERENCE, "lpt", cache=False)
        b = solve(REFERENCE, "spt", cache=False)
        cache.put("ka", a)
        cache.put("kb", b)
        cache.get_many(["ka"])  # ka becomes most-recent; kb is LRU
        cache.put("kc", a)
        assert cache.get("kb") is None and cache.get("ka") is a

    def test_disk_get_many_base_loop(self, tmp_path):
        cache = DiskCache(tmp_path)
        result = solve(REFERENCE, "lpt", cache=False)
        cache.put("k" * 64, result)
        got = cache.get_many(["k" * 64, "m" * 64])
        assert got[0] is not None and got[1] is None
        assert cache.stats.hits == 1 and cache.stats.misses == 1


class TestContentHashMemoized:
    def test_hash_computed_once(self, monkeypatch):
        import hashlib as _hashlib

        inst = random_instance(random.Random(7))
        first = inst.content_hash()
        calls = []
        real = _hashlib.sha256

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(_hashlib, "sha256", counting)
        assert inst.content_hash() == first
        assert not calls, "memoized content_hash must not re-digest"

    def test_unpickled_pre_slot_instance_still_hashes(self):
        # Simulate an Instance unpickled from a cache written before the
        # _content_hash slot existed: the attribute is simply absent.
        import pickle as _pickle

        inst = random_instance(random.Random(8))
        expected = inst.content_hash()
        clone = _pickle.loads(_pickle.dumps(inst))
        object.__delattr__(clone, "_content_hash")
        assert clone.content_hash() == expected
