"""Golden-table generator for the EXT-P1 periodic utilization sweep.

Runs :func:`repro.experiments.periodic_study.run_periodic_study` at its
golden profile (the defaults: ``seeds=(0, 1)``, the standard
utilization × family × m grid — every cell deterministic) and pins the
full table bit-for-bit into ``tests/golden/periodic_study.json``,
including the EDF schedulability-boundary shape checks.

Regenerate only when an output change is *intended* (a scheduler change,
a consciously accepted generator change)::

    PYTHONPATH=src python tests/make_periodic_golden.py

``tests/test_periodic.py`` re-runs the same profile and compares every
row and every shape check against this fixture.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

from repro.experiments.periodic_study import run_periodic_study

PERIODIC_GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "periodic_study.json"


def compute_fixture() -> Dict[str, object]:
    result = run_periodic_study()
    return {
        "experiment_id": result.experiment_id,
        "headers": result.headers,
        "rows": result.rows,
        "checks": result.checks,
    }


def main() -> None:
    PERIODIC_GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    fixture = compute_fixture()
    PERIODIC_GOLDEN_PATH.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
    print(
        f"wrote {len(fixture['rows'])} golden rows "
        f"({sum(fixture['checks'].values())}/{len(fixture['checks'])} checks pass) "
        f"to {PERIODIC_GOLDEN_PATH}"
    )


if __name__ == "__main__":
    main()
