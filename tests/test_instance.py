"""Unit tests for repro.core.instance."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.instance import DAGInstance, Instance
from repro.core.task import Task, TaskSet


class TestInstance:
    def test_from_lists(self):
        inst = Instance.from_lists(p=[1, 2], s=[3, 4], m=2)
        assert inst.n == 2 and inst.m == 2
        assert inst.total_p == 3 and inst.total_s == 7

    def test_invalid_m_zero(self):
        with pytest.raises(ValueError, match="m must be >= 1"):
            Instance.from_lists(p=[1], s=[1], m=0)

    def test_invalid_m_type(self):
        with pytest.raises(TypeError):
            Instance.from_lists(p=[1], s=[1], m=2.5)  # type: ignore[arg-type]

    def test_invalid_m_bool(self):
        with pytest.raises(TypeError):
            Instance.from_lists(p=[1], s=[1], m=True)  # type: ignore[arg-type]

    def test_task_lookup(self, small_instance):
        assert small_instance.task(0).p == 4

    def test_swapped(self, small_instance):
        sw = small_instance.swapped()
        assert sw.task(0).p == small_instance.task(0).s
        assert sw.task(0).s == small_instance.task(0).p
        assert sw.m == small_instance.m

    def test_with_m(self, small_instance):
        inst = small_instance.with_m(7)
        assert inst.m == 7 and inst.tasks == small_instance.tasks

    def test_as_dag_roundtrip(self, small_instance):
        dag = small_instance.as_dag()
        assert isinstance(dag, DAGInstance)
        assert dag.is_independent()
        back = dag.as_independent()
        assert back.tasks == small_instance.tasks

    def test_equality(self):
        a = Instance.from_lists(p=[1, 2], s=[3, 4], m=2)
        b = Instance.from_lists(p=[1, 2], s=[3, 4], m=2)
        c = Instance.from_lists(p=[1, 2], s=[3, 4], m=3)
        assert a == b and a != c

    def test_json_roundtrip(self, small_instance):
        text = small_instance.to_json()
        back = Instance.from_json(text)
        assert back == small_instance
        assert back.name == "small"

    def test_dict_roundtrip_preserves_labels(self):
        tasks = TaskSet([Task(id="a", p=1, s=2, label="kernel")])
        inst = Instance(tasks, m=1)
        back = Instance.from_dict(inst.to_dict())
        assert back.task("a").label == "kernel"

    def test_empty_instance(self):
        inst = Instance(TaskSet(), m=2)
        assert inst.n == 0 and inst.total_p == 0


class TestDAGInstance:
    def test_basic_construction(self, diamond_dag):
        assert diamond_dag.n == 4
        assert diamond_dag.n_edges == 4
        assert set(diamond_dag.sources()) == {"a"}
        assert set(diamond_dag.sinks()) == {"d"}

    def test_predecessors_successors(self, diamond_dag):
        assert set(diamond_dag.predecessors("d")) == {"b", "c"}
        assert set(diamond_dag.successors("a")) == {"b", "c"}

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(ValueError, match="unknown task id"):
            DAGInstance.from_lists(p=[1, 2], s=[1, 2], m=1, edges=[(0, 99)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            DAGInstance.from_lists(p=[1], s=[1], m=1, edges=[(0, 0)])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            DAGInstance.from_lists(p=[1, 1, 1], s=[1, 1, 1], m=1, edges=[(0, 1), (1, 2), (2, 0)])

    def test_topological_order_is_valid(self, diamond_dag):
        order = diamond_dag.topological_order()
        pos = {tid: i for i, tid in enumerate(order)}
        for u, v in diamond_dag.graph.edges():
            assert pos[u] < pos[v]

    def test_is_independent(self, diamond_dag):
        assert not diamond_dag.is_independent()
        empty = DAGInstance.from_lists(p=[1, 2], s=[1, 2], m=2)
        assert empty.is_independent()

    def test_swapped_keeps_edges(self, diamond_dag):
        sw = diamond_dag.swapped()
        assert set(sw.graph.edges()) == set(diamond_dag.graph.edges())
        assert sw.task("a").p == diamond_dag.task("a").s

    def test_with_m(self, diamond_dag):
        bigger = diamond_dag.with_m(8)
        assert bigger.m == 8
        assert set(bigger.graph.edges()) == set(diamond_dag.graph.edges())

    def test_from_networkx(self):
        g = nx.DiGraph()
        g.add_node("x", p=3, s=4)
        g.add_node("y", p=1, s=2)
        g.add_edge("x", "y")
        inst = DAGInstance.from_networkx(g, m=2)
        assert inst.task("x").p == 3 and inst.task("y").s == 2
        assert inst.n_edges == 1

    def test_from_networkx_missing_attributes_default_zero(self):
        g = nx.DiGraph()
        g.add_node("x")
        inst = DAGInstance.from_networkx(g, m=1)
        assert inst.task("x").p == 0 and inst.task("x").s == 0

    def test_dict_roundtrip(self, diamond_dag):
        back = DAGInstance.from_dict(diamond_dag.to_dict())
        assert back == diamond_dag

    def test_equality_distinguishes_edges(self):
        a = DAGInstance.from_lists(p=[1, 1], s=[1, 1], m=1, edges=[(0, 1)])
        b = DAGInstance.from_lists(p=[1, 1], s=[1, 1], m=1, edges=[])
        assert a != b

    def test_as_independent_drops_edges(self, diamond_dag):
        ind = diamond_dag.as_independent()
        assert isinstance(ind, Instance)
        assert not isinstance(ind, DAGInstance)
