"""Tests of the multi-tenant admission/QoS subsystem (repro.qos).

Covers the layer bottom-up, then threaded through the serving stack:

* **tenant model** — config validation, registry resolution/defaulting,
  the ``tenants.json`` loader and the config normalizer;
* **token bucket** — deterministic refill against an injected clock;
* **fair share** — the transposed list-scheduling ledger: weighted
  grant proportions, no catch-up burst after idleness, FIFO baseline;
* **admission queue** — strict priority-class dequeue, per-tenant FIFO,
  weighted fairness under contention, cancellation safety, capacity
  retargeting;
* **properties** (the ISSUE's named invariants) — interactive is never
  starved by batch backlog, weighted shares converge to within one
  grant, and per-tenant counters balance (``admitted + rejected ==
  submitted``, ``lost == 0``) through load, cancellation, and a shard
  kill;
* **service / wire / cluster integration** — flat behavior preserved
  with no tenants, structured ``error.code`` rejections and their typed
  client exceptions, per-tenant stats slices, phase-split percentiles,
  the router's cluster-wide controller, and the QoS-weighted autoscaler
  signal.
"""

from __future__ import annotations

import asyncio
import json
import math

import pytest

from repro.core.instance import Instance
from repro.qos import (
    AdmissionController,
    AdmissionQueue,
    BackpressureError,
    FairShareLedger,
    FifoPolicy,
    OverQuotaError,
    RateLimitedError,
    TenantConfig,
    TenantRegistry,
    TokenBucket,
    UnknownTenantError,
    WeightedFairPolicy,
    create_policy,
    load_tenants,
    merge_tenant_snapshots,
)
from repro.service import ServiceConfig, SolverService
from repro.service.client import (
    OverQuotaRejection,
    RateLimitedRejection,
    ServiceClient,
    UnknownTenantRejection,
)
from repro.service.protocol import error_code_for, solve_request
from repro.service.server import serve_tcp
from repro.solvers import solve

from _service_helpers import make_sleepy_entry, registered

pytestmark = pytest.mark.qos


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def inst() -> Instance:
    return Instance.from_lists(p=[4, 3, 2, 2, 1, 6, 5], s=[1, 5, 2, 4, 3, 2, 6], m=3)


def distinct_instances(count: int, n: int = 6):
    return [
        Instance.from_lists(
            p=[float(1 + j + i) for j in range(n)],
            s=[float(1 + (j * 7 + i) % 5) for j in range(n)],
            m=2,
        )
        for i in range(count)
    ]


def registry(*tenants: TenantConfig, default=None) -> TenantRegistry:
    return TenantRegistry(tenants, default=default)


def balanced(snap) -> bool:
    return (
        snap["admitted"] + snap["rejected"] == snap["submitted"]
        and snap["lost"] == 0
    )


# --------------------------------------------------------------------------- #
# tenant model
# --------------------------------------------------------------------------- #
class TestTenantModel:
    def test_defaults_validate(self):
        cfg = TenantConfig("alice")
        assert cfg.quota is None and cfg.rate is None
        assert cfg.weight == 1.0 and cfg.priority == "batch"

    @pytest.mark.parametrize("fields", [
        dict(name=""),
        dict(name="a", quota=0),
        dict(name="a", quota=True),
        dict(name="a", rate=0.0),
        dict(name="a", rate=-1.0),
        dict(name="a", burst=2.0),          # burst without rate
        dict(name="a", rate=1.0, burst=0.5),
        dict(name="a", weight=0.0),
        dict(name="a", priority="urgent"),
    ])
    def test_invalid_configs_rejected(self, fields):
        with pytest.raises(ValueError):
            TenantConfig(**fields)

    def test_from_dict_coerces_and_rejects_unknown_keys(self):
        cfg = TenantConfig.from_dict("a", {"quota": "4", "rate": 2, "weight": 3})
        assert (cfg.quota, cfg.rate, cfg.weight) == (4, 2.0, 3.0)
        with pytest.raises(ValueError, match="unknown keys"):
            TenantConfig.from_dict("a", {"quotas": 4})

    def test_registry_resolution_and_default(self):
        reg = registry(TenantConfig("a"), TenantConfig("b"), default="b")
        assert reg.resolve("a").name == "a"
        assert reg.resolve(None).name == "b"
        with pytest.raises(UnknownTenantError):
            reg.resolve("nobody")
        with pytest.raises(UnknownTenantError):
            registry(TenantConfig("a")).resolve(None)

    def test_registry_validation(self):
        with pytest.raises(ValueError, match="duplicate"):
            registry(TenantConfig("a"), TenantConfig("a"))
        with pytest.raises(ValueError, match="at least one"):
            TenantRegistry([])
        with pytest.raises(ValueError, match="not in the registry"):
            registry(TenantConfig("a"), default="b")

    def test_payload_forms_and_file_loading(self, tmp_path):
        listed = TenantRegistry.from_payload({
            "default": "b",
            "tenants": [{"name": "a", "priority": "interactive"},
                        {"name": "b", "weight": 2.0}],
        })
        assert listed.names() == ["a", "b"] and listed.default == "b"
        mapped = TenantRegistry.from_payload({"a": {}, "b": {"quota": 3}})
        assert mapped.names() == ["a", "b"] and mapped.default is None

        path = tmp_path / "tenants.json"
        path.write_text(json.dumps({"tenants": [{"name": "x", "rate": 5}]}))
        loaded = TenantRegistry.load(path, default="x")
        assert loaded.resolve(None).rate == 5.0
        with pytest.raises(ValueError, match="cannot load"):
            TenantRegistry.load(tmp_path / "missing.json")

    def test_load_tenants_normalizer(self, tmp_path):
        assert load_tenants(None) is None
        assert load_tenants(False) is None
        reg = registry(TenantConfig("a"))
        assert load_tenants(reg) is reg
        assert load_tenants(reg, default="a").default == "a"
        assert load_tenants({"a": {}}).names() == ["a"]
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"a": {}}))
        assert load_tenants(str(path)).names() == ["a"]
        with pytest.raises(ValueError, match="default_tenant"):
            load_tenants(None, default="a")
        with pytest.raises(TypeError):
            load_tenants(42)


# --------------------------------------------------------------------------- #
# token bucket
# --------------------------------------------------------------------------- #
class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=lambda: now[0])
        assert [bucket.take() for _ in range(4)] == [True, True, True, False]
        now[0] = 1.0  # 2 tokens refilled
        assert bucket.take() and bucket.take() and not bucket.take()

    def test_refill_caps_at_burst(self):
        now = [0.0]
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=lambda: now[0])
        now[0] = 100.0
        assert bucket.available() == 2.0

    def test_default_burst_never_below_one(self):
        assert TokenBucket(rate=0.1).burst == 1.0
        assert TokenBucket(rate=50.0).burst == 50.0

    def test_unlimited(self):
        bucket = TokenBucket(rate=None)
        assert bucket.unlimited
        assert all(bucket.take() for _ in range(1000))
        assert bucket.available() == math.inf


# --------------------------------------------------------------------------- #
# fair-share policies
# --------------------------------------------------------------------------- #
class TestFairShare:
    def test_ledger_tracks_weight_proportions(self):
        """Both backlogged throughout: grants split 2:1 within one grant."""
        ledger = FairShareLedger()
        weights = {"heavy": 2.0, "light": 1.0}
        grants = {"heavy": 0, "light": 0}
        for _ in range(30):
            name = ledger.pick(weights)
            ledger.charge(name, weights[name])
            grants[name] += 1
        assert grants["heavy"] == 20 and grants["light"] == 10

    def test_activation_floor_prevents_catchup_burst(self):
        ledger = FairShareLedger()
        for _ in range(10):
            ledger.charge("busy", 1.0)
        ledger.activate("idler", 1.0)  # re-joins at the floor, not at 0
        assert ledger.served("idler") == ledger.served("busy")

    def test_deterministic_tie_break(self):
        assert FairShareLedger().pick({"b": 1.0, "a": 1.0}) == "a"

    def test_fifo_policy_round_robins(self):
        policy = FifoPolicy()
        for name in ("a", "b"):
            policy.activate(name, 1.0)
        order = []
        for _ in range(4):
            name = policy.pick({"a": 5.0, "b": 1.0})  # weights ignored
            policy.charge(name, 1.0)
            order.append(name)
        assert order == ["a", "b", "a", "b"]

    def test_create_policy(self):
        assert isinstance(create_policy("wfq"), WeightedFairPolicy)
        assert isinstance(create_policy("fifo"), FifoPolicy)
        with pytest.raises(ValueError):
            create_policy("lottery")


# --------------------------------------------------------------------------- #
# admission queue
# --------------------------------------------------------------------------- #
INTERACTIVE = TenantConfig("vip", priority="interactive")
HEAVY = TenantConfig("heavy", weight=2.0)
LIGHT = TenantConfig("light", weight=1.0)


class TestAdmissionQueue:
    def test_fast_path_when_uncontended(self):
        async def scenario():
            queue = AdmissionQueue(2)
            waited = await queue.acquire(LIGHT)
            assert waited is False and queue.granted == 1
            queue.release()
            assert queue.granted == 0

        run(scenario())

    def test_release_without_acquire_raises(self):
        with pytest.raises(RuntimeError):
            AdmissionQueue(1).release()

    def test_interactive_preempts_batch_in_queue(self):
        """Queue-level preemption: the freed slot goes to interactive."""
        async def scenario():
            queue = AdmissionQueue(1)
            await queue.acquire(LIGHT)  # hold the only slot
            order = []

            async def wait(cfg):
                await queue.acquire(cfg)
                order.append(cfg.name)
                queue.release()

            batch = [asyncio.create_task(wait(LIGHT)) for _ in range(5)]
            await asyncio.sleep(0)
            vip = asyncio.create_task(wait(INTERACTIVE))
            await asyncio.sleep(0)
            queue.release()
            await asyncio.gather(vip, *batch)
            # Interactive overtook every batch waiter queued before it.
            assert order[0] == "vip"

        run(scenario())

    def test_weighted_fair_grants_converge(self):
        """While both backlogged, grants track weights within one grant."""
        async def scenario():
            queue = AdmissionQueue(1)
            await queue.acquire(TenantConfig("holder"))
            order = []

            async def wait(cfg):
                await queue.acquire(cfg)
                order.append(cfg.name)
                queue.release()

            tasks = [asyncio.create_task(wait(HEAVY)) for _ in range(30)]
            tasks += [asyncio.create_task(wait(LIGHT)) for _ in range(30)]
            await asyncio.sleep(0)
            queue.release()
            await asyncio.gather(*tasks)
            return order

        order = run(scenario())
        first = order[:30]  # both tenants backlogged throughout this prefix
        heavy = first.count("heavy")
        assert abs(heavy - 20) <= 1, f"expected ~20 heavy of 30, got {heavy}"

    def test_per_tenant_fifo_preserved(self):
        async def scenario():
            queue = AdmissionQueue(1)
            await queue.acquire(TenantConfig("holder"))
            order = []

            async def wait(tag):
                await queue.acquire(LIGHT)
                order.append(tag)
                queue.release()

            tasks = [asyncio.create_task(wait(i)) for i in range(10)]
            await asyncio.sleep(0)
            queue.release()
            await asyncio.gather(*tasks)
            assert order == sorted(order)

        run(scenario())

    def test_cancelled_waiter_never_granted(self):
        async def scenario():
            queue = AdmissionQueue(1)
            await queue.acquire(LIGHT)
            victim = asyncio.create_task(queue.acquire(LIGHT))
            survivor_granted = asyncio.Event()

            async def survivor():
                await queue.acquire(HEAVY)
                survivor_granted.set()

            keeper = asyncio.create_task(survivor())
            await asyncio.sleep(0)
            victim.cancel()
            with pytest.raises(asyncio.CancelledError):
                await victim
            queue.release()
            await asyncio.wait_for(survivor_granted.wait(), 5)
            assert queue.granted == 1 and queue.depth() == 0
            queue.release()

        run(scenario())

    def test_set_capacity_grow_dispatches_shrink_drains(self):
        async def scenario():
            queue = AdmissionQueue(1)
            await queue.acquire(LIGHT)
            waiters = [asyncio.create_task(queue.acquire(LIGHT)) for _ in range(2)]
            await asyncio.sleep(0)
            assert queue.depth() == 2
            queue.set_capacity(3)  # grow: both waiters granted immediately
            await asyncio.gather(*waiters)
            assert queue.granted == 3 and queue.free == 0
            queue.set_capacity(1)  # shrink: nothing revoked, surplus drains
            assert queue.granted == 3
            for _ in range(3):
                queue.release()
            assert queue.granted == 0 and queue.free == 1

        run(scenario())


# --------------------------------------------------------------------------- #
# admission controller
# --------------------------------------------------------------------------- #
def controller(*tenants, capacity=4, default=None, clock=None, **kwargs):
    reg = registry(*tenants, default=default)
    if clock is not None:
        kwargs["clock"] = clock
    return AdmissionController(reg, capacity=capacity, **kwargs)


class TestAdmissionController:
    def test_unknown_tenant_counted_separately(self):
        ctrl = controller(TenantConfig("a"))
        with pytest.raises(UnknownTenantError):
            ctrl.begin("nobody")
        with pytest.raises(UnknownTenantError):
            ctrl.begin(None)  # no default configured
        assert ctrl.unknown_rejected == 2
        assert ctrl.snapshot()["a"]["submitted"] == 0

    def test_rate_limit_is_a_ledgered_rejection(self):
        now = [0.0]
        ctrl = controller(TenantConfig("a", rate=1.0, burst=1.0),
                          clock=lambda: now[0])
        assert ctrl.begin("a").name == "a"
        with pytest.raises(RateLimitedError) as excinfo:
            ctrl.begin("a")
        assert error_code_for(excinfo.value) == "rate_limited"
        now[0] = 1.0
        ctrl.begin("a")  # refilled
        snap = ctrl.snapshot()["a"]
        assert snap["submitted"] == 3 and snap["rejected"] == 1
        assert snap["rejected_by"] == {"rate_limited": 1}

    def test_quota_enforced_and_released(self):
        async def scenario():
            ctrl = controller(TenantConfig("a", quota=1))
            cfg = ctrl.begin("a")
            await ctrl.acquire_slot(cfg, reject_on_full=False)
            ctrl.begin("a")
            with pytest.raises(OverQuotaError):
                await ctrl.acquire_slot(cfg, reject_on_full=False)
            ctrl.release_slot(cfg)
            ctrl.begin("a")
            await ctrl.acquire_slot(cfg, reject_on_full=False)  # freed
            ctrl.release_slot(cfg)
            snap = ctrl.snapshot()["a"]
            assert snap["rejected_by"] == {"over_quota": 1}

        run(scenario())

    def test_backpressure_reject_on_full(self):
        async def scenario():
            ctrl = controller(TenantConfig("a"), capacity=1)
            cfg = ctrl.begin("a")
            await ctrl.acquire_slot(cfg, reject_on_full=True)
            ctrl.begin("a")
            with pytest.raises(BackpressureError):
                await ctrl.acquire_slot(cfg, reject_on_full=True)
            ctrl.release_slot(cfg)

        run(scenario())

    def test_lifecycle_counters_balance(self):
        async def scenario():
            ctrl = controller(TenantConfig("a"), default="a")
            for outcome in ("completed", "failed", "abandoned"):
                cfg = ctrl.begin(None)
                await ctrl.acquire_slot(cfg, reject_on_full=False)
                ctrl.job_admitted(cfg)
                ctrl.charge_usage(cfg, 0.25)
                ctrl.release_slot(cfg)
                ctrl.finish(cfg, outcome)
            cfg = ctrl.begin(None)
            ctrl.admit_fast(cfg, "cache_hits")
            snap = ctrl.snapshot()["a"]
            assert balanced(snap)
            assert snap["completed"] == snap["failed"] == snap["abandoned"] == 1
            assert snap["cache_hits"] == 1 and snap["busy_s"] == 0.75
            assert snap["config"]["weight"] == 1.0

        run(scenario())

    def test_class_signals(self):
        async def scenario():
            ctrl = controller(
                TenantConfig("vip", priority="interactive"), TenantConfig("bulk"),
                capacity=1,
            )
            vip, bulk = ctrl.begin("vip"), ctrl.begin("bulk")
            await ctrl.acquire_slot(bulk, reject_on_full=False)
            assert ctrl.in_use_by_class() == {"batch": 1}
            waiter = asyncio.create_task(ctrl.acquire_slot(vip, reject_on_full=False))
            await asyncio.sleep(0)
            assert ctrl.backlog_by_class()["interactive"] == 1
            assert ctrl.weighted_backlog() == 1.0  # one interactive waiter
            ctrl.release_slot(bulk)
            await waiter
            assert ctrl.in_use_by_class() == {"interactive": 1}
            ctrl.release_slot(vip)

        run(scenario())

    def test_cancellation_in_queue_is_a_rejection(self):
        async def scenario():
            ctrl = controller(TenantConfig("a"), capacity=1)
            cfg = ctrl.begin("a")
            await ctrl.acquire_slot(cfg, reject_on_full=False)
            ctrl.job_admitted(cfg)
            ctrl.begin("a")
            waiter = asyncio.create_task(ctrl.acquire_slot(cfg, reject_on_full=False))
            await asyncio.sleep(0)
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            ctrl.release_slot(cfg)
            snap = ctrl.snapshot()["a"]
            assert balanced(snap) and snap["rejected_by"] == {"cancelled": 1}

        run(scenario())

    def test_snapshot_merge_across_slices(self):
        slices = [
            {"a": {"submitted": 3, "admitted": 2, "rejected": 1, "in_use": 1,
                   "busy_s": 1.0, "rejected_by": {"over_quota": 1},
                   "queue_wait": {"count": 2, "p50": 1.0, "p90": 1.0, "p99": 1.0,
                                  "mean": 1.0, "max": 1.0},
                   "config": {"quota": None, "rate": None, "weight": 1.0,
                              "priority": "batch"}}},
            {"a": {"submitted": 1, "admitted": 1, "rejected": 0, "in_use": 0,
                   "busy_s": 0.5, "rejected_by": {},
                   "queue_wait": {"count": 2, "p50": 3.0, "p90": 3.0, "p99": 3.0,
                                  "mean": 3.0, "max": 3.0}}},
        ]
        merged = merge_tenant_snapshots(slices)["a"]
        assert merged["submitted"] == 4 and merged["in_use"] == 1
        assert merged["busy_s"] == 1.5 and merged["lost"] == 0
        assert merged["queue_wait"]["mean"] == 2.0  # count-weighted
        assert merged["config"]["priority"] == "batch"


# --------------------------------------------------------------------------- #
# the ISSUE's named properties
# --------------------------------------------------------------------------- #
class TestProperties:
    def test_interactive_never_starved(self):
        """However deep the batch backlog, every freed slot goes to any
        queued interactive request first — across repeated rounds."""
        async def scenario():
            queue = AdmissionQueue(1)
            await queue.acquire(LIGHT)
            order = []

            async def wait(cfg, tag):
                await queue.acquire(cfg)
                order.append(tag)
                queue.release()

            tasks = [asyncio.create_task(wait(LIGHT, "batch")) for _ in range(40)]
            await asyncio.sleep(0)
            tasks += [asyncio.create_task(wait(INTERACTIVE, "vip"))
                      for _ in range(10)]
            await asyncio.sleep(0)
            queue.release()
            await asyncio.gather(*tasks)
            return order

        order = run(scenario())
        # All 10 interactive grants precede every one of the 40 batch grants.
        assert order[:10] == ["vip"] * 10

    def test_weighted_shares_converge_three_tenants(self):
        weights = {"a": 4.0, "b": 2.0, "c": 1.0}

        async def scenario():
            queue = AdmissionQueue(1)
            await queue.acquire(TenantConfig("holder"))
            order = []

            async def wait(cfg):
                await queue.acquire(cfg)
                order.append(cfg.name)
                queue.release()

            tasks = []
            for name, weight in weights.items():
                tasks += [
                    asyncio.create_task(wait(TenantConfig(name, weight=weight)))
                    for _ in range(70)
                ]
            await asyncio.sleep(0)
            queue.release()
            await asyncio.gather(*tasks)
            return order

        order = run(scenario())
        first = order[:70]  # all three backlogged throughout this prefix
        total_weight = sum(weights.values())
        for name, weight in weights.items():
            expected = 70 * weight / total_weight
            assert abs(first.count(name) - expected) <= 2, (name, first.count(name))

    def test_per_tenant_counters_balance_under_load_and_cancellation(self):
        """submitted == admitted + rejected and lost == 0, per tenant,
        through saturation, quota rejections, and mid-queue cancellation."""
        instances = distinct_instances(12)

        async def scenario():
            config = ServiceConfig(
                workers=1, max_pending=2, cache=False,
                tenants={"tenants": [
                    {"name": "vip", "priority": "interactive", "quota": 2},
                    {"name": "bulk", "weight": 1.0},
                ]},
            )
            with registered(make_sleepy_entry()):
                async with SolverService(config) as svc:
                    spec = "sleepy(seconds=0.15)"
                    jobs = [
                        asyncio.create_task(svc.solve(
                            instance, spec,
                            tenant="vip" if i % 3 == 0 else "bulk",
                        ))
                        for i, instance in enumerate(instances)
                    ]
                    await asyncio.sleep(0.05)
                    victims = jobs[8:10]
                    for victim in victims:
                        victim.cancel()
                    results = await asyncio.gather(*jobs, return_exceptions=True)
                    # Over-quota attempts on top of the saturated queue.
                    rejections = 0
                    for _ in range(3):
                        try:
                            await asyncio.wait_for(
                                svc.solve(instances[0], spec, tenant="vip"),
                                timeout=0.01,
                            )
                        except (OverQuotaError, asyncio.TimeoutError):
                            rejections += 1
                    stats = svc.stats()
            return results, stats

        results, stats = run(scenario())
        solved = [r for r in results if not isinstance(r, BaseException)]
        assert len(solved) >= len(instances) - 2
        tenants = stats.tenants
        assert set(tenants) == {"vip", "bulk"}
        for snap in tenants.values():
            assert balanced(snap), snap
        assert stats.lost == 0

    def test_counters_balance_through_shard_kill(self):
        """The cluster property: a shard dying mid-batch never unbalances
        the per-tenant ledgers (retries are transparent to the QoS view)."""
        from repro.cluster import ClusterConfig, ClusterRouter
        from repro.solvers import LRUCache

        instances = distinct_instances(8)

        async def scenario():
            config = ClusterConfig(
                shards=2, min_shards=1, max_shards=4, backend="inproc",
                workers=1, cache=LRUCache(), session_ttl=None,
                tenants={"default": "bulk", "tenants": [
                    {"name": "vip", "priority": "interactive"},
                    {"name": "bulk", "weight": 2.0},
                ]},
            )
            with registered(make_sleepy_entry()):
                async with ClusterRouter(config) as router:
                    spec = "sleepy(seconds=0.4)"
                    jobs = [
                        asyncio.create_task(router.solve(
                            instance, spec,
                            tenant="vip" if i % 2 else "bulk",
                        ))
                        for i, instance in enumerate(instances)
                    ]
                    await asyncio.sleep(0.2)
                    victim = router.shard_names()[0]
                    await router.shard(victim).kill()
                    payloads = await asyncio.gather(*jobs)
                    stats = await router.stats()
            return payloads, stats

        payloads, stats = run(scenario())
        assert len(payloads) == len(instances)
        for instance, payload in zip(instances, payloads):
            direct = solve(instance, "lpt", cache=False)  # sleepy solves via LPT
            assert payload["cmax"] == direct.schedule.cmax
        assert stats.router["shards_lost"] == 1
        assert set(stats.tenants) == {"bulk", "vip"}
        for snap in stats.tenants.values():
            assert balanced(snap), snap
            assert snap["completed"] == snap["admitted"]
        assert stats.lost == 0


# --------------------------------------------------------------------------- #
# service integration
# --------------------------------------------------------------------------- #
class TestServiceQos:
    def test_config_normalizes_tenants(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps({"a": {"rate": 5}}))
        config = ServiceConfig(tenants=str(path), default_tenant="a")
        assert isinstance(config.tenants, TenantRegistry)
        assert config.default_tenant == "a"
        with pytest.raises(ValueError, match="qos_policy"):
            ServiceConfig(qos_policy="lottery")
        with pytest.raises(ValueError, match="default_tenant"):
            ServiceConfig(default_tenant="a")

    def test_flat_path_unchanged_without_tenants(self, inst):
        async def scenario():
            async with SolverService(ServiceConfig(workers=1, cache=False)) as svc:
                served = await svc.solve(inst, "sbo(delta=1.0)")
                ignored = await svc.solve(inst, "sbo(delta=1.0)", tenant="nobody")
                assert served.schedule.cmax == ignored.schedule.cmax
                stats = svc.stats()
                assert stats.tenants == {}
                assert svc._qos is None
            return served

        served = run(scenario())
        direct = solve(inst, "sbo(delta=1.0)", cache=False)
        assert served.schedule.cmax == direct.schedule.cmax

    def test_results_identical_with_and_without_qos(self, inst):
        async def scenario():
            flat_cfg = ServiceConfig(workers=1, cache=False)
            qos_cfg = ServiceConfig(
                workers=1, cache=False,
                tenants={"default": "a", "tenants": [{"name": "a"}]},
            )
            async with SolverService(flat_cfg) as svc:
                flat = await svc.solve(inst, "sbo(delta=1.0)")
            async with SolverService(qos_cfg) as svc:
                gated = await svc.solve(inst, "sbo(delta=1.0)", tenant="a")
            return flat, gated

        flat, gated = run(scenario())
        assert flat.objectives == gated.objectives
        assert flat.guarantee == gated.guarantee
        assert flat.schedule.assignment == gated.schedule.assignment

    def test_cache_hits_and_coalesces_charged_to_tenant(self, inst):
        async def scenario():
            from repro.solvers import LRUCache

            config = ServiceConfig(
                workers=1, cache=LRUCache(),
                tenants={"default": "a", "tenants": [{"name": "a"}]},
            )
            with registered(make_sleepy_entry()):
                async with SolverService(config) as svc:
                    spec = "sleepy(seconds=0.2)"
                    first, second = await asyncio.gather(
                        svc.solve(inst, spec), svc.solve(inst, spec),
                    )
                    assert first.schedule.cmax == second.schedule.cmax
                    # Custom solvers bypass the cache; use a built-in for
                    # the miss-then-hit pair.
                    await svc.solve(inst, "sbo(delta=1.0)")
                    await svc.solve(inst, "sbo(delta=1.0)")
                    return svc.stats().tenants["a"]

        snap = run(scenario())
        assert balanced(snap)
        assert snap["submitted"] == 4 and snap["admitted"] == 4
        assert snap["coalesced"] == 1 and snap["cache_hits"] == 1

    def test_session_opens_rate_limited_not_quota_bound(self, inst):
        async def scenario():
            config = ServiceConfig(
                workers=1, cache=False,
                tenants={"default": "a",
                         "tenants": [{"name": "a", "rate": 1.0, "burst": 2.0,
                                      "quota": 1}]},
            )
            async with SolverService(config) as svc:
                svc.session_open("online_greedy", m=2)
                svc.session_open("online_greedy", m=2)  # burst of 2 allowed
                with pytest.raises(RateLimitedError):
                    svc.session_open("online_greedy", m=2)
                snap = svc.stats().tenants["a"]
                assert balanced(snap)
                # Sessions are slot-free: quota gauge untouched.
                assert snap["in_use"] == 0

        run(scenario())

    def test_phase_split_percentiles(self, inst):
        async def scenario():
            async with SolverService(ServiceConfig(workers=1, cache=False)) as svc:
                await svc.solve(inst, "sbo(delta=1.0)")
                return svc.stats()

        stats = run(scenario())
        assert set(stats.phases) == {"queue_wait", "exec"}
        exec_snap = stats.phases["exec"]["sbo"]
        wait_snap = stats.phases["queue_wait"]["sbo"]
        assert exec_snap["count"] == 1 and wait_snap["count"] == 1
        assert exec_snap["mean"] > 0
        payload = stats.to_dict() if hasattr(stats, "to_dict") else None
        if payload is not None:
            assert "phases" in payload


# --------------------------------------------------------------------------- #
# wire integration
# --------------------------------------------------------------------------- #
class TestWireQos:
    def test_typed_rejections_over_tcp(self, inst):
        async def scenario():
            config = ServiceConfig(
                workers=1, cache=False, backpressure="reject",
                tenants={"default": "a",
                         "tenants": [{"name": "a", "rate": 1.0, "burst": 1.0},
                                     {"name": "b", "quota": 1}]},
            )
            async with SolverService(config) as svc:
                server = await serve_tcp(svc, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                client = await ServiceClient.connect("127.0.0.1", port)
                try:
                    payload = await client.solve(inst, "sbo(delta=1.0)", tenant="a")
                    assert payload["cmax"] > 0
                    with pytest.raises(UnknownTenantRejection) as unknown:
                        await client.solve(inst, "sbo(delta=1.0)", tenant="zz")
                    assert unknown.value.code == "unknown_tenant"
                    with pytest.raises(RateLimitedRejection) as limited:
                        await client.solve(inst, "sbo(delta=1.0)", tenant="a")
                    assert limited.value.code == "rate_limited"
                    stats = await client.stats()
                    assert stats["tenants"]["a"]["rejected_by"] == {
                        "rate_limited": 1
                    }
                    assert {"queue_wait", "exec"} <= set(stats["phases"])
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()

        run(scenario())

    def test_quota_rejection_over_tcp(self):
        # Distinct instances: an identical request would coalesce into the
        # in-flight job (slot-free admission) instead of hitting the quota.
        first_inst, second_inst = distinct_instances(2)

        async def scenario():
            config = ServiceConfig(
                workers=1, cache=False,
                tenants={"tenants": [{"name": "b", "quota": 1}]},
            )
            with registered(make_sleepy_entry()):
                async with SolverService(config) as svc:
                    server = await serve_tcp(svc, "127.0.0.1", 0)
                    port = server.sockets[0].getsockname()[1]
                    client = await ServiceClient.connect("127.0.0.1", port)
                    try:
                        slow = asyncio.create_task(client.solve(
                            first_inst, "sleepy(seconds=0.5)", tenant="b"
                        ))
                        await asyncio.sleep(0.1)
                        with pytest.raises(OverQuotaRejection):
                            await client.solve(second_inst, "sleepy(seconds=0.5)",
                                               tenant="b")
                        await slow
                    finally:
                        await client.close()
                        server.close()
                        await server.wait_closed()

        run(scenario())

    def test_tenant_field_validated(self, inst):
        async def scenario():
            config = ServiceConfig(
                workers=1, cache=False,
                tenants={"default": "a", "tenants": [{"name": "a"}]},
            )
            async with SolverService(config) as svc:
                server = await serve_tcp(svc, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                client = await ServiceClient.connect("127.0.0.1", port)
                try:
                    request = solve_request(inst, "sbo(delta=1.0)")
                    request["tenant"] = 42
                    response = await client.request_raw(request)
                    assert response["ok"] is False
                    assert "tenant" in response["error"]["message"]
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()

        run(scenario())

    def test_solve_request_tenant_field_optional(self, inst):
        bare = solve_request(inst, "lpt")
        assert "tenant" not in bare
        tagged = solve_request(inst, "lpt", tenant="a")
        assert tagged["tenant"] == "a"


# --------------------------------------------------------------------------- #
# cluster integration
# --------------------------------------------------------------------------- #
class TestClusterQos:
    @staticmethod
    def config(**overrides):
        from repro.cluster import ClusterConfig
        from repro.solvers import LRUCache

        defaults = dict(
            shards=2, min_shards=1, max_shards=4, backend="inproc",
            workers=1, cache=LRUCache(), session_ttl=None,
            tenants={"default": "bulk", "tenants": [
                {"name": "vip", "priority": "interactive", "weight": 2.0},
                {"name": "bulk"},
            ]},
        )
        defaults.update(overrides)
        return ClusterConfig(**defaults)

    def test_router_capacity_tracks_shard_churn(self):
        from repro.cluster import ClusterRouter

        async def scenario():
            async with ClusterRouter(self.config(max_pending=8)) as router:
                assert router._qos.capacity == 16
                await router.add_shard()
                assert router._qos.capacity == 24
                victim = router.shard_names()[0]
                await router.remove_shard(victim)
                assert router._qos.capacity == 16

        run(scenario())

    def test_scaling_signal_flat_and_weighted(self):
        from repro.cluster import ClusterRouter
        from repro.solvers import LRUCache

        async def scenario():
            flat_cfg = self.config(tenants=None)
            async with ClusterRouter(flat_cfg) as router:
                assert router.scaling_signal(7) == 7.0  # passthrough
            async with ClusterRouter(self.config()) as router:
                # Nothing admitted/queued: urgency defaults to 1.0.
                assert router.scaling_signal(4) == 4.0

        run(scenario())

    def test_cluster_stats_carry_tenant_slices(self, inst):
        from repro.cluster import ClusterRouter

        async def scenario():
            async with ClusterRouter(self.config()) as router:
                await router.solve(inst, "sbo(delta=1.0)", tenant="vip")
                await router.solve(inst, "sbo(delta=1.0)")  # default: bulk
                stats = await router.stats()
            return stats

        stats = run(scenario())
        tenants = stats.tenants
        assert tenants["vip"]["completed"] == 1
        assert tenants["bulk"]["completed"] == 1
        for snap in tenants.values():
            assert balanced(snap)
        payload = stats.to_dict()
        assert set(payload["tenants"]) == {"bulk", "vip"}
        assert "phases" in payload

    def test_router_rejections_carry_codes(self, inst):
        from repro.cluster import ClusterRouter

        async def scenario():
            config = self.config(tenants={"tenants": [
                {"name": "a", "rate": 1.0, "burst": 1.0}]})
            async with ClusterRouter(config) as router:
                request = {"op": "solve", "id": "r1", "tenant": "a",
                           "instance": inst.to_dict(), "spec": "sbo(delta=1.0)"}
                ok = await router.handle(request)
                assert ok["ok"] is True
                limited = await router.handle({**request, "id": "r2"})
                assert limited["ok"] is False
                assert limited["error"]["code"] == "rate_limited"
                unknown = await router.handle(
                    {**request, "id": "r3", "tenant": "zz"})
                assert unknown["error"]["code"] == "unknown_tenant"
                untagged = await router.handle(
                    {k: v for k, v in request.items() if k != "tenant"})
                assert untagged["error"]["code"] == "unknown_tenant"

        run(scenario())

    def test_flat_cluster_unchanged(self, inst):
        from repro.cluster import ClusterRouter

        async def scenario():
            async with ClusterRouter(self.config(tenants=None)) as router:
                payload = await router.solve(inst, "sbo(delta=1.0)")
                stats = await router.stats()
            return payload, stats

        payload, stats = run(scenario())
        direct = solve(inst, "sbo(delta=1.0)", cache=False)
        assert payload["cmax"] == direct.schedule.cmax
        assert stats.tenants == {}


# --------------------------------------------------------------------------- #
# CLI flags
# --------------------------------------------------------------------------- #
class TestCliQos:
    def test_parser_accepts_tenant_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args([
            "serve", "--port", "0", "--tenants", "tenants.json",
            "--default-tenant", "a",
        ])
        assert args.tenants == "tenants.json" and args.default_tenant == "a"
        args = parser.parse_args([
            "cluster", "--tenants", "tenants.json", "--default-tenant", "b",
        ])
        assert args.tenants == "tenants.json" and args.default_tenant == "b"

    def test_serve_rejects_bad_tenants_file(self, tmp_path, capsys):
        from repro.cli import main

        missing = tmp_path / "nope.json"
        code = main(["serve", "--port", "0", "--tenants", str(missing)])
        assert code == 2
        assert "cannot load tenants" in capsys.readouterr().err
