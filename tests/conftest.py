"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.instance import DAGInstance, Instance


@pytest.fixture
def small_instance() -> Instance:
    """Five tasks, two processors; small enough for exact solvers."""
    return Instance.from_lists(p=[4, 3, 2, 2, 1], s=[1, 5, 2, 4, 3], m=2, name="small")


@pytest.fixture
def medium_instance() -> Instance:
    """Twelve tasks, three processors; still exact-solver friendly."""
    return Instance.from_lists(
        p=[9, 8, 7, 6, 5, 5, 4, 4, 3, 2, 2, 1],
        s=[2, 6, 1, 9, 4, 3, 8, 2, 7, 5, 1, 6],
        m=3,
        name="medium",
    )


@pytest.fixture
def diamond_dag() -> DAGInstance:
    """A 4-task diamond: a -> {b, c} -> d."""
    return DAGInstance.from_lists(
        p=[2, 3, 4, 1],
        s=[5, 2, 3, 4],
        m=2,
        ids=["a", "b", "c", "d"],
        edges=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
        name="diamond",
    )


@pytest.fixture
def chain_instance() -> DAGInstance:
    """A 5-task chain."""
    ids = [f"t{i}" for i in range(5)]
    return DAGInstance.from_lists(
        p=[1, 2, 3, 2, 1],
        s=[2, 2, 2, 2, 2],
        m=3,
        ids=ids,
        edges=[(ids[i], ids[i + 1]) for i in range(4)],
        name="chain",
    )


@pytest.fixture
def zero_memory_instance() -> Instance:
    """Tasks with no storage demand at all."""
    return Instance.from_lists(p=[3, 2, 1, 4], s=[0, 0, 0, 0], m=2, name="zero-memory")


@pytest.fixture
def single_task_instance() -> Instance:
    """One task, one processor."""
    return Instance.from_lists(p=[5], s=[7], m=1, name="single")
