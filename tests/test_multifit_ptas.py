"""Unit tests for repro.algorithms.multifit and repro.algorithms.ptas."""

from __future__ import annotations

import pytest

from repro.algorithms.exact import exact_cmax, exact_mmax
from repro.algorithms.multifit import ffd_pack, multifit_guarantee, multifit_schedule
from repro.algorithms.ptas import dual_feasibility_pack, ptas_schedule
from repro.core.bounds import cmax_lower_bound
from repro.core.instance import Instance
from repro.core.validation import validate_schedule
from repro.workloads.independent import uniform_instance


class TestFFD:
    def test_pack_success(self):
        inst = Instance.from_lists(p=[4, 3, 3, 2], s=[0] * 4, m=2)
        packed = ffd_pack(inst.tasks.tasks, 2, capacity=6.0)
        assert packed is not None
        loads = [sum(inst.task(tid).p for tid in bin_) for bin_ in packed]
        assert max(loads) <= 6.0

    def test_pack_failure(self):
        inst = Instance.from_lists(p=[4, 4, 4], s=[0] * 3, m=2)
        assert ffd_pack(inst.tasks.tasks, 2, capacity=5.0) is None

    def test_pack_memory_objective(self):
        inst = Instance.from_lists(p=[0] * 3, s=[5, 4, 1], m=2)
        packed = ffd_pack(inst.tasks.tasks, 2, capacity=5.0, objective="memory")
        assert packed is not None

    def test_unknown_objective(self):
        inst = Instance.from_lists(p=[1], s=[1], m=1)
        with pytest.raises(ValueError):
            ffd_pack(inst.tasks.tasks, 1, 10.0, objective="power")


class TestMultifit:
    def test_guarantee_value(self):
        assert multifit_guarantee(0) == pytest.approx(13 / 11 + 1)
        assert multifit_guarantee(40) == pytest.approx(13 / 11, abs=1e-6)
        with pytest.raises(ValueError):
            multifit_guarantee(-1)

    def test_valid_and_within_guarantee(self):
        for seed in range(4):
            inst = uniform_instance(20, 3, seed=seed)
            sched = multifit_schedule(inst)
            assert validate_schedule(sched).ok
            assert sched.cmax <= multifit_guarantee() * cmax_lower_bound(inst) * (1 + 1e-9)

    def test_close_to_optimal_small(self, medium_instance):
        sched = multifit_schedule(medium_instance)
        assert sched.cmax <= 13 / 11 * exact_cmax(medium_instance) + 1e-9

    def test_memory_objective(self, medium_instance):
        sched = multifit_schedule(medium_instance, objective="memory")
        assert sched.mmax <= 13 / 11 * exact_mmax(medium_instance) + 1e-9

    def test_empty_instance(self):
        inst = Instance.from_lists(p=[], s=[], m=2)
        assert multifit_schedule(inst).cmax == 0.0

    def test_never_worse_than_double_optimum(self):
        inst = uniform_instance(15, 4, seed=11)
        sched = multifit_schedule(inst)
        assert sched.cmax <= 2 * cmax_lower_bound(inst)


class TestPTAS:
    def test_rejects_bad_epsilon(self, small_instance):
        with pytest.raises(ValueError):
            ptas_schedule(small_instance, epsilon=0.0)

    def test_valid_schedule(self, medium_instance):
        result = ptas_schedule(medium_instance, epsilon=0.2)
        assert validate_schedule(result.schedule).ok
        assert set(result.schedule.assignment) == set(medium_instance.tasks.ids)

    def test_within_guarantee_of_exact(self, medium_instance):
        opt = exact_cmax(medium_instance)
        for eps in (0.1, 0.2, 0.5):
            result = ptas_schedule(medium_instance, epsilon=eps)
            assert result.schedule.cmax <= (1 + eps) * opt * (1 + 1e-9)

    def test_smaller_epsilon_not_worse_guarantee(self, medium_instance):
        r1 = ptas_schedule(medium_instance, epsilon=0.1)
        r2 = ptas_schedule(medium_instance, epsilon=0.5)
        assert r1.guarantee <= r2.guarantee + 1e-12

    def test_memory_objective(self, medium_instance):
        result = ptas_schedule(medium_instance, epsilon=0.2, objective="memory")
        opt = exact_mmax(medium_instance)
        assert result.schedule.mmax <= 1.2 * opt * (1 + 1e-9)

    def test_exact_flag_true_for_small_instances(self, medium_instance):
        assert ptas_schedule(medium_instance, epsilon=0.2).exact is True

    def test_fallback_path_used_for_large_instances(self):
        inst = uniform_instance(200, 4, seed=3)
        result = ptas_schedule(inst, epsilon=0.05, exact_threshold=10)
        assert validate_schedule(result.schedule).ok
        # Fallback may or may not trigger depending on the draw, but the
        # schedule must still be reasonable.
        assert result.schedule.cmax <= 2 * cmax_lower_bound(inst)

    def test_empty_instance(self):
        inst = Instance.from_lists(p=[], s=[], m=2)
        result = ptas_schedule(inst)
        assert result.schedule.cmax == 0.0

    def test_dual_oracle_rejects_infeasible_target(self):
        inst = Instance.from_lists(p=[10, 10, 10], s=[0] * 3, m=2)
        pack, exact = dual_feasibility_pack(inst.tasks.tasks, 2, target=12.0, epsilon=0.2)
        assert pack is None and exact is True

    def test_dual_oracle_accepts_feasible_target(self):
        inst = Instance.from_lists(p=[10, 10, 10, 10], s=[0] * 4, m=2)
        pack, exact = dual_feasibility_pack(inst.tasks.tasks, 2, target=20.0, epsilon=0.2)
        assert pack is not None and exact is True
        assert sum(len(b) for b in pack) == 4

    def test_dual_oracle_zero_target(self):
        inst = Instance.from_lists(p=[0, 0], s=[0, 0], m=2)
        pack, _ = dual_feasibility_pack(inst.tasks.tasks, 2, target=0.0, epsilon=0.2)
        assert pack is not None


class TestNodeBudgetCap:
    """Regression: the branch-and-bound node budget keeps the PTAS tractable.

    Before the cap, ``ptas`` (and hence ``sbo(inner=ptas)``) ran for longer
    than minutes on several m=8 bimodal workloads: an infeasible binary-search
    probe with ~24 near-identical large tasks must exhaust an exponential
    search tree to reject its target.  The witness below hung for > 5 s per
    probe; with the default budget the whole solve finishes in about a second.
    """

    WALL_CLOCK_BUDGET_S = 15.0  # generous CI margin; observed ~1 s

    @staticmethod
    def witness():
        from repro.workloads.independent import workload_suite

        return workload_suite(90, 8, seed=0)["bimodal"]

    def test_witness_terminates_within_budget(self):
        import time

        inst = self.witness()
        start = time.perf_counter()
        result = ptas_schedule(inst, epsilon=0.2)
        elapsed = time.perf_counter() - start
        assert elapsed < self.WALL_CLOCK_BUDGET_S, (
            f"ptas took {elapsed:.1f}s on the m=8 bimodal witness "
            f"(budget {self.WALL_CLOCK_BUDGET_S}s) — node budget regressed?"
        )
        assert validate_schedule(result.schedule).ok
        # The guarantee semantics are unchanged: an exhausted budget degrades
        # to the documented heuristic certificate, never to an unbounded one.
        if result.exact:
            assert result.guarantee == pytest.approx(1.2)
        else:
            assert result.guarantee == pytest.approx(1.5)
        assert result.schedule.cmax <= result.guarantee * cmax_lower_bound(inst) * (1 + 1e-9)

    def test_sbo_inner_ptas_terminates_on_witness(self):
        import time

        from repro.solvers import solve

        start = time.perf_counter()
        result = solve(self.witness(), "sbo(delta=1.0, inner=ptas)", cache=False)
        elapsed = time.perf_counter() - start
        assert elapsed < 2 * self.WALL_CLOCK_BUDGET_S
        assert result.feasible and validate_schedule(result.schedule).ok

    def test_generous_budget_matches_default_on_tractable_instance(self, medium_instance):
        # The cap must be invisible wherever the search was already tractable:
        # same packing, same certificate, bit-identical objectives.
        capped = ptas_schedule(medium_instance, epsilon=0.2)
        uncapped = ptas_schedule(medium_instance, epsilon=0.2, node_budget=10**9)
        assert capped.exact and uncapped.exact
        assert capped.schedule.assignment == uncapped.schedule.assignment
        assert (capped.schedule.cmax, capped.guarantee) == (uncapped.schedule.cmax, uncapped.guarantee)

    def test_exhausted_budget_is_reported_not_certified(self):
        from repro.algorithms.ptas import _pack_large_exact

        # 12 identical items that cannot fit in 4 bins of capacity 2.5 at
        # 3 per bin: with a tiny budget the search must give up uncertified.
        packing, certified = _pack_large_exact([1.0] * 12, 4, 2.5, node_budget=5)
        assert packing is None and certified is False
        # With enough budget the same call certifies infeasibility.
        packing, certified = _pack_large_exact([1.0] * 12, 4, 2.5, node_budget=10**6)
        assert packing is None and certified is True
