"""End-to-end integration tests: workloads -> algorithms -> validation -> simulation."""

from __future__ import annotations

import math
import subprocess
import sys
from pathlib import Path

import pytest

from repro import (
    Instance,
    evaluate,
    rls,
    sbo,
    simulate_schedule,
    solve_constrained,
    tri_objective_schedule,
)
from repro.core.bounds import cmax_lower_bound, mmax_lower_bound
from repro.core.validation import validate_schedule
from repro.dag.generators import random_dag_suite
from repro.workloads.adversarial import (
    few_big_many_small_instance,
    high_variance_instance,
    memory_hostile_instance,
)
from repro.workloads.independent import workload_suite

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


class TestEndToEndIndependent:
    @pytest.mark.parametrize("family", ["uniform", "correlated", "anti-correlated", "bimodal", "heavy-tailed"])
    def test_full_pipeline_per_family(self, family):
        inst = workload_suite(60, 4, seed=13)[family]
        lb_c, lb_m = cmax_lower_bound(inst), mmax_lower_bound(inst)

        for delta in (0.5, 1.0, 2.0):
            result = sbo(inst, delta)
            assert validate_schedule(result.schedule).ok
            report = simulate_schedule(result.schedule)
            assert report.ok
            assert math.isclose(report.cmax, result.cmax, rel_tol=1e-9)

        trio = tri_objective_schedule(inst, delta=3.0)
        assert trio.mmax <= 3.0 * lb_m + 1e-9
        assert simulate_schedule(trio.schedule).ok

        constrained = solve_constrained(inst, memory_capacity=2.5 * lb_m)
        assert constrained.feasible
        assert validate_schedule(constrained.schedule, memory_capacity=2.5 * lb_m).ok

    def test_adversarial_workloads(self):
        for inst in (
            memory_hostile_instance(4, seed=1),
            high_variance_instance(40, 4, seed=1),
            few_big_many_small_instance(4, k=2, small_per_big=3, seed=1),
        ):
            result = rls(inst, delta=2.5)
            assert result.mmax <= 2.5 * mmax_lower_bound(inst) + 1e-9
            assert simulate_schedule(result.schedule).ok
            balanced = sbo(inst, delta=1.0)
            assert validate_schedule(balanced.schedule).ok

    def test_objective_record_consistency(self):
        inst = workload_suite(30, 3, seed=21)["uniform"]
        result = sbo(inst, delta=1.0)
        values = evaluate(result.schedule)
        report = simulate_schedule(result.schedule)
        assert math.isclose(values.cmax, report.cmax, rel_tol=1e-9)
        assert math.isclose(values.mmax, report.mmax, rel_tol=1e-9)
        assert math.isclose(values.sum_ci, report.sum_ci, rel_tol=1e-9)


class TestEndToEndDAG:
    @pytest.mark.parametrize("m", [2, 4, 8])
    def test_dag_suite_rls_pipeline(self, m):
        for name, dag in random_dag_suite(m, seed=5).items():
            result = rls(dag, delta=3.0, order="bottom-level")
            assert validate_schedule(result.schedule).ok, name
            assert result.mmax <= 3.0 * mmax_lower_bound(dag) + 1e-9, name
            guarantee = result.cmax_guarantee
            assert result.cmax <= guarantee * cmax_lower_bound(dag) * (1 + 1e-9), name
            report = simulate_schedule(result.schedule, memory_capacity=result.memory_budget)
            assert report.ok, (name, report.violations)

    def test_constrained_on_dags(self):
        dag = random_dag_suite(4, seed=2)["gaussian-elimination"]
        lb = mmax_lower_bound(dag)
        outcome = solve_constrained(dag, memory_capacity=2.2 * lb)
        assert outcome.feasible
        assert validate_schedule(outcome.schedule, memory_capacity=2.2 * lb).ok


class TestPublicAPI:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__

    def test_readme_quickstart_snippet(self):
        inst = Instance.from_lists(p=[4, 3, 2, 2, 1], s=[1, 5, 2, 4, 3], m=2)
        result = sbo(inst, delta=1.0)
        assert result.schedule.cmax > 0
        assert result.schedule.mmax > 0


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "embedded_soc_pipeline.py",
        "grid_batch_scheduling.py",
        "constrained_capacity_planning.py",
        "pareto_explorer.py",
    ],
)
def test_examples_run(script):
    """Every example under examples/ must run to completion."""
    path = EXAMPLES_DIR / script
    assert path.exists()
    proc = subprocess.run(
        [sys.executable, str(path)], capture_output=True, text=True, timeout=300
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()
