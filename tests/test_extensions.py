"""Unit tests for repro.extensions (uniform machines and online scheduling)."""

from __future__ import annotations

import pytest

from repro.core.bounds import mmax_lower_bound
from repro.core.rls import InfeasibleDeltaError
from repro.core.task import Task
from repro.core.validation import validate_schedule
from repro.extensions.online import OnlineBiObjectiveScheduler
from repro.extensions.uniform_machines import (
    UniformInstance,
    uniform_cmax_lower_bound,
    uniform_list_schedule,
    uniform_rls,
)
from repro.workloads.independent import uniform_instance


class TestUniformInstance:
    def test_construction(self):
        inst = UniformInstance.from_lists(p=[4, 2], s=[1, 1], speeds=[1.0, 2.0])
        assert inst.m == 2
        assert inst.execution_time(0, 0) == 4.0
        assert inst.execution_time(0, 1) == 2.0

    def test_invalid_speeds(self):
        with pytest.raises(ValueError):
            UniformInstance.from_lists(p=[1], s=[1], speeds=[])
        with pytest.raises(ValueError):
            UniformInstance.from_lists(p=[1], s=[1], speeds=[0.0])
        with pytest.raises(ValueError):
            UniformInstance.from_lists(p=[1], s=[1], speeds=[-1.0, 1.0])

    def test_as_identical(self):
        inst = UniformInstance.from_lists(p=[1, 2], s=[3, 4], speeds=[1.0, 3.0])
        identical = inst.as_identical()
        assert identical.m == 2 and not isinstance(identical, UniformInstance)

    def test_lower_bound(self):
        inst = UniformInstance.from_lists(p=[6, 6], s=[1, 1], speeds=[1.0, 2.0])
        # fluid bound: 12 / 3 = 4; max task on fastest: 6 / 2 = 3.
        assert uniform_cmax_lower_bound(inst) == 4.0

    def test_lower_bound_large_task(self):
        inst = UniformInstance.from_lists(p=[10, 1], s=[1, 1], speeds=[1.0, 1.0])
        assert uniform_cmax_lower_bound(inst) == 10.0


class TestUniformListSchedule:
    def test_faster_machine_preferred(self):
        inst = UniformInstance.from_lists(p=[4], s=[1], speeds=[1.0, 4.0])
        result = uniform_list_schedule(inst)
        assert result.cmax == 1.0  # runs on the fast machine

    def test_valid_and_reasonable(self):
        base = uniform_instance(30, 4, seed=0)
        inst = UniformInstance(base.tasks, speeds=[1.0, 1.0, 2.0, 4.0])
        result = uniform_list_schedule(inst)
        assert validate_schedule(result.schedule).ok
        lb = uniform_cmax_lower_bound(inst)
        assert result.cmax <= 2.5 * lb  # ECT heuristic stays near the fluid bound

    def test_equal_speeds_matches_identical_quality(self):
        base = uniform_instance(20, 3, seed=1)
        inst = UniformInstance(base.tasks, speeds=[1.0, 1.0, 1.0])
        result = uniform_list_schedule(inst)
        from repro.algorithms.lpt import lpt_schedule

        assert result.cmax == pytest.approx(lpt_schedule(base).cmax)

    def test_empty(self):
        inst = UniformInstance.from_lists(p=[], s=[], speeds=[1.0, 2.0])
        result = uniform_list_schedule(inst)
        assert result.cmax == 0.0 and result.mmax == 0.0


class TestUniformRLS:
    def test_memory_budget_respected(self):
        base = uniform_instance(30, 4, seed=2)
        inst = UniformInstance(base.tasks, speeds=[1.0, 2.0, 2.0, 4.0])
        for delta in (2.0, 3.0):
            result = uniform_rls(inst, delta=delta)
            assert result.mmax <= delta * mmax_lower_bound(inst) + 1e-9
            assert result.memory_budget == pytest.approx(delta * mmax_lower_bound(inst))
            assert validate_schedule(result.schedule).ok

    def test_infeasible_small_delta(self):
        inst = UniformInstance.from_lists(p=[1, 1, 1], s=[10, 10, 10], speeds=[1.0, 1.0])
        with pytest.raises(InfeasibleDeltaError):
            uniform_rls(inst, delta=1.05)

    def test_invalid_delta(self):
        inst = UniformInstance.from_lists(p=[1], s=[1], speeds=[1.0])
        with pytest.raises(ValueError):
            uniform_rls(inst, delta=0.0)

    def test_memory_budget_costs_makespan(self):
        # With a tight budget the fast machine cannot absorb everything.
        base = uniform_instance(30, 3, seed=5)
        inst = UniformInstance(base.tasks, speeds=[4.0, 1.0, 1.0])
        loose = uniform_rls(inst, delta=50.0)
        tight = uniform_rls(inst, delta=2.0)
        assert tight.mmax <= loose.mmax + 1e-9 or tight.cmax >= loose.cmax - 1e-9


class TestOnlineScheduler:
    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            OnlineBiObjectiveScheduler(m=0)
        with pytest.raises(ValueError):
            OnlineBiObjectiveScheduler(m=2, delta=0.0)

    def test_duplicate_submission_rejected(self):
        sched = OnlineBiObjectiveScheduler(m=2)
        sched.submit(Task(id=0, p=1, s=1))
        with pytest.raises(ValueError):
            sched.submit(Task(id=0, p=2, s=2))

    def test_online_matches_offline_greedy_quality(self):
        inst = uniform_instance(60, 4, seed=3)
        online = OnlineBiObjectiveScheduler(m=4, delta=1.0)
        online.submit_many(inst.tasks)
        assert online.n_submitted == 60
        snapshot = online.current_schedule()
        assert validate_schedule(snapshot).ok
        # The online greedy stays within the classical 2x factors of the bounds.
        from repro.core.bounds import cmax_lower_bound

        assert online.cmax <= 2.0 * cmax_lower_bound(inst) + 1e-9 or online.mmax <= 2.0 * mmax_lower_bound(inst) + 1e-9

    def test_memory_routed_tasks_have_low_density(self):
        sched = OnlineBiObjectiveScheduler(m=2, delta=1.0)
        sched.submit(Task(id="balanced", p=5, s=5))
        sched.submit(Task(id="heavy", p=1, s=50))
        assert "heavy" in sched.memory_routed_tasks

    def test_extreme_deltas_route_everything_one_way(self):
        inst = uniform_instance(20, 3, seed=8)
        time_only = OnlineBiObjectiveScheduler(m=3, delta=1e-9)
        time_only.submit_many(inst.tasks)
        assert not time_only.memory_routed_tasks
        memory_only = OnlineBiObjectiveScheduler(m=3, delta=1e9)
        memory_only.submit_many(inst.tasks)
        assert len(memory_only.memory_routed_tasks) == 20

    def test_zero_storage_stream(self):
        sched = OnlineBiObjectiveScheduler(m=2)
        for i in range(6):
            sched.submit(Task(id=i, p=2, s=0))
        assert sched.mmax == 0.0
        assert sched.cmax == 6.0  # 6 tasks of 2 over 2 processors

    def test_competitive_bounds(self):
        sched = OnlineBiObjectiveScheduler(m=4)
        assert sched.competitive_bounds() == (1.75, 1.75)

    def test_snapshot_objective_consistency(self):
        inst = uniform_instance(25, 3, seed=11)
        online = OnlineBiObjectiveScheduler(m=3, delta=2.0)
        online.submit_many(inst.tasks)
        snapshot = online.current_schedule()
        assert snapshot.cmax == pytest.approx(online.cmax)
        assert snapshot.mmax == pytest.approx(online.mmax)
