"""Unit tests for repro.extensions (uniform machines).

The online scheduler moved to :mod:`repro.online`; its tests live in
``tests/test_online.py`` and the ``repro.extensions.online`` deprecation
shim is covered there too.
"""

from __future__ import annotations

import pytest

from repro.core.bounds import mmax_lower_bound
from repro.core.rls import InfeasibleDeltaError
from repro.core.validation import validate_schedule
from repro.extensions.uniform_machines import (
    UniformInstance,
    uniform_cmax_lower_bound,
    uniform_list_schedule,
    uniform_rls,
)
from repro.workloads.independent import uniform_instance


class TestUniformInstance:
    def test_construction(self):
        inst = UniformInstance.from_lists(p=[4, 2], s=[1, 1], speeds=[1.0, 2.0])
        assert inst.m == 2
        assert inst.execution_time(0, 0) == 4.0
        assert inst.execution_time(0, 1) == 2.0

    def test_invalid_speeds(self):
        with pytest.raises(ValueError):
            UniformInstance.from_lists(p=[1], s=[1], speeds=[])
        with pytest.raises(ValueError):
            UniformInstance.from_lists(p=[1], s=[1], speeds=[0.0])
        with pytest.raises(ValueError):
            UniformInstance.from_lists(p=[1], s=[1], speeds=[-1.0, 1.0])

    def test_as_identical(self):
        inst = UniformInstance.from_lists(p=[1, 2], s=[3, 4], speeds=[1.0, 3.0])
        identical = inst.as_identical()
        assert identical.m == 2 and not isinstance(identical, UniformInstance)

    def test_lower_bound(self):
        inst = UniformInstance.from_lists(p=[6, 6], s=[1, 1], speeds=[1.0, 2.0])
        # fluid bound: 12 / 3 = 4; max task on fastest: 6 / 2 = 3.
        assert uniform_cmax_lower_bound(inst) == 4.0

    def test_lower_bound_large_task(self):
        inst = UniformInstance.from_lists(p=[10, 1], s=[1, 1], speeds=[1.0, 1.0])
        assert uniform_cmax_lower_bound(inst) == 10.0


class TestUniformListSchedule:
    def test_faster_machine_preferred(self):
        inst = UniformInstance.from_lists(p=[4], s=[1], speeds=[1.0, 4.0])
        result = uniform_list_schedule(inst)
        assert result.cmax == 1.0  # runs on the fast machine

    def test_valid_and_reasonable(self):
        base = uniform_instance(30, 4, seed=0)
        inst = UniformInstance(base.tasks, speeds=[1.0, 1.0, 2.0, 4.0])
        result = uniform_list_schedule(inst)
        assert validate_schedule(result.schedule).ok
        lb = uniform_cmax_lower_bound(inst)
        assert result.cmax <= 2.5 * lb  # ECT heuristic stays near the fluid bound

    def test_equal_speeds_matches_identical_quality(self):
        base = uniform_instance(20, 3, seed=1)
        inst = UniformInstance(base.tasks, speeds=[1.0, 1.0, 1.0])
        result = uniform_list_schedule(inst)
        from repro.algorithms.lpt import lpt_schedule

        assert result.cmax == pytest.approx(lpt_schedule(base).cmax)

    def test_empty(self):
        inst = UniformInstance.from_lists(p=[], s=[], speeds=[1.0, 2.0])
        result = uniform_list_schedule(inst)
        assert result.cmax == 0.0 and result.mmax == 0.0


class TestUniformRLS:
    def test_memory_budget_respected(self):
        base = uniform_instance(30, 4, seed=2)
        inst = UniformInstance(base.tasks, speeds=[1.0, 2.0, 2.0, 4.0])
        for delta in (2.0, 3.0):
            result = uniform_rls(inst, delta=delta)
            assert result.mmax <= delta * mmax_lower_bound(inst) + 1e-9
            assert result.memory_budget == pytest.approx(delta * mmax_lower_bound(inst))
            assert validate_schedule(result.schedule).ok

    def test_infeasible_small_delta(self):
        inst = UniformInstance.from_lists(p=[1, 1, 1], s=[10, 10, 10], speeds=[1.0, 1.0])
        with pytest.raises(InfeasibleDeltaError):
            uniform_rls(inst, delta=1.05)

    def test_invalid_delta(self):
        inst = UniformInstance.from_lists(p=[1], s=[1], speeds=[1.0])
        with pytest.raises(ValueError):
            uniform_rls(inst, delta=0.0)

    def test_memory_budget_costs_makespan(self):
        # With a tight budget the fast machine cannot absorb everything.
        base = uniform_instance(30, 3, seed=5)
        inst = UniformInstance(base.tasks, speeds=[4.0, 1.0, 1.0])
        loose = uniform_rls(inst, delta=50.0)
        tight = uniform_rls(inst, delta=2.0)
        assert tight.mmax <= loose.mmax + 1e-9 or tight.cmax >= loose.cmax - 1e-9
