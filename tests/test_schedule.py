"""Unit tests for repro.core.schedule."""

from __future__ import annotations

import pytest

from repro.core.instance import DAGInstance, Instance
from repro.core.schedule import DAGSchedule, Schedule


class TestSchedule:
    def test_basic_objectives(self, small_instance):
        # tasks: p=[4,3,2,2,1], s=[1,5,2,4,3]
        sched = Schedule(small_instance, {0: 0, 1: 1, 2: 0, 3: 1, 4: 0})
        assert sched.loads == [7, 5]
        assert sched.memories == [6, 9]
        assert sched.cmax == 7
        assert sched.mmax == 9

    def test_missing_task_rejected(self, small_instance):
        with pytest.raises(ValueError, match="missing"):
            Schedule(small_instance, {0: 0, 1: 0})

    def test_unknown_task_rejected(self, small_instance):
        assignment = {t.id: 0 for t in small_instance.tasks}
        assignment["ghost"] = 0
        with pytest.raises(ValueError, match="unknown"):
            Schedule(small_instance, assignment)

    def test_invalid_processor_rejected(self, small_instance):
        assignment = {t.id: 0 for t in small_instance.tasks}
        assignment[0] = 5
        with pytest.raises(ValueError, match="invalid processor"):
            Schedule(small_instance, assignment)

    def test_bool_processor_rejected(self, small_instance):
        assignment = {t.id: 0 for t in small_instance.tasks}
        assignment[0] = True
        with pytest.raises(ValueError, match="invalid processor"):
            Schedule(small_instance, assignment)

    def test_from_processor_lists(self, small_instance):
        sched = Schedule.from_processor_lists(small_instance, [[0, 2, 4], [1, 3]])
        assert sched.processor_of(0) == 0
        assert sched.processor_of(3) == 1
        assert sched.tasks_on(0) == [0, 2, 4]

    def test_from_processor_lists_duplicate(self, small_instance):
        with pytest.raises(ValueError, match="more than one"):
            Schedule.from_processor_lists(small_instance, [[0, 1, 2, 3, 4], [0]])

    def test_from_processor_lists_too_many_lists(self, small_instance):
        with pytest.raises(ValueError, match="processor lists"):
            Schedule.from_processor_lists(small_instance, [[0], [1], [2, 3, 4]])

    def test_completion_times_follow_order(self, small_instance):
        sched = Schedule.from_processor_lists(small_instance, [[2, 0], [1, 3, 4]])
        completion = sched.completion_times()
        assert completion[2] == 2
        assert completion[0] == 6
        assert completion[1] == 3
        assert completion[3] == 5
        assert completion[4] == 6

    def test_sum_ci(self, small_instance):
        sched = Schedule.from_processor_lists(small_instance, [[0], [1, 2, 3, 4]])
        # processor 1 runs p=3,2,2,1 back to back: completions 3,5,7,8
        assert sched.sum_ci == 4 + 3 + 5 + 7 + 8

    def test_order_validation_wrong_processor(self, small_instance):
        with pytest.raises(ValueError, match="assigned to"):
            Schedule(small_instance, {0: 0, 1: 1, 2: 0, 3: 1, 4: 0}, order={0: [1]})

    def test_order_validation_duplicate(self, small_instance):
        with pytest.raises(ValueError, match="twice"):
            Schedule(small_instance, {0: 0, 1: 0, 2: 0, 3: 0, 4: 0}, order={0: [0, 0]})

    def test_order_partial_order_appends_rest(self, small_instance):
        sched = Schedule(small_instance, {0: 0, 1: 0, 2: 0, 3: 0, 4: 0}, order={0: [4]})
        assert sched.tasks_on(0)[0] == 4
        assert set(sched.tasks_on(0)) == {0, 1, 2, 3, 4}

    def test_objective_tuple(self, small_instance):
        sched = Schedule(small_instance, {0: 0, 1: 1, 2: 0, 3: 1, 4: 0})
        assert sched.objective_tuple() == (sched.cmax, sched.mmax)

    def test_as_dag_schedule(self, small_instance):
        sched = Schedule.from_processor_lists(small_instance, [[0, 2], [1, 3, 4]])
        timed = sched.as_dag_schedule()
        assert timed.cmax == sched.cmax
        assert timed.mmax == sched.mmax
        assert timed.start_of(2) == 4  # after task 0 (p=4)

    def test_equality(self, small_instance):
        a = Schedule(small_instance, {0: 0, 1: 1, 2: 0, 3: 1, 4: 0})
        b = Schedule(small_instance, {0: 0, 1: 1, 2: 0, 3: 1, 4: 0})
        c = Schedule(small_instance, {0: 1, 1: 1, 2: 0, 3: 1, 4: 0})
        assert a == b and a != c

    def test_empty_instance_schedule(self):
        inst = Instance.from_lists(p=[], s=[], m=2)
        sched = Schedule(inst, {})
        assert sched.cmax == 0 and sched.mmax == 0 and sched.sum_ci == 0

    def test_tasks_on_invalid_processor(self, small_instance):
        sched = Schedule(small_instance, {0: 0, 1: 1, 2: 0, 3: 1, 4: 0})
        with pytest.raises(ValueError):
            sched.tasks_on(9)


class TestDAGSchedule:
    def _schedule(self, diamond_dag) -> DAGSchedule:
        # a(p=2) on P0 at 0; b(p=3) on P0 at 2; c(p=4) on P1 at 2; d(p=1) on P0 at 6
        return DAGSchedule(
            diamond_dag,
            {"a": 0, "b": 0, "c": 1, "d": 0},
            {"a": 0.0, "b": 2.0, "c": 2.0, "d": 6.0},
        )

    def test_objectives(self, diamond_dag):
        sched = self._schedule(diamond_dag)
        assert sched.cmax == 7.0
        # memories: P0 gets s(a)+s(b)+s(d)=5+2+4=11, P1 gets 3
        assert sched.mmax == 11.0
        assert sched.completion_of("c") == 6.0
        assert sched.sum_ci == 2 + 5 + 6 + 7

    def test_missing_start_time_rejected(self, diamond_dag):
        with pytest.raises(ValueError, match="start_times"):
            DAGSchedule(diamond_dag, {"a": 0, "b": 0, "c": 1, "d": 0}, {"a": 0.0})

    def test_negative_start_rejected(self, diamond_dag):
        with pytest.raises(ValueError, match="negative"):
            DAGSchedule(
                diamond_dag,
                {"a": 0, "b": 0, "c": 1, "d": 0},
                {"a": -1.0, "b": 2.0, "c": 2.0, "d": 6.0},
            )

    def test_invalid_processor_rejected(self, diamond_dag):
        with pytest.raises(ValueError, match="invalid processor"):
            DAGSchedule(
                diamond_dag,
                {"a": 0, "b": 0, "c": 5, "d": 0},
                {"a": 0.0, "b": 2.0, "c": 2.0, "d": 6.0},
            )

    def test_tasks_on_sorted_by_start(self, diamond_dag):
        sched = self._schedule(diamond_dag)
        assert sched.tasks_on(0) == ["a", "b", "d"]
        assert sched.tasks_on(1) == ["c"]

    def test_loads_and_idle_time(self, diamond_dag):
        sched = self._schedule(diamond_dag)
        assert sched.loads == [6.0, 4.0]
        assert sched.idle_time() == pytest.approx(2 * 7.0 - 10.0)

    def test_as_assignment_schedule(self, diamond_dag):
        sched = self._schedule(diamond_dag)
        flat = sched.as_assignment_schedule()
        assert flat.mmax == sched.mmax
        assert flat.tasks_on(0) == ["a", "b", "d"]

    def test_equality(self, diamond_dag):
        a = self._schedule(diamond_dag)
        b = self._schedule(diamond_dag)
        assert a == b

    def test_empty_dag_schedule(self):
        inst = DAGInstance.from_lists(p=[], s=[], m=1)
        sched = DAGSchedule(inst, {}, {})
        assert sched.cmax == 0.0 and sched.mmax == 0.0
