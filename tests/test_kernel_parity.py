"""Byte-identity of the heap-based placement kernels vs the seed kernels.

The kernel fast-path rewrite replaced the O(n*m) ``min(range(m), ...)``
scans of ``list_schedule`` / ``graham_dag_schedule``, the per-probe FFD
re-sort of MULTIFIT, the per-ready-task machine sort of ``RLS_delta``,
and the per-task degenerate-branch checks of ``SBO_delta`` with
array/heap-backed ledgers and hoisted loop invariants.  Every one of
those rewrites claims *bit-identical* output — same assignments, same
processor orders, same start times, same tie-breaks, same floats.

This module pins that claim property-style: the **seed implementations
are copied here verbatim** (naive scans and all) and both versions run
over a grid of seeds x processor counts x priority orders x objectives,
asserting exact equality — ``==`` on floats, not ``approx``.  Instances
deliberately contain duplicate weights and zero-weight tasks so the
(load, index) and (start, rank) tie-breaks are actually exercised.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

import pytest

from repro.algorithms.list_scheduling import (
    graham_dag_schedule,
    list_schedule,
    resolve_order,
)
from repro.algorithms.multifit import ffd_pack, multifit_schedule
from repro.core.bounds import mmax_lower_bound
from repro.core.instance import DAGInstance, Instance
from repro.core.rls import InfeasibleDeltaError, rls
from repro.core.sbo import sbo
from repro.core.task import Task

SEEDS = (0, 1, 2, 3, 4)
MS = (1, 2, 3, 7)
ORDERS = ("arbitrary", "spt", "lpt", "sms", "lms", "density")
OBJECTIVES = ("time", "memory")


def make_instance(seed: int, n: int = 24, m: int = 3) -> Instance:
    """Random instance with forced ties and zero weights."""
    rng = random.Random(seed)
    # A small value pool guarantees duplicate p's and s's (tie-break food);
    # the explicit zeros exercise the degenerate branches.
    pool = [0.0, 1.0, 1.0, 2.0, 2.5, 4.0, rng.uniform(0.1, 8.0)]
    tasks = [
        Task(id=i, p=rng.choice(pool), s=rng.choice(pool))
        for i in range(n)
    ]
    return Instance(tasks, m=m, name=f"parity-{seed}")


def make_dag(seed: int, n: int = 20, m: int = 3) -> DAGInstance:
    rng = random.Random(1000 + seed)
    pool = [0.0, 1.0, 1.0, 2.0, 3.5, rng.uniform(0.1, 6.0)]
    tasks = [Task(id=i, p=rng.choice(pool), s=rng.choice(pool)) for i in range(n)]
    edges = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < 0.12
    ]
    return DAGInstance(tasks, m=m, edges=edges, name=f"parity-dag-{seed}")


# --------------------------------------------------------------------------- #
# seed reference implementations (copied from the pre-rewrite kernels)
# --------------------------------------------------------------------------- #
def _weight(task: Task, objective: str) -> float:
    return task.p if objective == "time" else task.s


def seed_list_schedule(instance, order, objective):
    """The seed list_schedule placement loop: naive (load, index) scan."""
    tasks = resolve_order(instance, order, objective=objective)
    loads = [0.0] * instance.m
    assignment: Dict[object, int] = {}
    per_proc: Dict[int, List[object]] = {q: [] for q in range(instance.m)}
    for task in tasks:
        q = min(range(instance.m), key=lambda j: (loads[j], j))
        assignment[task.id] = q
        per_proc[q].append(task.id)
        loads[q] += _weight(task, objective)
    return assignment, per_proc


def seed_graham(instance, priority):
    """The seed graham_dag_schedule loop: per-ready-task min scan."""
    rank = {t.id: idx for idx, t in enumerate(resolve_order(instance, priority))}
    graph = instance.graph
    p = instance.tasks.processing_times()
    load = [0.0] * instance.m
    remaining_preds = {tid: graph.in_degree(tid) for tid in instance.tasks.ids}
    completion: Dict[object, float] = {}
    assignment: Dict[object, int] = {}
    starts: Dict[object, float] = {}
    ready = {tid for tid, deg in remaining_preds.items() if deg == 0}
    scheduled = 0
    while scheduled < instance.n:
        best_task = None
        best_key = None
        for tid in ready:
            release = max((completion[u] for u in graph.predecessors(tid)), default=0.0)
            q = min(range(instance.m), key=lambda j: (load[j], j))
            start = max(release, load[q])
            key = (start, rank[tid])
            if best_key is None or key < best_key:
                best_key = key
                best_task = (tid, q, start)
        tid, q, start = best_task
        ready.discard(tid)
        assignment[tid] = q
        starts[tid] = start
        completion[tid] = start + p[tid]
        load[q] = completion[tid]
        scheduled += 1
        for succ in graph.successors(tid):
            remaining_preds[succ] -= 1
            if remaining_preds[succ] == 0:
                ready.add(succ)
    return assignment, starts


def seed_ffd_pack(tasks, m, capacity, objective):
    """The seed ffd_pack: re-sorts the tasks on every call."""
    bins = [0.0] * m
    contents: List[List[object]] = [[] for _ in range(m)]
    eps = 1e-12 * max(1.0, capacity)
    for task in sorted(tasks, key=lambda t: -_weight(t, objective)):
        w = _weight(task, objective)
        placed = False
        for j in range(m):
            if bins[j] + w <= capacity + eps:
                bins[j] += w
                contents[j].append(task.id)
                placed = True
                break
        if not placed:
            return None
    return contents


def seed_multifit(instance, objective, iterations=40):
    """The seed multifit_schedule binary search (re-sorting per probe)."""
    tasks = instance.tasks.tasks
    m = instance.m
    weights = [_weight(t, objective) for t in tasks]
    if not tasks:
        return [[] for _ in range(m)]
    total = sum(weights)
    lower = max(total / m, max(weights))
    upper = max(2.0 * total / m, max(weights))
    best = seed_ffd_pack(tasks, m, upper, objective)
    for _ in range(iterations):
        mid = 0.5 * (lower + upper)
        packed = seed_ffd_pack(tasks, m, mid, objective)
        if packed is None:
            lower = mid
        else:
            best = packed
            upper = mid
    return best


def seed_rls(dag, delta, rank):
    """The seed RLS placement loop (per-ready-task machine sort, verbatim)."""
    graph = dag.graph
    m = dag.m
    p = dag.tasks.processing_times()
    s = dag.tasks.storage_sizes()
    lb = mmax_lower_bound(dag)
    budget = delta * lb
    eps = 1e-12 * max(1.0, budget)
    load = [0.0] * m
    memsize = [0.0] * m
    marked = set()
    assignment: Dict[object, int] = {}
    starts: Dict[object, float] = {}
    completion: Dict[object, float] = {}
    remaining_preds = {tid: graph.in_degree(tid) for tid in dag.tasks.ids}
    ready = {tid for tid, deg in remaining_preds.items() if deg == 0}
    n_scheduled = 0
    while n_scheduled < dag.n:
        best: Optional[Tuple[float, int, object, int]] = None
        for tid in ready:
            proc = None
            for j in sorted(range(m), key=lambda q: (load[q], q)):
                if memsize[j] + s[tid] <= budget + eps:
                    proc = j
                    break
            if proc is None:
                raise InfeasibleDeltaError(tid, delta, budget)
            for j in range(m):
                if load[j] < load[proc] - eps:
                    marked.add(j)
            release = max((completion[u] for u in graph.predecessors(tid)), default=0.0)
            start = max(release, load[proc])
            key = (start, rank[tid], tid, proc)
            if best is None or (key[0], key[1]) < (best[0], best[1]):
                best = key
        start, _, tid, proc = best
        assignment[tid] = proc
        starts[tid] = start
        completion[tid] = start + p[tid]
        load[proc] = completion[tid]
        memsize[proc] += s[tid]
        ready.discard(tid)
        n_scheduled += 1
        for succ in graph.successors(tid):
            remaining_preds[succ] -= 1
            if remaining_preds[succ] == 0:
                ready.add(succ)
    return assignment, starts, marked


def seed_sbo_combine(inst, delta, pi1, pi2):
    """The seed SBO threshold loop (per-task degenerate-branch checks)."""
    reference_cmax = pi1.cmax
    reference_mmax = pi2.mmax
    assignment: Dict[object, int] = {}
    memory_driven: List[object] = []
    for task in inst.tasks:
        lhs = task.p * (reference_mmax if reference_mmax > 0 else 0.0)
        rhs = delta * task.s * (reference_cmax if reference_cmax > 0 else 0.0)
        if reference_cmax == 0.0 and reference_mmax == 0.0:
            follow_memory = False
        elif reference_cmax == 0.0:
            follow_memory = True
        elif reference_mmax == 0.0:
            follow_memory = False
        else:
            follow_memory = lhs < rhs
        if follow_memory:
            assignment[task.id] = pi2.processor_of(task.id)
            memory_driven.append(task.id)
        else:
            assignment[task.id] = pi1.processor_of(task.id)
    return assignment, memory_driven


# --------------------------------------------------------------------------- #
# parity properties
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("m", MS)
def test_list_schedule_parity(seed, m):
    instance = make_instance(seed, m=m)
    for order in ORDERS:
        for objective in OBJECTIVES:
            expected_assignment, expected_order = seed_list_schedule(
                instance, order, objective
            )
            got = list_schedule(instance, order=order, objective=objective)
            assert got.assignment == expected_assignment, (seed, m, order, objective)
            for q in range(m):
                assert got.tasks_on(q) == expected_order[q], (seed, m, order, objective)
            # Loads are recomputed by Schedule in instance order (never taken
            # from the kernel's heap), so they are bit-equal by construction —
            # assert anyway to pin the contract.
            naive = [0.0] * m
            for t in instance.tasks:
                naive[expected_assignment[t.id]] += _weight(t, objective)
            assert got.loads == naive if objective == "time" else True


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("m", MS)
def test_graham_dag_parity(seed, m):
    dag = make_dag(seed, m=m)
    for priority in ("arbitrary", "spt", "lpt"):
        expected_assignment, expected_starts = seed_graham(dag, priority)
        got = graham_dag_schedule(dag, priority=priority)
        assert got.assignment == expected_assignment, (seed, m, priority)
        assert got.start_times == expected_starts, (seed, m, priority)


def test_graham_hoist_regression():
    """Satellite fix: the machine scan is loop-invariant across ready tasks.

    A diamond DAG with an idle gap (every ready task's release exceeds the
    min machine load) plus rank ties is exactly the shape where a wrongly
    hoisted scan would diverge; the schedule must equal the seed loop's.
    """
    dag = DAGInstance(
        [Task(id=i, p=w, s=1.0) for i, w in enumerate([3.0, 1.0, 1.0, 1.0, 2.0])],
        m=2,
        edges=[(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 4)],
    )
    expected_assignment, expected_starts = seed_graham(dag, None)
    got = graham_dag_schedule(dag)
    assert got.assignment == expected_assignment
    assert got.start_times == expected_starts
    # The sink must wait for the slowest middle task (released, not load-bound).
    assert got.start_times[4] == max(got.start_times[i] + dag.tasks[i].p for i in (1, 2, 3))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("m", MS)
def test_multifit_parity(seed, m):
    instance = make_instance(seed, m=m)
    for objective in OBJECTIVES:
        expected = seed_multifit(instance, objective)
        got = multifit_schedule(instance, objective=objective)
        for q in range(m):
            assert got.tasks_on(q) == expected[q], (seed, m, objective)
        # ffd_pack keeps the seed's exact First Fit semantics at any capacity.
        for capacity in (0.0, 1.0, 2.5, 7.0):
            assert ffd_pack(instance.tasks.tasks, m, capacity, objective) == \
                seed_ffd_pack(instance.tasks.tasks, m, capacity, objective)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("delta", (2.0, 2.5, 4.0))
def test_rls_parity(seed, delta):
    dag = make_dag(seed, m=3)
    for order in ("arbitrary", "spt", "lpt", "bottom-level"):
        got = rls(dag, delta, order=order)
        from repro.core.rls import _priority_rank

        rank = _priority_rank(dag, order)
        expected_assignment, expected_starts, expected_marked = seed_rls(
            dag, delta, rank
        )
        assert got.schedule.assignment == expected_assignment, (seed, delta, order)
        assert got.schedule.start_times == expected_starts, (seed, delta, order)
        assert got.marked_processors == tuple(sorted(expected_marked)), (seed, delta, order)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("delta", (0.5, 1.0, 2.0))
def test_sbo_parity(seed, delta):
    for inner in ("lpt", "list", "multifit"):
        instance = make_instance(seed, m=3)
        got = sbo(instance, delta, cmax_solver=inner)
        expected_assignment, expected_driven = seed_sbo_combine(
            instance, delta, got.pi1, got.pi2
        )
        assert got.schedule.assignment == expected_assignment, (seed, delta, inner)
        assert got.memory_driven_tasks == tuple(expected_driven), (seed, delta, inner)


def test_sbo_parity_degenerate():
    """Zero-reference branches: all-zero p, all-zero s, and all-zero both."""
    for p, s in ((0.0, 2.0), (2.0, 0.0), (0.0, 0.0)):
        instance = Instance([Task(id=i, p=p, s=s) for i in range(6)], m=2)
        got = sbo(instance, 1.0)
        expected_assignment, expected_driven = seed_sbo_combine(
            instance, 1.0, got.pi1, got.pi2
        )
        assert got.schedule.assignment == expected_assignment, (p, s)
        assert got.memory_driven_tasks == tuple(expected_driven), (p, s)


def test_list_schedule_rejects_bad_objective():
    instance = make_instance(0, n=3, m=2)
    with pytest.raises(ValueError, match="unknown objective"):
        list_schedule(instance, objective="latency")
