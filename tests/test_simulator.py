"""Unit tests for the discrete-event simulator (events, machine, engine, executor, trace)."""

from __future__ import annotations

import pytest

from repro.core.instance import Instance
from repro.core.rls import rls
from repro.core.sbo import sbo
from repro.core.schedule import DAGSchedule, Schedule
from repro.simulator.engine import SimulationEngine
from repro.simulator.events import Event, EventKind, EventQueue
from repro.simulator.executor import simulate_schedule
from repro.simulator.machine import MemoryOverflowError, Processor
from repro.simulator.trace import TraceRecord, render_gantt
from repro.workloads.independent import uniform_instance


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(Event(time=3.0, kind=EventKind.TASK_START, task_id="c"))
        q.push(Event(time=1.0, kind=EventKind.TASK_START, task_id="a"))
        q.push(Event(time=2.0, kind=EventKind.TASK_START, task_id="b"))
        assert [q.pop().task_id for _ in range(3)] == ["a", "b", "c"]

    def test_finish_before_start_at_same_time(self):
        q = EventQueue()
        q.push(Event(time=5.0, kind=EventKind.TASK_START, task_id="start"))
        q.push(Event(time=5.0, kind=EventKind.TASK_FINISH, task_id="finish"))
        assert q.pop().task_id == "finish"

    def test_fifo_for_equal_keys(self):
        q = EventQueue()
        q.push(Event(time=1.0, kind=EventKind.TASK_START, task_id="first"))
        q.push(Event(time=1.0, kind=EventKind.TASK_START, task_id="second"))
        assert q.pop().task_id == "first"

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(Event(time=-1.0, kind=EventKind.TASK_START))

    def test_pop_empty(self):
        with pytest.raises(IndexError):
            EventQueue().pop()
        with pytest.raises(IndexError):
            EventQueue().peek()

    def test_len_bool_iter(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(Event(time=0.0, kind=EventKind.CUSTOM))
        q.push(Event(time=1.0, kind=EventKind.CUSTOM))
        assert bool(q) and len(q) == 2
        assert len(list(iter(q))) == 2
        assert len(q) == 0  # iteration drains


class TestProcessor:
    def test_memory_accounting(self):
        proc = Processor(id=0, memory_capacity=10.0)
        proc.reserve_memory("a", 6.0)
        assert proc.memory_used == 6.0
        assert proc.can_store(4.0)
        assert not proc.can_store(4.1)
        with pytest.raises(MemoryOverflowError):
            proc.reserve_memory("b", 5.0)

    def test_unlimited_memory(self):
        proc = Processor(id=0)
        proc.reserve_memory("a", 1e9)
        assert proc.memory_used == 1e9

    def test_negative_memory_rejected(self):
        with pytest.raises(ValueError):
            Processor(id=0).reserve_memory("a", -1.0)

    def test_execution_exclusivity(self):
        proc = Processor(id=0)
        finish = proc.execute("a", start=0.0, duration=5.0)
        assert finish == 5.0
        with pytest.raises(RuntimeError):
            proc.execute("b", start=3.0, duration=1.0)
        assert proc.execute("b", start=5.0, duration=1.0) == 6.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Processor(id=0).execute("a", 0.0, -1.0)

    def test_utilisation(self):
        proc = Processor(id=0)
        proc.execute("a", 0.0, 4.0)
        assert proc.utilisation(8.0) == 0.5
        assert proc.utilisation(0.0) == 0.0


class TestEngine:
    def test_simple_run(self):
        engine = SimulationEngine(m=2)
        engine.submit_task("a", 0, start=0.0, duration=3.0, storage=1.0)
        engine.submit_task("b", 1, start=0.0, duration=2.0, storage=2.0)
        makespan = engine.run()
        assert makespan == 3.0
        assert engine.completion_times == {"a": 3.0, "b": 2.0}
        assert engine.memory_per_processor == [1.0, 2.0]

    def test_strict_overlap_raises(self):
        engine = SimulationEngine(m=1, strict=True)
        engine.submit_task("a", 0, 0.0, 5.0, 0.0)
        engine.submit_task("b", 0, 2.0, 1.0, 0.0)
        with pytest.raises(RuntimeError):
            engine.run()

    def test_non_strict_postpones(self):
        engine = SimulationEngine(m=1, strict=False)
        engine.submit_task("a", 0, 0.0, 5.0, 0.0)
        engine.submit_task("b", 0, 2.0, 1.0, 0.0)
        engine.run()
        assert engine.completion_times["b"] == 6.0

    def test_capacity_enforced(self):
        engine = SimulationEngine(m=1, memory_capacity=5.0)
        engine.submit_task("a", 0, 0.0, 1.0, 4.0)
        engine.submit_task("b", 0, 1.0, 1.0, 2.0)
        with pytest.raises(MemoryOverflowError):
            engine.run()

    def test_invalid_processor(self):
        engine = SimulationEngine(m=1)
        with pytest.raises(ValueError):
            engine.submit_task("a", 3, 0.0, 1.0, 0.0)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            SimulationEngine(m=0)

    def test_finish_callback(self):
        engine = SimulationEngine(m=1)
        finished = []
        engine.on_task_finish(lambda ev: finished.append(ev.task_id))
        engine.submit_task("a", 0, 0.0, 1.0, 0.0)
        engine.run()
        assert finished == ["a"]


class TestSimulateSchedule:
    def test_independent_schedule_agrees(self, medium_instance):
        sched = sbo(medium_instance, delta=1.0).schedule
        report = simulate_schedule(sched)
        assert report.ok
        assert report.cmax == pytest.approx(sched.cmax)
        assert report.mmax == pytest.approx(sched.mmax)
        assert report.sum_ci == pytest.approx(sched.sum_ci)
        assert len(report.trace) == medium_instance.n

    def test_dag_schedule_agrees(self, diamond_dag):
        result = rls(diamond_dag, delta=3.0)
        report = simulate_schedule(result.schedule)
        assert report.ok
        assert report.cmax == pytest.approx(result.cmax)
        assert report.mmax == pytest.approx(result.mmax)

    def test_capacity_violation_reported(self, medium_instance):
        sched = Schedule(medium_instance, {t.id: 0 for t in medium_instance.tasks})
        report = simulate_schedule(sched, memory_capacity=1.0)
        assert not report.ok
        assert report.violations

    def test_precedence_violation_reported(self, diamond_dag):
        bad = DAGSchedule(
            diamond_dag,
            {"a": 0, "b": 1, "c": 1, "d": 0},
            {"a": 0.0, "b": 0.0, "c": 4.0, "d": 8.0},
        )
        report = simulate_schedule(bad)
        assert not report.ok
        assert any("precedence" in v for v in report.violations)

    def test_overlap_reported_not_raised(self, diamond_dag):
        bad = DAGSchedule(
            diamond_dag,
            {"a": 0, "b": 0, "c": 1, "d": 0},
            {"a": 0.0, "b": 1.0, "c": 2.0, "d": 6.0},
        )
        report = simulate_schedule(bad)
        assert not report.ok

    def test_utilisation_and_loads(self, medium_instance):
        sched = sbo(medium_instance, delta=1.0).schedule
        report = simulate_schedule(sched)
        assert len(report.utilisation) == medium_instance.m
        assert all(0.0 <= u <= 1.0 for u in report.utilisation)
        assert sum(report.load_per_processor) == pytest.approx(medium_instance.total_p)

    def test_empty_schedule(self):
        inst = Instance.from_lists(p=[], s=[], m=2)
        report = simulate_schedule(Schedule(inst, {}))
        assert report.ok and report.cmax == 0.0

    def test_random_instances_roundtrip(self):
        for seed in range(3):
            inst = uniform_instance(30, 4, seed=seed)
            sched = sbo(inst, delta=2.0).schedule
            report = simulate_schedule(sched)
            assert report.ok
            assert report.mmax == pytest.approx(sched.mmax)


class TestGantt:
    def test_render_from_schedule(self, medium_instance):
        sched = sbo(medium_instance, delta=1.0).schedule
        text = render_gantt(sched, width=40)
        lines = text.splitlines()
        assert len(lines) == medium_instance.m + 1
        assert all(line.startswith("P") for line in lines[:-1])
        assert "mem=" in lines[0]

    def test_render_from_records(self):
        records = [
            TraceRecord(task_id="a", processor=0, start=0.0, finish=2.0, storage=1.0),
            TraceRecord(task_id="b", processor=1, start=0.0, finish=4.0, storage=2.0),
        ]
        text = render_gantt(records, width=20, show_memory=False)
        assert "P0" in text and "P1" in text and "mem=" not in text

    def test_render_width_validation(self, medium_instance):
        sched = sbo(medium_instance, delta=1.0).schedule
        with pytest.raises(ValueError):
            render_gantt(sched, width=5)

    def test_render_dag_schedule(self, diamond_dag):
        result = rls(diamond_dag, delta=3.0)
        text = render_gantt(result.schedule, width=30)
        assert "P0" in text and "P1" in text

    def test_trace_record_duration(self):
        rec = TraceRecord(task_id="x", processor=0, start=1.0, finish=3.5, storage=0.0)
        assert rec.duration == 2.5
