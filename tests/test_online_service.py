"""Streaming sessions through the service, the wire protocol, and live serve.

Covers the :class:`~repro.service.sessions.SessionManager` (admission
bounds, idle expiry, isolation), the ``session_*`` protocol ops through
:func:`~repro.service.server.handle_request`, the async
:class:`~repro.service.client.ServiceClient`, per-solver-family latency
stats, and the acceptance-criterion end-to-end test: a streaming session
against a live ``repro serve`` subprocess whose finalized schedule is
bit-identical to running the same online spec in-process.
"""

from __future__ import annotations

import asyncio
import json
import re
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.instance import Instance
from repro.core.task import Task
from repro.extensions.uniform_machines import UniformInstance
from repro.online import create_online, stochastic_trace
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceProtocolError,
    SessionLimitError,
    SessionManager,
    SolverService,
    UnknownSessionError,
)
from repro.service.server import handle_request, serve_tcp
from repro.solvers import SpecError, solve

from make_golden import golden_instances

pytestmark = pytest.mark.online


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def trace():
    return stochastic_trace(n=50, m=4, seed=0)


# --------------------------------------------------------------------------- #
# SessionManager
# --------------------------------------------------------------------------- #
class TestSessionManager:
    def test_open_submit_result_close(self, trace):
        manager = SessionManager()
        session = manager.open("online_sbo(delta=1.0)", m=4)
        for event in trace:
            ack = manager.submit(session.id, event.task)
        assert ack["n"] == 50
        result = manager.result(session.id)
        assert result.provenance["n_submitted"] == 50
        summary = manager.close(session.id)
        assert summary["n"] == 50
        with pytest.raises(UnknownSessionError):
            manager.submit(session.id, Task(id="late", p=1, s=1))

    def test_unknown_session(self):
        manager = SessionManager()
        with pytest.raises(UnknownSessionError):
            manager.describe("sess-404")

    def test_session_limit(self):
        manager = SessionManager(max_sessions=2)
        manager.open("online_greedy", m=2)
        keep = manager.open("online_greedy", m=2)
        with pytest.raises(SessionLimitError):
            manager.open("online_greedy", m=2)
        manager.close(keep.id)
        manager.open("online_greedy", m=2)  # slot freed
        assert manager.counters["sessions_rejected"] == 1

    def test_task_bound(self):
        manager = SessionManager(max_session_tasks=2)
        session = manager.open("online_greedy", m=2)
        manager.submit(session.id, Task(id=0, p=1, s=1))
        manager.submit(session.id, Task(id=1, p=1, s=1))
        with pytest.raises(SessionLimitError):
            manager.submit(session.id, Task(id=2, p=1, s=1))

    def test_idle_expiry_is_lazy_and_counted(self):
        clock = [0.0]
        manager = SessionManager(ttl=10.0, clock=lambda: clock[0])
        session = manager.open("online_greedy", m=2)
        clock[0] = 5.0
        manager.submit(session.id, Task(id=0, p=1, s=1))  # touches last_active
        clock[0] = 14.0
        assert len(manager) == 1  # 9s idle, still alive
        clock[0] = 15.1
        with pytest.raises(UnknownSessionError):
            manager.describe(session.id)
        assert manager.counters["sessions_expired"] == 1
        assert len(manager) == 0

    def test_activity_keeps_session_alive(self):
        clock = [0.0]
        manager = SessionManager(ttl=10.0, clock=lambda: clock[0])
        session = manager.open("online_greedy", m=2)
        for step in range(1, 10):
            clock[0] = step * 8.0
            manager.submit(session.id, Task(id=step, p=1, s=1))
        assert manager.counters["sessions_expired"] == 0

    def test_bad_spec_rejected_without_slot_leak(self):
        manager = SessionManager(max_sessions=1)
        with pytest.raises(SpecError):
            manager.open("online_nope", m=2)
        manager.open("online_greedy", m=2)  # the slot was not consumed

    def test_interleaved_sessions_stay_isolated(self, trace):
        manager = SessionManager()
        a = manager.open("online_sbo(delta=1.0)", m=4)
        b = manager.open("online_sbo(delta=1.0)", m=4)
        solo = create_online("online_sbo(delta=1.0)", m=4)
        # Interleave: a gets every task, b gets every other task (fresh ids).
        for i, event in enumerate(trace):
            manager.submit(a.id, event.task)
            if i % 2 == 0:
                manager.submit(b.id, event.task)
            solo.submit(event.task)
        result_a = manager.result(a.id)
        expected = solo.finalize()
        assert result_a.cmax == expected.cmax
        assert result_a.schedule.assignment == expected.schedule.assignment
        result_b = manager.result(b.id)
        assert result_b.provenance["n_submitted"] == 25

    def test_batch_with_duplicate_tail_places_nothing(self):
        from repro.service import SessionError

        manager = SessionManager()
        session = manager.open("online_greedy", m=2)
        batch = [Task(id=0, p=1, s=1), Task(id=1, p=1, s=1), Task(id=0, p=2, s=2)]
        with pytest.raises(SessionError, match="rejected whole"):
            manager.submit_many(session.id, batch)
        assert manager.describe(session.id)["n"] == 0  # truly all-or-nothing

    def test_batch_crossing_task_bound_places_nothing(self):
        manager = SessionManager(max_session_tasks=3)
        session = manager.open("online_greedy", m=2)
        manager.submit(session.id, Task(id="a", p=1, s=1))
        with pytest.raises(SessionLimitError, match="nothing was placed"):
            manager.submit_many(session.id, [Task(id=i, p=1, s=1) for i in range(3)])
        assert manager.describe(session.id)["n"] == 1

    def test_batch_against_finalized_session_places_nothing(self):
        from repro.service import SessionError

        manager = SessionManager()
        session = manager.open("online_greedy", m=2)
        manager.result(session.id)
        with pytest.raises(SessionError, match="rejected whole"):
            manager.submit_many(session.id, [Task(id=0, p=1, s=1)])

    def test_validation_counters(self):
        manager = SessionManager()
        session = manager.open("online_greedy", m=2)
        manager.submit(session.id, Task(id=0, p=1, s=1))
        stats = manager.stats()
        assert stats["sessions_open"] == 1
        assert stats["sessions_opened"] == 1
        assert stats["session_tasks"] == 1


# --------------------------------------------------------------------------- #
# the service facade + protocol ops
# --------------------------------------------------------------------------- #
class TestServiceSessions:
    def test_session_api_requires_running_service(self):
        svc = SolverService(workers=1)
        from repro.service import ServiceClosedError

        with pytest.raises(ServiceClosedError):
            svc.session_open("online_greedy", m=2)

    def test_handle_request_session_flow(self, trace):
        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                opened = await handle_request(
                    svc, {"op": "session_open", "spec": "online_sbo(delta=1.0)", "m": 4}
                )
                assert opened["ok"], opened
                sid = opened["session"]
                for event in trace:
                    ack = await handle_request(svc, {
                        "op": "session_submit", "session": sid,
                        "task": {"id": event.task.id, "p": event.task.p, "s": event.task.s},
                    })
                    assert ack["ok"] and len(ack["placements"]) == 1
                final = await handle_request(svc, {"op": "session_result", "session": sid})
                closed = await handle_request(svc, {"op": "session_close", "session": sid})
                stats = await handle_request(svc, {"op": "stats"})
                return final, closed, stats

        final, closed, stats = run(scenario())
        local = create_online("online_sbo(delta=1.0)", m=4)
        for event in stochastic_trace(n=50, m=4, seed=0):
            local.submit(event.task)
        expected = local.finalize()
        assert final["result"]["cmax"] == expected.cmax
        assert final["result"]["mmax"] == expected.mmax
        assert dict(map(tuple, final["result"]["assignment"])) == expected.schedule.assignment
        assert closed["closed"] and closed["n"] == 50
        assert stats["stats"]["sessions_opened"] == 1
        assert stats["stats"]["session_tasks"] == 50

    def test_batch_submit_matches_sequential(self, trace):
        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                opened = await handle_request(
                    svc, {"op": "session_open", "spec": "online_greedy", "m": 4}
                )
                sid = opened["session"]
                tasks = [
                    {"id": e.task.id, "p": e.task.p, "s": e.task.s} for e in trace
                ]
                ack = await handle_request(
                    svc, {"op": "session_submit", "session": sid, "tasks": tasks}
                )
                return ack

        ack = run(scenario())
        assert ack["ok"] and len(ack["placements"]) == 50
        local = create_online("online_greedy", m=4)
        placements = [[e.task.id, local.submit(e.task)] for e in trace]
        assert ack["placements"] == placements

    @pytest.mark.parametrize("request_payload,fragment", [
        ({"op": "session_open", "m": 4}, "spec"),
        ({"op": "session_open", "spec": "online_greedy"}, "'m'"),
        ({"op": "session_open", "spec": "online_greedy", "m": 0}, "'m'"),
        ({"op": "session_submit", "session": "sess-1"}, "task"),
        ({"op": "session_submit"}, "session"),
        ({"op": "session_result"}, "session"),
        ({"op": "session_close", "session": ""}, "session"),
    ])
    def test_malformed_session_requests(self, request_payload, fragment):
        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                return await handle_request(svc, request_payload)

        response = run(scenario())
        assert not response["ok"]
        assert fragment in response["error"]["message"]

    def test_wire_batch_with_bad_tail_is_atomic(self):
        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                opened = await handle_request(
                    svc, {"op": "session_open", "spec": "online_greedy", "m": 2}
                )
                sid = opened["session"]
                bad = await handle_request(svc, {
                    "op": "session_submit", "session": sid,
                    "tasks": [{"id": 0, "p": 1, "s": 1}, {"id": 0, "p": 2, "s": 2}],
                })
                state = svc.session_describe(sid)
                return bad, state

        bad, state = run(scenario())
        assert not bad["ok"] and "rejected whole" in bad["error"]["message"]
        assert state["n"] == 0

    def test_unknown_session_is_an_error_response(self):
        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                return await handle_request(
                    svc, {"op": "session_result", "session": "sess-404"}
                )

        response = run(scenario())
        assert not response["ok"]
        assert response["error"]["type"] == "UnknownSessionError"

    def test_submit_after_result_rejected(self):
        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                opened = await handle_request(
                    svc, {"op": "session_open", "spec": "online_greedy", "m": 2}
                )
                sid = opened["session"]
                await handle_request(svc, {
                    "op": "session_submit", "session": sid,
                    "task": {"id": 0, "p": 1, "s": 1},
                })
                await handle_request(svc, {"op": "session_result", "session": sid})
                return await handle_request(svc, {
                    "op": "session_submit", "session": sid,
                    "task": {"id": 1, "p": 1, "s": 1},
                })

        response = run(scenario())
        assert not response["ok"]
        assert "finalized" in response["error"]["message"]

    def test_concurrent_session_results_share_one_finalization(self):
        async def scenario():
            trace = stochastic_trace(n=25, m=3, seed=9)
            async with SolverService(ServiceConfig(workers=1)) as svc:
                session = svc.session_open("online_hindsight(inner='lpt')", m=3)
                for event in trace:
                    svc.session_submit(session.id, event.task)
                first, second = await asyncio.gather(
                    svc.session_result(session.id),
                    svc.session_result(session.id),
                )
                third = await svc.session_result(session.id)
                return first, second, third

        first, second, third = run(scenario())
        # One finalization, fanned out: all waiters get the same object.
        assert first is second is third

    def test_sessions_cleared_on_close(self):
        async def scenario():
            svc = SolverService(ServiceConfig(workers=1))
            await svc.start()
            svc.session_open("online_greedy", m=2)
            await svc.close()
            return svc.stats()

        stats = run(scenario())
        assert stats.sessions_open == 0
        assert stats.sessions_closed == 1


# --------------------------------------------------------------------------- #
# two interleaved sessions over one live TCP connection
# --------------------------------------------------------------------------- #
class TestWireSessions:
    def test_two_interleaved_wire_sessions_stay_isolated(self):
        async def scenario():
            trace_a = stochastic_trace(n=30, m=3, seed=1)
            trace_b = stochastic_trace(n=30, m=2, seed=2)
            async with SolverService(ServiceConfig(workers=1)) as svc:
                shutdown = asyncio.Event()
                server = await serve_tcp(svc, port=0, shutdown=shutdown)
                port = server.sockets[0].getsockname()[1]
                client_a = await ServiceClient.connect(port=port)
                client_b = await ServiceClient.connect(port=port)
                try:
                    sess_a = await client_a.session_open("online_sbo(delta=0.5)", m=3)
                    sess_b = await client_b.session_open("online_greedy(objective=memory)", m=2)
                    for ev_a, ev_b in zip(trace_a, trace_b):
                        await sess_a.submit(ev_a.task)
                        await sess_b.submit(ev_b.task)
                    wire_a = await sess_a.result()
                    wire_b = await sess_b.result()
                    await sess_a.close()
                    await sess_b.close()
                finally:
                    await client_a.close()
                    await client_b.close()
                    server.close()
                    await server.wait_closed()
            return trace_a, trace_b, wire_a, wire_b

        trace_a, trace_b, wire_a, wire_b = run(scenario())
        for trace, spec, wire in (
            (trace_a, "online_sbo(delta=0.5)", wire_a),
            (trace_b, "online_greedy(objective=memory)", wire_b),
        ):
            local = create_online(spec, m=trace.m)
            for event in trace:
                local.submit(event.task)
            expected = local.finalize()
            assert wire["cmax"] == expected.cmax
            assert wire["mmax"] == expected.mmax
            assert dict(map(tuple, wire["assignment"])) == expected.schedule.assignment

    def test_session_context_manager_closes_server_side(self):
        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                shutdown = asyncio.Event()
                server = await serve_tcp(svc, port=0, shutdown=shutdown)
                port = server.sockets[0].getsockname()[1]
                client = await ServiceClient.connect(port=port)
                try:
                    async with client.session("online_greedy", m=2) as session:
                        await session.submit(Task(id=0, p=1, s=1))
                    stats = await client.stats()
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()
                return stats

        stats = run(scenario())
        assert stats["sessions_opened"] == 1
        assert stats["sessions_closed"] == 1
        assert stats["sessions_open"] == 0

    def test_timed_out_request_does_not_leak_pending_entry(self):
        async def scenario():
            async def mute_server(reader, writer):
                await reader.read()  # swallow everything, never respond

            server = await asyncio.start_server(mute_server, host="127.0.0.1", port=0)
            port = server.sockets[0].getsockname()[1]
            client = await ServiceClient.connect(port=port)
            try:
                with pytest.raises(asyncio.TimeoutError):
                    await asyncio.wait_for(client.request({"op": "ping"}), timeout=0.2)
                return dict(client._pending)
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        assert run(scenario()) == {}

    def test_wire_error_surfaces_remote_type(self):
        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                shutdown = asyncio.Event()
                server = await serve_tcp(svc, port=0, shutdown=shutdown)
                port = server.sockets[0].getsockname()[1]
                client = await ServiceClient.connect(port=port)
                try:
                    with pytest.raises(ServiceProtocolError) as excinfo:
                        await client.session_open("online_nope", m=2)
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()
                return excinfo.value

        error = run(scenario())
        assert error.error_type == "SpecError"
        assert "online_nope" in error.remote_message


# --------------------------------------------------------------------------- #
# uniform instances over the wire (ROADMAP satellite)
# --------------------------------------------------------------------------- #
class TestUniformOverWire:
    def test_golden_uniform_round_trip(self):
        uni = golden_instances()["uniform-3speeds"]
        payload = uni.to_dict()
        assert payload["kind"] == "uniform"
        restored = UniformInstance.from_dict(json.loads(json.dumps(payload)))
        assert restored.content_hash() == uni.content_hash()
        assert restored.speeds == uni.speeds
        assert restored == uni

    def test_mismatched_m_rejected(self):
        uni = golden_instances()["uniform-3speeds"]
        payload = uni.to_dict()
        payload["m"] = 5
        with pytest.raises(ValueError, match="speeds"):
            UniformInstance.from_dict(payload)

    def test_uniform_solve_over_wire_matches_direct(self):
        uni = golden_instances()["uniform-3speeds"]
        direct = solve(uni, "uniform_rls(delta=2.5)", cache=False)

        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                return await handle_request(svc, {
                    "op": "solve", "instance": uni.to_dict(),
                    "spec": "uniform_rls(delta=2.5)",
                })

        response = run(scenario())
        assert response["ok"], response
        result = response["result"]
        assert result["cmax"] == direct.cmax
        assert result["mmax"] == direct.mmax
        assert dict(map(tuple, result["assignment"])) == direct.schedule.assignment

    def test_plain_instance_still_defaults_independent(self):
        inst = Instance.from_lists(p=[1, 2], s=[3, 4], m=2)
        payload = inst.to_dict()
        assert payload["kind"] == "independent"


# --------------------------------------------------------------------------- #
# per-family latency stats (ROADMAP satellite)
# --------------------------------------------------------------------------- #
class TestFamilyLatency:
    def test_families_tracked_per_registry_entry(self):
        inst = Instance.from_lists(p=[4, 3, 2, 2, 1], s=[1, 5, 2, 4, 3], m=2)

        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                await svc.solve(inst, "lpt")
                await svc.solve(inst, "sbo(delta=0.5)")
                await svc.solve(inst, "sbo(delta=1.0)")
                return svc.stats()

        stats = run(scenario())
        assert set(stats.families) == {"lpt", "sbo"}
        assert stats.families["sbo"]["count"] == 2
        assert stats.families["lpt"]["count"] == 1
        for family in stats.families.values():
            assert family["p50"] <= family["p99"]
            assert family["max"] >= family["p99"]

    def test_cache_hits_count_into_family_latency(self):
        inst = Instance.from_lists(p=[4, 3, 2], s=[1, 5, 2], m=2)

        async def scenario():
            from repro.solvers import LRUCache

            async with SolverService(ServiceConfig(workers=1, cache=LRUCache())) as svc:
                await svc.solve(inst, "lpt")
                await svc.solve(inst, "lpt")  # cache hit
                return svc.stats()

        stats = run(scenario())
        assert stats.cache_hits == 1
        assert stats.families["lpt"]["count"] == 2

    def test_families_surface_in_stats_op(self):
        inst = Instance.from_lists(p=[2, 1], s=[1, 2], m=2)

        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                await svc.solve(inst, "lpt")
                return await handle_request(svc, {"op": "stats"})

        response = run(scenario())
        assert response["ok"]
        assert "lpt" in response["stats"]["families"]
        assert response["stats"]["families"]["lpt"]["count"] == 1


# --------------------------------------------------------------------------- #
# acceptance: streaming session against a live `repro serve` subprocess
# --------------------------------------------------------------------------- #
class TestLiveServeEndToEnd:
    SPEC = "online_sbo(delta=1.0)"

    def test_live_session_bit_identical_to_inprocess(self, trace):
        src = Path(__file__).resolve().parent.parent / "src"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0", "--workers", "1"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        try:
            banner = proc.stderr.readline().decode()
            match = re.search(r"listening on 127\.0\.0\.1:(\d+)", banner)
            assert match, f"no listening banner in {banner!r}"
            port = int(match.group(1))

            async def scenario():
                client = await ServiceClient.connect(port=port)
                try:
                    session = await client.session_open(self.SPEC, m=trace.m)
                    placements = []
                    for event in trace:  # a 50-task arrival trace, streamed
                        ack = await session.submit(event.task)
                        placements.append(tuple(ack["placements"][0]))
                    wire_result = await session.result()
                    await session.close()
                    stats = await client.stats()
                    await client.shutdown()
                finally:
                    await client.close()
                return placements, wire_result, stats

            placements, wire_result, stats = run(scenario())

            # The same online spec in-process.
            local = create_online(self.SPEC, m=trace.m)
            local_placements = [(e.task.id, local.submit(e.task)) for e in trace]
            expected = local.finalize()

            # Bit-identical: every placement, the objectives, the guarantee,
            # the canonical spec, and the full finalized assignment.
            assert placements == local_placements
            assert wire_result["cmax"] == expected.cmax
            assert wire_result["mmax"] == expected.mmax
            assert wire_result["sum_ci"] == expected.sum_ci
            assert wire_result["guarantee"] == list(expected.guarantee)
            assert wire_result["spec"] == expected.spec
            assert dict(map(tuple, wire_result["assignment"])) == expected.schedule.assignment
            assert stats["session_tasks"] == len(trace)

            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:  # pragma: no cover - only on test failure
                proc.kill()
                proc.wait(timeout=10)


# --------------------------------------------------------------------------- #
# sustained pipelined submissions (ordering under concurrency)
# --------------------------------------------------------------------------- #
class TestPipelinedSubmissions:
    def test_pipelined_submits_apply_in_line_order(self):
        """Fire all submits without awaiting acks; order must be preserved."""
        trace = stochastic_trace(n=100, m=4, seed=3)

        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                shutdown = asyncio.Event()
                server = await serve_tcp(svc, port=0, shutdown=shutdown)
                port = server.sockets[0].getsockname()[1]
                client = await ServiceClient.connect(port=port)
                try:
                    session = await client.session_open("online_sbo(delta=1.0)", m=4)
                    pending = [
                        asyncio.ensure_future(session.submit(event.task))
                        for event in trace
                    ]
                    await asyncio.gather(*pending)
                    wire = await session.result()
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()
                return wire

        wire = run(scenario())
        local = create_online("online_sbo(delta=1.0)", m=4)
        for event in trace:
            local.submit(event.task)
        expected = local.finalize()
        assert wire["cmax"] == expected.cmax
        assert dict(map(tuple, wire["assignment"])) == expected.schedule.assignment

    def test_sustained_submission_rate_floor(self):
        """A very conservative smoke floor so the hot path cannot quietly rot."""
        trace = stochastic_trace(n=200, m=4, seed=4)

        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                session = svc.session_open("online_sbo(delta=1.0)", m=4)
                start = time.perf_counter()
                for event in trace:
                    svc.session_submit(session.id, event.task)
                elapsed = time.perf_counter() - start
                svc.session_close(session.id)
                return elapsed

        elapsed = run(scenario())
        rate = len(trace) / elapsed
        assert rate >= 1000.0, f"in-service submission rate collapsed to {rate:.0f}/s"


# --------------------------------------------------------------------------- #
# windowed acknowledgements (ack: false) and ledger export/restore ops
# --------------------------------------------------------------------------- #
class TestWindowedAcks:
    SPEC = "online_sbo(delta=1.0)"

    async def _server(self, svc):
        shutdown = asyncio.Event()
        server = await serve_tcp(svc, port=0, shutdown=shutdown)
        return server, server.sockets[0].getsockname()[1]

    def test_windowed_placements_match_single_ack(self, trace):
        tasks = [event.task for event in trace]

        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                server, port = await self._server(svc)
                client = await ServiceClient.connect(port=port)
                try:
                    session = await client.session_open(self.SPEC, m=trace.m)
                    placements = await session.submit_windowed(tasks, ack_every=8)
                    result = await session.result()
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()
            return placements, result

        placements, result = run(scenario())
        local = create_online(self.SPEC, m=trace.m)
        expected = [(t.id, local.submit(t)) for t in tasks]
        final = local.finalize()
        assert [tuple(p) for p in placements] == expected
        assert result["cmax"] == final.cmax
        assert dict(map(tuple, result["assignment"])) == final.schedule.assignment

    def test_ack_counts_one_response_per_window(self, trace):
        """ack_every=K costs ceil(n/K) responses, placements complete anyway."""
        tasks = [event.task for event in trace][:20]

        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                opened = await handle_request(
                    svc, {"op": "session_open", "spec": self.SPEC, "m": trace.m}
                )
                sid = opened["session"]
                responses = 0
                placements = []
                for index, task in enumerate(tasks):
                    payload = {"op": "session_submit", "session": sid,
                               "task": {"id": task.id, "p": task.p, "s": task.s}}
                    if (index + 1) % 5 and index + 1 < len(tasks):
                        payload["ack"] = False
                        assert await handle_request(svc, payload) is None
                    else:
                        response = await handle_request(svc, payload)
                        responses += 1
                        assert response["ok"]
                        placements.extend(map(tuple, response["placements"]))
                        assert response["n"] == index + 1
            return responses, placements

        responses, placements = run(scenario())
        assert responses == 4  # 20 submissions, one ack per 5
        local = create_online(self.SPEC, m=trace.m)
        assert placements == [(t.id, local.submit(t)) for t in tasks]

    def test_window_failure_surfaces_on_next_ack(self):
        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                opened = await handle_request(
                    svc, {"op": "session_open", "spec": "online_greedy", "m": 2}
                )
                sid = opened["session"]
                ok = await handle_request(svc, {
                    "op": "session_submit", "session": sid, "ack": False,
                    "task": {"id": 0, "p": 1.0, "s": 1.0}})
                dup = await handle_request(svc, {
                    "op": "session_submit", "session": sid, "ack": False,
                    "task": {"id": 0, "p": 2.0, "s": 2.0}})
                # Later unacked submissions are refused while poisoned.
                skipped = await handle_request(svc, {
                    "op": "session_submit", "session": sid, "ack": False,
                    "task": {"id": 1, "p": 1.0, "s": 1.0}})
                error = await handle_request(svc, {
                    "op": "session_submit", "session": sid,
                    "task": {"id": 2, "p": 1.0, "s": 1.0}})
                # The error cleared the window: the session is usable again.
                recovered = await handle_request(svc, {
                    "op": "session_submit", "session": sid,
                    "task": {"id": 3, "p": 1.0, "s": 1.0}})
                described = await handle_request(svc, {"op": "stats"})
            return ok, dup, skipped, error, recovered, described

        ok, dup, skipped, error, recovered, described = run(scenario())
        assert ok is None and dup is None and skipped is None
        assert not error["ok"]
        assert "unacknowledged submission failed" in error["error"]["message"]
        assert "already submitted" in error["error"]["message"]
        assert recovered["ok"]
        # Only tasks 0 and 3 were placed (1 was refused, 2 rejected with the
        # error): the session holds exactly two tasks.
        assert recovered["n"] == 2

    def test_window_failure_surfaces_on_session_result(self):
        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                opened = await handle_request(
                    svc, {"op": "session_open", "spec": "online_greedy", "m": 2}
                )
                sid = opened["session"]
                await handle_request(svc, {
                    "op": "session_submit", "session": sid, "ack": False,
                    "task": {"id": 0, "p": 1.0, "s": 1.0}})
                await handle_request(svc, {
                    "op": "session_submit", "session": sid, "ack": False,
                    "task": {"id": 0, "p": 1.0, "s": 1.0}})  # duplicate
                error = await handle_request(svc, {"op": "session_result",
                                                   "session": sid})
                retry = await handle_request(svc, {"op": "session_result",
                                                   "session": sid})
            return error, retry

        error, retry = run(scenario())
        assert not error["ok"]
        assert "unacknowledged submission failed" in error["error"]["message"]
        assert retry["ok"]  # the reported error cleared the window
        assert retry["result"]["extras"]["n_submitted"] == 1

    def test_invalid_ack_value_rejected(self):
        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                opened = await handle_request(
                    svc, {"op": "session_open", "spec": "online_greedy", "m": 2}
                )
                return await handle_request(svc, {
                    "op": "session_submit", "session": opened["session"],
                    "ack": "maybe", "task": {"id": 0, "p": 1.0, "s": 1.0}})

        response = run(scenario())
        assert not response["ok"]
        assert "'ack' must be a JSON boolean" in response["error"]["message"]


class TestSessionExportRestoreOps:
    def test_export_restore_round_trip_over_wire(self, trace):
        tasks = [event.task for event in trace][:30]

        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                shutdown = asyncio.Event()
                server = await serve_tcp(svc, port=0, shutdown=shutdown)
                port = server.sockets[0].getsockname()[1]
                client = await ServiceClient.connect(port=port)
                try:
                    session = await client.session_open(
                        "online_sbo(delta=1.0)", m=trace.m
                    )
                    await session.submit_many(tasks[:20])
                    exported = await client.request(
                        {"op": "session_export", "session": session.id}
                    )
                    restored = await client.request(
                        {"op": "session_restore", "export": exported["export"]}
                    )
                    # Continue on the restored copy only.
                    new_sid = restored["session"]
                    assert new_sid != session.id
                    for task in tasks[20:]:
                        await client.request({
                            "op": "session_submit", "session": new_sid,
                            "task": {"id": task.id, "p": task.p, "s": task.s}})
                    result = await client.request(
                        {"op": "session_result", "session": new_sid}
                    )
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()
            return restored, result

        restored, result = run(scenario())
        assert restored["n"] == 20
        local = create_online("online_sbo(delta=1.0)", m=trace.m)
        for task in tasks:
            local.submit(task)
        expected = local.finalize()
        assert result["result"]["cmax"] == expected.cmax
        assert dict(map(tuple, result["result"]["assignment"])) \
            == expected.schedule.assignment

    def test_restore_respects_admission_bounds(self):
        async def scenario():
            config = ServiceConfig(workers=1, max_sessions=1)
            async with SolverService(config) as svc:
                opened = await handle_request(
                    svc, {"op": "session_open", "spec": "online_greedy", "m": 2}
                )
                exported = await handle_request(
                    svc, {"op": "session_export", "session": opened["session"]}
                )
                denied = await handle_request(
                    svc, {"op": "session_restore", "export": exported["export"]}
                )
            return denied

        denied = run(scenario())
        assert not denied["ok"]
        assert denied["error"]["type"] == "SessionLimitError"

    def test_restore_refuses_corrupt_export(self):
        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                opened = await handle_request(
                    svc, {"op": "session_open", "spec": "online_greedy", "m": 2}
                )
                sid = opened["session"]
                for i in range(4):
                    await handle_request(svc, {
                        "op": "session_submit", "session": sid,
                        "task": {"id": i, "p": float(i + 1), "s": 1.0}})
                exported = await handle_request(
                    svc, {"op": "session_export", "session": sid}
                )
                export = exported["export"]
                export["state"]["placements"] = [
                    (p + 1) % 2 for p in export["state"]["placements"]
                ]
                refused = await handle_request(
                    svc, {"op": "session_restore", "export": export}
                )
                malformed = await handle_request(
                    svc, {"op": "session_restore", "export": {"submitted": 1}}
                )
            return refused, malformed

        refused, malformed = run(scenario())
        assert not refused["ok"]
        assert "diverged" in refused["error"]["message"]
        assert not malformed["ok"]
        assert "state" in malformed["error"]["message"]

    def test_export_carries_windowed_buffer(self):
        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                opened = await handle_request(
                    svc, {"op": "session_open", "spec": "online_greedy", "m": 2}
                )
                sid = opened["session"]
                for i in range(3):
                    await handle_request(svc, {
                        "op": "session_submit", "session": sid, "ack": False,
                        "task": {"id": i, "p": float(i + 1), "s": 1.0}})
                exported = await handle_request(
                    svc, {"op": "session_export", "session": sid}
                )
                restored = await handle_request(
                    svc, {"op": "session_restore", "export": exported["export"]}
                )
                ack = await handle_request(svc, {
                    "op": "session_submit", "session": restored["session"],
                    "task": {"id": 3, "p": 4.0, "s": 1.0}})
            return exported, ack

        exported, ack = run(scenario())
        assert len(exported["export"]["window"]) == 3
        assert ack["ok"]
        local = create_online("online_greedy", m=2)
        expected = [(i, local.submit(Task(id=i, p=float(i + 1), s=1.0)))
                    for i in range(4)]
        assert [tuple(p) for p in ack["placements"]] == expected


class TestDrainOp:
    def test_drain_waits_for_pending_and_reports(self):
        from _service_helpers import make_sleepy_entry, registered

        inst = Instance.from_lists(p=[2, 1], s=[1, 1], m=1)

        async def scenario():
            with registered(make_sleepy_entry()):
                async with SolverService(ServiceConfig(workers=1)) as svc:
                    await svc.solve(inst, "lpt")  # warm the pool
                    job = asyncio.create_task(
                        svc.solve(inst, "sleepy(seconds=0.4)")
                    )
                    await asyncio.sleep(0.1)
                    quick = await handle_request(
                        svc, {"op": "drain", "timeout": 0.05}
                    )
                    full = await handle_request(svc, {"op": "drain", "timeout": 30})
                    await job
            return quick, full

        quick, full = run(scenario())
        assert quick["ok"] and quick["drained"] is False and quick["pending"] >= 1
        assert full["ok"] and full["drained"] is True and full["pending"] == 0

    def test_drain_requires_numeric_timeout(self):
        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                return await handle_request(svc, {"op": "drain", "timeout": "x"})

        response = run(scenario())
        assert not response["ok"]
        assert "'timeout' must be a number" in response["error"]["message"]


class TestUnackedContract:
    """Review fixes: an unacknowledged line never produces a response."""

    def test_unknown_session_noack_is_dropped(self):
        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                dropped = await handle_request(svc, {
                    "op": "session_submit", "session": "sess-404", "ack": False,
                    "task": {"id": 0, "p": 1.0, "s": 1.0}})
                bad_field = await handle_request(svc, {
                    "op": "session_submit", "session": 7, "ack": False,
                    "task": {"id": 0, "p": 1.0, "s": 1.0}})
            return dropped, bad_field

        dropped, bad_field = run(scenario())
        assert dropped is None
        assert bad_field is None

    def test_malformed_noack_task_poisons_window(self):
        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                opened = await handle_request(
                    svc, {"op": "session_open", "spec": "online_greedy", "m": 2}
                )
                sid = opened["session"]
                malformed = await handle_request(svc, {
                    "op": "session_submit", "session": sid, "ack": False,
                    "task": {"id": 0}})  # missing p/s
                error = await handle_request(svc, {
                    "op": "session_submit", "session": sid,
                    "task": {"id": 1, "p": 1.0, "s": 1.0}})
            return malformed, error

        malformed, error = run(scenario())
        assert malformed is None  # no response line, the failure buffered
        assert not error["ok"]
        assert "unacknowledged submission failed" in error["error"]["message"]
        assert "missing" in error["error"]["message"]

    def test_close_reports_window_error(self):
        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                opened = await handle_request(
                    svc, {"op": "session_open", "spec": "online_greedy", "m": 2}
                )
                sid = opened["session"]
                await handle_request(svc, {
                    "op": "session_submit", "session": sid, "ack": False,
                    "task": {"id": 0, "p": 1.0, "s": 1.0}})
                await handle_request(svc, {
                    "op": "session_submit", "session": sid, "ack": False,
                    "task": {"id": 0, "p": 1.0, "s": 1.0}})  # duplicate: poisons
                closed = await handle_request(svc, {"op": "session_close",
                                                    "session": sid})
                clean = await handle_request(
                    svc, {"op": "session_open", "spec": "online_greedy", "m": 2}
                )
                clean_close = await handle_request(svc, {"op": "session_close",
                                                         "session": clean["session"]})
            return closed, clean_close

        closed, clean_close = run(scenario())
        assert closed["ok"] and closed["closed"]
        assert "already submitted" in closed["window_error"]
        assert clean_close["ok"] and "window_error" not in clean_close


class TestReplayStateMalformedRecords:
    def test_restore_rejects_truncated_task_record_cleanly(self):
        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                return await handle_request(svc, {
                    "op": "session_restore",
                    "export": {"state": {"spec": "online_greedy", "m": 2,
                                         "tasks": [["x"]], "placements": [0]},
                               "submitted": 1}})

        response = run(scenario())
        assert not response["ok"]
        # The wire reports the session-layer refusal, not a raw IndexError.
        assert response["error"]["type"] == "SessionError"
        assert "malformed" in response["error"]["message"]
