"""Additional property-based tests: monotonicity, symmetry and substrate invariants.

These complement ``test_properties.py`` with properties of the higher-level
machinery: the constrained solver, the Δ-sweep Pareto approximation, the
online extension, MULTIFIT/FFD, and the simulator on timed DAG schedules.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.algorithms.exact import exact_cmax
from repro.algorithms.multifit import ffd_pack, multifit_schedule
from repro.core.bounds import cmax_lower_bound, mmax_lower_bound
from repro.core.constrained import solve_constrained
from repro.core.instance import DAGInstance, Instance
from repro.core.pareto import dominates
from repro.core.pareto_approx import approximate_pareto_set
from repro.core.rls import rls
from repro.core.task import Task
from repro.core.validation import validate_schedule
from repro.extensions.online import OnlineBiObjectiveScheduler
from repro.simulator.executor import simulate_schedule

costs = st.integers(min_value=0, max_value=40)


@st.composite
def instances(draw, min_tasks=1, max_tasks=10, max_m=4):
    n = draw(st.integers(min_value=min_tasks, max_value=max_tasks))
    m = draw(st.integers(min_value=1, max_value=max_m))
    p = draw(st.lists(costs, min_size=n, max_size=n))
    s = draw(st.lists(costs, min_size=n, max_size=n))
    return Instance.from_lists(p=p, s=s, m=m)


@st.composite
def dag_instances(draw, max_tasks=8, max_m=3):
    """Random small DAGs: edges only from lower to higher indices."""
    n = draw(st.integers(min_value=1, max_value=max_tasks))
    m = draw(st.integers(min_value=1, max_value=max_m))
    p = draw(st.lists(st.integers(1, 20), min_size=n, max_size=n))
    s = draw(st.lists(st.integers(0, 20), min_size=n, max_size=n))
    edges = []
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                edges.append((i, j))
    return DAGInstance.from_lists(p=p, s=s, m=m, edges=edges)


common_settings = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestConstrainedProperties:
    @given(inst=instances(max_tasks=9), factor=st.floats(min_value=2.0, max_value=6.0))
    @common_settings
    def test_feasible_and_capacity_respected_at_factor_two_plus(self, inst, factor):
        lb = mmax_lower_bound(inst)
        capacity = factor * lb if lb > 0 else 1.0
        outcome = solve_constrained(inst, capacity)
        assert outcome.feasible
        assert outcome.mmax <= capacity + 1e-9
        assert validate_schedule(outcome.schedule, memory_capacity=capacity).ok

    @given(inst=instances(max_tasks=9))
    @common_settings
    def test_infeasibility_only_claimed_when_certified(self, inst):
        lb = mmax_lower_bound(inst)
        assume(lb > 0)
        outcome = solve_constrained(inst, 0.5 * inst.tasks.max_s if inst.tasks.max_s > 0 else 0.0)
        if outcome.certified_infeasible:
            # Certified means a single task exceeds the capacity: verify it.
            assert inst.tasks.max_s > 0.5 * inst.tasks.max_s - 1e-12


class TestDAGProperties:
    @given(dag=dag_instances(), delta=st.floats(min_value=2.0, max_value=6.0))
    @common_settings
    def test_rls_on_random_dags_is_feasible_and_valid(self, dag, delta):
        result = rls(dag, delta, order="bottom-level")
        assert validate_schedule(result.schedule).ok
        assert result.mmax <= delta * mmax_lower_bound(dag) + 1e-9
        report = simulate_schedule(result.schedule, memory_capacity=result.memory_budget)
        assert report.ok
        assert math.isclose(report.cmax, result.cmax, rel_tol=1e-9, abs_tol=1e-9)

    @given(dag=dag_instances(max_tasks=7))
    @common_settings
    def test_rls_cmax_at_least_critical_path(self, dag):
        result = rls(dag, delta=3.0)
        assert result.cmax >= cmax_lower_bound(dag) - 1e-9


class TestMultifitProperties:
    @given(inst=instances(min_tasks=1, max_tasks=9))
    @common_settings
    def test_multifit_never_worse_than_twice_optimum(self, inst):
        sched = multifit_schedule(inst)
        assert validate_schedule(sched).ok
        opt = exact_cmax(inst)
        if opt > 0:
            assert sched.cmax <= 2.0 * opt + 1e-9

    @given(
        inst=instances(min_tasks=1, max_tasks=10),
        slack=st.floats(min_value=1.0, max_value=3.0),
    )
    @common_settings
    def test_ffd_respects_capacity(self, inst, slack):
        capacity = slack * max(cmax_lower_bound(inst), 1e-9)
        packed = ffd_pack(inst.tasks.tasks, inst.m, capacity)
        if packed is not None:
            loads = [sum(inst.task(tid).p for tid in bin_) for bin_ in packed]
            assert max(loads, default=0.0) <= capacity + 1e-6
            assert sorted(tid for bin_ in packed for tid in bin_) == sorted(inst.tasks.ids)


class TestParetoApproxProperties:
    @given(inst=instances(min_tasks=2, max_tasks=8, max_m=3))
    @common_settings
    def test_sweep_front_is_mutually_nondominated(self, inst):
        approx = approximate_pareto_set(inst, epsilon=0.5, delta_min=0.25, delta_max=4.0)
        points = approx.points
        for a in points:
            assert not any(dominates(b, a) for b in points if b != a)
        for schedule in approx.schedules():
            assert validate_schedule(schedule).ok


class TestOnlineProperties:
    @given(
        tasks=st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)), min_size=1, max_size=40
        ),
        m=st.integers(min_value=1, max_value=5),
        delta=st.floats(min_value=0.1, max_value=10.0),
    )
    @common_settings
    def test_online_snapshot_is_always_a_valid_schedule(self, tasks, m, delta):
        scheduler = OnlineBiObjectiveScheduler(m=m, delta=delta)
        for idx, (p, s) in enumerate(tasks):
            scheduler.submit(Task(id=idx, p=p, s=s))
        snapshot = scheduler.current_schedule()
        assert validate_schedule(snapshot).ok
        assert math.isclose(snapshot.cmax, scheduler.cmax, rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(snapshot.mmax, scheduler.mmax, rel_tol=1e-9, abs_tol=1e-9)
        # Conservation: totals match regardless of routing decisions.
        assert math.isclose(sum(snapshot.loads), sum(p for p, _ in tasks), rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(sum(snapshot.memories), sum(s for _, s in tasks), rel_tol=1e-9, abs_tol=1e-9)
