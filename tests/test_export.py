"""Unit tests for repro.experiments.export."""

from __future__ import annotations

import csv
from pathlib import Path


from repro.experiments.export import export_all, export_figure3_csv, export_result_csv
from repro.experiments.figure1 import run_figure1
from repro.experiments.harness import ExperimentResult


class TestExportResultCSV:
    def test_roundtrip(self, tmp_path: Path):
        result = ExperimentResult("TEST-1", "t", headers=["a", "b"])
        result.add_row(a=1, b="x")
        result.add_row(a=2.5, b="y")
        path = export_result_csv(result, tmp_path)
        assert path.name == "TEST-1.csv"
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "x"]
        assert rows[2] == ["2.5", "y"]

    def test_creates_directory(self, tmp_path: Path):
        result = ExperimentResult("TEST-2", "t", headers=["a"])
        result.add_row(a=0)
        path = export_result_csv(result, tmp_path / "nested" / "dir")
        assert path.exists()

    def test_real_experiment(self, tmp_path: Path):
        path = export_result_csv(run_figure1(), tmp_path)
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 3  # header + 2 Pareto points


class TestExportFigure3:
    def test_series_files(self, tmp_path: Path):
        written = export_figure3_csv(tmp_path, m_values=(2, 3), k=8, deltas=(0.5, 1.0, 2.0))
        names = {p.name for p in written}
        assert "figure3_staircase_m2.csv" in names
        assert "figure3_staircase_m3.csv" in names
        assert "figure3_sbo_curve.csv" in names
        assert "figure3_lemma3_point.csv" in names
        curve = (tmp_path / "figure3_sbo_curve.csv").read_text().splitlines()
        assert curve[0] == "cmax_ratio,mmax_ratio"
        assert len(curve) == 4  # header + 3 delta values

    def test_staircase_content_matches_formula(self, tmp_path: Path):
        export_figure3_csv(tmp_path, m_values=(2,), k=4, deltas=(1.0,))
        rows = (tmp_path / "figure3_staircase_m2.csv").read_text().splitlines()[1:]
        points = [tuple(map(float, r.split(","))) for r in rows]
        assert (1.0, 2.0) in points


class TestExportAll:
    def test_with_precomputed_results(self, tmp_path: Path):
        paths = export_all(tmp_path, results=[run_figure1()])
        assert set(paths) == {"FIG-1"}
        assert paths["FIG-1"].exists()
        # Figure 3 series are always exported alongside.
        assert (tmp_path / "figure3_sbo_curve.csv").exists()
