"""Unit tests for repro.core.constrained (the Section 7 resolution)."""

from __future__ import annotations

import math

import pytest

from repro.algorithms.exact import exact_constrained_cmax
from repro.core.bounds import mmax_lower_bound
from repro.core.constrained import solve_constrained
from repro.core.instance import Instance
from repro.core.validation import validate_schedule
from repro.dag.generators import layered_dag
from repro.workloads.independent import uniform_instance


class TestSolveConstrained:
    def test_negative_capacity_rejected(self, small_instance):
        with pytest.raises(ValueError):
            solve_constrained(small_instance, -1.0)

    def test_certified_infeasible_when_task_too_big(self):
        inst = Instance.from_lists(p=[1, 1], s=[10, 1], m=2)
        outcome = solve_constrained(inst, memory_capacity=5.0)
        assert not outcome.feasible
        assert outcome.certified_infeasible
        assert outcome.schedule is None
        assert math.isinf(outcome.cmax)

    def test_generous_capacity_always_feasible(self):
        for seed in range(3):
            inst = uniform_instance(25, 4, seed=seed)
            lb = mmax_lower_bound(inst)
            outcome = solve_constrained(inst, memory_capacity=3.0 * lb)
            assert outcome.feasible
            assert outcome.mmax <= 3.0 * lb + 1e-9
            assert validate_schedule(outcome.schedule, memory_capacity=3.0 * lb).ok

    def test_capacity_at_twice_lb_guaranteed(self):
        for seed in range(3):
            inst = uniform_instance(25, 4, seed=seed)
            lb = mmax_lower_bound(inst)
            outcome = solve_constrained(inst, memory_capacity=2.0 * lb)
            assert outcome.feasible
            assert outcome.mmax <= 2.0 * lb + 1e-9

    def test_result_fields(self, medium_instance):
        lb = mmax_lower_bound(medium_instance)
        outcome = solve_constrained(medium_instance, memory_capacity=3.0 * lb)
        assert outcome.delta == pytest.approx(3.0)
        assert outcome.cmax == outcome.schedule.cmax
        assert outcome.mmax == outcome.schedule.mmax
        assert outcome.strategy in {"rls", "rls-binary-search", "sbo-binary-search"}
        assert outcome.cmax_guarantee == pytest.approx(2 + 1 - 2 / (3 * 1), rel=1e-6) or outcome.cmax_guarantee > 0

    def test_zero_memory_instance(self, zero_memory_instance):
        outcome = solve_constrained(zero_memory_instance, memory_capacity=0.0)
        assert outcome.feasible
        assert outcome.mmax == 0.0

    def test_tight_capacity_may_fail_but_not_lie(self):
        # Capacity below the Graham bound can never be satisfied.
        inst = uniform_instance(20, 3, seed=2)
        lb = mmax_lower_bound(inst)
        outcome = solve_constrained(inst, memory_capacity=0.9 * lb)
        if outcome.feasible:  # pragma: no cover - should not happen
            assert outcome.mmax <= 0.9 * lb + 1e-9
        else:
            assert outcome.schedule is None

    def test_dag_instance(self):
        dag = layered_dag(5, 3, m=3, seed=4)
        lb = mmax_lower_bound(dag)
        outcome = solve_constrained(dag, memory_capacity=2.5 * lb)
        assert outcome.feasible
        assert validate_schedule(outcome.schedule, memory_capacity=2.5 * lb).ok

    def test_close_to_exact_on_small_instances(self):
        for seed in range(3):
            inst = uniform_instance(9, 2, seed=seed)
            lb = mmax_lower_bound(inst)
            capacity = 2.5 * lb
            outcome = solve_constrained(inst, capacity)
            exact = exact_constrained_cmax(inst, capacity)
            assert outcome.feasible and exact is not None
            # Corollary 3 at delta = 2.5 on m = 2: 2 + 2 - 1.5/1 = 2.5... use the
            # generic bound: never more than 3x the constrained optimum here.
            assert outcome.cmax <= 3.0 * exact.cmax + 1e-9

    def test_more_capacity_never_hurts(self):
        inst = uniform_instance(20, 3, seed=8)
        lb = mmax_lower_bound(inst)
        cmaxes = []
        for factor in (2.0, 3.0, 5.0):
            outcome = solve_constrained(inst, factor * lb)
            assert outcome.feasible
            cmaxes.append(outcome.cmax)
        # Not strictly monotone in general (heuristics), but the loosest
        # capacity must be at least as good as the tightest one.
        assert cmaxes[-1] <= cmaxes[0] + 1e-9
