"""Unit tests for repro.algorithms.baselines and repro.algorithms.registry."""

from __future__ import annotations

import pytest

from repro.algorithms.baselines import (
    makespan_oblivious_schedule,
    memory_oblivious_schedule,
    random_schedule,
    round_robin_schedule,
)
from repro.algorithms.registry import available_solvers, get_solver
from repro.core.bounds import cmax_lower_bound, mmax_lower_bound
from repro.core.validation import validate_schedule
from repro.workloads.independent import uniform_instance


class TestBaselines:
    def test_memory_oblivious_good_on_cmax(self):
        inst = uniform_instance(30, 4, seed=0)
        sched = memory_oblivious_schedule(inst)
        assert sched.cmax <= (4 / 3) * cmax_lower_bound(inst) * (1 + 1e-9)
        assert validate_schedule(sched).ok

    def test_makespan_oblivious_good_on_mmax(self):
        inst = uniform_instance(30, 4, seed=0)
        sched = makespan_oblivious_schedule(inst)
        assert sched.mmax <= (4 / 3) * mmax_lower_bound(inst) * (1 + 1e-9)

    def test_round_robin_cyclic(self, small_instance):
        sched = round_robin_schedule(small_instance)
        assert sched.processor_of(0) == 0
        assert sched.processor_of(1) == 1
        assert sched.processor_of(2) == 0

    def test_random_schedule_reproducible(self, medium_instance):
        a = random_schedule(medium_instance, seed=5)
        b = random_schedule(medium_instance, seed=5)
        c = random_schedule(medium_instance, seed=6)
        assert a.assignment == b.assignment
        assert validate_schedule(c).ok

    def test_random_schedule_covers_all_tasks(self, medium_instance):
        sched = random_schedule(medium_instance, seed=1)
        assert set(sched.assignment) == set(medium_instance.tasks.ids)


class TestRegistry:
    def test_available_solvers(self):
        names = available_solvers()
        for expected in ("list", "lpt", "multifit", "ptas", "exact"):
            assert expected in names

    def test_unknown_solver(self):
        with pytest.raises(KeyError, match="unknown solver"):
            get_solver("quantum")

    @pytest.mark.parametrize("name", ["list", "lpt", "multifit", "ptas"])
    def test_solver_contract(self, name, medium_instance):
        solver = get_solver(name)
        schedule, rho = solver(medium_instance, "time")
        assert rho >= 1.0
        assert validate_schedule(schedule).ok
        assert schedule.cmax <= rho * cmax_lower_bound(medium_instance) * (1 + 1e-9)

    @pytest.mark.parametrize("name", ["list", "lpt", "multifit", "ptas"])
    def test_solver_contract_memory(self, name, medium_instance):
        solver = get_solver(name)
        schedule, rho = solver(medium_instance, "memory")
        assert schedule.mmax <= rho * mmax_lower_bound(medium_instance) * (1 + 1e-9)

    def test_exact_solver_rho_one(self, medium_instance):
        schedule, rho = get_solver("exact")(medium_instance, "time")
        assert rho == 1.0
        from repro.algorithms.exact import exact_cmax

        assert schedule.cmax == pytest.approx(exact_cmax(medium_instance))

    def test_guarantee_ordering(self, medium_instance):
        # Certified guarantees: exact (1) <= multifit (13/11) <= ptas (1.2)
        # <= lpt (4/3 - 1/(3m)) <= list (2 - 1/m) for m = 3.
        rhos = {}
        for name in ("exact", "ptas", "multifit", "lpt", "list"):
            _, rho = get_solver(name)(medium_instance, "time")
            rhos[name] = rho
        assert rhos["exact"] <= rhos["multifit"] <= rhos["ptas"] <= rhos["lpt"] <= rhos["list"]
