"""Module-level custom solver used by the solve_many spawn regression test.

The entry's callables live at module level so the :class:`SolverEntry`
pickles — exactly what ``solve_many`` requires to ship a runtime-registered
solver into ``spawn``-started worker processes (tests/test_batch_throughput.py).
"""

from __future__ import annotations

import math
from typing import Dict

from repro.solvers import SolverCapabilities, SolverEntry

#: In-process invocation counter (workers=1 paths only; worker processes
#: increment their own copy, which the parent never sees).
CALLS = {"count": 0}


def run_reverse_list(instance, params: Dict[str, object]):
    """List-schedule the tasks in reverse insertion order (deterministic)."""
    from repro.algorithms.list_scheduling import list_schedule

    CALLS["count"] += 1
    inst = instance.as_independent() if hasattr(instance, "as_independent") else instance
    schedule = list_schedule(inst, order="arbitrary")
    return schedule, (math.inf, math.inf), None, {"custom": True}


def make_entry(name: str = "reverse_list") -> SolverEntry:
    return SolverEntry(
        name=name,
        summary="test-only custom solver (spawn-shipping regression)",
        capabilities=SolverCapabilities(),
        params=(),
        run=run_reverse_list,
        guarantee=None,
    )
