"""Periodic / real-time subsystem tests (:mod:`repro.periodic`).

Covers the full vertical:

* **model** — :class:`PeriodicTask` / :class:`PeriodicInstance`
  validation, exact ``Fraction`` hyperperiods, job enumeration, the
  ``kind: "periodic"`` wire round-trip, content hashing and pickling;
* **budget** — the hyperperiod unroll budget stays a *typed, instant*
  error (:class:`HyperperiodBudgetError`) on adversarial co-prime
  period sets, never an OOM;
* **schedulers** — preemptive EDF is schedulable exactly up to ``U = 1``
  on one machine (property-tested across seeds), RM matches on harmonic
  sets, overload always misses;
* **facade** — deadline-aware solvers via the registry (capability
  flags, spec mini-language, one-shot rejection) and transparent
  hyperperiod unrolling for every legacy solver, including the
  per-solver job caps that refuse super-polynomial solvers, and result
  caching keyed on the *periodic* content hash;
* **workloads** — harmonic / log-uniform generators, the
  release-dated :func:`trace_from_periodic` bridge through the online
  layer and :class:`SimulationEngine`, cross-checked with
  :func:`deadline_metrics`;
* **experiments** — the EXT-P1 utilization sweep replays bit-for-bit
  against ``tests/golden/periodic_study.json``;
* **service** — a periodic instance solved through a live
  ``repro serve`` subprocess is bit-identical to the in-process result;
* **engine satellites** — release-time validation and idle-gap
  accounting regressions in :class:`SimulationEngine`.
"""

from __future__ import annotations

import json
import math
import pickle
import subprocess
import sys
from fractions import Fraction
from pathlib import Path

import pytest

from repro.core.instance import Instance
from repro.core.objectives import deadline_metrics
from repro.online import create_online, replay_trace
from repro.periodic import (
    DEFAULT_UNROLL_BUDGET,
    HyperperiodBudgetError,
    PeriodicInstance,
    PeriodicTask,
    UNROLL_JOB_CAPS,
    ensure_unrollable,
    periodic_edf,
    periodic_list,
    periodic_rm,
    unroll,
)
from repro.simulator.engine import SimulationEngine
from repro.solvers import LRUCache, solve
from repro.solvers.registry import SolverCapabilityError, available_solvers, describe_solvers
from repro.workloads.periodic import harmonic_taskset, loguniform_taskset, trace_from_periodic

from make_periodic_golden import PERIODIC_GOLDEN_PATH, compute_fixture

pytestmark = pytest.mark.periodic


def small_instance(m: int = 1) -> PeriodicInstance:
    """A dyadic 4-task set: H = 8, nine jobs, U = 1.0 on one machine."""
    return PeriodicInstance(
        [
            PeriodicTask(id="a", wcet=1.0, s=2.0, period=2.0),
            PeriodicTask(id="b", wcet=1.0, s=1.0, period=4.0),
            PeriodicTask(id="c", wcet=0.5, s=3.0, period=4.0),
            PeriodicTask(id="d", wcet=1.0, s=1.5, period=8.0),
        ],
        m=m,
        name="small",
    )


# --------------------------------------------------------------------------- #
# model
# --------------------------------------------------------------------------- #
class TestModel:
    def test_validation(self):
        with pytest.raises(ValueError, match="wcet"):
            PeriodicTask(id="t", wcet=-1.0, s=1.0, period=4.0)
        with pytest.raises(ValueError, match="period"):
            PeriodicTask(id="t", wcet=1.0, s=1.0, period=-2.0)
        with pytest.raises(ValueError, match="deadline"):
            PeriodicTask(id="t", wcet=1.0, s=1.0, period=4.0, deadline=0.0)
        with pytest.raises(ValueError, match="phase"):
            PeriodicTask(id="t", wcet=1.0, s=1.0, period=4.0, phase=-1.0)
        with pytest.raises(ValueError, match="finite"):
            PeriodicTask(id="t", wcet=float("nan"), s=1.0, period=4.0)
        with pytest.raises(ValueError, match="duplicate"):
            PeriodicInstance(
                [PeriodicTask(id="t", wcet=1.0, s=1.0, period=2.0)] * 2, m=1
            )
        with pytest.raises(ValueError, match="m"):
            small_instance().with_m(0)

    def test_hyperperiod_is_exact_lcm(self):
        pinst = small_instance()
        assert pinst.hyperperiod_exact == Fraction(8)
        assert pinst.hyperperiod == 8.0
        # Fractional periods: lcm(3/2, 5/2) = 15/2, no float drift.
        frac = PeriodicInstance(
            [
                PeriodicTask(id="x", wcet=0.5, s=1.0, period=1.5),
                PeriodicTask(id="y", wcet=0.5, s=1.0, period=2.5),
            ],
            m=1,
        )
        assert frac.hyperperiod_exact == Fraction(15, 2)

    def test_implicit_deadline_is_period(self):
        task = PeriodicTask(id="t", wcet=1.0, s=1.0, period=4.0, phase=1.0)
        job = task.job(2)
        assert job.release == 9.0
        assert job.deadline == 13.0
        explicit = PeriodicTask(id="t", wcet=1.0, s=1.0, period=4.0, deadline=3.0)
        assert explicit.job(0).deadline == 3.0

    def test_job_enumeration_deterministic_and_sorted(self):
        pinst = small_instance()
        jobs = pinst.jobs()
        assert len(jobs) == 9  # 4 + 2 + 2 + 1 over H = 8
        # (release, deadline) order: at t=4, a#2 (deadline 6) precedes
        # b#1 and c#1 (deadline 8).
        assert [j.job_id for j in jobs] == [
            "a#0", "b#0", "c#0", "d#0", "a#1", "a#2", "b#1", "c#1", "a#3",
        ]
        assert all(
            jobs[i].release <= jobs[i + 1].release for i in range(len(jobs) - 1)
        )

    def test_utilization(self):
        assert small_instance().utilization == pytest.approx(1.0)

    def test_wire_round_trip_and_content_hash(self):
        pinst = small_instance(m=2)
        data = pinst.to_dict()
        assert data["kind"] == "periodic"
        back = PeriodicInstance.from_dict(json.loads(json.dumps(data)))
        assert back.content_hash() == pinst.content_hash()
        assert [t.id for t in back.tasks] == [t.id for t in pinst.tasks]
        # The hash identifies the mathematical instance, not its label.
        renamed = PeriodicInstance(pinst.tasks, m=2, name="other")
        assert renamed.content_hash() == pinst.content_hash()
        assert pinst.with_m(3).content_hash() != pinst.content_hash()

    def test_pickle_round_trip(self):
        pinst = small_instance()
        clone = pickle.loads(pickle.dumps(pinst))
        assert clone.content_hash() == pinst.content_hash()
        assert clone.hyperperiod == pinst.hyperperiod


# --------------------------------------------------------------------------- #
# unroll budget: typed, instant, never OOM
# --------------------------------------------------------------------------- #
class TestUnrollBudget:
    def adversarial(self, budget: int = DEFAULT_UNROLL_BUDGET) -> PeriodicInstance:
        primes = (97.0, 89.0, 83.0, 79.0, 73.0, 71.0)
        return PeriodicInstance(
            [PeriodicTask(id=f"p{int(t)}", wcet=0.5, s=1.0, period=t) for t in primes],
            m=1,
            unroll_budget=budget,
        )

    def test_coprime_periods_raise_typed_error(self):
        pinst = self.adversarial()
        with pytest.raises(HyperperiodBudgetError) as err:
            pinst.jobs()
        assert err.value.job_count > 10**9
        assert err.value.budget == DEFAULT_UNROLL_BUDGET
        assert "unroll_budget" in str(err.value)

    def test_budget_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            self.adversarial().check_budget()

    def test_check_budget_is_arithmetic_not_materialisation(self):
        # 21.7e9 jobs: if this enumerated anything it would hang/OOM.
        import time

        start = time.perf_counter()
        with pytest.raises(HyperperiodBudgetError):
            self.adversarial().check_budget()
        assert time.perf_counter() - start < 1.0

    def test_raising_the_budget_unlocks_the_horizon(self):
        pinst = small_instance()
        horizon = 16 * pinst.hyperperiod  # 144 jobs
        with pytest.raises(HyperperiodBudgetError):
            PeriodicInstance(pinst.tasks, m=1, unroll_budget=100).jobs(horizon)
        raised = PeriodicInstance(pinst.tasks, m=1, unroll_budget=200)
        assert len(raised.jobs(horizon)) == 144


# --------------------------------------------------------------------------- #
# native schedulers: the EDF schedulability boundary
# --------------------------------------------------------------------------- #
class TestSchedulers:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("utilization", [0.6, 0.85, 1.0])
    def test_edf_m1_zero_misses_at_or_below_u1(self, seed, utilization):
        """Preemptive EDF is optimal on one machine: U <= 1 => no misses."""
        pinst = harmonic_taskset(6, utilization, m=1, seed=seed)
        result = periodic_edf(pinst)
        assert result.metrics.misses == 0, (
            f"EDF missed at U={pinst.utilization:g} seed={seed}"
        )
        assert result.metrics.max_lateness <= 1e-9

    @pytest.mark.parametrize("seed", range(8))
    def test_overload_always_misses(self, seed):
        pinst = harmonic_taskset(6, 1.2, m=1, seed=seed)
        assert periodic_edf(pinst).metrics.misses > 0

    def test_rm_matches_edf_on_harmonic_sets(self):
        for seed in range(4):
            pinst = harmonic_taskset(6, 0.95, m=1, seed=seed)
            assert periodic_rm(pinst).metrics.misses == 0

    def test_nonpreemptive_is_never_better(self):
        pinst = harmonic_taskset(6, 0.95, m=1, seed=3)
        pre = periodic_edf(pinst, preemptive=True).metrics
        non = periodic_edf(pinst, preemptive=False).metrics
        assert non.misses >= pre.misses

    def test_partitioned_multiprocessor_keeps_tasks_whole(self):
        pinst = harmonic_taskset(8, 1.9, m=2, seed=0)
        result = periodic_edf(pinst)
        assert set(result.task_assignment) == {t.id for t in pinst.tasks}
        assert result.metrics.misses == 0
        # Task-level memory: one copy per task per processor it touches,
        # which partitioning makes exactly one — so never above job-level.
        assert result.task_mmax <= result.schedule.mmax + 1e-9

    def test_periodic_list_reports_metrics(self):
        result = periodic_list(small_instance(m=2))
        assert result.metrics.n_jobs == 9
        assert result.metrics.misses == 0
        assert result.sim_makespan <= 8.0 + 1e-9


# --------------------------------------------------------------------------- #
# facade: capability registry, spec language, transparent unrolling
# --------------------------------------------------------------------------- #
class TestFacade:
    def test_capability_registry_filters(self):
        periodic = available_solvers(supports_periodic=True)
        assert periodic == ["periodic_edf", "periodic_list", "periodic_rm"]
        assert not set(periodic) & set(available_solvers(supports_periodic=False))
        assert all("supports_periodic" in info for info in describe_solvers())

    def test_spec_mini_language(self):
        pinst = small_instance(m=2)
        result = solve(pinst, "periodic_rm(partition=first-fit, preemptive=false)")
        assert result.provenance["params"]["partition"] == "first-fit"
        assert result.provenance["params"]["preemptive"] is False
        assert result.provenance["preemptive"] is False

    def test_periodic_solver_rejects_one_shot_instance(self):
        inst = Instance.from_lists(p=[3, 2, 1], s=[1, 2, 3], m=2)
        with pytest.raises(SolverCapabilityError, match="periodic"):
            solve(inst, "periodic_edf")

    def test_native_solve_reports_deadline_extras(self):
        result = solve(small_instance(), "periodic_edf")
        for key in ("deadline_misses", "deadline_miss_ratio", "max_lateness",
                    "sim_makespan", "unrolled_jobs", "hyperperiod", "task_mmax"):
            assert key in result.provenance, key
        assert result.provenance["deadline_misses"] == 0
        assert result.provenance["unrolled_jobs"] == 9

    def test_transparent_unroll_matches_manual_unroll(self):
        pinst = small_instance(m=2)
        via_facade = solve(pinst, "lpt")
        manual = solve(unroll(pinst).instance, "lpt")
        assert via_facade.objectives == manual.objectives
        assert via_facade.provenance["periodic_unroll"] is True
        assert via_facade.provenance["unrolled_jobs"] == 9

    def test_exact_refused_beyond_its_unroll_cap(self):
        pinst = small_instance().with_horizon(16.0)  # 18 jobs > cap of 10
        with pytest.raises(SolverCapabilityError) as err:
            solve(pinst, "exact")
        message = str(err.value)
        assert str(UNROLL_JOB_CAPS["exact"]) in message
        for name in available_solvers(supports_periodic=True):
            assert name in message  # the error teaches the fix

    def test_exact_allowed_within_its_cap(self):
        result = solve(small_instance(), "exact")  # 9 jobs <= 10
        assert result.provenance["periodic_unroll"] is True
        assert result.feasible

    def test_ensure_unrollable_returns_count(self):
        assert ensure_unrollable(small_instance(), "lpt") == 9
        with pytest.raises(SolverCapabilityError):
            ensure_unrollable(small_instance().with_horizon(16.0), "exact")

    def test_cache_keys_on_the_periodic_hash(self):
        cache = LRUCache(maxsize=8)
        pinst = small_instance(m=2)
        first = solve(pinst, "lpt", cache=cache)
        again = solve(pinst, "lpt", cache=cache)
        assert first.provenance["cache"] == "miss"
        assert again.provenance["cache"] == "hit"
        assert again.objectives == first.objectives
        # A different periodic instance with the same unrolled shape must
        # not collide: the key is the periodic content hash.
        other = PeriodicInstance(pinst.tasks, m=2, name="renamed").with_m(1)
        assert solve(other, "lpt", cache=cache).provenance["cache"] == "miss"

    def test_native_periodic_results_cache_too(self):
        cache = LRUCache(maxsize=8)
        pinst = small_instance()
        assert solve(pinst, "periodic_edf", cache=cache).provenance["cache"] == "miss"
        hit = solve(pinst, "periodic_edf", cache=cache)
        assert hit.provenance["cache"] == "hit"
        assert hit.provenance["deadline_misses"] == 0


# --------------------------------------------------------------------------- #
# workloads: generators and the release-dated trace bridge
# --------------------------------------------------------------------------- #
class TestWorkloads:
    def test_harmonic_periods_divide_each_other(self):
        pinst = harmonic_taskset(8, 0.9, m=1, seed=1)
        periods = sorted({t.period for t in pinst.tasks})
        for small, large in zip(periods, periods[1:]):
            assert (large / small) == int(large / small)
        assert pinst.utilization == pytest.approx(0.9)

    def test_loguniform_hyperperiod_stays_bounded(self):
        for seed in range(6):
            pinst = loguniform_taskset(8, 0.9, m=1, seed=seed)
            assert pinst.check_budget() <= DEFAULT_UNROLL_BUDGET
            assert float(pinst.hyperperiod_exact) <= 960.0

    def test_generators_are_deterministic_per_seed(self):
        a = harmonic_taskset(6, 0.8, m=2, seed=7)
        b = harmonic_taskset(6, 0.8, m=2, seed=7)
        c = harmonic_taskset(6, 0.8, m=2, seed=8)
        assert a.content_hash() == b.content_hash()
        assert a.content_hash() != c.content_hash()

    def test_trace_from_periodic_release_dates_and_deadlines(self):
        pinst = harmonic_taskset(5, 0.8, m=2, seed=0)
        unrolled = unroll(pinst)
        trace = trace_from_periodic(pinst)
        assert trace.m == 2
        assert len(trace.events) == len(unrolled.jobs)
        for event, job in zip(trace.events, unrolled.jobs):
            assert event.time == job.release
            assert event.task.id == job.job_id
            assert event.task.p == job.wcet

    def test_trace_replay_cross_checks_deadline_metrics(self):
        """An EDF-feasible set stays feasible under the online greedy
        scheduler on this workload, measured by the *simulator's* clock."""
        pinst = harmonic_taskset(4, 0.5, m=2, seed=2)
        unrolled = unroll(pinst)
        report = replay_trace(trace_from_periodic(pinst), create_online("online_greedy", m=2))
        assert set(report.sim_completions) == set(unrolled.deadlines)
        metrics = deadline_metrics(
            report.sim_completions, unrolled.deadlines, releases=unrolled.releases
        )
        assert metrics.n_jobs == len(unrolled.jobs)
        assert metrics.misses == 0
        # Flow is measured from the release dates, so it is bounded by
        # n * horizon even though absolute completions grow with time.
        assert metrics.total_flow <= metrics.n_jobs * unrolled.horizon


# --------------------------------------------------------------------------- #
# deadline objectives
# --------------------------------------------------------------------------- #
class TestDeadlineMetrics:
    def test_basic_miss_accounting(self):
        metrics = deadline_metrics(
            {"a": 3.0, "b": 5.0, "c": 7.0},
            {"a": 4.0, "b": 5.0, "c": 6.0},
        )
        assert metrics.n_jobs == 3
        assert metrics.misses == 1
        assert metrics.miss_ratio == pytest.approx(1 / 3)
        assert metrics.max_lateness == pytest.approx(1.0)
        assert metrics.total_tardiness == pytest.approx(1.0)
        assert metrics.total_earliness == pytest.approx(1.0)

    def test_max_lateness_can_be_negative(self):
        metrics = deadline_metrics({"a": 1.0}, {"a": 5.0})
        assert metrics.misses == 0
        assert metrics.max_lateness == pytest.approx(-4.0)

    def test_weights_and_releases(self):
        metrics = deadline_metrics(
            {"a": 3.0, "b": 4.0},
            {"a": 5.0, "b": 4.0},
            releases={"a": 1.0},
            weights={"a": 2.0},
        )
        assert metrics.weighted_earliness == pytest.approx(4.0)  # 2 * (5 - 3)
        assert metrics.total_flow == pytest.approx((3.0 - 1.0) + 4.0)
        assert metrics.weighted_flow == pytest.approx(2 * 2.0 + 4.0)

    def test_empty_and_missing_deadline(self):
        empty = deadline_metrics({}, {})
        assert empty.n_jobs == 0 and empty.miss_ratio == 0.0
        with pytest.raises(KeyError, match="no deadline recorded"):
            deadline_metrics({"ghost": 1.0}, {})


# --------------------------------------------------------------------------- #
# EXT-P1: the golden utilization sweep
# --------------------------------------------------------------------------- #
class TestGoldenSweep:
    def test_ext_p1_matches_golden_bit_for_bit(self):
        golden = json.loads(PERIODIC_GOLDEN_PATH.read_text())
        live = json.loads(json.dumps(compute_fixture(), sort_keys=True))
        assert live["experiment_id"] == golden["experiment_id"] == "EXT-P1"
        assert live["headers"] == golden["headers"]
        assert live["checks"] == golden["checks"]
        assert all(golden["checks"].values()), golden["checks"]
        assert live["rows"] == golden["rows"]

    def test_boundary_shape_in_the_fixture(self):
        """The fixture itself exhibits the U = 1 schedulability boundary."""
        golden = json.loads(PERIODIC_GOLDEN_PATH.read_text())
        for row in golden["rows"]:
            if (row["family"] == "harmonic" and row["m"] == 1
                    and row["solver"] == "periodic_edf"):
                if row["U/m"] <= 1.0:
                    assert row["misses"] == 0, row
                else:
                    assert row["misses"] > 0, row


# --------------------------------------------------------------------------- #
# engine satellites: release validation and idle-gap accounting
# --------------------------------------------------------------------------- #
class TestEngineSatellites:
    def test_negative_and_nan_release_rejected(self):
        engine = SimulationEngine(m=1)
        with pytest.raises(ValueError, match="start time"):
            engine.submit_task("t", 0, -0.5, 1.0, 1.0)
        with pytest.raises(ValueError, match="start time"):
            engine.submit_task("t", 0, float("nan"), 1.0, 1.0)

    def test_first_event_after_t0_counts_as_idle(self):
        """Regression: a leading release gap is idle time, not busy time."""
        engine = SimulationEngine(m=2)
        engine.submit_task("late", 0, 3.0, 2.0, 1.0)  # proc 0 idles [0, 3)
        engine.submit_task("later", 1, 4.0, 1.0, 1.0)  # proc 1 idles [0, 4)
        engine.run()
        assert engine.makespan == 5.0
        assert engine.busy_per_processor == [2.0, 1.0]
        assert engine.idle_per_processor == [3.0, 4.0]

    def test_busy_accounting_across_back_to_back_tasks(self):
        engine = SimulationEngine(m=1)
        engine.submit_task("a", 0, 0.0, 2.0, 1.0)
        engine.submit_task("b", 0, 2.0, 3.0, 1.0)
        engine.run()
        assert engine.busy_per_processor == [5.0]
        assert engine.idle_per_processor == [0.0]


# --------------------------------------------------------------------------- #
# live service: wire round-trip and subprocess parity
# --------------------------------------------------------------------------- #
class TestService:
    def test_wire_payload_round_trips_through_protocol(self):
        from repro.service.protocol import instance_from_payload

        pinst = small_instance(m=2)
        back = instance_from_payload(pinst.to_dict())
        assert isinstance(back, PeriodicInstance)
        assert back.content_hash() == pinst.content_hash()

    def test_live_serve_bit_identical_to_inprocess(self):
        from repro.service.protocol import encode_message, result_to_payload, solve_request

        pinst = small_instance(m=2)
        requests = b"".join([
            encode_message(solve_request(pinst, "periodic_edf", request_id=1)),
            encode_message(solve_request(pinst, "lpt", request_id=2)),
            encode_message({"id": 3, "op": "shutdown"}),
        ])
        src = Path(__file__).resolve().parents[1] / "src"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--stdio", "--workers", "1"],
            input=requests, capture_output=True, timeout=120,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr.decode()
        responses = {
            msg["id"]: msg
            for msg in (json.loads(line) for line in proc.stdout.splitlines() if line.strip())
        }

        def canonical(payload):
            # Timing and cache state are the only run-dependent fields.
            payload = json.loads(json.dumps(payload, sort_keys=True))
            payload.pop("wall_time", None)
            payload.get("provenance", {}).pop("cache", None)
            return payload

        for request_id, spec in ((1, "periodic_edf"), (2, "lpt")):
            assert responses[request_id]["ok"], responses[request_id]
            direct = json.loads(json.dumps(
                result_to_payload(solve(pinst, spec, cache=False)), sort_keys=True
            ))
            served = responses[request_id]["result"]
            assert canonical(served) == canonical(direct), spec
        assert responses[1]["result"]["extras"]["deadline_misses"] == 0
        assert responses[2]["result"]["extras"]["periodic_unroll"] is True


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestCLI:
    def test_generate_solve_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "ptasks.json"
        assert main([
            "periodic", "generate", "--family", "harmonic", "--n", "5",
            "--utilization", "0.9", "--seed", "0", "--output", str(path),
        ]) == 0
        data = json.loads(path.read_text())
        assert data["kind"] == "periodic"
        assert main(["periodic", "solve", "--input", str(path)]) == 0
        out = capsys.readouterr().out
        assert "deadline misses = 0" in out

    def test_solve_via_unrolling_solver(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "ptasks.json"
        path.write_text(json.dumps(small_instance(m=2).to_dict()))
        assert main(["periodic", "solve", "--input", str(path), "--solver", "lpt"]) == 0
        assert "unrolled jobs = 9" in capsys.readouterr().out

    def test_solve_rejects_capability_errors_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "big.json"
        path.write_text(json.dumps(small_instance().with_horizon(16.0).to_dict()))
        assert main(["periodic", "solve", "--input", str(path), "--solver", "exact"]) == 2
        assert "periodic_edf" in capsys.readouterr().err

    def test_budget_error_exits_1(self, tmp_path, capsys):
        from repro.cli import main

        pinst = PeriodicInstance(
            [
                PeriodicTask(id="p97", wcet=0.5, s=1.0, period=97.0),
                PeriodicTask(id="p89", wcet=0.5, s=1.0, period=89.0),
                PeriodicTask(id="p83", wcet=0.5, s=1.0, period=83.0),
            ],
            m=1,
            unroll_budget=1000,
        )
        path = tmp_path / "coprime.json"
        path.write_text(json.dumps(pinst.to_dict()))
        assert main(["periodic", "solve", "--input", str(path)]) == 1
        assert "unroll budget" in capsys.readouterr().err

    def test_schedule_refuses_periodic_instances(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "ptasks.json"
        path.write_text(json.dumps(small_instance().to_dict()))
        assert main(["schedule", "--input", str(path), "--algorithm", "lpt"]) == 2
        assert "periodic" in capsys.readouterr().err

    def test_sweep_smoke(self, capsys):
        from repro.cli import main

        assert main(["periodic", "sweep", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "EXT-P1" in out
