"""Unit tests for repro.core.objectives."""

from __future__ import annotations

import math


from repro.core.objectives import ObjectiveValues, evaluate, ratio_to
from repro.core.schedule import Schedule


class TestObjectiveValues:
    def test_as_pair_and_triple(self):
        v = ObjectiveValues(cmax=3, mmax=4, sum_ci=10)
        assert v.as_pair() == (3, 4)
        assert v.as_triple() == (3, 4, 10)

    def test_weak_dominance(self):
        a = ObjectiveValues(1, 2, 3)
        b = ObjectiveValues(2, 2, 3)
        assert a.weakly_dominates(b)
        assert not b.weakly_dominates(a)
        assert a.weakly_dominates(a)

    def test_strict_dominance(self):
        a = ObjectiveValues(1, 2, 3)
        b = ObjectiveValues(2, 3, 3)
        assert a.dominates(b)
        assert not a.dominates(a)

    def test_dominance_with_sum_ci(self):
        a = ObjectiveValues(1, 1, 5)
        b = ObjectiveValues(1, 1, 4)
        assert not a.dominates(b, include_sum_ci=True)
        assert b.dominates(a, include_sum_ci=True)
        # Without sum_ci they are equal pairs => no strict dominance.
        assert not b.dominates(a, include_sum_ci=False)

    def test_isclose(self):
        a = ObjectiveValues(1.0, 2.0, 3.0)
        b = ObjectiveValues(1.0 + 1e-12, 2.0, 3.0)
        assert a.isclose(b)
        assert not a.isclose(ObjectiveValues(1.1, 2.0, 3.0))


class TestEvaluate:
    def test_evaluate_schedule(self, small_instance):
        sched = Schedule(small_instance, {0: 0, 1: 1, 2: 0, 3: 1, 4: 0})
        v = evaluate(sched)
        assert v.cmax == sched.cmax
        assert v.mmax == sched.mmax
        assert v.sum_ci == sched.sum_ci

    def test_evaluate_dag_schedule(self, diamond_dag):
        from repro.core.schedule import DAGSchedule

        sched = DAGSchedule(
            diamond_dag,
            {"a": 0, "b": 0, "c": 1, "d": 0},
            {"a": 0.0, "b": 2.0, "c": 2.0, "d": 6.0},
        )
        v = evaluate(sched)
        assert v.cmax == 7.0 and v.mmax == 11.0


class TestRatioTo:
    def test_simple_ratios(self):
        v = ObjectiveValues(4, 6, 20)
        rc, rm, rs = ratio_to(v, cmax_ref=2, mmax_ref=3, sum_ci_ref=10)
        assert rc == 2 and rm == 2 and rs == 2

    def test_sum_ci_ref_optional(self):
        v = ObjectiveValues(4, 6, 20)
        rc, rm, rs = ratio_to(v, cmax_ref=4, mmax_ref=6)
        assert rc == 1 and rm == 1 and rs is None

    def test_zero_reference_zero_value(self):
        v = ObjectiveValues(0, 0, 0)
        rc, rm, _ = ratio_to(v, cmax_ref=0, mmax_ref=0)
        assert rc == 1 and rm == 1

    def test_zero_reference_positive_value(self):
        v = ObjectiveValues(1, 0, 0)
        rc, _, _ = ratio_to(v, cmax_ref=0, mmax_ref=1)
        assert math.isinf(rc)
