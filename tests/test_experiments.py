"""Integration tests for the experiment harness: every reproduced figure/table passes its shape checks."""

from __future__ import annotations

import pytest

from repro.experiments import (
    run_constrained_study,
    run_figure1,
    run_figure2,
    run_figure3,
    run_rls_ablation,
    run_rls_ratio,
    run_sbo_ablation,
    run_sbo_ratio,
    run_simulation_validation,
    run_trio_ratio,
)
from repro.experiments.harness import ExperimentResult


class TestHarness:
    def test_add_row_validates_columns(self):
        res = ExperimentResult("X", "t", headers=["a", "b"])
        res.add_row(a=1, b=2)
        with pytest.raises(ValueError):
            res.add_row(a=1)
        assert res.rows == [{"a": 1, "b": 2}]

    def test_checks_and_rendering(self):
        res = ExperimentResult("X", "title", headers=["a"])
        res.add_row(a=1)
        res.add_check("ok", True)
        res.add_check("bad", False)
        assert not res.all_checks_pass
        assert res.failed_checks() == ["bad"]
        assert "FAIL" in res.to_text()
        assert "❌" in res.to_markdown()

    def test_all_checks_pass_requires_checks(self):
        res = ExperimentResult("X", "title", headers=["a"])
        assert not res.all_checks_pass


class TestFigureExperiments:
    def test_figure1(self):
        res = run_figure1()
        assert res.all_checks_pass, res.failed_checks()
        assert len(res.rows) == 2

    def test_figure1_other_epsilon(self):
        assert run_figure1(epsilon=0.1).all_checks_pass

    def test_figure2(self):
        res = run_figure2()
        assert res.all_checks_pass, res.failed_checks()
        assert len(res.rows) == 3

    def test_figure2_epsilon_near_half(self):
        assert run_figure2(epsilon=0.45).all_checks_pass

    def test_figure3(self):
        res = run_figure3(m_values=(2, 3, 4), k=16)
        assert res.all_checks_pass, res.failed_checks()
        series_names = {row["series"] for row in res.rows}
        assert any("staircase" in s for s in series_names)
        assert any("SBO curve" in s for s in series_names)


class TestExtensionExperiments:
    def test_sbo_ratio(self):
        res = run_sbo_ratio(deltas=(0.5, 1.0, 2.0), n_small=8, n_large=40, seeds=(0,))
        assert res.all_checks_pass, res.failed_checks()

    def test_rls_ratio(self):
        res = run_rls_ratio(deltas=(2.5, 3.0), m_values=(2, 4), seeds=(0,))
        assert res.all_checks_pass, res.failed_checks()

    def test_trio_ratio(self):
        res = run_trio_ratio(deltas=(2.5, 4.0), n=30, m_values=(2, 4), seeds=(0,))
        assert res.all_checks_pass, res.failed_checks()

    def test_constrained_study(self):
        res = run_constrained_study(capacity_factors=(1.5, 2.0, 3.0), n=20, seeds=(0,))
        assert res.all_checks_pass, res.failed_checks()

    def test_sbo_ablation(self):
        res = run_sbo_ablation(solvers=("list", "lpt"), n=25, seeds=(0,))
        assert res.all_checks_pass, res.failed_checks()

    def test_rls_ablation(self):
        res = run_rls_ablation(orders=("arbitrary", "bottom-level"), deltas=(1.8, 2.0, 3.0), seeds=(0,))
        assert res.all_checks_pass, res.failed_checks()

    def test_simulation_validation(self):
        res = run_simulation_validation(n=15, seeds=(0,))
        assert res.all_checks_pass, res.failed_checks()

    def test_pareto_approx_study(self):
        from repro.experiments import run_pareto_approx_study

        res = run_pareto_approx_study(n_small=8, n_large=30, seeds=(0,))
        assert res.all_checks_pass, res.failed_checks()
