"""Unit tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def instance_file(tmp_path: Path) -> Path:
    path = tmp_path / "inst.json"
    code = main(["generate", "--kind", "uniform", "--n", "20", "--m", "3", "--seed", "1",
                 "--output", str(path)])
    assert code == 0
    return path


@pytest.fixture
def dag_file(tmp_path: Path) -> Path:
    path = tmp_path / "dag.json"
    code = main(["generate", "--kind", "layered", "--m", "3", "--seed", "2", "--output", str(path)])
    assert code == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["schedule", "--input", "x.json"])
        assert args.algorithm == "sbo" and args.delta == 1.0

    def test_invalid_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "--input", "x.json", "--algorithm", "magic"])


class TestGenerate:
    def test_generate_independent(self, instance_file):
        data = json.loads(instance_file.read_text())
        assert data["kind"] == "independent"
        assert len(data["tasks"]) == 20
        assert data["m"] == 3

    def test_generate_dag(self, dag_file):
        data = json.loads(dag_file.read_text())
        assert data["kind"] == "dag"
        assert data["edges"]

    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "--kind", "bimodal", "--n", "5", "--m", "2"]) == 0
        out = capsys.readouterr().out
        assert json.loads(out)["m"] == 2

    def test_generate_unknown_kind(self, capsys):
        assert main(["generate", "--kind", "nonsense", "--m", "2"]) == 2
        assert "unknown instance kind" in capsys.readouterr().err


class TestSchedule:
    @pytest.mark.parametrize("algorithm", ["sbo", "trio", "lpt", "spt"])
    def test_independent_algorithms(self, instance_file, capsys, algorithm):
        delta = "3.0" if algorithm == "trio" else "1.0"
        code = main(["schedule", "--input", str(instance_file), "--algorithm", algorithm, "--delta", delta])
        assert code == 0
        out = capsys.readouterr().out
        assert "Cmax =" in out and "Mmax =" in out and "simulation check: OK" in out

    def test_rls_on_dag(self, dag_file, capsys):
        code = main(["schedule", "--input", str(dag_file), "--algorithm", "rls", "--delta", "3.0",
                     "--order", "bottom-level", "--gantt"])
        assert code == 0
        out = capsys.readouterr().out
        assert "guarantees" in out
        assert "P0 |" in out  # gantt printed

    def test_constrained_feasible(self, instance_file, capsys):
        data = json.loads(instance_file.read_text())
        total_s = sum(rec["s"] for rec in data["tasks"])
        capacity = str(total_s)  # generous
        code = main(["schedule", "--input", str(instance_file), "--algorithm", "constrained",
                     "--capacity", capacity])
        assert code == 0
        assert "strategy" in capsys.readouterr().out

    def test_constrained_requires_capacity(self, instance_file, capsys):
        code = main(["schedule", "--input", str(instance_file), "--algorithm", "constrained"])
        assert code == 2
        assert "--capacity" in capsys.readouterr().err

    def test_constrained_infeasible(self, instance_file, capsys):
        code = main(["schedule", "--input", str(instance_file), "--algorithm", "constrained",
                     "--capacity", "0.001"])
        assert code == 1
        assert "infeasible" in capsys.readouterr().out


class TestSolve:
    def test_solve_spec(self, instance_file, capsys):
        code = main(["solve", "--input", str(instance_file),
                     "--solver", "sbo(delta=1.0, inner=lpt)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "spec: sbo(delta=1.0, inner=lpt)" in out
        assert "Cmax =" in out and "guarantee = (" in out
        assert "simulation check: OK" in out

    def test_solve_dag_with_gantt(self, dag_file, capsys):
        code = main(["solve", "--input", str(dag_file),
                     "--solver", "rls(delta=2.5, order=bottom-level)", "--gantt"])
        assert code == 0
        out = capsys.readouterr().out
        assert "P0 |" in out

    def test_solve_constrained_infeasible(self, instance_file, capsys):
        code = main(["solve", "--input", str(instance_file),
                     "--solver", "constrained(budget=0.001)"])
        assert code == 1
        assert "infeasible" in capsys.readouterr().out

    def test_solve_unknown_solver(self, instance_file, capsys):
        code = main(["solve", "--input", str(instance_file), "--solver", "quantum"])
        assert code == 2
        assert "available solvers" in capsys.readouterr().err

    def test_solve_capability_error(self, dag_file, capsys):
        code = main(["solve", "--input", str(dag_file), "--solver", "sbo(delta=1.0)"])
        assert code == 2
        assert "DAG-capable" in capsys.readouterr().err

    def test_solve_requires_input(self, capsys):
        code = main(["solve", "--solver", "lpt"])
        assert code == 2
        assert "--input" in capsys.readouterr().err

    def test_solve_solver_level_failure_is_clean(self, tmp_path, capsys):
        # 30 tasks exceeds the exact solver's default cap: a clean message
        # and exit 1 (solver failure), not a traceback or usage error.
        big = tmp_path / "big.json"
        assert main(["generate", "--kind", "uniform", "--n", "30", "--m", "3",
                     "--seed", "3", "--output", str(big)]) == 0
        capsys.readouterr()
        code = main(["solve", "--input", str(big), "--solver", "exact"])
        assert code == 1
        assert "solver failed" in capsys.readouterr().err

    def test_solve_infeasible_delta_is_clean(self, instance_file, capsys):
        code = main(["solve", "--input", str(instance_file), "--solver", "rls(delta=0.1)"])
        assert code == 1
        assert "solver failed" in capsys.readouterr().err

    def test_solve_list(self, capsys):
        assert main(["solve", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("sbo", "rls", "trio", "constrained"):
            assert name in out
        assert "bi-objective" in out


class TestExperimentsAndReport:
    def test_single_experiment(self, capsys):
        assert main(["experiments", "--id", "FIG-1"]) == 0
        out = capsys.readouterr().out
        assert "FIG-1" in out and "PASS" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiments", "--id", "FIG-99"]) == 2
        assert "unknown experiment id" in capsys.readouterr().err

    def test_report_to_file(self, tmp_path, capsys, monkeypatch):
        # Patch the report generator to the fast figure-only subset so the
        # CLI path is exercised without rerunning every sweep.
        import repro.experiments.report as report_mod
        from repro.experiments.figure1 import run_figure1

        monkeypatch.setattr(
            report_mod, "run_all_experiments", lambda quick=True: [run_figure1()]
        )
        out_path = tmp_path / "report.md"
        assert main(["report", "--output", str(out_path)]) == 0
        assert "FIG-1" in out_path.read_text()


class TestOnline:
    def test_online_list(self, capsys):
        assert main(["online", "--list"]) == 0
        out = capsys.readouterr().out
        assert "online_sbo" in out and "online_greedy" in out

    def test_online_stochastic_run_with_saved_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main([
            "online", "--arrival", "stochastic", "--n", "20", "--m", "3",
            "--seed", "1", "--scheduler", "online_sbo(delta=1.0)",
            "--save-trace", str(trace_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "competitive ratios" in out and "online_sbo(delta=1.0)" in out
        assert trace_path.exists()
        # Re-run from the saved trace with explicit prefixes.
        assert main([
            "online", "--trace", str(trace_path),
            "--scheduler", "online_greedy", "--prefixes", "5,10,20",
        ]) == 0
        out = capsys.readouterr().out
        assert "prefix k" in out

    def test_online_adversarial_run(self, capsys):
        assert main([
            "online", "--arrival", "adversarial", "--mode", "memory_first",
            "--n", "15", "--m", "2", "--scheduler", "online_greedy(objective=memory)",
        ]) == 0
        assert "adversarial" in capsys.readouterr().out

    def test_online_replay_requires_input(self, capsys):
        assert main(["online", "--arrival", "replay"]) == 2
        assert "--input" in capsys.readouterr().err

    def test_online_bad_scheduler_spec(self, capsys):
        assert main(["online", "--n", "5", "--scheduler", "online_nope"]) == 2
        assert "online" in capsys.readouterr().err

    def test_online_bad_prefixes(self, capsys):
        assert main(["online", "--n", "5", "--prefixes", "a,b"]) == 2
        assert "--prefixes" in capsys.readouterr().err
