"""Unit tests for repro.utils."""

from __future__ import annotations

import pytest

from repro.utils.rng import seeded_rng, spawn_rngs
from repro.utils.tables import format_markdown_table, format_table


class TestRNG:
    def test_seeded_rng_reproducible(self):
        assert seeded_rng(3).integers(0, 1000) == seeded_rng(3).integers(0, 1000)

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(7, 3)
        assert len(rngs) == 3
        draws = [rng.integers(0, 10**9) for rng in rngs]
        assert len(set(draws)) == 3

    def test_spawn_rngs_reproducible(self):
        a = [rng.integers(0, 10**9) for rng in spawn_rngs(7, 3)]
        b = [rng.integers(0, 10**9) for rng in spawn_rngs(7, 3)]
        assert a == b

    def test_spawn_rngs_invalid(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_zero(self):
        assert spawn_rngs(0, 0) == []


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["long-name", 2]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "1.235" in text  # 4 significant digits

    def test_format_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_format_markdown_table(self):
        text = format_markdown_table(["x", "y"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert lines[0] == "| x | y |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_format_markdown_mismatch(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a"], [[1, 2]])

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2
