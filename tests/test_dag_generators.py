"""Unit tests for repro.dag.generators."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.dag.analysis import critical_path_length, graph_width
from repro.dag.generators import (
    chain_dag,
    erdos_renyi_dag,
    fft_dag,
    fork_join_dag,
    gaussian_elimination_dag,
    in_tree_dag,
    layered_dag,
    out_tree_dag,
    random_dag_suite,
    series_parallel_dag,
    stencil_dag,
)
from repro.workloads.distributions import constant_sampler


def assert_valid_dag(instance):
    assert nx.is_directed_acyclic_graph(instance.graph)
    for task in instance.tasks:
        assert task.p >= 0 and task.s >= 0


class TestGeneratorBasics:
    def test_layered(self):
        dag = layered_dag(5, 4, m=3, seed=1)
        assert_valid_dag(dag)
        assert dag.n >= 5
        # depth equals the number of layers (every layer depends on the previous).
        assert nx.dag_longest_path_length(dag.graph) == 4

    def test_layered_determinism(self):
        a = layered_dag(4, 3, m=2, seed=7)
        b = layered_dag(4, 3, m=2, seed=7)
        assert a == b

    def test_layered_different_seeds_differ(self):
        a = layered_dag(6, 4, m=2, seed=1)
        b = layered_dag(6, 4, m=2, seed=2)
        assert a != b

    def test_layered_invalid_args(self):
        with pytest.raises(ValueError):
            layered_dag(0, 3, m=1)
        with pytest.raises(ValueError):
            layered_dag(3, 3, m=1, edge_probability=1.5)

    def test_erdos_renyi(self):
        dag = erdos_renyi_dag(25, m=2, edge_probability=0.2, seed=3)
        assert_valid_dag(dag)
        assert dag.n == 25

    def test_erdos_renyi_zero_probability_independent(self):
        dag = erdos_renyi_dag(10, m=2, edge_probability=0.0, seed=0)
        assert dag.is_independent()

    def test_erdos_renyi_full_probability_total_order(self):
        dag = erdos_renyi_dag(6, m=2, edge_probability=1.0, seed=0)
        assert dag.n_edges == 6 * 5 // 2

    def test_fork_join(self):
        dag = fork_join_dag(3, 4, m=2, seed=0)
        assert_valid_dag(dag)
        assert dag.n == 3 * (4 + 2)
        assert len(dag.sources()) == 1
        assert len(dag.sinks()) == 1

    def test_out_tree(self):
        dag = out_tree_dag(3, 2, m=2, seed=0)
        assert_valid_dag(dag)
        assert dag.n == 7  # 1 + 2 + 4
        assert len(dag.sources()) == 1
        assert len(dag.sinks()) == 4

    def test_in_tree_is_reverse_of_out_tree(self):
        out_t = out_tree_dag(3, 2, m=2, seed=0)
        in_t = in_tree_dag(3, 2, m=2, seed=0)
        assert {(v, u) for u, v in out_t.graph.edges()} == set(in_t.graph.edges())
        assert len(in_t.sinks()) == 1

    def test_series_parallel(self):
        dag = series_parallel_dag(20, m=2, seed=5)
        assert_valid_dag(dag)
        assert dag.n >= 20
        assert len(dag.sources()) == 1 and len(dag.sinks()) == 1

    def test_gaussian_elimination(self):
        dag = gaussian_elimination_dag(5, m=2, seed=0)
        assert_valid_dag(dag)
        # (m-1) pivots + sum_{k} (size-1-k) updates
        assert dag.n == 4 + (4 + 3 + 2 + 1)
        # Pivot of step k depends transitively on pivot of step k-1.
        assert nx.has_path(dag.graph, "pivot0", "pivot3")

    def test_fft(self):
        dag = fft_dag(8, m=4, seed=0)
        assert_valid_dag(dag)
        assert dag.n == 8 * 4  # (log2(8)+1) stages of 8 tasks
        assert graph_width(dag) == 8

    def test_fft_requires_power_of_two(self):
        with pytest.raises(ValueError):
            fft_dag(6, m=2)

    def test_stencil(self):
        dag = stencil_dag(3, 4, m=2, seed=0)
        assert_valid_dag(dag)
        assert dag.n == 12
        assert nx.has_path(dag.graph, "cell0_0", "cell2_3")

    def test_chain(self):
        dag = chain_dag(7, m=3, seed=0, p_sampler=constant_sampler(2.0))
        assert_valid_dag(dag)
        assert graph_width(dag) == 1
        assert critical_path_length(dag) == 14.0

    def test_chain_invalid(self):
        with pytest.raises(ValueError):
            chain_dag(0, m=1)


class TestSuite:
    def test_suite_families(self):
        suite = random_dag_suite(4, seed=0)
        assert len(suite) == 10
        for name, dag in suite.items():
            assert_valid_dag(dag)
            assert dag.m == 4
            assert dag.n >= 5, name

    def test_suite_determinism(self):
        a = random_dag_suite(2, seed=3)
        b = random_dag_suite(2, seed=3)
        for name in a:
            assert a[name] == b[name]

    def test_suite_scale(self):
        small = random_dag_suite(2, seed=0, scale=1)
        large = random_dag_suite(2, seed=0, scale=2)
        assert large["layered"].n >= small["layered"].n

    def test_suite_invalid_scale(self):
        with pytest.raises(ValueError):
            random_dag_suite(2, seed=0, scale=0)

    def test_custom_samplers(self):
        dag = layered_dag(3, 3, m=2, seed=0, p_sampler=constant_sampler(5.0), s_sampler=constant_sampler(2.0))
        assert all(t.p == 5.0 and t.s == 2.0 for t in dag.tasks)
