"""Golden-table generator for the online competitive-ratio experiment.

Runs :func:`repro.experiments.online_ratio.run_online_ratio` at its
golden profile (the defaults: ``seeds=(0,)``, the standard
delta × arrival × size grid — every cell deterministic) and pins the
full table bit-for-bit into ``tests/golden/online_ratio.json``.

Regenerate only when an output change is *intended* (a scheduler change,
a consciously accepted routing change)::

    PYTHONPATH=src python tests/make_online_golden.py

``tests/test_online.py`` re-runs the same profile and compares every row
and every shape check against this fixture.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

from repro.experiments.online_ratio import run_online_ratio

ONLINE_GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "online_ratio.json"


def compute_fixture() -> Dict[str, object]:
    result = run_online_ratio()
    return {
        "experiment_id": result.experiment_id,
        "headers": result.headers,
        "rows": result.rows,
        "checks": result.checks,
    }


def main() -> None:
    ONLINE_GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    fixture = compute_fixture()
    ONLINE_GOLDEN_PATH.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
    print(
        f"wrote {len(fixture['rows'])} golden rows "
        f"({sum(fixture['checks'].values())}/{len(fixture['checks'])} checks pass) "
        f"to {ONLINE_GOLDEN_PATH}"
    )


if __name__ == "__main__":
    main()
