"""Property-based tests (hypothesis) on the core invariants of the library.

These check the paper's guarantees and the data-structure invariants over
randomly generated instances rather than hand-picked examples:

* conservation: every schedule assigns every task exactly once and the sums
  of per-processor loads / memories equal the instance totals;
* Graham bounds are genuine lower bounds;
* SBO_Δ respects Properties 1–2 against exact optima on small instances;
* RLS_Δ respects the ``Δ·LB`` memory budget and the Lemma 4 marked-processor
  bound for any Δ ≥ 2 and any instance;
* objective symmetry: swapping ``p`` and ``s`` swaps the two objectives;
* the Pareto front utilities never keep a dominated point.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.algorithms.exact import exact_cmax, exact_mmax, pareto_front_exact
from repro.algorithms.list_scheduling import list_schedule
from repro.algorithms.lpt import lpt_schedule
from repro.core.bounds import cmax_lower_bound, mmax_lower_bound, sum_ci_lower_bound
from repro.core.instance import Instance
from repro.core.pareto import dominates, pareto_filter
from repro.core.rls import rls
from repro.core.sbo import sbo
from repro.core.trio import tri_objective_schedule
from repro.core.validation import validate_schedule
from repro.simulator.executor import simulate_schedule

# Strategy: small instances with integer-ish costs (keeps exact solvers fast).
costs = st.integers(min_value=0, max_value=50)
positive_costs = st.integers(min_value=1, max_value=50)


@st.composite
def instances(draw, min_tasks=1, max_tasks=9, max_m=4, allow_zero=True):
    n = draw(st.integers(min_value=min_tasks, max_value=max_tasks))
    m = draw(st.integers(min_value=1, max_value=max_m))
    cost = costs if allow_zero else positive_costs
    p = draw(st.lists(cost, min_size=n, max_size=n))
    s = draw(st.lists(cost, min_size=n, max_size=n))
    return Instance.from_lists(p=p, s=s, m=m)


common_settings = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestConservationProperties:
    @given(inst=instances())
    @common_settings
    def test_list_schedule_conserves_work_and_memory(self, inst):
        sched = list_schedule(inst)
        assert sum(sched.loads) == sum(t.p for t in inst.tasks)
        assert sum(sched.memories) == sum(t.s for t in inst.tasks)
        assert validate_schedule(sched).ok

    @given(inst=instances(), delta=st.floats(min_value=0.1, max_value=8.0))
    @common_settings
    def test_sbo_assigns_every_task_once(self, inst, delta):
        result = sbo(inst, delta)
        assert set(result.schedule.assignment) == set(inst.tasks.ids)
        assert validate_schedule(result.schedule).ok

    @given(inst=instances())
    @common_settings
    def test_simulator_agrees_with_analytic_objectives(self, inst):
        sched = lpt_schedule(inst)
        report = simulate_schedule(sched)
        assert report.ok
        assert math.isclose(report.cmax, sched.cmax, rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(report.mmax, sched.mmax, rel_tol=1e-9, abs_tol=1e-9)


class TestBoundProperties:
    @given(inst=instances(max_tasks=8))
    @common_settings
    def test_graham_bounds_are_lower_bounds(self, inst):
        assert cmax_lower_bound(inst) <= exact_cmax(inst) + 1e-9
        assert mmax_lower_bound(inst) <= exact_mmax(inst) + 1e-9

    @given(inst=instances(max_tasks=8))
    @common_settings
    def test_heuristics_never_beat_exact(self, inst):
        assert lpt_schedule(inst).cmax >= exact_cmax(inst) - 1e-9
        assert lpt_schedule(inst, objective="memory").mmax >= exact_mmax(inst) - 1e-9

    @given(inst=instances(max_tasks=10, allow_zero=False))
    @common_settings
    def test_sum_ci_lower_bound_reached_by_spt(self, inst):
        from repro.algorithms.spt import spt_schedule

        assert math.isclose(spt_schedule(inst).sum_ci, sum_ci_lower_bound(inst), rel_tol=1e-9)


class TestSBOProperties:
    @given(inst=instances(max_tasks=8), delta=st.sampled_from([0.25, 0.5, 1.0, 2.0, 4.0]))
    @common_settings
    def test_properties_1_and_2(self, inst, delta):
        """Cmax <= (1+d)*rho1*C* and Mmax <= (1+1/d)*rho2*M* on every instance."""
        result = sbo(inst, delta, cmax_solver="lpt")
        c_star = exact_cmax(inst)
        m_star = exact_mmax(inst)
        assert result.cmax <= result.cmax_guarantee * c_star + 1e-9
        assert result.mmax <= result.mmax_guarantee * m_star + 1e-9

    @given(inst=instances(max_tasks=8), delta=st.sampled_from([0.5, 1.0, 2.0]))
    @common_settings
    def test_symmetry_under_objective_swap(self, inst, delta):
        """SBO on the swapped instance with 1/delta mirrors the guarantees (§2.1)."""
        result = sbo(inst, delta)
        swapped = sbo(inst.swapped(), 1.0 / delta)
        assert math.isclose(result.cmax_guarantee, swapped.mmax_guarantee, rel_tol=1e-9)
        assert math.isclose(result.mmax_guarantee, swapped.cmax_guarantee, rel_tol=1e-9)


class TestRLSProperties:
    @given(
        inst=instances(max_tasks=12),
        delta=st.floats(min_value=2.0, max_value=8.0),
        order=st.sampled_from(["arbitrary", "spt", "lpt"]),
    )
    @common_settings
    def test_memory_budget_and_lemma4(self, inst, delta, order):
        result = rls(inst, delta, order=order)
        lb = mmax_lower_bound(inst)
        assert result.mmax <= delta * lb + 1e-9
        if delta > 1.0:
            assert len(result.marked_processors) <= math.floor(inst.m / (delta - 1.0))
        assert validate_schedule(result.schedule).ok

    @given(inst=instances(max_tasks=10), delta=st.floats(min_value=2.1, max_value=6.0))
    @common_settings
    def test_cmax_guarantee_vs_exact(self, inst, delta):
        assume(inst.n <= 9)
        result = rls(inst, delta)
        c_star = exact_cmax(inst)
        if c_star > 0:
            assert result.cmax <= result.cmax_guarantee * c_star + 1e-9

    @given(inst=instances(max_tasks=10, allow_zero=False), delta=st.sampled_from([2.5, 3.0, 5.0]))
    @common_settings
    def test_trio_sum_ci_guarantee(self, inst, delta):
        result = tri_objective_schedule(inst, delta)
        assert result.sum_ci <= result.sum_ci_guarantee * result.sum_ci_optimal + 1e-9


class TestParetoProperties:
    @given(points=st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), min_size=0, max_size=40))
    @common_settings
    def test_pareto_filter_keeps_only_nondominated(self, points):
        front = pareto_filter(points)
        for a in front:
            for b in front:
                if a != b:
                    assert not dominates(a, b) or not dominates(b, a)
            assert not any(dominates(tuple(map(float, q)), a) for q in points)
        # Every input point is dominated-or-equalled by some front point.
        for q in points:
            qf = tuple(map(float, q))
            assert any(f == qf or dominates(f, qf) for f in front)

    @given(inst=instances(max_tasks=7))
    @common_settings
    def test_exact_front_extremes_match_single_objective_optima(self, inst):
        front = pareto_front_exact(inst, keep_schedules=False)
        values = front.values()
        assert min(v[0] for v in values) == exact_cmax(inst)
        assert min(v[1] for v in values) == exact_mmax(inst)
