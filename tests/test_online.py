"""Tests for the :mod:`repro.online` subsystem (core, not serving).

Covers the scheduler protocol and adapters, the online registry, the
arrival models and trace replay, the competitive-ratio report, the
pinned EXT-O1 golden table, the ``2 - 1/m`` prefix property tests, and
the ``repro.extensions.online`` deprecation shim.
"""

from __future__ import annotations

import importlib
import json
import sys

import pytest

from repro.core.bounds import cmax_lower_bound, mmax_lower_bound
from repro.core.instance import Instance
from repro.core.task import Task, TaskSet
from repro.core.validation import validate_schedule
from repro.online import (
    ArrivalTrace,
    GreedyScheduler,
    HindsightOracle,
    OnlineBiObjectiveScheduler,
    OnlineSchedulerError,
    adversarial_trace,
    available_online_schedulers,
    competitive_report,
    create_online,
    describe_online_schedulers,
    replay_trace,
    stochastic_trace,
    trace_from_instance,
)
from repro.online.arrivals import ADVERSARIAL_MODES, ArrivalEvent
from repro.solvers import SpecError, solve
from repro.workloads.independent import uniform_instance, workload_suite

from make_online_golden import ONLINE_GOLDEN_PATH, compute_fixture

pytestmark = pytest.mark.online


# --------------------------------------------------------------------------- #
# the protocol base class
# --------------------------------------------------------------------------- #
class TestProtocol:
    def test_invalid_m(self):
        with pytest.raises(ValueError):
            GreedyScheduler(m=0)
        with pytest.raises(TypeError):
            GreedyScheduler(m=2.0)  # type: ignore[arg-type]

    def test_duplicate_submission_rejected(self):
        sched = GreedyScheduler(m=2)
        sched.submit(Task(id=0, p=1, s=1))
        with pytest.raises(OnlineSchedulerError):
            sched.submit(Task(id=0, p=2, s=2))
        # Back-compat: the shim's callers caught ValueError.
        assert issubclass(OnlineSchedulerError, ValueError)

    def test_submit_after_finalize_rejected(self):
        sched = GreedyScheduler(m=2)
        sched.submit(Task(id=0, p=1, s=1))
        sched.finalize()
        with pytest.raises(OnlineSchedulerError):
            sched.submit(Task(id=1, p=1, s=1))

    def test_finalize_idempotent_and_solve_result_shaped(self):
        sched = GreedyScheduler(m=3)
        sched.submit_many(uniform_instance(20, 3, seed=0).tasks)
        first = sched.finalize()
        assert sched.finalize() is first
        assert first.feasible
        assert first.cmax == pytest.approx(sched.cmax)
        assert first.mmax == pytest.approx(sched.mmax)
        assert first.provenance["mode"] == "online"
        assert first.provenance["n_submitted"] == 20
        assert validate_schedule(first.schedule).ok

    def test_empty_finalize(self):
        result = GreedyScheduler(m=2).finalize()
        assert result.cmax == 0.0 and result.mmax == 0.0
        assert result.provenance["n_submitted"] == 0

    def test_current_schedule_snapshot(self):
        sched = GreedyScheduler(m=2)
        sched.submit(Task(id="a", p=4, s=1))
        sched.submit(Task(id="b", p=3, s=2))
        snap = sched.current_schedule()
        assert snap.assignment == {"a": 0, "b": 1}
        assert sched.n_submitted == 2


class TestGreedyScheduler:
    def test_time_objective_packs_loads(self):
        sched = GreedyScheduler(m=2, objective="time")
        for i, p in enumerate([4, 3, 2]):
            sched.submit(Task(id=i, p=p, s=0))
        assert sched.cmax == 5.0  # 4 | 3+2

    def test_memory_objective_packs_memory(self):
        sched = GreedyScheduler(m=2, objective="memory")
        for i, s in enumerate([4, 3, 2]):
            sched.submit(Task(id=i, p=0, s=s))
        assert sched.mmax == 5.0

    def test_guarantee_tuple(self):
        assert GreedyScheduler(m=4, objective="time").guarantee() == (1.75, float("inf"))
        assert GreedyScheduler(m=4, objective="memory").guarantee() == (float("inf"), 1.75)

    def test_invalid_objective(self):
        with pytest.raises(ValueError):
            GreedyScheduler(m=2, objective="latency")


class TestOnlineBiObjective:
    """The threshold scheduler (behaviour preserved from the extension)."""

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            OnlineBiObjectiveScheduler(m=0)
        with pytest.raises(ValueError):
            OnlineBiObjectiveScheduler(m=2, delta=0.0)

    def test_memory_routed_tasks_have_low_density(self):
        sched = OnlineBiObjectiveScheduler(m=2, delta=1.0)
        sched.submit(Task(id="balanced", p=5, s=5))
        sched.submit(Task(id="heavy", p=1, s=50))
        assert "heavy" in sched.memory_routed_tasks
        assert "balanced" in sched.time_routed_tasks

    def test_extreme_deltas_route_everything_one_way(self):
        inst = uniform_instance(20, 3, seed=8)
        time_only = OnlineBiObjectiveScheduler(m=3, delta=1e-9)
        time_only.submit_many(inst.tasks)
        assert not time_only.memory_routed_tasks
        memory_only = OnlineBiObjectiveScheduler(m=3, delta=1e9)
        memory_only.submit_many(inst.tasks)
        assert len(memory_only.memory_routed_tasks) == 20

    def test_zero_storage_stream(self):
        sched = OnlineBiObjectiveScheduler(m=2)
        for i in range(6):
            sched.submit(Task(id=i, p=2, s=0))
        assert sched.mmax == 0.0
        assert sched.cmax == 6.0

    def test_competitive_bounds(self):
        assert OnlineBiObjectiveScheduler(m=4).competitive_bounds() == (1.75, 1.75)

    def test_snapshot_objective_consistency(self):
        inst = uniform_instance(25, 3, seed=11)
        online = OnlineBiObjectiveScheduler(m=3, delta=2.0)
        online.submit_many(inst.tasks)
        snapshot = online.current_schedule()
        assert snapshot.cmax == pytest.approx(online.cmax)
        assert snapshot.mmax == pytest.approx(online.mmax)


class TestHindsightOracle:
    def test_finalize_resolves_offline(self):
        inst = uniform_instance(15, 3, seed=2)
        oracle = HindsightOracle(m=3, inner="lpt")
        oracle.submit_many(inst.tasks)
        result = oracle.finalize()
        direct = solve(inst.with_m(3), "lpt", cache=False)
        assert result.cmax == direct.cmax
        assert result.provenance["hindsight"] is True

    def test_oracle_never_worse_than_greedy_on_cmax(self):
        inst = uniform_instance(30, 4, seed=5)
        greedy = GreedyScheduler(m=4, objective="time")
        greedy.submit_many(inst.tasks)
        oracle = HindsightOracle(m=4, inner="lpt")
        oracle.submit_many(inst.tasks)
        assert oracle.finalize().cmax <= greedy.finalize().cmax + 1e-9

    def test_bad_inner_spec_fails_at_construction(self):
        with pytest.raises(SpecError):
            HindsightOracle(m=2, inner="not a ( spec")


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
class TestOnlineRegistry:
    def test_families_registered(self):
        names = available_online_schedulers()
        assert {"online_greedy", "online_sbo", "online_hindsight"} <= set(names)

    def test_create_binds_and_canonicalizes(self):
        sched = create_online("online_sbo(delta=2.0)", m=4)
        assert isinstance(sched, OnlineBiObjectiveScheduler)
        assert sched.m == 4 and sched.delta == 2.0
        assert sched.spec == "online_sbo(delta=2.0)"
        assert sched.name == "online_sbo"
        assert sched.bound_params == {"delta": 2.0}

    def test_param_overrides(self):
        sched = create_online("online_sbo", m=2, delta=0.25)
        assert sched.delta == 0.25

    def test_unknown_scheduler_suggests(self):
        with pytest.raises(SpecError, match="online_sbo"):
            create_online("online_sb", m=2)

    def test_bad_params_rejected(self):
        with pytest.raises(SpecError):
            create_online("online_sbo(delta=-1)", m=2)
        with pytest.raises(SpecError):
            create_online("online_greedy(objective=latency)", m=2)
        with pytest.raises(SpecError):
            create_online("online_greedy(bogus=1)", m=2)

    def test_each_create_is_fresh(self):
        a = create_online("online_greedy", m=2)
        b = create_online("online_greedy", m=2)
        a.submit(Task(id=0, p=1, s=1))
        assert b.n_submitted == 0

    def test_describe_records(self):
        records = {rec["name"]: rec for rec in describe_online_schedulers()}
        assert "delta:float" in records["online_sbo"]["params"]


# --------------------------------------------------------------------------- #
# arrivals and replay
# --------------------------------------------------------------------------- #
class TestArrivalTrace:
    def test_stochastic_deterministic(self):
        a = stochastic_trace(n=30, m=3, seed=42)
        b = stochastic_trace(n=30, m=3, seed=42)
        assert a.to_json() == b.to_json()
        assert len(a) == 30 and a.m == 3

    def test_round_trip(self, tmp_path):
        trace = stochastic_trace(n=10, m=2, seed=1)
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = ArrivalTrace.load(path)
        assert loaded.to_json() == trace.to_json()
        assert loaded.instance().content_hash() == trace.instance().content_hash()

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError):
            ArrivalTrace(
                [ArrivalEvent(2.0, Task(id=0, p=1, s=1)),
                 ArrivalEvent(1.0, Task(id=1, p=1, s=1))],
                m=2,
            )

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError):
            ArrivalTrace(
                [ArrivalEvent(0.0, Task(id=0, p=1, s=1)),
                 ArrivalEvent(1.0, Task(id=0, p=2, s=2))],
                m=2,
            )

    def test_prefix(self):
        trace = stochastic_trace(n=10, m=2, seed=0)
        assert len(trace.prefix(4)) == 4
        assert [e.task.id for e in trace.prefix(4)] == [0, 1, 2, 3]

    def test_adversarial_modes_permute_without_loss(self):
        inst = uniform_instance(20, 3, seed=4)
        for mode in ADVERSARIAL_MODES:
            trace = adversarial_trace(inst, mode=mode)
            assert sorted(t.id for t in trace.tasks) == sorted(t.id for t in inst.tasks)
            assert trace.m == inst.m

    def test_adversarial_lpt_first_descending(self):
        inst = uniform_instance(15, 2, seed=3)
        trace = adversarial_trace(inst, mode="lpt_first")
        ps = [t.p for t in trace.tasks]
        assert ps == sorted(ps, reverse=True)

    def test_adversarial_unknown_mode(self):
        with pytest.raises(ValueError):
            adversarial_trace(uniform_instance(5, 2, seed=0), mode="chaos")

    def test_trace_from_instance_preserves_order(self):
        inst = uniform_instance(8, 2, seed=9)
        trace = trace_from_instance(inst)
        assert [t.id for t in trace.tasks] == [t.id for t in inst.tasks]


class TestReplay:
    def test_replay_matches_direct_submission(self):
        trace = stochastic_trace(n=40, m=4, seed=6)
        report = replay_trace(trace, create_online("online_sbo(delta=1.0)", m=4))
        direct = create_online("online_sbo(delta=1.0)", m=4)
        for event in trace:
            direct.submit(event.task)
        assert report.result.cmax == direct.finalize().cmax
        assert dict(report.placements) == direct.assignment()
        assert len(report.prefix_rows) == 40

    def test_sim_makespan_at_least_load_cmax(self):
        trace = stochastic_trace(n=30, m=3, seed=7)
        report = replay_trace(trace, create_online("online_greedy", m=3))
        assert report.sim_makespan >= report.result.cmax - 1e-9

    def test_m_mismatch_rejected(self):
        trace = stochastic_trace(n=5, m=3, seed=0)
        with pytest.raises(ValueError):
            replay_trace(trace, create_online("online_greedy", m=2))

    def test_used_scheduler_rejected(self):
        trace = stochastic_trace(n=5, m=2, seed=0)
        sched = create_online("online_greedy", m=2)
        sched.submit(Task(id="pre", p=1, s=1))
        with pytest.raises(ValueError):
            replay_trace(trace, sched)


# --------------------------------------------------------------------------- #
# competitive ratios
# --------------------------------------------------------------------------- #
class TestCompetitiveReport:
    def test_default_prefixes_cover_quartiles_and_full(self):
        trace = stochastic_trace(n=40, m=4, seed=0)
        report = competitive_report(trace, "online_greedy")
        assert [row.k for row in report.rows] == [10, 20, 30, 40]

    def test_greedy_time_respects_graham_on_every_prefix(self):
        trace = stochastic_trace(n=60, m=4, seed=1)
        report = competitive_report(trace, "online_greedy(objective=time)",
                                    prefixes=range(1, 61))
        bound = 2.0 - 1.0 / 4
        assert all(row.cmax_ratio <= bound + 1e-9 for row in report.rows)

    def test_oracle_reference_tighter_or_equal(self):
        trace = stochastic_trace(n=20, m=2, seed=2)
        lb = competitive_report(trace, "online_greedy", reference="lb")
        oracle = competitive_report(trace, "online_greedy", reference="oracle",
                                    oracle_inner="exact")
        # OPT >= LB, so ratios against the oracle can only shrink or hold.
        for row_lb, row_or in zip(lb.rows, oracle.rows):
            assert row_or.cmax_ratio <= row_lb.cmax_ratio + 1e-9

    def test_invalid_reference(self):
        trace = stochastic_trace(n=5, m=2, seed=0)
        with pytest.raises(ValueError):
            competitive_report(trace, "online_greedy", reference="vibes")


# --------------------------------------------------------------------------- #
# property tests: the 2 - 1/m fallback on every arrival prefix
# --------------------------------------------------------------------------- #
def _routed_subset_load_and_lb(scheduler, routed_ids, objective):
    routed = set(routed_ids)
    tasks = [t for t in scheduler._tasks if t.id in routed]
    if not tasks:
        return 0.0, 0.0
    subset = Instance(TaskSet(tasks), m=scheduler.m)
    loads = [0.0] * scheduler.m
    assignment = scheduler.assignment()
    for task in tasks:
        loads[assignment[task.id]] += task.p if objective == "time" else task.s
    lb = cmax_lower_bound(subset) if objective == "time" else mmax_lower_bound(subset)
    return max(loads), lb


class TestPrefixFallbackProperties:
    """Every arrival prefix respects the single-objective 2 - 1/m fallbacks."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("m", [2, 3, 5])
    @pytest.mark.parametrize("delta", [0.5, 1.0, 2.0])
    def test_threshold_scheduler_prefix_fallbacks(self, seed, m, delta):
        trace = stochastic_trace(n=35, m=m, seed=seed)
        sched = OnlineBiObjectiveScheduler(m=m, delta=delta)
        bound = 2.0 - 1.0 / m
        for event in trace:
            sched.submit(event.task)
            # Time-routed subset: Graham bound on its makespan.
            load, lb = _routed_subset_load_and_lb(sched, sched.time_routed_tasks, "time")
            assert load <= bound * lb + 1e-9
            # Memory-routed subset: symmetric bound on its memory.
            mem, mlb = _routed_subset_load_and_lb(sched, sched.memory_routed_tasks, "memory")
            assert mem <= bound * mlb + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("family", ["uniform", "anti-correlated", "bimodal"])
    def test_greedy_prefix_bound_across_workloads(self, seed, family):
        inst = workload_suite(30, 3, seed=seed)[family]
        trace = trace_from_instance(inst)
        sched = GreedyScheduler(m=3, objective="time")
        bound = 2.0 - 1.0 / 3
        for event in trace:
            sched.submit(event.task)
            prefix_lb = cmax_lower_bound(sched.current_instance())
            assert sched.cmax <= bound * prefix_lb + 1e-9

    @pytest.mark.parametrize("mode", ADVERSARIAL_MODES)
    def test_adversarial_permutations_cannot_break_the_bound(self, mode):
        inst = workload_suite(40, 4, seed=0)["heavy-tailed"]
        trace = adversarial_trace(inst, mode=mode)
        sched = GreedyScheduler(m=4, objective="memory")
        bound = 2.0 - 1.0 / 4
        for event in trace:
            sched.submit(event.task)
            prefix_lb = mmax_lower_bound(sched.current_instance())
            assert sched.mmax <= bound * prefix_lb + 1e-9


# --------------------------------------------------------------------------- #
# the pinned EXT-O1 golden table
# --------------------------------------------------------------------------- #
class TestOnlineGoldenTable:
    REGENERATE_HINT = (
        "regenerate deliberately with "
        "`PYTHONPATH=src python tests/make_online_golden.py`"
    )

    def test_golden_table_matches(self):
        assert ONLINE_GOLDEN_PATH.exists(), (
            f"online golden fixture missing at {ONLINE_GOLDEN_PATH}; {self.REGENERATE_HINT}"
        )
        pinned = json.loads(ONLINE_GOLDEN_PATH.read_text())
        fresh = compute_fixture()
        assert fresh["headers"] == pinned["headers"], self.REGENERATE_HINT
        assert fresh["checks"] == pinned["checks"], self.REGENERATE_HINT
        assert all(pinned["checks"].values()), "pinned fixture has failing checks"
        assert len(fresh["rows"]) == len(pinned["rows"]), self.REGENERATE_HINT
        for fresh_row, pinned_row in zip(fresh["rows"], pinned["rows"]):
            assert fresh_row == pinned_row, (
                f"online golden row diverged:\n  fresh : {fresh_row}\n"
                f"  pinned: {pinned_row}\n{self.REGENERATE_HINT}"
            )


# --------------------------------------------------------------------------- #
# the deprecation shim
# --------------------------------------------------------------------------- #
class TestExtensionShim:
    def test_import_warns_deprecation(self):
        sys.modules.pop("repro.extensions.online", None)
        with pytest.deprecated_call(match="repro.online"):
            import repro.extensions.online  # noqa: F401

    def test_reimport_via_reload_warns_again(self):
        import repro.extensions.online as shim

        with pytest.deprecated_call():
            importlib.reload(shim)

    def test_shim_class_is_the_moved_class(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            sys.modules.pop("repro.extensions.online", None)
            from repro.extensions.online import OnlineBiObjectiveScheduler as Shimmed
        assert Shimmed is OnlineBiObjectiveScheduler

    def test_package_getattr_routes_to_shim(self):
        import warnings

        import repro.extensions as ext

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            sys.modules.pop("repro.extensions.online", None)
            assert ext.OnlineBiObjectiveScheduler is OnlineBiObjectiveScheduler
        with pytest.raises(AttributeError):
            ext.no_such_attribute

    def test_uniform_machines_import_does_not_warn(self):
        import subprocess
        import sys as _sys
        from pathlib import Path

        src = Path(__file__).resolve().parent.parent / "src"
        proc = subprocess.run(
            [_sys.executable, "-W", "error::DeprecationWarning", "-c",
             "import repro.extensions.uniform_machines"],
            capture_output=True, timeout=60,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr.decode()


class TestExportReplayState:
    """Ledger export + verified replay (the session-handoff substrate)."""

    SPECS = [
        "online_greedy",
        "online_greedy(objective=memory)",
        "online_sbo(delta=0.5)",
        "online_sbo(delta=1.0)",
        "online_sbo(delta=2.0)",
        "online_hindsight",
    ]

    @pytest.mark.parametrize("spec", SPECS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_replayed_scheduler_is_bit_identical(self, spec, seed):
        """Property: export -> replay -> continue == never-exported run."""
        from repro.online import replay_state

        trace = list(stochastic_trace(n=30, m=4, seed=seed))
        cut = 17
        original = create_online(spec, m=4)
        for event in trace[:cut]:
            original.submit(event.task)

        replayed = replay_state(original.export_state())
        assert replayed.spec == original.spec
        assert replayed.m == original.m
        assert replayed.assignment() == original.assignment()
        assert replayed.cmax == original.cmax
        assert replayed.mmax == original.mmax

        # Continue both streams: every subsequent placement agrees too.
        for event in trace[cut:]:
            assert replayed.submit(event.task) == original.submit(event.task)
        expected = original.finalize()
        got = replayed.finalize()
        assert got.objectives == expected.objectives
        assert got.guarantee == expected.guarantee
        assert got.schedule.assignment == expected.schedule.assignment

    def test_export_is_json_safe_and_replay_verifies(self):
        from repro.online import replay_state

        scheduler = create_online("online_sbo(delta=1.0)", m=3)
        for i in range(10):
            scheduler.submit(Task(id=i, p=float(i + 1), s=float(i % 4)))
        state = scheduler.export_state()
        # Round-trips through JSON (the wire form used by session handoff).
        state = json.loads(json.dumps(state))
        replayed = replay_state(state)
        assert replayed.assignment() == scheduler.assignment()

    def test_sealed_flag_round_trips(self):
        from repro.online import replay_state

        scheduler = create_online("online_greedy", m=2)
        scheduler.submit(Task(id=0, p=1.0, s=1.0))
        scheduler.seal()
        replayed = replay_state(scheduler.export_state())
        assert replayed.is_sealed
        with pytest.raises(OnlineSchedulerError):
            replayed.submit(Task(id=1, p=1.0, s=1.0))

    def test_divergent_state_is_refused(self):
        from repro.online import replay_state

        scheduler = create_online("online_greedy", m=3)
        for i in range(6):
            scheduler.submit(Task(id=i, p=float(i + 1), s=1.0))
        state = scheduler.export_state()
        state["placements"] = list(reversed(state["placements"]))
        with pytest.raises(OnlineSchedulerError, match="diverged"):
            replay_state(state)

    def test_malformed_state_is_refused(self):
        from repro.online import replay_state

        with pytest.raises(OnlineSchedulerError, match="spec"):
            replay_state({"m": 2})
        with pytest.raises(OnlineSchedulerError, match="'m'"):
            replay_state({"spec": "online_greedy"})
        with pytest.raises(OnlineSchedulerError, match="inconsistent"):
            replay_state({"spec": "online_greedy", "m": 2,
                          "tasks": [[0, 1.0, 1.0]], "placements": []})
