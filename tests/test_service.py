"""Concurrency tests for the async serving layer (repro.service).

Five behaviour families, each exercised against a real process pool:

* **parity** — service results are field-by-field identical to direct
  ``solve()`` calls, including on the full golden corpus;
* **coalescing** — identical concurrent requests trigger exactly one
  underlying execution and every waiter receives the same result fields;
* **backpressure** — the bounded queue actually bounds, ``"reject"``
  fails fast and observably, ``"wait"`` parks submitters without loss;
* **timeouts & cancellation** — waiter-scoped deadlines fire, abandoned
  jobs drain fully (no zombies), and the service keeps serving;
* **transports** — the line-delimited JSON protocol over TCP and the
  ``repro serve`` stdio loop round-trip real requests.

The long-running many-client stress runs live in
``tests/test_service_soak.py`` behind the ``soak`` marker.
"""

from __future__ import annotations

import asyncio
import json
import math
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.instance import DAGInstance, Instance
from repro.service import (
    ServiceClosedError,
    ServiceConfig,
    ServiceOverloadedError,
    ServiceTimeoutError,
    SolverService,
)
from repro.service.protocol import (
    ProtocolError,
    decode_message,
    encode_message,
    instance_from_payload,
    result_to_payload,
    solve_request,
)
from repro.service.server import serve_tcp
from repro.service.stats import LatencyWindow
from repro.solvers import LRUCache, SpecError, solve
from repro.solvers.registry import SolverCapabilityError

from _service_helpers import count_executions, make_sleepy_entry, registered
from make_golden import GOLDEN_PATH, golden_instances


def run(coro):
    return asyncio.run(coro)


async def drain(svc: SolverService, deadline: float = 30.0) -> None:
    """Wait until no job is pending or occupying a worker (no zombies)."""
    for _ in range(int(deadline / 0.05)):
        stats = svc.stats()
        if stats.pending == 0 and stats.in_flight == 0 and stats.queue_depth == 0:
            return
        await asyncio.sleep(0.05)
    raise AssertionError(f"service did not drain: {svc.stats()}")


@pytest.fixture
def inst() -> Instance:
    return Instance.from_lists(p=[4, 3, 2, 2, 1, 6, 5], s=[1, 5, 2, 4, 3, 2, 6], m=3)


@pytest.fixture
def distinct_instances():
    def make(count: int, n: int = 6):
        return [
            Instance.from_lists(
                p=[float(1 + j + i) for j in range(n)],
                s=[float(1 + (j * 7 + i) % 5) for j in range(n)],
                m=2,
            )
            for i in range(count)
        ]

    return make


# --------------------------------------------------------------------------- #
# configuration
# --------------------------------------------------------------------------- #
class TestServiceConfig:
    def test_defaults_validate(self):
        config = ServiceConfig()
        assert config.workers >= 1 and config.backpressure == "wait"

    @pytest.mark.parametrize("overrides", [
        {"workers": 0},
        {"max_pending": 0},
        {"backpressure": "drop"},
        {"default_timeout": 0.0},
        {"default_timeout": -1.0},
        {"latency_window": 0},
        {"spec_timeouts": {"sbo": -2.0}},
    ])
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ValueError):
            ServiceConfig(**overrides)

    def test_spec_timeouts_copied_and_coerced(self):
        raw = {"sbo": 5}
        config = ServiceConfig(spec_timeouts=raw)
        raw["sbo"] = -1  # caller mutation must not corrupt the config
        assert config.spec_timeouts == {"sbo": 5.0}

    def test_with_overrides_revalidates(self):
        config = ServiceConfig(workers=2)
        assert config.with_overrides(workers=4).workers == 4
        with pytest.raises(ValueError):
            config.with_overrides(workers=0)

    def test_constructor_shorthand(self):
        svc = SolverService(workers=3, backpressure="reject")
        assert svc.config.workers == 3 and svc.config.backpressure == "reject"


# --------------------------------------------------------------------------- #
# lifecycle
# --------------------------------------------------------------------------- #
class TestLifecycle:
    def test_solve_requires_running_service(self, inst):
        async def scenario():
            svc = SolverService(workers=1)
            with pytest.raises(ServiceClosedError):
                await svc.solve(inst, "lpt")

        run(scenario())

    def test_context_manager_starts_and_closes(self, inst):
        async def scenario():
            async with SolverService(workers=1) as svc:
                assert svc.is_running
                result = await svc.solve(inst, "lpt")
                assert result.feasible
            assert not svc.is_running
            with pytest.raises(ServiceClosedError):
                await svc.solve(inst, "lpt")
            await svc.close()  # idempotent
            with pytest.raises(ServiceClosedError):
                await svc.start()  # a closed service cannot be reopened

        run(scenario())

    def test_close_drains_running_jobs(self, distinct_instances):
        async def scenario():
            with registered(make_sleepy_entry()):
                svc = await SolverService(workers=2).start()
                tasks = [
                    asyncio.create_task(svc.solve(i, "sleepy(seconds=0.2)"))
                    for i in distinct_instances(3)
                ]
                await asyncio.sleep(0.05)
                await svc.close(drain=True)
                results = await asyncio.gather(*tasks)
                assert all(r.feasible for r in results)
                assert svc.stats().completed == 3

        run(scenario())


# --------------------------------------------------------------------------- #
# parity with direct solve()
# --------------------------------------------------------------------------- #
def assert_same_result(served, direct, *, check_provenance: bool = True):
    """Field-by-field equality, ignoring wall time (measured, not derived)."""
    assert served.feasible == direct.feasible
    assert served.objectives == direct.objectives
    assert served.guarantee == direct.guarantee
    assert served.solver == direct.solver
    assert served.spec == direct.spec
    if direct.feasible:
        assert served.schedule.assignment == direct.schedule.assignment
    if check_provenance:
        skip = {"cache"}
        assert {k: v for k, v in served.provenance.items() if k not in skip} == \
            {k: v for k, v in direct.provenance.items() if k not in skip}


class TestSolveParity:
    SPECS = [
        "lpt",
        "sbo(delta=0.5)",
        "sbo(delta=2.0, inner=multifit)",
        "rls(delta=2.5)",
        "trio(delta=2.5)",
        "pareto_approx(epsilon=0.5)",
        "constrained(budget=9)",
    ]

    def test_results_identical_to_direct_solve(self, inst):
        async def scenario():
            async with SolverService(workers=2) as svc:
                for spec in self.SPECS:
                    served = await svc.solve(inst, spec)
                    direct = solve(inst, spec, cache=False)
                    assert_same_result(served, direct)

        run(scenario())

    def test_spec_param_overrides(self, inst):
        async def scenario():
            async with SolverService(workers=1) as svc:
                served = await svc.solve(inst, "sbo", delta=0.25)
                direct = solve(inst, "sbo", delta=0.25, cache=False)
                assert_same_result(served, direct)
                assert served.provenance["params"]["delta"] == 0.25

        run(scenario())

    def test_infeasible_constrained(self, inst):
        async def scenario():
            async with SolverService(workers=1) as svc:
                served = await svc.solve(inst, "constrained(budget=0.5)")
                assert not served.feasible
                assert math.isinf(served.cmax)

        run(scenario())

    def test_validation_errors_raise_without_queueing(self, inst):
        dag = DAGInstance.from_lists(
            p=[2, 3], s=[1, 1], m=2, edges=[(0, 1)]
        )

        async def scenario():
            async with SolverService(workers=1) as svc:
                with pytest.raises(SpecError):
                    await svc.solve(inst, "no_such_solver")
                with pytest.raises(SpecError):
                    await svc.solve(inst, "sbo(delta=-1)")
                with pytest.raises(SolverCapabilityError):
                    await svc.solve(dag, "spt")
                stats = svc.stats()
                assert stats.submitted == 0 and stats.pending == 0

        run(scenario())

    def test_solver_failure_propagates_and_service_survives(self, inst):
        big = Instance.from_lists(p=[1.0] * 40, s=[1.0] * 40, m=4)

        async def scenario():
            async with SolverService(workers=1) as svc:
                with pytest.raises(ValueError):
                    await svc.solve(big, "exact")  # branch-and-bound size cap
                assert svc.stats().failed == 1
                result = await svc.solve(inst, "lpt")  # still serving
                assert result.feasible
                assert svc.stats().lost == 0

        run(scenario())


class TestGoldenCorpusParity:
    def test_service_matches_every_golden_case(self):
        fixture = json.loads(GOLDEN_PATH.read_text())
        instances = golden_instances()

        async def scenario():
            async with SolverService(workers=2, max_pending=128) as svc:
                tasks = [
                    (case, asyncio.create_task(
                        svc.solve(instances[case["instance"]], case["spec"])))
                    for case in fixture["cases"]
                ]
                for case, task in tasks:
                    result = await task
                    context = f"{case['instance']} / {case['spec']} via service"
                    assert result.solver == case["solver"], context
                    assert result.spec == case["canonical_spec"], context
                    assert result.feasible == case["feasible"], context
                    assert result.cmax == case["cmax"], context
                    assert result.mmax == case["mmax"], context
                    assert result.sum_ci == case["sum_ci"], context
                    assert list(result.guarantee) == case["guarantee"], context
                stats = svc.stats()
                assert stats.lost == 0
                assert stats.submitted == len(fixture["cases"])

        run(scenario())


# --------------------------------------------------------------------------- #
# cache read-through
# --------------------------------------------------------------------------- #
class TestCacheReadThrough:
    def test_miss_then_hit(self, inst):
        async def scenario():
            cache = LRUCache()
            async with SolverService(workers=1, cache=cache) as svc:
                cold = await svc.solve(inst, "sbo(delta=1.0)")
                warm = await svc.solve(inst, "sbo(delta=1.0)")
                assert cold.provenance["cache"] == "miss"
                assert warm.provenance["cache"] == "hit"
                assert_same_result(warm, cold)
                stats = svc.stats()
                assert stats.cache_hits == 1 and stats.cache_misses == 1
                assert stats.completed == 1  # the hit never reached the pool

        run(scenario())

    def test_cache_shared_with_direct_solve(self, inst):
        async def scenario():
            cache = LRUCache()
            direct = solve(inst, "rls(delta=2.5)", cache=cache)
            async with SolverService(workers=1, cache=cache) as svc:
                served = await svc.solve(inst, "rls(delta=2.5)")
                assert served.provenance["cache"] == "hit"
                assert_same_result(served, direct)

        run(scenario())

    def test_custom_solver_not_cached_but_served(self, inst, tmp_path):
        async def scenario():
            cache = LRUCache()
            with registered(make_sleepy_entry()):
                async with SolverService(workers=1, cache=cache) as svc:
                    token = tmp_path / "runs.log"
                    spec = f"sleepy(seconds=0.0, token='{token}')"
                    await svc.solve(inst, spec)
                    await svc.solve(inst, spec)
                    assert len(cache) == 0
                    assert count_executions(token) == 2  # sequential: no coalesce
                    stats = svc.stats()
                    assert stats.cache_hits == 0 and stats.cache_misses == 0

        run(scenario())

    def test_disk_cache_round_trip(self, inst, tmp_path):
        async def scenario():
            async with SolverService(workers=1, cache=str(tmp_path / "c")) as svc:
                cold = await svc.solve(inst, "multifit")
                assert cold.provenance["cache"] == "miss"
            async with SolverService(workers=1, cache=str(tmp_path / "c")) as svc:
                warm = await svc.solve(inst, "multifit")
                assert warm.provenance["cache"] == "hit"
                assert_same_result(warm, cold)

        run(scenario())


# --------------------------------------------------------------------------- #
# coalescing
# --------------------------------------------------------------------------- #
class TestCoalescing:
    def test_identical_concurrent_requests_run_once(self, inst, tmp_path):
        async def scenario():
            with registered(make_sleepy_entry()):
                async with SolverService(workers=2) as svc:
                    token = tmp_path / "runs.log"
                    spec = f"sleepy(seconds=0.25, token='{token}')"
                    results = await asyncio.gather(
                        *(svc.solve(inst, spec) for _ in range(8))
                    )
                    assert count_executions(token) == 1
                    first = results[0]
                    for other in results[1:]:
                        assert_same_result(other, first)
                        assert other.wall_time == first.wall_time  # same object fields
                    stats = svc.stats()
                    assert stats.submitted == 8
                    assert stats.coalesced == 7
                    assert stats.completed == 1
                    assert stats.lost == 0

        run(scenario())

    def test_different_specs_not_coalesced(self, inst, tmp_path):
        async def scenario():
            with registered(make_sleepy_entry()):
                async with SolverService(workers=2) as svc:
                    t1, t2 = tmp_path / "a.log", tmp_path / "b.log"
                    await asyncio.gather(
                        svc.solve(inst, f"sleepy(seconds=0.05, token='{t1}')"),
                        svc.solve(inst, f"sleepy(seconds=0.06, token='{t2}')"),
                    )
                    assert count_executions(t1) == 1 and count_executions(t2) == 1
                    assert svc.stats().coalesced == 0

        run(scenario())

    def test_coalescing_disabled(self, inst, tmp_path):
        async def scenario():
            with registered(make_sleepy_entry()):
                async with SolverService(workers=2, coalesce=False) as svc:
                    token = tmp_path / "runs.log"
                    spec = f"sleepy(seconds=0.05, token='{token}')"
                    await asyncio.gather(*(svc.solve(inst, spec) for _ in range(3)))
                    assert count_executions(token) == 3
                    assert svc.stats().coalesced == 0

        run(scenario())

    def test_builtin_results_coalesce_bit_identically(self, inst):
        async def scenario():
            async with SolverService(workers=2) as svc:
                results = await asyncio.gather(
                    *(svc.solve(inst, "pareto_approx(epsilon=0.25)") for _ in range(5))
                )
                direct = solve(inst, "pareto_approx(epsilon=0.25)", cache=False)
                for served in results:
                    assert_same_result(served, direct)

        run(scenario())


# --------------------------------------------------------------------------- #
# backpressure
# --------------------------------------------------------------------------- #
class TestBackpressure:
    def test_reject_policy_fails_fast_and_is_observable(self, distinct_instances):
        async def scenario():
            with registered(make_sleepy_entry()):
                config = ServiceConfig(workers=1, max_pending=2, backpressure="reject")
                async with SolverService(config) as svc:
                    instances = distinct_instances(5)
                    tasks = [
                        asyncio.create_task(svc.solve(i, "sleepy(seconds=0.3)"))
                        for i in instances
                    ]
                    outcomes = await asyncio.gather(*tasks, return_exceptions=True)
                    rejected = [o for o in outcomes if isinstance(o, ServiceOverloadedError)]
                    served = [o for o in outcomes if not isinstance(o, Exception)]
                    assert len(rejected) == 3 and len(served) == 2
                    stats = svc.stats()
                    assert stats.rejected == 3
                    assert stats.completed == 2
                    assert stats.lost == 0
                    # After the burst the service accepts requests again.
                    late = await svc.solve(instances[0], "sleepy(seconds=0.0)")
                    assert late.feasible

        run(scenario())

    def test_wait_policy_bounds_pending_without_loss(self, distinct_instances):
        async def scenario():
            with registered(make_sleepy_entry()):
                config = ServiceConfig(workers=1, max_pending=2, backpressure="wait")
                async with SolverService(config) as svc:
                    instances = distinct_instances(6)
                    tasks = [
                        asyncio.create_task(svc.solve(i, "sleepy(seconds=0.05)"))
                        for i in instances
                    ]
                    max_pending_seen = 0
                    while not all(t.done() for t in tasks):
                        stats = svc.stats()
                        max_pending_seen = max(max_pending_seen, stats.pending)
                        assert stats.pending <= config.max_pending, (
                            f"bound violated: {stats}"
                        )
                        await asyncio.sleep(0.01)
                    results = await asyncio.gather(*tasks)
                    assert len(results) == 6 and all(r.feasible for r in results)
                    assert max_pending_seen == config.max_pending  # bound was reached
                    stats = svc.stats()
                    assert stats.completed == 6
                    assert stats.rejected == 0
                    assert stats.lost == 0

        run(scenario())

    def test_queue_depth_gauge_reflects_waiting_jobs(self, distinct_instances):
        async def scenario():
            with registered(make_sleepy_entry()):
                async with SolverService(workers=1, max_pending=8) as svc:
                    tasks = [
                        asyncio.create_task(svc.solve(i, "sleepy(seconds=0.2)"))
                        for i in distinct_instances(3)
                    ]
                    await asyncio.sleep(0.1)
                    stats = svc.stats()
                    assert stats.in_flight == 1  # one worker
                    assert stats.queue_depth == 2  # the rest wait for a slot
                    await asyncio.gather(*tasks)
                    await drain(svc)

        run(scenario())


# --------------------------------------------------------------------------- #
# timeouts and cancellation
# --------------------------------------------------------------------------- #
class TestTimeouts:
    def test_request_timeout_raises_and_leaves_no_zombies(self, inst):
        async def scenario():
            with registered(make_sleepy_entry()):
                async with SolverService(workers=1) as svc:
                    with pytest.raises(ServiceTimeoutError):
                        await svc.solve(inst, "sleepy(seconds=2.0)", timeout=0.05)
                    stats = svc.stats()
                    assert stats.timed_out == 1
                    await drain(svc)  # worker finishes, gauges return to zero
                    assert svc.stats().abandoned == 1
                    # The fleet is healthy and immediately serves new work.
                    result = await svc.solve(inst, "sleepy(seconds=0.0)")
                    assert result.feasible
                    assert svc.stats().lost == 0

        run(scenario())

    def test_per_spec_timeout_from_config(self, inst):
        async def scenario():
            with registered(make_sleepy_entry()):
                config = ServiceConfig(workers=1, spec_timeouts={"sleepy": 0.05})
                async with SolverService(config) as svc:
                    with pytest.raises(ServiceTimeoutError):
                        await svc.solve(inst, "sleepy(seconds=2.0)")
                    # An explicit timeout overrides the per-spec default ...
                    result = await svc.solve(inst, "sleepy(seconds=0.1)", timeout=None)
                    assert result.feasible
                    await drain(svc)

        run(scenario())

    def test_timed_out_waiter_does_not_kill_coalesced_job(self, inst):
        async def scenario():
            with registered(make_sleepy_entry()):
                async with SolverService(workers=1) as svc:
                    spec = "sleepy(seconds=0.4)"
                    patient = asyncio.create_task(svc.solve(inst, spec))
                    await asyncio.sleep(0.05)
                    with pytest.raises(ServiceTimeoutError):
                        await svc.solve(inst, spec, timeout=0.05)
                    result = await patient
                    assert result.feasible
                    stats = svc.stats()
                    assert stats.timed_out == 1 and stats.completed == 1
                    assert stats.abandoned == 0  # a waiter remained
                    assert stats.lost == 0

        run(scenario())

    def test_abandoned_builtin_result_still_lands_in_cache(self):
        # Paid-for work is salvaged: when every waiter times out, the pool
        # job keeps running and its result is stored for future requests.
        big = Instance.from_lists(
            p=[float(3 + (i % 11)) for i in range(90)],
            s=[float(1 + (i % 7)) for i in range(90)],
            m=8,
        )

        async def scenario():
            cache = LRUCache()
            async with SolverService(workers=1, cache=cache) as svc:
                with pytest.raises(ServiceTimeoutError):
                    await svc.solve(big, "pareto_approx(epsilon=0.05)", timeout=0.005)
                await drain(svc)
                if len(cache) == 1:  # job was already running when abandoned
                    warm = await svc.solve(big, "pareto_approx(epsilon=0.05)")
                    assert warm.provenance["cache"] == "hit"
                assert svc.stats().lost == 0

        run(scenario())

    def test_invalid_timeout_rejected(self, inst):
        async def scenario():
            async with SolverService(workers=1) as svc:
                with pytest.raises(ValueError):
                    await svc.solve(inst, "lpt", timeout=-1.0)
                # The refused request must not unbalance the stats ledger.
                stats = svc.stats()
                assert stats.submitted == 0 and stats.lost == 0

        run(scenario())


class TestCancellation:
    def test_cancelled_waiter_abandons_job_cleanly(self, inst):
        async def scenario():
            with registered(make_sleepy_entry()):
                async with SolverService(workers=1) as svc:
                    task = asyncio.create_task(svc.solve(inst, "sleepy(seconds=2.0)"))
                    await asyncio.sleep(0.1)
                    task.cancel()
                    with pytest.raises(asyncio.CancelledError):
                        await task
                    stats = svc.stats()
                    assert stats.cancelled == 1
                    await drain(svc)
                    assert svc.stats().abandoned == 1
                    result = await svc.solve(inst, "sleepy(seconds=0.0)")
                    assert result.feasible
                    assert svc.stats().lost == 0

        run(scenario())

    def test_cancelling_one_of_many_waiters_keeps_the_job(self, inst):
        async def scenario():
            with registered(make_sleepy_entry()):
                async with SolverService(workers=1) as svc:
                    spec = "sleepy(seconds=0.3)"
                    keeper = asyncio.create_task(svc.solve(inst, spec))
                    victim = asyncio.create_task(svc.solve(inst, spec))
                    await asyncio.sleep(0.05)
                    victim.cancel()
                    with pytest.raises(asyncio.CancelledError):
                        await victim
                    result = await keeper
                    assert result.feasible
                    assert svc.stats().completed == 1
                    assert svc.stats().abandoned == 0

        run(scenario())


# --------------------------------------------------------------------------- #
# stats plumbing
# --------------------------------------------------------------------------- #
class TestStats:
    def test_latency_window_percentiles(self):
        window = LatencyWindow(window=100)
        for ms in range(1, 101):  # 1..100 ms
            window.record(ms / 1000.0)
        assert window.percentile(50) == pytest.approx(0.050)
        assert window.percentile(99) == pytest.approx(0.099)
        snap = window.snapshot()
        assert snap["count"] == 100
        assert snap["max"] == pytest.approx(0.100)
        assert snap["p50"] <= snap["p90"] <= snap["p99"] <= snap["max"]

    def test_latency_window_empty(self):
        window = LatencyWindow()
        assert math.isnan(window.percentile(50))
        assert window.snapshot()["count"] == 0

    def test_latency_window_slides(self):
        window = LatencyWindow(window=4)
        for value in (1.0, 1.0, 1.0, 1.0, 5.0, 5.0, 5.0, 5.0):
            window.record(value)
        assert window.percentile(50) == 5.0  # old values fell out
        assert window.count == 8

    def test_stats_snapshot_serializes(self, inst):
        async def scenario():
            async with SolverService(workers=1) as svc:
                await svc.solve(inst, "lpt")
                payload = svc.stats().to_dict()
                json.dumps(payload)  # JSON-safe for the stats op
                assert payload["submitted"] == 1
                assert payload["lost"] == 0
                assert payload["latency_count"] == 1

        run(scenario())


# --------------------------------------------------------------------------- #
# protocol + transports
# --------------------------------------------------------------------------- #
class TestProtocol:
    def test_message_round_trip(self, inst):
        payload = solve_request(inst, "sbo(delta=1.0)", request_id=7, timeout=2.5)
        decoded = decode_message(encode_message(payload))
        assert decoded["id"] == 7 and decoded["spec"] == "sbo(delta=1.0)"
        rebuilt = instance_from_payload(decoded["instance"])
        assert rebuilt.content_hash() == inst.content_hash()

    def test_dag_instance_round_trip(self):
        dag = DAGInstance.from_lists(
            p=[2, 3, 1], s=[1, 2, 1], m=2, edges=[(0, 1), (1, 2)]
        )
        rebuilt = instance_from_payload(json.loads(json.dumps(dag.to_dict())))
        assert isinstance(rebuilt, DAGInstance)
        assert rebuilt.content_hash() == dag.content_hash()

    @pytest.mark.parametrize("line", ["", "not json", "[1, 2]", b"\xff\xfe"])
    def test_malformed_lines_rejected(self, line):
        with pytest.raises(ProtocolError):
            decode_message(line)

    def test_malformed_instance_payloads_rejected(self):
        with pytest.raises(ProtocolError):
            instance_from_payload("nope")
        with pytest.raises(ProtocolError):
            instance_from_payload({"kind": "uniform"})
        with pytest.raises(ProtocolError):
            instance_from_payload({"kind": "independent"})  # no tasks/m

    def test_result_payload_covers_fields(self, inst):
        result = solve(inst, "rls(delta=2.5)", cache=False)
        payload = result_to_payload(result)
        assert payload["solver"] == "rls"
        assert payload["feasible"] is True
        assert payload["cmax"] == result.cmax
        assert dict(payload["assignment"]) == result.schedule.assignment
        json.dumps(payload)  # inf guarantees serialize via the json extension

    def test_infeasible_result_payload(self, inst):
        result = solve(inst, "constrained(budget=0.5)", cache=False)
        payload = result_to_payload(result)
        assert payload["feasible"] is False and payload["assignment"] is None


class TestTCPServer:
    def test_many_clients_share_one_service(self, distinct_instances):
        async def scenario():
            async with SolverService(workers=2, max_pending=32) as svc:
                server = await serve_tcp(svc, port=0)
                port = server.sockets[0].getsockname()[1]
                instances = distinct_instances(4)

                async def client(idx: int):
                    reader, writer = await asyncio.open_connection("127.0.0.1", port)
                    expected = {}
                    for req, spec in enumerate(["lpt", "sbo(delta=1.0)", "rls(delta=2.5)"]):
                        rid = f"{idx}:{req}"
                        writer.write(encode_message(
                            solve_request(instances[idx], spec, request_id=rid)))
                        expected[rid] = solve(instances[idx], spec, cache=False)
                    await writer.drain()
                    seen = {}
                    while len(seen) < len(expected):
                        msg = json.loads(await asyncio.wait_for(reader.readline(), 30))
                        seen[msg["id"]] = msg
                    writer.close()
                    for rid, msg in seen.items():
                        assert msg["ok"], msg
                        direct = expected[rid]
                        assert msg["result"]["cmax"] == direct.cmax
                        assert msg["result"]["mmax"] == direct.mmax
                        assert msg["result"]["sum_ci"] == direct.sum_ci
                        assert msg["result"]["guarantee"] == list(direct.guarantee)
                    return len(seen)

                counts = await asyncio.gather(*(client(i) for i in range(4)))
                assert counts == [3, 3, 3, 3]  # no lost or duplicated responses
                stats = svc.stats()
                assert stats.submitted == 12 and stats.lost == 0
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_request_errors_are_responses_not_disconnects(self, inst):
        async def scenario():
            async with SolverService(workers=1) as svc:
                server = await serve_tcp(svc, port=0)
                port = server.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(b"garbage\n")
                writer.write(encode_message({"id": 1, "op": "warp"}))
                writer.write(encode_message(
                    {"id": 2, "op": "solve", "instance": inst.to_dict(),
                     "spec": "no_such_solver"}))
                writer.write(encode_message(solve_request(inst, "lpt", request_id=3)))
                await writer.drain()
                seen = {}
                while len(seen) < 4:
                    msg = json.loads(await asyncio.wait_for(reader.readline(), 30))
                    seen[msg["id"]] = msg
                assert seen[None]["error"]["type"] == "ProtocolError"
                assert seen[1]["error"]["type"] == "ProtocolError"
                assert seen[2]["error"]["type"] == "SpecError"
                assert seen[3]["ok"] is True
                writer.close()
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_rude_disconnect_does_not_break_the_server(self, inst):
        # A client that aborts (RST) mid-conversation must not affect other
        # clients or future connections.
        async def scenario():
            async with SolverService(workers=1) as svc:
                server = await serve_tcp(svc, port=0)
                port = server.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(encode_message(solve_request(inst, "lpt", request_id=1)))
                await writer.drain()
                writer.transport.abort()  # RST without reading the response
                await asyncio.sleep(0.2)
                # The server still serves a fresh connection normally.
                reader2, writer2 = await asyncio.open_connection("127.0.0.1", port)
                writer2.write(encode_message(solve_request(inst, "lpt", request_id=2)))
                await writer2.drain()
                msg = json.loads(await asyncio.wait_for(reader2.readline(), 30))
                assert msg["ok"] is True
                writer2.close()
                server.close()
                await server.wait_closed()
                assert svc.stats().lost == 0

        run(scenario())

    def test_large_instance_payload_round_trips(self):
        # A few thousand tasks serialize to a JSON line far beyond asyncio's
        # default 64 KiB reader limit; the server must still frame it.
        big = Instance.from_lists(
            p=[float(1 + i % 97) for i in range(4000)],
            s=[float(1 + i % 53) for i in range(4000)],
            m=8,
        )

        async def scenario():
            async with SolverService(workers=1) as svc:
                server = await serve_tcp(svc, port=0)
                port = server.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port, limit=32 * 1024 * 1024
                )
                request = encode_message(solve_request(big, "lpt", request_id=1))
                assert len(request) > 64 * 1024
                writer.write(request)
                await writer.drain()
                msg = json.loads(await asyncio.wait_for(reader.readline(), 60))
                assert msg["ok"], msg
                assert msg["result"]["cmax"] == solve(big, "lpt", cache=False).cmax
                writer.close()
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_shutdown_with_connection_held_open(self, inst):
        # A client that sends {"op": "shutdown"} but never closes its end
        # must not park the server in readline() forever: the server closes
        # the connection itself after acknowledging.
        async def scenario():
            shutdown = asyncio.Event()
            async with SolverService(workers=1) as svc:
                server = await serve_tcp(svc, port=0, shutdown=shutdown)
                port = server.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(encode_message({"id": 1, "op": "shutdown"}))
                await writer.drain()  # connection intentionally left open
                ack = json.loads(await asyncio.wait_for(reader.readline(), 30))
                assert ack["shutdown"] is True
                assert await asyncio.wait_for(reader.read(), 30) == b""  # server hung up
                assert shutdown.is_set()
                writer.close()
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_stats_ping_shutdown_ops(self, inst):
        async def scenario():
            shutdown = asyncio.Event()
            async with SolverService(workers=1) as svc:
                server = await serve_tcp(svc, port=0, shutdown=shutdown)
                port = server.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(encode_message(solve_request(inst, "lpt", request_id=1)))
                await writer.drain()
                json.loads(await asyncio.wait_for(reader.readline(), 30))
                for op in ("ping", "stats", "shutdown"):
                    writer.write(encode_message({"id": op, "op": op}))
                await writer.drain()
                seen = {}
                for _ in range(3):
                    msg = json.loads(await asyncio.wait_for(reader.readline(), 30))
                    seen[msg["id"]] = msg
                assert seen["ping"]["pong"] is True
                assert seen["stats"]["stats"]["submitted"] == 1
                assert seen["shutdown"]["shutdown"] is True
                assert shutdown.is_set()
                writer.close()
                server.close()
                await server.wait_closed()

        run(scenario())


class TestServeCLI:
    def test_stdio_round_trip(self, tmp_path):
        instance = Instance.from_lists(p=[4, 3, 2, 2, 1], s=[1, 5, 2, 4, 3], m=2)
        requests = b"".join([
            encode_message(solve_request(instance, "sbo(delta=1.0)", request_id=1)),
            encode_message({"id": 2, "op": "stats"}),
            encode_message({"id": 3, "op": "shutdown"}),
        ])
        src = Path(__file__).resolve().parents[1] / "src"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--stdio", "--workers", "1"],
            input=requests, capture_output=True, timeout=120,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr.decode()
        assert b"repro service on stdio" in proc.stderr
        responses = {
            msg["id"]: msg
            for msg in (json.loads(line) for line in proc.stdout.splitlines() if line.strip())
        }
        direct = solve(instance, "sbo(delta=1.0)", cache=False)
        assert responses[1]["ok"] and responses[1]["result"]["cmax"] == direct.cmax
        assert responses[2]["stats"]["submitted"] == 1
        assert responses[3]["shutdown"] is True

    def test_mutually_exclusive_transports(self, capsys):
        from repro.cli import main

        assert main(["serve", "--stdio", "--port", "1234"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_invalid_config_rejected(self, capsys):
        from repro.cli import main

        assert main(["serve", "--workers", "0"]) == 2
        assert "workers" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# latency-derived timeouts (ServiceConfig.auto_timeouts)
# --------------------------------------------------------------------------- #
class TestAutoTimeouts:
    def _config(self, **overrides) -> ServiceConfig:
        defaults = dict(
            workers=1, auto_timeouts=True, auto_timeout_multiplier=10.0,
            auto_timeout_floor=0.5, auto_timeout_ceiling=60.0,
            auto_timeout_min_samples=5,
        )
        defaults.update(overrides)
        return ServiceConfig(**defaults)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="auto_timeout_multiplier"):
            ServiceConfig(auto_timeout_multiplier=0)
        with pytest.raises(ValueError, match="auto_timeout_floor"):
            ServiceConfig(auto_timeout_floor=-1)
        with pytest.raises(ValueError, match="auto_timeout_ceiling"):
            ServiceConfig(auto_timeout_floor=5.0, auto_timeout_ceiling=1.0)
        with pytest.raises(ValueError, match="auto_timeout_min_samples"):
            ServiceConfig(auto_timeout_min_samples=0)

    def test_derivation_floor_ceiling_and_min_samples(self):
        from repro.service.service import _UNSET

        async def scenario():
            async with SolverService(self._config()) as svc:
                # Below min_samples: no derived timeout.
                for _ in range(4):
                    svc._family_latency.record("sbo", 0.01)
                assert svc._effective_timeout(_UNSET, "sbo") is None
                # Enough history: multiplier x p99 clamped by the floor.
                svc._family_latency.record("sbo", 0.01)
                assert svc._effective_timeout(_UNSET, "sbo") == 0.5
                # A slow family derives multiplier x p99 directly.
                for _ in range(5):
                    svc._family_latency.record("pareto_approx", 2.0)
                assert svc._effective_timeout(_UNSET, "pareto_approx") == 20.0
                # A pathologically slow family hits the ceiling.
                for _ in range(5):
                    svc._family_latency.record("exact", 1000.0)
                assert svc._effective_timeout(_UNSET, "exact") == 60.0
                # Unseen families fall back to the default (None here).
                assert svc._effective_timeout(_UNSET, "lpt") is None

        run(scenario())

    def test_explicit_and_spec_timeouts_win_over_derived(self):
        from repro.service.service import _UNSET

        async def scenario():
            config = self._config(spec_timeouts={"sbo": 7.0}, default_timeout=9.0)
            async with SolverService(config) as svc:
                for _ in range(10):
                    svc._family_latency.record("sbo", 0.01)
                    svc._family_latency.record("lpt", 0.01)
                assert svc._effective_timeout(3.0, "sbo") == 3.0      # explicit
                assert svc._effective_timeout(None, "sbo") is None    # explicit off
                assert svc._effective_timeout(_UNSET, "sbo") == 7.0   # spec_timeouts
                assert svc._effective_timeout(_UNSET, "lpt") == 0.5   # derived
                assert svc._effective_timeout(_UNSET, "rls") == 9.0   # default

        run(scenario())

    def test_pathological_request_bounded_healthy_untouched(self, inst):
        """The ROADMAP scenario: a family's own history bounds its outliers."""

        async def scenario():
            with registered(make_sleepy_entry()):
                config = self._config(
                    auto_timeout_floor=0.3, auto_timeout_multiplier=5.0,
                    auto_timeout_min_samples=5,
                )
                async with SolverService(config) as svc:
                    # Build healthy history for the sleepy family (~20ms).
                    for i in range(6):
                        await svc.solve(inst, "sleepy(seconds=0.01)",
                                        seconds=0.01 + i * 1e-6)
                    # A pathological spec of the same family is bounded by
                    # the derived timeout (0.3s floor), not left hanging.
                    start = time.perf_counter()
                    with pytest.raises(ServiceTimeoutError):
                        await svc.solve(inst, "sleepy(seconds=2)")
                    elapsed = time.perf_counter() - start
                    assert elapsed < 1.5  # bounded by ~0.3s derived timeout
                    # Healthy specs (other families, no history) are untouched.
                    result = await svc.solve(inst, "lpt")
                    assert result.feasible
                    await drain(svc)
                    stats = svc.stats()
            return stats

        stats = run(scenario())
        assert stats.timed_out == 1
        assert stats.lost == 0

    def test_off_by_default(self):
        from repro.service.service import _UNSET

        async def scenario():
            async with SolverService(ServiceConfig(workers=1)) as svc:
                for _ in range(50):
                    svc._family_latency.record("sbo", 0.01)
                assert svc._effective_timeout(_UNSET, "sbo") is None

        run(scenario())
