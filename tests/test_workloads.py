"""Unit tests for repro.workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.adversarial import (
    few_big_many_small_instance,
    high_variance_instance,
    memory_hostile_instance,
)
from repro.workloads.distributions import (
    bimodal_sampler,
    choice_sampler,
    constant_sampler,
    integer_sampler,
    pareto_sampler,
    uniform_sampler,
)
from repro.workloads.independent import (
    anti_correlated_instance,
    bimodal_instance,
    correlated_instance,
    heavy_tailed_instance,
    uniform_instance,
    workload_suite,
)


def correlation(instance):
    p = np.array([t.p for t in instance.tasks])
    s = np.array([t.s for t in instance.tasks])
    return float(np.corrcoef(p, s)[0, 1])


class TestSamplers:
    def test_uniform_range(self):
        rng = np.random.default_rng(0)
        values = uniform_sampler(2.0, 5.0)(rng, 1000)
        assert values.min() >= 2.0 and values.max() <= 5.0

    def test_uniform_invalid(self):
        with pytest.raises(ValueError):
            uniform_sampler(5.0, 2.0)

    def test_integer_sampler(self):
        rng = np.random.default_rng(0)
        values = integer_sampler(1, 3)(rng, 500)
        assert set(values.tolist()) <= {1.0, 2.0, 3.0}

    def test_bimodal_two_modes(self):
        rng = np.random.default_rng(0)
        values = bimodal_sampler(low_mode=1.0, high_mode=100.0, high_fraction=0.3, spread=0.01)(rng, 2000)
        assert (values > 50).mean() == pytest.approx(0.3, abs=0.05)
        assert values.min() > 0

    def test_bimodal_invalid_fraction(self):
        with pytest.raises(ValueError):
            bimodal_sampler(high_fraction=1.5)

    def test_pareto_cap(self):
        rng = np.random.default_rng(0)
        values = pareto_sampler(shape=1.1, scale=1.0, cap=50.0)(rng, 2000)
        assert values.max() <= 50.0
        assert values.min() >= 1.0

    def test_pareto_invalid_cap(self):
        with pytest.raises(ValueError):
            pareto_sampler(scale=2.0, cap=1.0)

    def test_constant(self):
        rng = np.random.default_rng(0)
        assert (constant_sampler(3.0)(rng, 10) == 3.0).all()

    def test_constant_invalid(self):
        with pytest.raises(ValueError):
            constant_sampler(0.0)

    def test_choice(self):
        rng = np.random.default_rng(0)
        values = choice_sampler([1.0, 2.0], weights=[0.0, 1.0])(rng, 100)
        assert (values == 2.0).all()

    def test_choice_invalid(self):
        with pytest.raises(ValueError):
            choice_sampler([])
        with pytest.raises(ValueError):
            choice_sampler([1.0], weights=[1.0, 2.0])


class TestIndependentGenerators:
    def test_uniform_shape(self):
        inst = uniform_instance(50, 4, seed=0)
        assert inst.n == 50 and inst.m == 4
        assert all(t.p > 0 and t.s > 0 for t in inst.tasks)

    def test_determinism(self):
        assert uniform_instance(20, 2, seed=5) == uniform_instance(20, 2, seed=5)
        assert uniform_instance(20, 2, seed=5) != uniform_instance(20, 2, seed=6)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            uniform_instance(-1, 2)

    def test_correlated_has_positive_correlation(self):
        inst = correlated_instance(300, 4, seed=1, correlation=0.9)
        assert correlation(inst) > 0.5

    def test_anti_correlated_has_negative_correlation(self):
        inst = anti_correlated_instance(300, 4, seed=1, correlation=0.9)
        assert correlation(inst) < -0.5

    def test_correlation_zero_is_uncorrelated(self):
        inst = correlated_instance(500, 4, seed=2, correlation=0.0)
        assert abs(correlation(inst)) < 0.3

    def test_correlation_bounds_validated(self):
        with pytest.raises(ValueError):
            correlated_instance(10, 2, correlation=1.5)
        with pytest.raises(ValueError):
            anti_correlated_instance(10, 2, correlation=-0.1)

    def test_bimodal_and_heavy_tailed(self):
        b = bimodal_instance(100, 4, seed=0)
        h = heavy_tailed_instance(100, 4, seed=0)
        assert b.n == 100 and h.n == 100
        # Heavy tails produce a large max/median ratio.
        p = sorted(t.p for t in h.tasks)
        assert p[-1] / p[len(p) // 2] > 3.0

    def test_workload_suite(self):
        suite = workload_suite(30, 3, seed=0)
        assert set(suite) == {"uniform", "correlated", "anti-correlated", "bimodal", "heavy-tailed"}
        for inst in suite.values():
            assert inst.n == 30 and inst.m == 3

    def test_empty_instances(self):
        assert uniform_instance(0, 2, seed=0).n == 0
        assert anti_correlated_instance(0, 2, seed=0).n == 0


class TestAdversarialGenerators:
    def test_memory_hostile(self):
        inst = memory_hostile_instance(4, seed=0)
        assert inst.m == 4
        big = [t for t in inst.tasks if t.label == "big"]
        assert len(big) == 4
        assert all(t.s == 100.0 for t in big)

    def test_memory_hostile_invalid(self):
        with pytest.raises(ValueError):
            memory_hostile_instance(0)

    def test_high_variance(self):
        inst = high_variance_instance(200, 4, seed=0, ratio=1000.0)
        p = [t.p for t in inst.tasks]
        assert max(p) / min(p) > 50.0

    def test_high_variance_invalid(self):
        with pytest.raises(ValueError):
            high_variance_instance(10, 2, ratio=1.0)

    def test_few_big_many_small(self):
        inst = few_big_many_small_instance(3, k=2, small_per_big=5, seed=0)
        assert inst.m == 3
        labels = {t.label for t in inst.tasks}
        assert labels == {"long", "heavy", "small"}
        assert inst.n == (3 - 1) + 2 * 3 + 5 * 2 * 3

    def test_few_big_invalid(self):
        with pytest.raises(ValueError):
            few_big_many_small_instance(1)
