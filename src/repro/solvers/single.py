"""Single-objective sub-solvers used inside ``SBO_Δ`` and the facade.

``SBO_Δ`` (Algorithm 1) combines two single-objective schedules; this
module names the available sub-solvers (``"list"``, ``"lpt"``,
``"multifit"``, ``"ptas"``, ``"ptas-fine"``, ``"exact"``).  Each solver is
a callable ``solver(instance, objective) -> (Schedule, rho)`` where
``rho`` is the approximation ratio certified on the chosen objective for
the instance's processor count; the guarantee is what Property 1/2
multiply by ``(1 + Δ)`` and ``(1 + 1/Δ)``.

This module supersedes the string-keyed registry that used to live in
``repro.algorithms.registry`` (kept there as a deprecated shim); the
unified capability-aware registry of :mod:`repro.solvers.registry` builds
on it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.algorithms.exact import exact_schedule
from repro.algorithms.list_scheduling import list_guarantee, list_schedule
from repro.algorithms.lpt import lpt_guarantee, lpt_schedule
from repro.algorithms.multifit import multifit_guarantee, multifit_schedule
from repro.algorithms.ptas import ptas_schedule
from repro.core.instance import Instance
from repro.core.schedule import Schedule

__all__ = [
    "SolverFn",
    "PTAS_EPSILONS",
    "get_single_objective_solver",
    "available_single_objective_solvers",
    "make_ptas_solver",
]

#: Default accuracy of the registered PTAS variants (single source of truth
#: for both this registry and the unified registry's entries/guarantees).
PTAS_EPSILONS = {"ptas": 0.2, "ptas-fine": 0.1}

#: Signature of a sub-solver: (instance, objective) -> (schedule, guaranteed ratio).
SolverFn = Callable[[Instance, str], Tuple[Schedule, float]]


def _list_solver(instance: Instance, objective: str) -> Tuple[Schedule, float]:
    schedule = list_schedule(instance, order="arbitrary", objective=objective)
    return schedule, list_guarantee(instance.m)


def _lpt_solver(instance: Instance, objective: str) -> Tuple[Schedule, float]:
    schedule = lpt_schedule(instance, objective=objective)
    return schedule, lpt_guarantee(instance.m)


def _multifit_solver(instance: Instance, objective: str) -> Tuple[Schedule, float]:
    schedule = multifit_schedule(instance, objective=objective)
    return schedule, multifit_guarantee()


def make_ptas_solver(epsilon: float) -> SolverFn:
    """A PTAS sub-solver at accuracy ``epsilon`` (ratio ``1 + ε`` when exact)."""

    def solver(instance: Instance, objective: str) -> Tuple[Schedule, float]:
        result = ptas_schedule(instance, epsilon=epsilon, objective=objective)
        return result.schedule, result.guarantee

    return solver


def _exact_solver(instance: Instance, objective: str) -> Tuple[Schedule, float]:
    return exact_schedule(instance, objective=objective), 1.0


_SINGLE_OBJECTIVE: Dict[str, SolverFn] = {
    "list": _list_solver,
    "lpt": _lpt_solver,
    "multifit": _multifit_solver,
    "ptas": make_ptas_solver(epsilon=PTAS_EPSILONS["ptas"]),
    "ptas-fine": make_ptas_solver(epsilon=PTAS_EPSILONS["ptas-fine"]),
    "exact": _exact_solver,
}


def available_single_objective_solvers() -> List[str]:
    """Names of the registered single-objective sub-solvers."""
    return sorted(_SINGLE_OBJECTIVE)


def get_single_objective_solver(name: str) -> SolverFn:
    """Look up a sub-solver by name; raises :class:`KeyError` with the valid names."""
    try:
        return _SINGLE_OBJECTIVE[name]
    except KeyError:
        raise KeyError(
            f"unknown solver {name!r}; available solvers: "
            f"{', '.join(available_single_objective_solvers())}"
        ) from None
