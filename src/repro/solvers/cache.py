"""Content-addressed result cache for the unified solver facade.

Every solver in the package is deterministic, so a
:class:`~repro.solvers.result.SolveResult` is fully determined by the
*content* of the instance and the fully-bound solver spec.  The cache key
is therefore::

    key = sha256( instance.content_hash() + "|" + bound_spec.canonical()
                  + "|" + repro.__version__ )

where :meth:`~repro.core.instance.Instance.content_hash` covers the
processor count, the tasks (id, p, s, in insertion order), precedence
edges and — for uniform machines — processor speeds, the canonical
bound spec string (e.g. ``"sbo(delta=1.0, inner=lpt)"``) pins the solver
*and* every defaulted parameter, and the package version guards
persistent caches against intended solver-behaviour changes between
releases (bumping ``__version__`` invalidates every key).  Two cache
backends implement the same small interface:

* :class:`LRUCache` — in-memory, bounded, thread-safe; the per-process
  default;
* :class:`DiskCache` — one pickle file per key under a cache directory,
  written atomically, surviving process restarts; corrupt or truncated
  entries degrade to misses.

Caching is enabled three ways:

* **per call** — ``solve(inst, spec, cache=my_cache)`` (a cache object or
  a directory path) or ``solve_many(..., cache=...)``;
* **per process** — :func:`configure_cache` installs a default that every
  ``solve()`` / ``solve_many()`` call consults until reconfigured;
* **CLI** — ``repro solve --cache DIR`` and
  ``repro experiments --cache DIR``.

A hit returns a shallow copy of the stored result whose provenance
records ``"cache": "hit"``; the stored ``wall_time`` (the original
compute time) is preserved so throughput studies stay meaningful.
*Shallow* means the ``schedule``/``raw``/``objectives`` objects are
shared with the cache entry (a :class:`DiskCache` hit gets fresh copies
via the pickle round-trip, an :class:`LRUCache` hit aliases them) —
treat results as immutable, as the schedule classes already are.

Caching never fails a successful solve: results whose native objects
cannot be pickled are simply not stored on disk, and corrupt or stale
entries degrade to misses.

Only results of the *stock builtin* entries are cached.  A solver
registered at runtime — or a builtin overridden with
``register(..., replace=True)`` — is invisible to the key (two
implementations could share a name), so ``solve()``/``solve_many()``
silently skip the cache for those specs rather than risk serving a
different solver's results.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.solvers.result import SolveResult

__all__ = [
    "CacheStats",
    "ResultCache",
    "LRUCache",
    "DiskCache",
    "cache_key",
    "configure_cache",
    "default_cache",
    "resolve_cache",
]

#: Accepted by the ``cache=`` argument of ``solve``/``solve_many`` and by
#: :func:`configure_cache`: ``None`` (use the process default), ``False``
#: (bypass any cache), ``True`` (the installed process default; an error
#: when none is configured), a directory path (persistent
#: :class:`DiskCache`), or a :class:`ResultCache` instance.
CacheLike = Union[None, bool, str, Path, "ResultCache"]


def cache_key(instance, canonical_spec: str) -> str:
    """The content-addressed key of a ``(instance, bound spec)`` pair.

    ``instance`` is an :class:`~repro.core.instance.Instance` (or
    subclass), or a precomputed ``content_hash()`` hex string — callers
    that key many specs against one instance pass the hash once instead
    of recomputing it per spec.
    """
    from repro import __version__  # late import: repro re-exports this module

    instance_hash = instance if isinstance(instance, str) else instance.content_hash()
    digest = hashlib.sha256()
    digest.update(instance_hash.encode("ascii"))
    digest.update(b"|")
    digest.update(canonical_spec.encode("utf-8"))
    # Version-guard persistent caches: an intended solver-behaviour change
    # ships as a version bump, which must invalidate every stored result.
    digest.update(b"|")
    digest.update(__version__.encode("utf-8"))
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters kept by every cache backend.

    ``corrupt`` counts entries that were found but could not be served —
    truncated/corrupt pickles and stale payloads that are not a
    :class:`SolveResult` — and were removed from the backing store.  Each
    such lookup also counts as a miss.
    """

    hits: int = 0
    misses: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.corrupt = 0


class ResultCache:
    """Base class of the cache backends: counted ``get``/``put`` by key.

    Subclasses implement ``_load``/``_store``/``__len__``/``clear``; the
    base class keeps the :class:`CacheStats` bookkeeping in one place.
    """

    def __init__(self) -> None:
        self.stats = CacheStats()
        self._stats_lock = threading.Lock()

    def get(self, key: str) -> Optional[SolveResult]:
        """Return the stored result for ``key``, counting a hit or miss."""
        result = self._load(key)
        with self._stats_lock:
            if result is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
        return result

    def get_many(self, keys) -> list:
        """Batched :meth:`get`: one result slot per key (``None`` on miss).

        The base implementation is a plain loop; backends with per-lookup
        synchronisation overhead (:class:`LRUCache`) override it to take
        their lock once per batch instead of once per key.
        """
        return [self.get(key) for key in keys]

    def put(self, key: str, result: SolveResult) -> None:
        """Store ``result`` under ``key`` (overwrites silently)."""
        self._store(key, result)

    def _note_corrupt(self) -> None:
        """Record a corrupt/stale entry dropped by a backend's ``_load``."""
        with self._stats_lock:
            self.stats.corrupt += 1

    def _load(self, key: str) -> Optional[SolveResult]:  # pragma: no cover - abstract
        raise NotImplementedError

    def _store(self, key: str, result: SolveResult) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class LRUCache(ResultCache):
    """Bounded in-memory cache with least-recently-used eviction."""

    def __init__(self, maxsize: int = 1024) -> None:
        super().__init__()
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, SolveResult]" = OrderedDict()
        self._lock = threading.Lock()

    def _load(self, key: str) -> Optional[SolveResult]:
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
            return result

    def get_many(self, keys) -> list:
        results = []
        hits = 0
        with self._lock:
            for key in keys:
                result = self._entries.get(key)
                if result is not None:
                    self._entries.move_to_end(key)
                    hits += 1
                results.append(result)
        with self._stats_lock:
            self.stats.hits += hits
            self.stats.misses += len(results) - hits
        return results

    def _store(self, key: str, result: SolveResult) -> None:
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class DiskCache(ResultCache):
    """Persistent cache: one pickle file per key under ``directory``.

    Entries are sharded into 256 key-prefix subdirectories
    (``directory/<key[:2]>/<key>.pkl``) so very large sweeps never pile a
    million files into one directory; entries written by older (flat
    layout) versions are still found and served.  Files are written
    atomically (temp file + ``os.replace``) so a concurrent or interrupted
    writer can never leave a half-written entry behind; unreadable entries
    are treated as misses and removed.

    ``max_bytes`` bounds the total size of the stored entries: after every
    store, least-recently-used entries (by file mtime — refreshed on every
    hit) are trimmed until the cache fits the bound again.  The bound is
    enforced per cache *object* under a lock; concurrent processes sharing
    one directory each enforce it best-effort, which can transiently
    overshoot but never grows without bound.
    """

    def __init__(
        self, directory: Union[str, Path], max_bytes: Optional[int] = None
    ) -> None:
        super().__init__()
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self._trim_lock = threading.Lock()
        self._size_bytes: Optional[int] = None  # lazily scanned

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def _legacy_path(self, key: str) -> Path:
        # Flat layout written by pre-sharding versions of this class.
        return self.directory / f"{key}.pkl"

    def _entry_files(self) -> list:
        """Every stored entry, sharded or legacy-flat."""
        files = [p for p in self.directory.glob("*.pkl")]
        files.extend(self.directory.glob("??/*.pkl"))
        return files

    def _load(self, key: str) -> Optional[SolveResult]:
        for path in (self._path(key), self._legacy_path(key)):
            try:
                with path.open("rb") as fh:
                    result = pickle.load(fh)
            except FileNotFoundError:
                continue
            except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
                # Corrupt / truncated / stale entry: degrade to a miss and
                # remove it so every future lookup doesn't re-pay the failed
                # read (and the dead file doesn't occupy max_bytes budget).
                self._unlink(path)
                self._note_corrupt()
                continue
            if isinstance(result, SolveResult):
                try:
                    os.utime(path)  # refresh LRU recency for eviction
                except OSError:
                    pass
                return result
            # Unpickled cleanly but is not a SolveResult — a stale payload
            # from a foreign writer.  Previously skipped but left on disk.
            self._unlink(path)
            self._note_corrupt()
        return None

    def _store(self, key: str, result: SolveResult) -> None:
        # Caching is an optimization: a result that cannot be stored (an
        # unpicklable native object in ``raw``, a full or read-only disk)
        # must never fail the solve that produced it — skip it silently.
        path = self._path(key)
        try:
            path.parent.mkdir(exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        except OSError:
            return
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            with self._trim_lock:
                replaced = self._file_size(path)
                # A pre-sharding flat entry for the same key would otherwise
                # linger forever, double-counting the key in len/size_bytes.
                legacy = self._legacy_path(key)
                replaced += self._file_size(legacy)
                os.replace(tmp_name, path)
                try:
                    legacy.unlink()
                except OSError:
                    pass
                if self._size_bytes is not None:
                    self._size_bytes += self._file_size(path) - replaced
        except (OSError, pickle.PicklingError, TypeError, AttributeError, ValueError):
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            return
        if self.max_bytes is not None:
            self._trim()

    # ------------------------------------------------------------------ #
    # size bookkeeping and max-bytes trimming
    # ------------------------------------------------------------------ #
    @staticmethod
    def _file_size(path: Path) -> int:
        try:
            return path.stat().st_size
        except OSError:
            return 0

    def _unlink(self, path: Path) -> None:
        with self._trim_lock:
            size = self._file_size(path)
            try:
                path.unlink()
            except OSError:
                return
            if self._size_bytes is not None:
                self._size_bytes -= size

    def size_bytes(self) -> int:
        """Total bytes of the stored entries (cached after the first scan)."""
        with self._trim_lock:
            if self._size_bytes is None:
                self._size_bytes = sum(self._file_size(p) for p in self._entry_files())
            return self._size_bytes

    def _trim(self) -> None:
        """Evict least-recently-used entries until the bound holds again."""
        if self.size_bytes() <= self.max_bytes:
            return
        entries = sorted(
            ((p, self._file_size(p)) for p in self._entry_files()),
            key=lambda item: self._mtime(item[0]),
        )
        for path, _size in entries:
            if self.size_bytes() <= self.max_bytes:
                break
            self._unlink(path)

    @staticmethod
    def _mtime(path: Path) -> float:
        try:
            return path.stat().st_mtime
        except OSError:
            return 0.0

    def __len__(self) -> int:
        return len(self._entry_files())

    def clear(self) -> None:
        for path in self._entry_files():
            path.unlink(missing_ok=True)
        with self._trim_lock:
            self._size_bytes = 0


# --------------------------------------------------------------------------- #
# process-wide default
# --------------------------------------------------------------------------- #
_DEFAULT_CACHE: Optional[ResultCache] = None


def _build(cache: CacheLike) -> Optional[ResultCache]:
    if cache is None or cache is False:
        return None
    if cache is True:
        return LRUCache()
    if isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, (str, Path)):
        return DiskCache(cache)
    raise TypeError(
        f"cache must be None, a bool, a directory path, or a ResultCache; "
        f"got {type(cache).__name__}"
    )


def configure_cache(cache: CacheLike = True) -> Optional[ResultCache]:
    """Install the process-wide default cache and return it.

    ``configure_cache()`` enables an in-memory :class:`LRUCache`;
    ``configure_cache(path)`` a persistent :class:`DiskCache`;
    ``configure_cache(None)`` (or ``False``) disables the default again.
    Every subsequent ``solve()`` / ``solve_many()`` call that does not
    pass an explicit ``cache=`` argument uses the installed default.
    """
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = _build(cache)
    return _DEFAULT_CACHE


def default_cache() -> Optional[ResultCache]:
    """The currently installed process-wide default cache (or ``None``)."""
    return _DEFAULT_CACHE


def resolve_cache(cache: CacheLike) -> Optional[ResultCache]:
    """Resolve a per-call ``cache=`` argument against the process default.

    ``None`` defers to the default, ``False`` bypasses caching even when a
    default is installed, ``True`` requires an installed default (a
    call-local cache would silently never hit, and a per-call argument
    must not install process-wide state — so it is an error instead), and
    a path or cache object is used directly.
    """
    if cache is None:
        return _DEFAULT_CACHE
    if cache is True:
        if _DEFAULT_CACHE is None:
            raise TypeError(
                "cache=True requires a process default cache; call "
                "configure_cache() first, or pass a cache object or directory path"
            )
        return _DEFAULT_CACHE
    return _build(cache)
