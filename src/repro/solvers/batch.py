"""``solve_many`` — batch execution of (instance × spec) jobs.

Throughput scenarios (parameter sweeps, workload suites, serving many
requests) run the same small solvers over many instances.  This module
fans the cross product of instances and specs out over a process pool::

    results = solve_many(instances, ["sbo(delta=0.5)", "sbo(delta=2)"], workers=4)

Jobs are ordered instance-major (all specs of instance 0, then all specs
of instance 1, ...) and results always come back in that deterministic
job order regardless of worker count, so ``workers=N`` is a drop-in
replacement for the serial loop: every solver in the package is
deterministic, hence the objective values are bit-identical either way.
Per-call wall time is recorded on each
:class:`~repro.solvers.result.SolveResult` (measured inside the worker).

Because solvers are deterministic, repeated work is eliminated at three
levels before any process is spawned:

1. **Dedup** — jobs are keyed by
   ``(instance.content_hash(), canonical bound spec)``; submitting the
   same (instance, spec) pair twice computes it once (disable with
   ``dedupe=False``).
2. **Cache** — with ``cache=`` (or a process default installed via
   :func:`repro.solvers.cache.configure_cache`), keys are looked up
   before dispatch and computed results are stored afterwards, sharing
   keys with plain :func:`repro.solvers.solve` calls.
3. **Instance batching** — remaining jobs are grouped by instance, so an
   instance crosses the process boundary once per chunk instead of once
   per job (chunks are split to keep all workers busy).

Each returned result's provenance carries a ``"batch"`` record
(``{"jobs", "unique", "deduped", "cache_hits", "cache_misses"}``) so
studies can report cache effectiveness.

Custom registry entries (added at runtime via
:func:`repro.solvers.register`) are resolved in the parent and *shipped*
with each batch, so they work under any multiprocessing start method —
including ``spawn`` (macOS/Windows defaults), where workers do not
inherit the parent's registry.  Entries whose callables cannot be pickled
(e.g. lambdas) fall back to serial execution in the parent instead of
failing inside a worker.
"""

from __future__ import annotations

import math
import pickle
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.instance import DAGInstance, Instance
from repro.solvers.api import solve
from repro.solvers.cache import CacheLike, cache_key, resolve_cache
from repro.solvers.registry import SolverEntry, get_entry, is_builtin, register
from repro.solvers.result import SolveResult
from repro.solvers.spec import SolverSpec

__all__ = ["solve_many", "shippable_custom_entries"]

AnyInstance = Union[Instance, DAGInstance]
SpecLike = Union[str, SolverSpec]

#: One pool task: an instance, the specs to run on it, and any custom
#: (non-builtin) registry entries those specs need in the worker.
_Batch = Tuple[AnyInstance, Tuple[SolverSpec, ...], Tuple[SolverEntry, ...]]


def _as_instance_list(instances: Union[AnyInstance, Iterable[AnyInstance]]) -> List[AnyInstance]:
    if isinstance(instances, (Instance, DAGInstance)):
        return [instances]
    return list(instances)


def _as_spec_list(specs: Union[SpecLike, Iterable[SpecLike]]) -> List[SolverSpec]:
    if isinstance(specs, (str, SolverSpec)):
        return [SolverSpec.parse(specs)]
    return [SolverSpec.parse(spec) for spec in specs]


def _run_batch(batch: _Batch) -> List[SolveResult]:
    """Worker entry point: register shipped entries, then solve each spec.

    Caching is parent-side only (workers run with ``cache=False``): the
    parent already filtered out every cached key, and a single cache
    object cannot be shared across processes.
    """
    instance, specs, custom_entries = batch
    for entry in custom_entries:
        register(entry, replace=True)
    return [solve(instance, spec, cache=False) for spec in specs]


def _canonical_bound_spec(spec: SolverSpec) -> str:
    """Validate ``spec`` and return its fully-bound canonical string.

    Binding fills defaults, so ``"sbo"`` and ``"sbo(delta=1.0)"`` map to
    the same string — :meth:`SolverEntry.canonical_spec` is the same
    normalization :func:`repro.solvers.solve` records in
    ``provenance["spec"]`` and keys the cache with.
    """
    entry = get_entry(spec.name)
    return entry.canonical_spec(entry.bind(spec.params))


def shippable_custom_entries(names: Sequence[str]) -> Tuple[Dict[str, SolverEntry], set]:
    """Partition custom solver names into pool-shippable entries and the
    names whose entries cannot be pickled (→ parent-serial fallback).

    Shared with :mod:`repro.service`, which ships custom entries to its
    persistent worker pool the same way."""
    shippable: Dict[str, SolverEntry] = {}
    unpicklable: set = set()
    for name in names:
        entry = get_entry(name)
        try:
            pickle.dumps(entry)
        except Exception:
            unpicklable.add(name)
        else:
            shippable[name] = entry
    return shippable, unpicklable


def solve_many(
    instances: Union[AnyInstance, Iterable[AnyInstance]],
    specs: Union[SpecLike, Iterable[SpecLike]],
    workers: int = 1,
    cache: CacheLike = None,
    dedupe: bool = True,
    start_method: Optional[str] = None,
) -> List[SolveResult]:
    """Solve every instance with every spec, optionally in parallel.

    Parameters
    ----------
    instances:
        One instance or a sequence of instances.
    specs:
        One spec (string or :class:`SolverSpec`) or a sequence of specs.
    workers:
        ``1`` (default) runs serially in-process; ``N > 1`` uses a
        :class:`~concurrent.futures.ProcessPoolExecutor` with ``N``
        workers.
    cache:
        Result cache consulted before dispatch and filled afterwards —
        ``None`` defers to the process default, ``False`` disables, a
        directory path or :class:`~repro.solvers.cache.ResultCache`
        enables (see :mod:`repro.solvers.cache`).
    dedupe:
        Compute each distinct ``(instance content, bound spec)`` pair only
        once (default).  Duplicated jobs receive the same result values.
    start_method:
        Optional multiprocessing start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``) for the worker pool; ``None`` uses the platform
        default.

    Returns
    -------
    list of SolveResult
        One result per (instance, spec) pair, instance-major, in the same
        deterministic order for any ``workers`` value.  Each result's
        provenance carries a ``"batch"`` stats record and — when a cache
        is active — ``"cache": "hit" | "miss"``.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    spec_list = _as_spec_list(specs)
    # Validate every spec fully (syntax, solver name, parameter types) up
    # front so a typo fails before any worker process is spawned; the
    # bound canonical strings double as dedup/cache keys.
    canonicals = [_canonical_bound_spec(spec) for spec in spec_list]
    instance_list = _as_instance_list(instances)
    if not instance_list or not spec_list:
        return []

    # ------------------------------------------------------------------ #
    # key every job; dedupe
    # ------------------------------------------------------------------ #
    instance_hashes = [inst.content_hash() for inst in instance_list]
    # Only stock builtin entries are cacheable: a runtime-registered (or
    # overridden) solver's implementation is invisible to the cache key.
    cacheable_spec = [is_builtin(spec.name) for spec in spec_list]
    job_keys: List[str] = []
    # Dedup key -> (instance, spec, content-addressed cache key or None).
    # With dedupe off, the dedup key is made unique per job slot while the
    # cache key stays content-addressed.
    unique: "OrderedDict[str, Tuple[AnyInstance, SolverSpec, Optional[str]]]" = OrderedDict()
    for index, inst in enumerate(instance_list):
        for spec, canonical, cacheable in zip(spec_list, canonicals, cacheable_spec):
            content_key = cache_key(instance_hashes[index], canonical)
            key = content_key if dedupe else f"{len(job_keys)}:{content_key}"
            job_keys.append(key)
            unique.setdefault(key, (inst, spec, content_key if cacheable else None))

    # ------------------------------------------------------------------ #
    # consult the cache before dispatching anything
    # ------------------------------------------------------------------ #
    cache_obj = resolve_cache(cache)
    results: Dict[str, SolveResult] = {}
    cache_lookups = 0
    if cache_obj is not None:
        # One batched lookup for the whole chunk: backends take their lock
        # once instead of once per key (see ResultCache.get_many).
        lookup_keys = [
            (key, content_key)
            for key, (_inst, _spec, content_key) in unique.items()
            if content_key is not None
        ]
        cache_lookups = len(lookup_keys)
        hits = cache_obj.get_many([content_key for _, content_key in lookup_keys])
        for (key, _content_key), hit in zip(lookup_keys, hits):
            if hit is not None:
                results[key] = replace(hit, provenance={**hit.provenance, "cache": "hit"})
    cache_hits = len(results)

    pending = [(key, inst, spec) for key, (inst, spec, _ck) in unique.items() if key not in results]

    # ------------------------------------------------------------------ #
    # execute the misses: serial, or instance-batched over a pool
    # ------------------------------------------------------------------ #
    computed: Dict[str, SolveResult] = {}
    if pending:
        if workers == 1 or len(pending) == 1:
            for key, inst, spec in pending:
                computed[key] = solve(inst, spec, cache=False)
        else:
            custom_names = sorted({spec.name for _, _, spec in pending if not is_builtin(spec.name)})
            shippable, unpicklable = shippable_custom_entries(custom_names)
            pool_jobs = [(key, inst, spec) for key, inst, spec in pending
                         if spec.name not in unpicklable]
            serial_jobs = [(key, inst, spec) for key, inst, spec in pending
                           if spec.name in unpicklable]

            # Group pool jobs by instance so each instance is pickled once
            # per chunk, then split large groups so all workers stay busy.
            groups: "OrderedDict[int, Tuple[AnyInstance, List[Tuple[str, SolverSpec]]]]" = OrderedDict()
            for key, inst, spec in pool_jobs:
                groups.setdefault(id(inst), (inst, []))[1].append((key, spec))
            chunk_size = max(1, math.ceil(len(pool_jobs) / (workers * 4)))
            batches: List[Tuple[AnyInstance, List[Tuple[str, SolverSpec]]]] = []
            for inst, pairs in groups.values():
                for at in range(0, len(pairs), chunk_size):
                    batches.append((inst, pairs[at:at + chunk_size]))

            if batches:
                import multiprocessing

                mp_context = multiprocessing.get_context(start_method) if start_method else None
                payloads: List[_Batch] = [
                    (
                        inst,
                        tuple(spec for _, spec in pairs),
                        tuple(shippable[name] for name in
                              sorted({spec.name for _, spec in pairs
                                      if spec.name in shippable})),
                    )
                    for inst, pairs in batches
                ]
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(payloads)), mp_context=mp_context
                ) as pool:
                    # map() submits everything up front, so the serial
                    # fallback jobs below overlap with the workers instead
                    # of waiting for the pool to drain first.
                    batch_results_iter = pool.map(_run_batch, payloads)
                    for key, inst, spec in serial_jobs:
                        computed[key] = solve(inst, spec, cache=False)
                    for (_, pairs), batch_results in zip(batches, batch_results_iter):
                        for (key, _spec), result in zip(pairs, batch_results):
                            computed[key] = result
            else:
                for key, inst, spec in serial_jobs:
                    computed[key] = solve(inst, spec, cache=False)

        if cache_obj is not None:
            for key, _inst, _spec in pending:
                content_key = unique[key][2]
                if content_key is None:
                    continue
                cache_obj.put(content_key, computed[key])
                computed[key] = replace(
                    computed[key],
                    provenance={**computed[key].provenance, "cache": "miss"},
                )
        results.update(computed)

    # ------------------------------------------------------------------ #
    # assemble outputs in deterministic job order, stamping batch stats
    # ------------------------------------------------------------------ #
    # cache_hits/misses count actual lookups only: both stay 0 when no
    # cache is configured (or no spec was cacheable), so the record never
    # suggests a cache was consulted when it was not.
    stats = {
        "jobs": len(job_keys),
        "unique": len(unique),
        "deduped": len(job_keys) - len(unique),
        "cache_hits": cache_hits,
        "cache_misses": cache_lookups - cache_hits,
    }
    return [
        replace(results[key], provenance={**results[key].provenance, "batch": dict(stats)})
        for key in job_keys
    ]
