"""``solve_many`` — batch execution of (instance × spec) jobs.

Throughput scenarios (parameter sweeps, workload suites, serving many
requests) run the same small solvers over many instances.  This module
fans the cross product of instances and specs out over a process pool::

    results = solve_many(instances, ["sbo(delta=0.5)", "sbo(delta=2)"], workers=4)

Jobs are ordered instance-major (all specs of instance 0, then all specs
of instance 1, ...) and results always come back in that deterministic
job order regardless of worker count, so ``workers=N`` is a drop-in
replacement for the serial loop: every solver in the package is
deterministic, hence the objective values are bit-identical either way.
Per-call wall time is recorded on each
:class:`~repro.solvers.result.SolveResult` (measured inside the worker).

.. note::
   Worker processes resolve specs against *their own* registry.  Built-in
   solvers are always present, but entries added at runtime via
   :func:`repro.solvers.register` are only visible to workers on
   platforms whose process pools fork (Linux).  Under the ``spawn`` start
   method (macOS/Windows defaults) custom entries must be registered at
   import time of a module the workers also import — otherwise run those
   specs with ``workers=1``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, List, Tuple, Union

from repro.core.instance import DAGInstance, Instance
from repro.solvers.api import solve
from repro.solvers.result import SolveResult
from repro.solvers.spec import SolverSpec

__all__ = ["solve_many"]

AnyInstance = Union[Instance, DAGInstance]
SpecLike = Union[str, SolverSpec]

#: One batch job: (instance, parsed spec).
_Job = Tuple[AnyInstance, SolverSpec]


def _as_instance_list(instances: Union[AnyInstance, Iterable[AnyInstance]]) -> List[AnyInstance]:
    if isinstance(instances, (Instance, DAGInstance)):
        return [instances]
    return list(instances)


def _as_spec_list(specs: Union[SpecLike, Iterable[SpecLike]]) -> List[SolverSpec]:
    if isinstance(specs, (str, SolverSpec)):
        return [SolverSpec.parse(specs)]
    return [SolverSpec.parse(spec) for spec in specs]


def _run_job(job: _Job) -> SolveResult:
    instance, spec = job
    return solve(instance, spec)


def solve_many(
    instances: Union[AnyInstance, Iterable[AnyInstance]],
    specs: Union[SpecLike, Iterable[SpecLike]],
    workers: int = 1,
) -> List[SolveResult]:
    """Solve every instance with every spec, optionally in parallel.

    Parameters
    ----------
    instances:
        One instance or a sequence of instances.
    specs:
        One spec (string or :class:`SolverSpec`) or a sequence of specs.
    workers:
        ``1`` (default) runs serially in-process; ``N > 1`` uses a
        :class:`~concurrent.futures.ProcessPoolExecutor` with ``N``
        workers.

    Returns
    -------
    list of SolveResult
        One result per (instance, spec) pair, instance-major, in the same
        deterministic order for any ``workers`` value.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    spec_list = _as_spec_list(specs)
    # Validate every spec fully (syntax, solver name, parameter types) up
    # front so a typo fails before any worker process is spawned.
    from repro.solvers.registry import get_entry

    for spec in spec_list:
        get_entry(spec.name).bind(spec.params)
    jobs: List[_Job] = [
        (instance, spec) for instance in _as_instance_list(instances) for spec in spec_list
    ]
    if not jobs:
        return []
    if workers == 1 or len(jobs) == 1:
        return [_run_job(job) for job in jobs]
    with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
        return list(pool.map(_run_job, jobs))
