"""Capability-aware registry of every algorithm in the package.

Each entry knows, declaratively:

* which **capabilities** it has — ``supports_dag`` (handles precedence
  edges), ``supports_constraint`` (accepts a hard memory budget),
  ``is_bi_objective`` (returns a guaranteed (Cmax, Mmax) trade-off), and
  the tuple of objectives it actually bounds;
* which **parameters** it takes (name, type, default, choices, whether it
  must be strictly positive), so specs fail fast with helpful messages;
* its **guarantee function** — the a-priori approximation-ratio tuple as
  a function of the processor count and the bound parameters.

:func:`available_solvers` enumerates entries with capability filtering
(e.g. "everything that handles a DAGInstance"), and
:func:`repro.solvers.api.solve` executes an entry through the common
:class:`~repro.solvers.result.SolveResult` protocol.

Registered solvers (see each entry's ``summary``)::

    lpt, spt, list, multifit, ptas, ptas-fine, exact   # single-objective
    sbo(delta=, inner=)                                # Algorithm 1, §3
    rls(delta=, order=)                                # Algorithm 2, §5.1
    trio(delta=)                                       # §5.2, Corollary 4
    constrained(budget=)                               # §7 resolution

The registry is open: :func:`register` accepts new entries, which makes
the facade extensible without touching the callers.
"""

from __future__ import annotations

import difflib
import math
import numbers
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

# NOTE: the algorithm modules (repro.core.sbo, repro.core.constrained, ...)
# themselves depend on repro.solvers.single for their sub-solvers, so this
# module must not import them at import time.  They are imported lazily in
# the entry run/guarantee callables, and registration of the default
# entries is deferred to the first registry access (_ensure_registered).
from repro.core.instance import DAGInstance, Instance
from repro.solvers.spec import SpecError

__all__ = [
    "ParamSpec",
    "SolverCapabilities",
    "SolverEntry",
    "SolverCapabilityError",
    "register",
    "get_entry",
    "available_solvers",
    "solver_capabilities",
    "describe_solvers",
    "is_builtin",
    "bind_spec_params",
    "canonical_bound_spec",
]

AnyInstance = Union[Instance, DAGInstance]

#: A solver execution outcome: (schedule-or-None, guarantee tuple, raw result, extras).
RunOutcome = Tuple[object, Tuple[float, ...], object, Dict[str, object]]


class SolverCapabilityError(TypeError):
    """Raised when a solver is asked to handle an instance it cannot."""


@dataclass(frozen=True)
class ParamSpec:
    """Declaration of one solver parameter for typed validation."""

    name: str
    type: type
    default: object = None
    required: bool = False
    choices: Optional[Tuple[str, ...]] = None
    positive: bool = False
    nonnegative: bool = False
    doc: str = ""

    def coerce(self, value: object, solver: str) -> object:
        """Validate/coerce a raw spec value; raises :class:`SpecError`."""
        if value is None:
            # Only genuinely nullable parameters (default None, not required)
            # accept an explicit none; everything else must get a real value.
            if self.default is None and not self.required:
                return None
            raise SpecError(
                f"parameter {self.name!r} of solver {solver!r} expects "
                f"{self.type.__name__}, got none"
            )
        if self.type is bool and not isinstance(value, bool):
            raise SpecError(
                f"parameter {self.name!r} of solver {solver!r} expects a bool, got {value!r}"
            )
        if self.type in (int, float) and not isinstance(value, bool):
            # Accept any real number of the right kind (including numpy
            # scalars from e.g. np.linspace sweeps) and normalize to the
            # builtin type so provenance spec strings stay reparseable.
            if self.type is int and isinstance(value, numbers.Integral):
                value = int(value)
            elif self.type is float and isinstance(value, numbers.Real):
                value = float(value)
        if not isinstance(value, self.type) or (self.type in (int, float) and isinstance(value, bool)):
            raise SpecError(
                f"parameter {self.name!r} of solver {solver!r} expects {self.type.__name__}, "
                f"got {type(value).__name__} ({value!r})"
            )
        if self.positive and not value > 0:  # type: ignore[operator]
            raise SpecError(
                f"parameter {self.name!r} of solver {solver!r} must be > 0, got {value!r}"
            )
        if self.nonnegative and not value >= 0:  # type: ignore[operator]
            raise SpecError(
                f"parameter {self.name!r} of solver {solver!r} must be >= 0, got {value!r}"
            )
        if self.choices is not None and value not in self.choices:
            raise SpecError(
                f"parameter {self.name!r} of solver {solver!r} must be one of "
                f"{', '.join(map(repr, self.choices))}; got {value!r}"
            )
        return value


def bind_spec_params(
    name: str,
    params: Tuple[ParamSpec, ...],
    raw: Mapping[str, object],
    noun: str = "solver",
) -> Dict[str, object]:
    """Merge raw spec parameters with declared defaults and validate types.

    Shared by the offline :class:`SolverEntry` and the online registry
    (:class:`repro.online.registry.OnlineEntry`) so binding semantics can
    never diverge; ``noun`` only flavors the error messages.
    """
    declared = {p.name: p for p in params}
    unknown = sorted(set(raw) - set(declared))
    if unknown:
        valid = ", ".join(sorted(declared)) or "(none)"
        raise SpecError(
            f"unknown parameter(s) {', '.join(map(repr, unknown))} for {noun} "
            f"{name!r}; valid parameters: {valid}"
        )
    bound: Dict[str, object] = {}
    for pspec in params:
        if pspec.name in raw:
            bound[pspec.name] = pspec.coerce(raw[pspec.name], name)
        elif pspec.required:
            raise SpecError(
                f"{noun} {name!r} requires parameter {pspec.name!r} "
                f"({pspec.doc or pspec.type.__name__})"
            )
        else:
            bound[pspec.name] = pspec.default
    return bound


def canonical_bound_spec(name: str, bound: Mapping[str, object]) -> str:
    """Canonical fully-bound spec string for a :func:`bind_spec_params` result.

    The single normalization every cache/dedup/provenance key relies on:
    ``None``-valued optional parameters are dropped, the rest rendered in
    sorted key order.
    """
    from repro.solvers.spec import SolverSpec

    return SolverSpec(
        name=name,
        params={key: value for key, value in bound.items() if value is not None},
    ).canonical()


@dataclass(frozen=True)
class SolverCapabilities:
    """Declarative capability flags used for registry filtering."""

    supports_dag: bool = False
    supports_constraint: bool = False
    is_bi_objective: bool = False
    #: Deadline-aware: accepts a :class:`repro.periodic.PeriodicInstance`
    #: natively (no hyperperiod unroll through the facade needed).
    supports_periodic: bool = False
    objectives: Tuple[str, ...] = ("cmax",)


@dataclass(frozen=True)
class SolverEntry:
    """One registered solver: metadata, parameters, and the run callable."""

    name: str
    summary: str
    capabilities: SolverCapabilities
    params: Tuple[ParamSpec, ...]
    run: Callable[[AnyInstance, Dict[str, object]], RunOutcome]
    #: A-priori guarantee tuple as ``guarantee(m, bound_params)``; ``None``
    #: when the guarantee is instance-dependent (e.g. ``constrained``).
    guarantee: Optional[Callable[[int, Mapping[str, object]], Tuple[float, ...]]] = None

    def bind(self, raw: Mapping[str, object]) -> Dict[str, object]:
        """Merge raw spec parameters with defaults and validate types."""
        return bind_spec_params(self.name, self.params, raw)

    def canonical_spec(self, bound: Mapping[str, object]) -> str:
        """Canonical fully-bound spec string for a :meth:`bind` result.

        The single normalization both :func:`repro.solvers.solve`
        (``provenance["spec"]``) and :func:`repro.solvers.solve_many`
        (dedup/cache keys) rely on — see :func:`canonical_bound_spec`.
        """
        return canonical_bound_spec(self.name, bound)


_REGISTRY: Dict[str, SolverEntry] = {}
_DEFAULTS_REGISTERED = False
_BUILTIN_ENTRIES: Dict[str, SolverEntry] = {}


def _ensure_registered() -> None:
    """Register the built-in entries on first use (breaks import cycles)."""
    global _DEFAULTS_REGISTERED
    if not _DEFAULTS_REGISTERED:
        _DEFAULTS_REGISTERED = True
        _register_defaults()
        _BUILTIN_ENTRIES.update(_REGISTRY)


def is_builtin(name: str) -> bool:
    """True when ``name`` currently resolves to the stock package entry.

    False for entries added at runtime via :func:`register` *and* for
    builtin names that were overridden with ``register(..., replace=True)``
    — in both cases a fresh process would resolve the name differently,
    so :func:`repro.solvers.solve_many` must ship the current entry to
    worker processes."""
    _ensure_registered()
    return _REGISTRY.get(name) is _BUILTIN_ENTRIES.get(name)


def register(entry: SolverEntry, replace: bool = False) -> None:
    """Add a solver entry to the registry (``replace=True`` to override)."""
    _ensure_registered()
    if entry.name in _REGISTRY and not replace:
        raise ValueError(f"solver {entry.name!r} is already registered")
    _REGISTRY[entry.name] = entry


def get_entry(name: str) -> SolverEntry:
    """Look up an entry; raises :class:`SpecError` listing the alternatives."""
    _ensure_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        options = sorted(_REGISTRY)
        close = difflib.get_close_matches(name, options, n=3)
        hint = f"; did you mean {', '.join(map(repr, close))}?" if close else ""
        raise SpecError(
            f"unknown solver {name!r}; available solvers: {', '.join(options)}{hint}"
        ) from None


def available_solvers(
    supports_dag: Optional[bool] = None,
    supports_constraint: Optional[bool] = None,
    is_bi_objective: Optional[bool] = None,
    supports_periodic: Optional[bool] = None,
) -> List[str]:
    """Names of registered solvers, optionally filtered by capability.

    Each keyword filter keeps only solvers whose flag matches; ``None``
    (the default) leaves that dimension unfiltered.  For example,
    ``available_solvers(supports_dag=True)`` lists everything that handles
    a :class:`~repro.core.instance.DAGInstance` with precedence edges.
    """
    _ensure_registered()
    names: List[str] = []
    for name, entry in _REGISTRY.items():
        caps = entry.capabilities
        if supports_dag is not None and caps.supports_dag != supports_dag:
            continue
        if supports_constraint is not None and caps.supports_constraint != supports_constraint:
            continue
        if is_bi_objective is not None and caps.is_bi_objective != is_bi_objective:
            continue
        if supports_periodic is not None and caps.supports_periodic != supports_periodic:
            continue
        names.append(name)
    return sorted(names)


def solver_capabilities(name: str) -> SolverCapabilities:
    """Capability flags of a registered solver."""
    return get_entry(name).capabilities


def describe_solvers() -> List[Dict[str, object]]:
    """One record per registered solver (name, summary, capabilities, params)."""
    _ensure_registered()
    records = []
    for name in sorted(_REGISTRY):
        entry = _REGISTRY[name]
        records.append(
            {
                "name": name,
                "summary": entry.summary,
                "supports_dag": entry.capabilities.supports_dag,
                "supports_constraint": entry.capabilities.supports_constraint,
                "is_bi_objective": entry.capabilities.is_bi_objective,
                "supports_periodic": entry.capabilities.supports_periodic,
                "objectives": entry.capabilities.objectives,
                "params": ", ".join(
                    f"{p.name}:{p.type.__name__}" + ("(required)" if p.required else "")
                    for p in entry.params
                ),
            }
        )
    return records


# --------------------------------------------------------------------------- #
# helpers shared by the entries
# --------------------------------------------------------------------------- #
def _as_periodic(instance: AnyInstance, solver: str):
    """Require a periodic instance or explain which facade path to use."""
    if getattr(instance, "kind", None) != "periodic":
        raise SolverCapabilityError(
            f"solver {solver!r} is deadline-aware and only handles periodic "
            f"instances (kind='periodic'); one-shot instances are served by "
            f"the standard solvers: {', '.join(available_solvers(supports_periodic=False))}"
        )
    return instance


def _periodic_extras(result) -> Dict[str, object]:
    """JSON-safe provenance extras shared by the native periodic entries."""
    return {
        "deadline_misses": result.metrics.misses,
        "deadline_miss_ratio": result.metrics.miss_ratio,
        "max_lateness": result.metrics.max_lateness,
        "sim_makespan": result.sim_makespan,
        "unrolled_jobs": len(result.unrolled.jobs),
        "hyperperiod": result.unrolled.source.hyperperiod,
        "horizon": result.unrolled.horizon,
        "task_mmax": result.task_mmax,
        "preemptive": result.preemptive,
    }


def _make_periodic_run(name: str) -> Callable[[AnyInstance, Dict[str, object]], RunOutcome]:
    def run(instance: AnyInstance, params: Dict[str, object]) -> RunOutcome:
        from repro.periodic.schedulers import periodic_edf, periodic_list, periodic_rm

        pinst = _as_periodic(instance, name)
        horizon = params.get("horizon")
        if name == "periodic_list":
            result = periodic_list(pinst, horizon=horizon)
        else:
            fn = periodic_edf if name == "periodic_edf" else periodic_rm
            result = fn(
                pinst,
                horizon=horizon,
                partition=str(params["partition"]),
                preemptive=bool(params["preemptive"]),
            )
        extras = _periodic_extras(result)
        if result.task_assignment is not None:
            extras["partition"] = params.get("partition")
        return result.schedule, (math.inf, math.inf), result, extras

    return run


def _as_independent(instance: AnyInstance, solver: str) -> Instance:
    """Coerce to an independent-task instance or explain which solvers can help."""
    if isinstance(instance, DAGInstance):
        if not instance.is_independent():
            dag_capable = ", ".join(available_solvers(supports_dag=True))
            raise SolverCapabilityError(
                f"solver {solver!r} only handles independent tasks; this instance has "
                f"precedence edges — DAG-capable solvers: {dag_capable}"
            )
        return instance.as_independent()
    return instance


def _single_objective_rho(inner: str, m: int) -> float:
    """A-priori ratio of a named sub-solver on ``m`` processors.

    Used only for entry-level (static) guarantee enumeration; the ratios a
    run actually certifies come from :mod:`repro.solvers.single` at solve
    time.  The PTAS values are ``1 + ε`` at the defaults single.py registers.
    """
    from repro.algorithms.list_scheduling import list_guarantee
    from repro.algorithms.lpt import lpt_guarantee
    from repro.algorithms.multifit import multifit_guarantee
    from repro.solvers.single import PTAS_EPSILONS

    if inner == "list":
        return list_guarantee(m)
    if inner == "lpt":
        return lpt_guarantee(m)
    if inner == "multifit":
        return multifit_guarantee()
    if inner in PTAS_EPSILONS:
        return 1.0 + PTAS_EPSILONS[inner]
    if inner == "exact":
        return 1.0
    return math.inf


def _objective_pair(objective: str, rho: float) -> Tuple[float, float]:
    """Guarantee pair for a single-objective solver run on one objective."""
    return (rho, math.inf) if objective == "time" else (math.inf, rho)


_OBJECTIVE_PARAM = ParamSpec(
    "objective", str, default="time", choices=("time", "memory"),
    doc="which objective to optimize (the §2.1 symmetry swaps p and s)",
)


# --------------------------------------------------------------------------- #
# single-objective entries
# --------------------------------------------------------------------------- #
def _make_single_objective_run(name: str) -> Callable[[AnyInstance, Dict[str, object]], RunOutcome]:
    """Generic run wrapper over the :mod:`repro.solvers.single` sub-solvers.

    The sub-solver returns the ``(schedule, rho)`` pair, so the certified
    guarantee is defined in exactly one place (single.py).
    """

    def run(instance: AnyInstance, params: Dict[str, object]) -> RunOutcome:
        from repro.solvers.single import get_single_objective_solver

        inst = _as_independent(instance, name)
        objective = str(params["objective"])
        schedule, rho = get_single_objective_solver(name)(inst, objective)
        return schedule, _objective_pair(objective, rho), None, {}

    return run


def _run_spt(instance: AnyInstance, params: Dict[str, object]) -> RunOutcome:
    from repro.algorithms.spt import spt_schedule

    inst = _as_independent(instance, "spt")
    schedule = spt_schedule(inst)
    return schedule, (math.inf, math.inf, 1.0), None, {}


def _run_ptas(instance: AnyInstance, params: Dict[str, object]) -> RunOutcome:
    # Custom (not _make_single_objective_run) because epsilon is tunable here,
    # while single.py registers fixed-epsilon variants for SBO's inner use.
    from repro.algorithms.ptas import ptas_schedule

    inst = _as_independent(instance, "ptas")
    objective = str(params["objective"])
    epsilon = float(params["epsilon"])  # type: ignore[arg-type]
    result = ptas_schedule(inst, epsilon=epsilon, objective=objective)
    extras = {"epsilon": epsilon, "exact_dual": result.exact}
    return result.schedule, _objective_pair(objective, result.guarantee), result, extras


# --------------------------------------------------------------------------- #
# the paper's bi-/tri-objective entries
# --------------------------------------------------------------------------- #
def _run_sbo(instance: AnyInstance, params: Dict[str, object]) -> RunOutcome:
    from repro.core.sbo import sbo

    inst = _as_independent(instance, "sbo")
    result = sbo(
        inst,
        delta=float(params["delta"]),  # type: ignore[arg-type]
        cmax_solver=str(params["inner"]),
        mmax_solver=None if params["inner_mmax"] is None else str(params["inner_mmax"]),
    )
    extras = {
        "rho1": result.rho1,
        "rho2": result.rho2,
        "memory_driven_tasks": len(result.memory_driven_tasks),
    }
    return result.schedule, (result.cmax_guarantee, result.mmax_guarantee), result, extras


def _run_rls(instance: AnyInstance, params: Dict[str, object]) -> RunOutcome:
    from repro.core.rls import rls

    result = rls(instance, delta=float(params["delta"]), order=str(params["order"]))  # type: ignore[arg-type]
    extras = {
        "memory_budget": result.memory_budget,
        "marked_processors": len(result.marked_processors),
    }
    return result.schedule, (result.cmax_guarantee, result.mmax_guarantee), result, extras


def _run_trio(instance: AnyInstance, params: Dict[str, object]) -> RunOutcome:
    from repro.core.trio import tri_objective_schedule

    inst = _as_independent(instance, "trio")
    result = tri_objective_schedule(inst, delta=float(params["delta"]))  # type: ignore[arg-type]
    return result.schedule, result.guarantees, result, {"sum_ci_optimal": result.sum_ci_optimal}


def _run_constrained(instance: AnyInstance, params: Dict[str, object]) -> RunOutcome:
    from repro.core.constrained import solve_constrained

    result = solve_constrained(
        instance,
        memory_capacity=float(params["budget"]),  # type: ignore[arg-type]
        order=str(params["order"]),
        refine_iterations=int(params["refine"]),  # type: ignore[arg-type]
        sbo_solver=str(params["inner"]),
    )
    extras = {
        "strategy": result.strategy,
        "certified_infeasible": result.certified_infeasible,
        "effective_delta": result.delta,
    }
    guarantee = (result.cmax_guarantee, result.delta)
    return (result.schedule if result.feasible else None), guarantee, result, extras


# --------------------------------------------------------------------------- #
# Pareto-set approximation and uniform-machines extension entries
# --------------------------------------------------------------------------- #
def _run_pareto_approx(instance: AnyInstance, params: Dict[str, object]) -> RunOutcome:
    from repro.core.pareto_approx import approximate_pareto_set, approximate_pareto_set_dag

    epsilon = float(params["epsilon"])  # type: ignore[arg-type]
    is_dag = isinstance(instance, DAGInstance) and not instance.is_independent()
    if is_dag:
        delta_min = 2.0 if params["delta_min"] is None else float(params["delta_min"])  # type: ignore[arg-type]
        delta_max = 16.0 if params["delta_max"] is None else float(params["delta_max"])  # type: ignore[arg-type]
        aps = approximate_pareto_set_dag(
            instance, epsilon=epsilon, order=str(params["order"]),
            delta_min=delta_min, delta_max=delta_max,
        )
    else:
        delta_min = 1.0 / 16.0 if params["delta_min"] is None else float(params["delta_min"])  # type: ignore[arg-type]
        delta_max = 16.0 if params["delta_max"] is None else float(params["delta_max"])  # type: ignore[arg-type]
        aps = approximate_pareto_set(
            instance, epsilon=epsilon, solver=str(params["inner"]),
            delta_min=delta_min, delta_max=delta_max,
        )
    # The facade returns one schedule; pick the front's "knee": the point
    # minimizing the worse of the two objectives normalized by the front's
    # per-objective minima (ties broken by (Cmax, Mmax) — deterministic).
    schedule = None
    points = [p for p in aps.front.points() if p.payload is not None]
    if points:
        cmax_min = min(p.values[0] for p in points) or 1.0
        mmax_min = min(p.values[1] for p in points) or 1.0
        best = min(
            points,
            key=lambda p: (max(p.values[0] / cmax_min, p.values[1] / mmax_min),
                           p.values[0], p.values[1]),
        )
        schedule = best.payload
    extras = {
        "front_size": len(aps),
        "front_points": [list(v) for v in sorted(aps.points)],
        "deltas_swept": len(aps.deltas),
        "sweep_algorithm": aps.algorithm,
    }
    return schedule, (math.inf, math.inf), aps, extras


def _as_uniform(instance: AnyInstance, solver: str):
    """Coerce to a uniform-machines instance (unit speeds when plain)."""
    from repro.extensions.uniform_machines import UniformInstance

    if isinstance(instance, UniformInstance):
        return instance
    inst = _as_independent(instance, solver)
    return UniformInstance(inst.tasks, speeds=[1.0] * inst.m, name=inst.name)


def _run_uniform_list(instance: AnyInstance, params: Dict[str, object]) -> RunOutcome:
    from repro.extensions.uniform_machines import uniform_list_schedule

    uni = _as_uniform(instance, "uniform_list")
    result = uniform_list_schedule(uni, order=str(params["order"]))
    return result.schedule, (math.inf, math.inf), result, {"speeds": list(uni.speeds)}


def _run_uniform_rls(instance: AnyInstance, params: Dict[str, object]) -> RunOutcome:
    from repro.extensions.uniform_machines import uniform_rls

    uni = _as_uniform(instance, "uniform_rls")
    delta = float(params["delta"])  # type: ignore[arg-type]
    result = uniform_rls(uni, delta=delta, order=str(params["order"]))
    extras = {"memory_budget": result.memory_budget, "speeds": list(uni.speeds)}
    return result.schedule, (math.inf, delta), result, extras


_ORDER = ParamSpec(
    "order", str, default="arbitrary",
    choices=("arbitrary", "spt", "lpt", "bottom-level"),
    doc="tie-breaking priority order for the underlying list scheduler",
)

_UNIFORM_ORDER = ParamSpec(
    "order", str, default="lpt", choices=("lpt", "spt", "arbitrary"),
    doc="task consideration order for earliest-completion-time placement",
)


def _register_defaults() -> None:
    from repro.core.rls import rls_guarantee
    from repro.core.sbo import sbo_guarantee
    from repro.core.trio import tri_objective_guarantee
    from repro.solvers.single import PTAS_EPSILONS, available_single_objective_solvers

    # Sub-solver choices for sbo/constrained come straight from single.py so
    # a solver added there is immediately accepted as an `inner=` value.
    sub_solver_choices = tuple(available_single_objective_solvers())

    single = SolverCapabilities(objectives=("cmax",))
    for name, summary in (
        ("lpt", "Longest Processing Time first (4/3 - 1/(3m) on Cmax)"),
        ("list", "Graham list scheduling (2 - 1/m on Cmax)"),
        ("multifit", "MULTIFIT: FFD + binary search (13/11 on Cmax)"),
        ("exact", "Branch-and-bound exact solver (small instances)"),
    ):
        register(SolverEntry(
            name=name, summary=summary,
            capabilities=single, params=(_OBJECTIVE_PARAM,),
            run=_make_single_objective_run(name),
            guarantee=lambda m, p, _n=name: _objective_pair(
                str(p.get("objective", "time")), _single_objective_rho(_n, m)
            ),
        ))
    register(SolverEntry(
        name="spt", summary="Shortest Processing Time first (optimal on sum Ci)",
        capabilities=SolverCapabilities(objectives=("sum_ci",)), params=(), run=_run_spt,
        guarantee=lambda m, p: (math.inf, math.inf, 1.0),
    ))
    for ptas_name, default_eps in sorted(PTAS_EPSILONS.items()):
        register(SolverEntry(
            name=ptas_name,
            summary=f"Hochbaum–Shmoys dual-approximation PTAS (default ε={default_eps})",
            capabilities=single,
            params=(
                ParamSpec("epsilon", float, default=default_eps, positive=True,
                          doc="accuracy parameter ε > 0"),
                _OBJECTIVE_PARAM,
            ),
            run=_run_ptas,
            guarantee=lambda m, p, _d=default_eps: _objective_pair(
                str(p.get("objective", "time")), 1.0 + float(p.get("epsilon", _d))
            ),
        ))
    register(SolverEntry(
        name="sbo",
        summary="SBO_Δ (Algorithm 1, §3): ((1+Δ)ρ1, (1+1/Δ)ρ2) bi-objective guarantee",
        capabilities=SolverCapabilities(is_bi_objective=True, objectives=("cmax", "mmax")),
        params=(
            ParamSpec("delta", float, default=1.0, positive=True,
                      doc="trade-off parameter Δ > 0 (Δ=1 balances the objectives)"),
            ParamSpec("inner", str, default="lpt", choices=sub_solver_choices,
                      doc="single-objective sub-solver building both π1 and π2"),
            ParamSpec("inner_mmax", str, choices=sub_solver_choices,
                      doc="optional distinct sub-solver for the memory schedule π2"),
        ),
        run=_run_sbo,
        guarantee=lambda m, p: sbo_guarantee(
            float(p.get("delta", 1.0)),
            _single_objective_rho(str(p.get("inner", "lpt")), m),
            _single_objective_rho(str(p.get("inner_mmax") or p.get("inner", "lpt")), m),
        ),
    ))
    register(SolverEntry(
        name="rls",
        summary="RLS_Δ (Algorithm 2, §5.1): precedence-aware restricted list scheduling",
        capabilities=SolverCapabilities(
            supports_dag=True, is_bi_objective=True, objectives=("cmax", "mmax")
        ),
        params=(
            ParamSpec("delta", float, default=2.5, positive=True,
                      doc="memory budget multiplier Δ (Δ > 2 for a Cmax guarantee)"),
            _ORDER,
        ),
        run=_run_rls,
        guarantee=lambda m, p: rls_guarantee(float(p.get("delta", 2.5)), m),
    ))
    register(SolverEntry(
        name="trio",
        summary="Tri-objective RLS_Δ with SPT ties (§5.2): bounds Cmax, Mmax and sum Ci",
        capabilities=SolverCapabilities(
            is_bi_objective=True, objectives=("cmax", "mmax", "sum_ci")
        ),
        params=(
            ParamSpec("delta", float, default=2.5, positive=True,
                      doc="memory budget multiplier Δ (Δ > 2 for finite guarantees)"),
        ),
        run=_run_trio,
        guarantee=lambda m, p: tri_objective_guarantee(float(p.get("delta", 2.5)), m),
    ))
    register(SolverEntry(
        name="constrained",
        summary="§7 resolution of min Cmax s.t. Mmax <= budget (RLS + binary searches)",
        capabilities=SolverCapabilities(
            supports_dag=True, supports_constraint=True, is_bi_objective=True,
            objectives=("cmax", "mmax"),
        ),
        params=(
            ParamSpec("budget", float, required=True, nonnegative=True,
                      doc="per-processor memory capacity M >= 0"),
            _ORDER,
            ParamSpec("refine", int, default=20,
                      doc="binary-search refinement iterations"),
            ParamSpec("inner", str, default="lpt", choices=sub_solver_choices,
                      doc="sub-solver for the SBO refinement on independent tasks"),
        ),
        run=_run_constrained,
        guarantee=None,
    ))
    register(SolverEntry(
        name="pareto_approx",
        summary="§6 Pareto-set approximation: Δ sweep of SBO (independent) or RLS (DAG)",
        capabilities=SolverCapabilities(
            supports_dag=True, is_bi_objective=True, objectives=("cmax", "mmax")
        ),
        params=(
            ParamSpec("epsilon", float, default=0.25, positive=True,
                      doc="geometric Δ-grid ratio (adjacent deltas differ by 1+ε)"),
            ParamSpec("inner", str, default="lpt", choices=sub_solver_choices,
                      doc="SBO sub-solver for the independent-tasks sweep"),
            ParamSpec("order", str, default="bottom-level",
                      choices=("arbitrary", "spt", "lpt", "bottom-level"),
                      doc="RLS tie-breaking order for the DAG sweep"),
            ParamSpec("delta_min", float, positive=True,
                      doc="smallest Δ of the sweep (default 1/16, or 2 on DAGs)"),
            ParamSpec("delta_max", float, positive=True,
                      doc="largest Δ of the sweep (default 16)"),
        ),
        run=_run_pareto_approx,
        guarantee=None,
    ))
    register(SolverEntry(
        name="uniform_list",
        summary="Q|p_j,s_j| extension: earliest-completion-time list scheduling on uniform machines",
        capabilities=SolverCapabilities(objectives=("cmax",)),
        params=(_UNIFORM_ORDER,),
        run=_run_uniform_list,
        guarantee=None,
    ))
    register(SolverEntry(
        name="uniform_rls",
        summary="Q|p_j,s_j| extension: RLS_Δ memory budget + ECT placement on uniform machines",
        capabilities=SolverCapabilities(is_bi_objective=True, objectives=("cmax", "mmax")),
        params=(
            ParamSpec("delta", float, default=2.5, positive=True,
                      doc="memory budget multiplier Δ (Δ >= 2 always feasible)"),
            _UNIFORM_ORDER,
        ),
        run=_run_uniform_rls,
        guarantee=lambda m, p: (math.inf, float(p.get("delta", 2.5))),
    ))
    periodic_caps = SolverCapabilities(
        supports_periodic=True, objectives=("cmax", "mmax", "deadlines")
    )
    _HORIZON = ParamSpec(
        "horizon", float, positive=True,
        doc="study window [0, horizon); default one hyperperiod",
    )
    _PARTITION = ParamSpec(
        "partition", str, default="worst-fit", choices=("worst-fit", "first-fit"),
        doc="task-to-machine partitioning strategy (by decreasing utilization)",
    )
    _PREEMPTIVE = ParamSpec(
        "preemptive", bool, default=True,
        doc="allow preemption at job releases (required for the EDF U<=1 bound)",
    )
    for pname, psummary in (
        ("periodic_edf",
         "Partitioned preemptive EDF over one hyperperiod (optimal on m=1 for U<=1)"),
        ("periodic_rm",
         "Partitioned preemptive rate-monotonic over one hyperperiod"),
    ):
        register(SolverEntry(
            name=pname, summary=psummary,
            capabilities=periodic_caps,
            params=(_HORIZON, _PARTITION, _PREEMPTIVE),
            run=_make_periodic_run(pname),
            guarantee=None,
        ))
    register(SolverEntry(
        name="periodic_list",
        summary="Non-preemptive global list scheduling of release-dated periodic jobs",
        capabilities=periodic_caps,
        params=(_HORIZON,),
        run=_make_periodic_run("periodic_list"),
        guarantee=None,
    ))
