"""The common result protocol returned by :func:`repro.solvers.solve`.

Every algorithm in the package — ``SBO_Δ``, ``RLS_Δ``, the tri-objective
variant, the budget-constrained solver, and the single-objective
sub-solvers — adapts its bespoke result object (``SBOResult``,
``RLSResult``, ``TriObjectiveResult``, ``ConstrainedResult``, or a plain
``Schedule``) into a :class:`SolveResult` without losing anything: the
original object stays reachable through :attr:`SolveResult.raw`.

A :class:`SolveResult` carries:

* the produced :attr:`schedule` (``None`` only for an infeasible
  budget-constrained call),
* the measured :attr:`objectives` (:class:`~repro.core.objectives.ObjectiveValues`),
* the a-priori :attr:`guarantee` tuple ``(Cmax ratio, Mmax ratio[, sum Ci
  ratio])`` — ``inf`` marks an objective the solver does not guarantee,
* the measured :attr:`wall_time` in seconds (useful for throughput
  studies via :func:`repro.solvers.solve_many`),
* a :attr:`provenance` dict recording exactly which solver ran with which
  fully-bound parameters (``{"solver", "spec", "params", "version"}``),
  so results stay attributable long after the call site is gone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.core.objectives import ObjectiveValues
from repro.core.schedule import DAGSchedule, Schedule

__all__ = ["SolveResult"]

AnySchedule = Union[Schedule, DAGSchedule]


@dataclass(frozen=True)
class SolveResult:
    """Uniform outcome of a :func:`repro.solvers.solve` call.

    Attributes
    ----------
    schedule:
        The produced schedule; ``None`` only when a budget-constrained
        solve found the instance infeasible (check :attr:`feasible`).
    objectives:
        Measured ``(Cmax, Mmax, sum Ci)`` record; all ``inf`` when
        infeasible.
    guarantee:
        A-priori approximation-ratio tuple ``(Cmax, Mmax)`` or
        ``(Cmax, Mmax, sum Ci)``; ``inf`` entries mark objectives the
        solver does not bound.
    wall_time:
        Wall-clock seconds spent inside the solver call.
    provenance:
        ``{"solver": name, "spec": canonical bound spec string,
        "params": fully-bound parameter dict, "version": repro version}``
        plus solver-specific extras (e.g. the constrained solver's
        ``strategy``).
    raw:
        The solver's native result object (``SBOResult``, ``RLSResult``,
        ``TriObjectiveResult``, ``ConstrainedResult``, ``PTASResult``) or
        ``None`` for solvers that return a bare schedule.
    """

    schedule: Optional[AnySchedule]
    objectives: ObjectiveValues
    guarantee: Tuple[float, ...]
    wall_time: float
    provenance: Dict[str, object] = field(default_factory=dict)
    raw: object = None

    # ------------------------------------------------------------------ #
    # convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def feasible(self) -> bool:
        """True when a schedule was produced."""
        return self.schedule is not None

    @property
    def cmax(self) -> float:
        return self.objectives.cmax

    @property
    def mmax(self) -> float:
        return self.objectives.mmax

    @property
    def sum_ci(self) -> float:
        return self.objectives.sum_ci

    @property
    def solver(self) -> str:
        """Name of the registry entry that produced this result."""
        return str(self.provenance.get("solver", "?"))

    @property
    def spec(self) -> str:
        """Canonical, fully-bound spec string (reproduces this call)."""
        return str(self.provenance.get("spec", self.solver))

    def guarantee_pair(self) -> Tuple[float, float]:
        """``(Cmax, Mmax)`` guarantee pair (padded with ``inf``)."""
        g = tuple(self.guarantee) + (math.inf, math.inf)
        return (g[0], g[1])

    def summary(self) -> str:
        """One-line human-readable summary."""
        if not self.feasible:
            return f"{self.spec}: infeasible ({self.wall_time * 1e3:.2f} ms)"
        g = ", ".join("inf" if math.isinf(v) else f"{v:.3f}" for v in self.guarantee)
        return (
            f"{self.spec}: Cmax={self.cmax:g} Mmax={self.mmax:g} sumCi={self.sum_ci:g} "
            f"guarantee=({g}) ({self.wall_time * 1e3:.2f} ms)"
        )
