"""Unified solver facade: one ``solve()`` for every algorithm.

The subsystem has four parts:

* :mod:`repro.solvers.spec` — the ``"name(key=value, ...)"`` mini-language
  (:class:`SolverSpec`) with typed validation and round-tripping;
* :mod:`repro.solvers.registry` — the capability-aware registry
  (``supports_dag``, ``supports_constraint``, ``is_bi_objective``, and a
  guarantee function per solver) with filtered enumeration via
  :func:`available_solvers`;
* :mod:`repro.solvers.api` — the :func:`solve` facade returning the common
  :class:`SolveResult` protocol;
* :mod:`repro.solvers.batch` — :func:`solve_many`, a process-pool batch
  runner with per-call timing, job dedup and instance batching;
* :mod:`repro.solvers.cache` — a content-addressed result cache
  (in-memory LRU or persistent on disk) keyed by
  ``(instance.content_hash(), canonical bound spec)``, enabled per call
  (``solve(..., cache=...)``), per process (:func:`configure_cache`) or
  via the CLI (``--cache DIR``).

Quick start::

    from repro import Instance, solve, solve_many, available_solvers

    inst = Instance.from_lists(p=[4, 3, 2, 2, 1], s=[1, 5, 2, 4, 3], m=2)
    result = solve(inst, "sbo(delta=1.0, inner=lpt)")
    print(result.summary())

    print(available_solvers(supports_dag=True))  # ['constrained', 'pareto_approx', 'rls']
    batch = solve_many([inst], ["sbo(delta=0.5)", "rls(delta=2.5)"], workers=2)
"""

from __future__ import annotations

from repro.solvers.spec import SolverSpec, SpecError
from repro.solvers.result import SolveResult
from repro.solvers.registry import (
    ParamSpec,
    SolverCapabilities,
    SolverCapabilityError,
    SolverEntry,
    available_solvers,
    describe_solvers,
    get_entry,
    register,
    solver_capabilities,
)
from repro.solvers.api import PreparedSolve, prepare, solve
from repro.solvers.batch import solve_many
from repro.solvers.cache import (
    CacheStats,
    DiskCache,
    LRUCache,
    ResultCache,
    cache_key,
    configure_cache,
    default_cache,
)
from repro.solvers.single import (
    SolverFn,
    available_single_objective_solvers,
    get_single_objective_solver,
)

__all__ = [
    "solve",
    "prepare",
    "PreparedSolve",
    "solve_many",
    "SolverSpec",
    "SpecError",
    "SolveResult",
    "ParamSpec",
    "SolverCapabilities",
    "SolverCapabilityError",
    "SolverEntry",
    "available_solvers",
    "describe_solvers",
    "get_entry",
    "register",
    "solver_capabilities",
    "SolverFn",
    "available_single_objective_solvers",
    "get_single_objective_solver",
    "CacheStats",
    "DiskCache",
    "LRUCache",
    "ResultCache",
    "cache_key",
    "configure_cache",
    "default_cache",
]
