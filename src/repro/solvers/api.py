"""``solve(instance, spec, **params)`` — the single entry point.

Every algorithm in the package runs through this facade::

    from repro import Instance, solve

    inst = Instance.from_lists(p=[4, 3, 2, 2, 1], s=[1, 5, 2, 4, 3], m=2)
    result = solve(inst, "sbo(delta=1.0, inner=lpt)")
    print(result.objectives, result.guarantee, result.provenance)

``spec`` is either a string in the mini-language of
:mod:`repro.solvers.spec` or a pre-parsed
:class:`~repro.solvers.spec.SolverSpec`; extra keyword arguments override
spec parameters (handy for sweeps: ``solve(inst, "sbo", delta=d)``).

The facade validates the parameters against the registry entry, checks
the entry's capabilities against the instance (a DAG with precedence
edges is rejected by DAG-incapable solvers with a message listing the
capable ones), times the call, and wraps the outcome in the common
:class:`~repro.solvers.result.SolveResult` protocol.
"""

from __future__ import annotations

import time
from typing import Union

from repro.core.instance import DAGInstance, Instance
from repro.core.objectives import ObjectiveValues, evaluate
from repro.solvers.registry import SolverCapabilityError, available_solvers, get_entry
from repro.solvers.result import SolveResult
from repro.solvers.spec import SolverSpec

__all__ = ["solve"]

AnyInstance = Union[Instance, DAGInstance]


def solve(instance: AnyInstance, spec: Union[str, SolverSpec], **params: object) -> SolveResult:
    """Run the solver named by ``spec`` on ``instance``.

    Parameters
    ----------
    instance:
        An independent-task :class:`~repro.core.instance.Instance` or a
        :class:`~repro.core.instance.DAGInstance`.
    spec:
        Spec string (``"rls(delta=2.5)"``) or :class:`SolverSpec`.
    params:
        Keyword overrides merged into the spec's parameters.

    Returns
    -------
    SolveResult
        Schedule, measured objectives, guarantee tuple, wall time and
        provenance.  For ``constrained(budget=...)`` on an infeasible
        instance the schedule is ``None`` (``result.feasible`` is false).

    Raises
    ------
    SpecError
        Malformed spec, unknown solver name, or invalid parameters.
    SolverCapabilityError
        The instance has precedence edges and the solver cannot handle
        them.
    """
    parsed = SolverSpec.parse(spec)
    if params:
        parsed = parsed.with_params(**params)
    entry = get_entry(parsed.name)
    bound = entry.bind(parsed.params)

    if (
        isinstance(instance, DAGInstance)
        and not instance.is_independent()
        and not entry.capabilities.supports_dag
    ):
        dag_capable = ", ".join(available_solvers(supports_dag=True))
        raise SolverCapabilityError(
            f"solver {parsed.name!r} does not support precedence constraints; "
            f"DAG-capable solvers: {dag_capable}"
        )

    start = time.perf_counter()
    schedule, guarantee, raw, extras = entry.run(instance, bound)
    wall_time = time.perf_counter() - start

    if schedule is not None:
        objectives = evaluate(schedule)
    else:
        inf = float("inf")
        objectives = ObjectiveValues(cmax=inf, mmax=inf, sum_ci=inf)

    from repro import __version__  # late import: repro re-exports this module

    bound_spec = SolverSpec(name=parsed.name, params={
        key: value for key, value in bound.items() if value is not None
    })
    provenance = {
        "solver": parsed.name,
        "spec": bound_spec.canonical(),
        "params": dict(bound),
        "version": __version__,
    }
    provenance.update(extras)
    return SolveResult(
        schedule=schedule,
        objectives=objectives,
        guarantee=tuple(guarantee),
        wall_time=wall_time,
        provenance=provenance,
        raw=raw,
    )
