"""``solve(instance, spec, **params)`` — the single entry point.

Every algorithm in the package runs through this facade::

    from repro import Instance, solve

    inst = Instance.from_lists(p=[4, 3, 2, 2, 1], s=[1, 5, 2, 4, 3], m=2)
    result = solve(inst, "sbo(delta=1.0, inner=lpt)")
    print(result.objectives, result.guarantee, result.provenance)

``spec`` is either a string in the mini-language of
:mod:`repro.solvers.spec` or a pre-parsed
:class:`~repro.solvers.spec.SolverSpec`; extra keyword arguments override
spec parameters (handy for sweeps: ``solve(inst, "sbo", delta=d)``).

The facade validates the parameters against the registry entry, checks
the entry's capabilities against the instance (a DAG with precedence
edges is rejected by DAG-incapable solvers with a message listing the
capable ones), times the call, and wraps the outcome in the common
:class:`~repro.solvers.result.SolveResult` protocol.

Every solver is deterministic, so results can be served from a
content-addressed cache (:mod:`repro.solvers.cache`) keyed by
``(instance.content_hash(), canonical bound spec)``.  Pass
``cache=<cache object or directory>`` per call, or install a process-wide
default with :func:`repro.solvers.cache.configure_cache`; ``cache=False``
bypasses even the default.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Union

from repro.core.instance import DAGInstance, Instance
from repro.core.objectives import ObjectiveValues, evaluate
from repro.obs.profile import PROFILER
from repro.solvers.cache import CacheLike, cache_key, resolve_cache
from repro.solvers.registry import (
    SolverEntry,
    SolverCapabilityError,
    available_solvers,
    get_entry,
    is_builtin,
)
from repro.solvers.result import SolveResult
from repro.solvers.spec import SolverSpec

__all__ = ["solve", "prepare", "PreparedSolve"]

AnyInstance = Union[Instance, DAGInstance]


@dataclass(frozen=True)
class PreparedSolve:
    """A validated ``(instance, spec)`` pair, ready to execute or key.

    Produced by :func:`prepare`; carries everything the facade derives
    *before* running a solver: the parsed spec (with overrides merged),
    the registry entry, the fully-bound parameters, the canonical bound
    spec string, and whether the entry is cache-eligible (stock builtin).
    The serving layer (:mod:`repro.service`) uses this to validate
    requests, consult the cache, and coalesce identical in-flight jobs
    without executing anything.
    """

    spec: SolverSpec
    entry: SolverEntry
    bound: dict
    canonical: str
    cacheable: bool


def prepare(
    instance: AnyInstance,
    spec: Union[str, SolverSpec],
    **params: object,
) -> PreparedSolve:
    """Validate ``spec`` against the registry and ``instance`` capabilities.

    Raises exactly what :func:`solve` would raise before execution
    (:class:`~repro.solvers.spec.SpecError`,
    :class:`~repro.solvers.registry.SolverCapabilityError`), without
    running the solver.
    """
    parsed = SolverSpec.parse(spec)
    if params:
        parsed = parsed.with_params(**params)
    entry = get_entry(parsed.name)
    bound = entry.bind(parsed.params)

    if (
        isinstance(instance, DAGInstance)
        and not instance.is_independent()
        and not entry.capabilities.supports_dag
    ):
        dag_capable = ", ".join(available_solvers(supports_dag=True))
        raise SolverCapabilityError(
            f"solver {parsed.name!r} does not support precedence constraints; "
            f"DAG-capable solvers: {dag_capable}"
        )

    if getattr(instance, "kind", None) == "periodic":
        if not entry.capabilities.supports_periodic:
            # Deadline-agnostic solvers see one hyperperiod unroll; gate it
            # here so a budget overflow or a super-polynomial solver's job
            # cap rejects the request before anything runs (or is cached).
            from repro.periodic.unroll import ensure_unrollable

            horizon = bound.get("horizon") if "horizon" in bound else None
            ensure_unrollable(
                instance,
                parsed.name,
                horizon=horizon if isinstance(horizon, float) else None,
            )
    elif entry.capabilities.supports_periodic:
        raise SolverCapabilityError(
            f"solver {parsed.name!r} is deadline-aware and only handles periodic "
            f"instances (kind='periodic'); one-shot solvers: "
            f"{', '.join(available_solvers(supports_periodic=False))}"
        )

    return PreparedSolve(
        spec=parsed,
        entry=entry,
        bound=bound,
        canonical=entry.canonical_spec(bound),
        cacheable=is_builtin(parsed.name),
    )


def solve(
    instance: AnyInstance,
    spec: Union[str, SolverSpec],
    *,
    cache: CacheLike = None,
    **params: object,
) -> SolveResult:
    """Run the solver named by ``spec`` on ``instance``.

    Parameters
    ----------
    instance:
        An independent-task :class:`~repro.core.instance.Instance` or a
        :class:`~repro.core.instance.DAGInstance`.
    spec:
        Spec string (``"rls(delta=2.5)"``) or :class:`SolverSpec`.
    cache:
        ``None`` (default) consults the process-wide default cache if one
        is installed via :func:`~repro.solvers.cache.configure_cache`;
        ``False`` bypasses caching; a directory path or a
        :class:`~repro.solvers.cache.ResultCache` enables it for this
        call (``True`` insists on the installed default and errors when
        there is none).  A hit returns the stored result with
        ``provenance["cache"] == "hit"``.  Only stock builtin solvers
        are cached; runtime-registered or overridden entries bypass the
        cache (their implementation is invisible to the key).
    params:
        Keyword overrides merged into the spec's parameters.

    Returns
    -------
    SolveResult
        Schedule, measured objectives, guarantee tuple, wall time and
        provenance.  For ``constrained(budget=...)`` on an infeasible
        instance the schedule is ``None`` (``result.feasible`` is false).

    Raises
    ------
    SpecError
        Malformed spec, unknown solver name, or invalid parameters.
    SolverCapabilityError
        The instance has precedence edges and the solver cannot handle
        them.
    """
    # Opt-in phase accounting (:mod:`repro.obs.profile`): one boolean read
    # when disabled; timings attributed per solver family when enabled.
    profiling = PROFILER.enabled
    t0 = time.perf_counter() if profiling else 0.0
    prepared = prepare(instance, spec, **params)
    parsed, entry, bound = prepared.spec, prepared.entry, prepared.bound
    canonical = prepared.canonical
    if profiling:
        PROFILER.add(parsed.name, "validation", time.perf_counter() - t0)

    cache_obj = resolve_cache(cache)
    if cache_obj is not None and not prepared.cacheable:
        # Runtime-registered (or overridden) solvers are invisible to the
        # cache key — two implementations could share a name — so their
        # results are never cached or served from the cache.
        cache_obj = None
    key = None
    if cache_obj is not None:
        if profiling:
            t0 = time.perf_counter()
            key = cache_key(instance, canonical)
            t1 = time.perf_counter()
            hit = cache_obj.get(key)
            PROFILER.add(parsed.name, "hashing", t1 - t0)
            PROFILER.add(parsed.name, "serialization", time.perf_counter() - t1)
        else:
            key = cache_key(instance, canonical)
            hit = cache_obj.get(key)
        if hit is not None:
            return replace(hit, provenance={**hit.provenance, "cache": "hit"})

    run_instance: object = instance
    unroll_extras: dict = {}
    if (
        getattr(instance, "kind", None) == "periodic"
        and not entry.capabilities.supports_periodic
    ):
        # Transparent hyperperiod unroll: the solver sees release-dated
        # one-shot jobs while the cache key above stays on the *periodic*
        # instance hash, so cache/service/cluster layers work unchanged.
        from repro.periodic.unroll import unroll

        unrolled = unroll(instance)
        run_instance = unrolled.instance
        unroll_extras = {
            "periodic_unroll": True,
            "unrolled_jobs": len(unrolled.jobs),
            "horizon": unrolled.horizon,
        }

    start = time.perf_counter()
    schedule, guarantee, raw, extras = entry.run(run_instance, bound)
    wall_time = time.perf_counter() - start
    if profiling:
        PROFILER.add(parsed.name, "kernel", wall_time)
    extras = {**unroll_extras, **extras}

    if schedule is not None:
        objectives = evaluate(schedule)
    else:
        inf = float("inf")
        objectives = ObjectiveValues(cmax=inf, mmax=inf, sum_ci=inf)

    from repro import __version__  # late import: repro re-exports this module

    provenance = {
        "solver": parsed.name,
        "spec": canonical,
        "params": dict(bound),
        "version": __version__,
    }
    provenance.update(extras)
    result = SolveResult(
        schedule=schedule,
        objectives=objectives,
        guarantee=tuple(guarantee),
        wall_time=wall_time,
        provenance=provenance,
        raw=raw,
    )
    if cache_obj is not None and key is not None:
        if profiling:
            t0 = time.perf_counter()
            cache_obj.put(key, result)
            PROFILER.add(parsed.name, "serialization", time.perf_counter() - t0)
        else:
            cache_obj.put(key, result)
        result = replace(result, provenance={**provenance, "cache": "miss"})
    return result
