"""The solver mini-language: ``"name(key=value, ...)"`` → :class:`SolverSpec`.

Every algorithm in the package can be named by a compact string spec, e.g.::

    "lpt"
    "ptas(epsilon=0.1)"
    "sbo(delta=0.5, inner=lpt)"
    "rls(delta=2.5, order=bottom-level)"
    "trio(delta=3)"
    "constrained(budget=12.5)"

The grammar is deliberately tiny:

* a solver *name* — letters, digits, ``_`` and ``-`` (e.g. ``ptas-fine``);
* an optional parenthesised, comma-separated list of ``key=value`` pairs.

Values are parsed as Python literals where unambiguous: ``2`` is an
``int``, ``2.5`` and ``1e-3`` are ``float``, ``true``/``false`` are
booleans, ``none``/``null`` is ``None``, ``'quoted'``/``"quoted"`` are
strings, and any remaining bare word (``lpt``, ``bottom-level``) is a
string.  ``str(spec)`` renders the canonical form, and
``SolverSpec.parse(str(spec)) == spec`` round-trips for every spec.

Parameter *validation* (types, ranges, unknown keys) happens against the
registry entry when the spec is executed — see
:mod:`repro.solvers.registry` — so a :class:`SolverSpec` itself is just a
well-formed name plus raw parameters.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Union

__all__ = ["SolverSpec", "SpecError"]


class SpecError(ValueError):
    """Raised for malformed specs, unknown solvers, or bad parameters."""


_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_\-]*")
_KEY_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_BARE_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.\-]*")


def _split_top_level(body: str) -> list:
    """Split a parameter body on commas, honouring quoted strings."""
    chunks = []
    current = []
    quote = None
    escaped = False
    for ch in body:
        if escaped:
            current.append(ch)
            escaped = False
        elif quote is not None:
            current.append(ch)
            if ch == "\\":
                escaped = True
            elif ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
            current.append(ch)
        elif ch == ",":
            chunks.append("".join(current))
            current = []
        else:
            current.append(ch)
    if quote is not None:
        raise SpecError(f"unterminated quoted string in parameter list {body!r}")
    chunks.append("".join(current))
    return chunks


def _unescape(text: str) -> str:
    out = []
    escaped = False
    for ch in text:
        if escaped:
            out.append(ch)
            escaped = False
        elif ch == "\\":
            escaped = True
        else:
            out.append(ch)
    return "".join(out)


def _parse_value(text: str) -> object:
    """Parse a single parameter value token."""
    text = text.strip()
    if not text:
        raise SpecError("empty parameter value")
    if (text[0] == text[-1] == "'" or text[0] == text[-1] == '"') and len(text) >= 2:
        return _unescape(text[1:-1])
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if _BARE_WORD_RE.fullmatch(text):
        return text
    raise SpecError(f"cannot parse parameter value {text!r}")


def _format_value(value: object) -> str:
    """Render a parameter value so that :func:`_parse_value` reads it back."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "none"
    if isinstance(value, int):
        return repr(int(value))
    if isinstance(value, float):
        # Normalize float subclasses (e.g. numpy.float64, whose repr is not
        # reparseable) so the rendered spec always reads back.
        return repr(float(value))
    if isinstance(value, str):
        if _BARE_WORD_RE.fullmatch(value) and value.lower() not in ("true", "false", "none", "null"):
            try:
                float(value)
            except ValueError:
                return value
        return "'" + value.replace("\\", "\\\\").replace("'", "\\'") + "'"
    raise SpecError(f"unsupported parameter value {value!r} (expected int/float/bool/str/None)")


@dataclass(frozen=True)
class SolverSpec:
    """A parsed solver spec: a solver name plus raw keyword parameters.

    Instances are immutable; :meth:`with_params` returns an updated copy,
    which makes parameter sweeps cheap::

        base = SolverSpec.parse("sbo(inner=lpt)")
        specs = [base.with_params(delta=d) for d in (0.25, 1.0, 4.0)]
    """

    name: str
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not _NAME_RE.fullmatch(self.name):
            raise SpecError(f"invalid solver name {self.name!r}")
        for key in self.params:
            if not _KEY_RE.fullmatch(key):
                raise SpecError(f"invalid parameter name {key!r} in spec for {self.name!r}")
        # Defensive copy: decouple from the caller's dict so later mutation of
        # it cannot bypass the validation above.
        object.__setattr__(self, "params", dict(self.params))

    def __hash__(self) -> int:
        # The frozen-dataclass default hash would fail on the dict field;
        # hash the canonical (name, sorted items) view instead so specs can
        # key caches and sets.
        return hash((self.name, tuple(sorted(self.params.items(), key=lambda kv: kv[0]))))

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, text: Union[str, "SolverSpec"]) -> "SolverSpec":
        """Parse ``"name"`` or ``"name(k=v, ...)"`` into a :class:`SolverSpec`."""
        if isinstance(text, SolverSpec):
            return text
        if not isinstance(text, str):
            raise SpecError(f"expected a spec string or SolverSpec, got {type(text).__name__}")
        stripped = text.strip()
        match = _NAME_RE.match(stripped)
        if match is None:
            raise SpecError(f"malformed solver spec {text!r}: expected 'name' or 'name(key=value, ...)'")
        name = match.group(0)
        rest = stripped[match.end():].strip()
        if not rest:
            return cls(name=name)
        if not (rest.startswith("(") and rest.endswith(")")):
            raise SpecError(f"malformed solver spec {text!r}: trailing text {rest!r}")
        body = rest[1:-1].strip()
        params: Dict[str, object] = {}
        if body:
            for chunk in _split_top_level(body):
                if "=" not in chunk:
                    raise SpecError(
                        f"malformed parameter {chunk.strip()!r} in spec {text!r}: expected key=value"
                    )
                key, _, raw = chunk.partition("=")
                key = key.strip()
                if not _KEY_RE.fullmatch(key):
                    raise SpecError(f"invalid parameter name {key!r} in spec {text!r}")
                if key in params:
                    raise SpecError(f"duplicate parameter {key!r} in spec {text!r}")
                params[key] = _parse_value(raw)
        return cls(name=name, params=params)

    def with_params(self, **overrides: object) -> "SolverSpec":
        """A copy of this spec with ``overrides`` merged into the parameters."""
        merged = dict(self.params)
        merged.update(overrides)
        return SolverSpec(name=self.name, params=merged)

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def __str__(self) -> str:
        if not self.params:
            return self.name
        body = ", ".join(f"{key}={_format_value(value)}" for key, value in self.params.items())
        return f"{self.name}({body})"

    def canonical(self) -> str:
        """Canonical string form with parameters in sorted key order."""
        if not self.params:
            return self.name
        body = ", ".join(f"{key}={_format_value(self.params[key])}" for key in sorted(self.params))
        return f"{self.name}({body})"
