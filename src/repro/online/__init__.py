"""Online scheduling subsystem: tasks revealed over time, first class.

The paper leaves online bi-objective scheduling as a perspective; this
package makes it a real solve mode with the same rigor as the offline
facade (:mod:`repro.solvers`):

* :mod:`repro.online.base` — the :class:`OnlineScheduler` protocol:
  construct with ``m``, ``submit(task)`` one arrival at a time (each call
  returns the chosen processor), ``finalize()`` into the common
  :class:`~repro.solvers.result.SolveResult` with full provenance;
* :mod:`repro.online.schedulers` — the adapters: greedy time/memory list
  scheduling (Graham's ``2 - 1/m`` online guarantee),
  :class:`OnlineBiObjectiveScheduler` (the threshold scheduler formerly
  stranded in ``repro.extensions.online``), and
  :class:`HindsightOracle`, the offline-in-hindsight reference used for
  competitive-ratio measurement;
* :mod:`repro.online.registry` — an online registry mirroring
  :mod:`repro.solvers.registry`: spec strings like
  ``"online_sbo(delta=1.0)"`` resolve to fresh scheduler instances via
  :func:`create_online`;
* :mod:`repro.online.arrivals` — arrival models: stochastic streams built
  from :mod:`repro.workloads.distributions`, adversarial permutations of
  offline instances, and serialisable :class:`ArrivalTrace` replay driven
  through :mod:`repro.simulator.engine`;
* :mod:`repro.online.competitive` — prefix-wise competitive-ratio
  measurement against lower bounds or the hindsight oracle.

Quick start::

    from repro.online import create_online, stochastic_trace, replay_trace

    trace = stochastic_trace(n=50, m=4, seed=0)
    scheduler = create_online("online_sbo(delta=1.0)", m=4)
    report = replay_trace(trace, scheduler)
    print(report.result.summary(), report.prefix_rows[-1])

The same scheduler streams over the wire: ``repro serve`` exposes
``session_open`` / ``session_submit`` / ``session_result`` /
``session_close`` ops (see :mod:`repro.service.sessions`), and
``repro online`` runs a trace from the command line.
"""

from __future__ import annotations

from repro.online.base import OnlineScheduler, OnlineSchedulerError, replay_state
from repro.online.schedulers import (
    GreedyScheduler,
    HindsightOracle,
    OnlineBiObjectiveScheduler,
)
from repro.online.registry import (
    OnlineEntry,
    available_online_schedulers,
    create_online,
    describe_online_schedulers,
    get_online_entry,
    register_online,
)
from repro.online.arrivals import (
    ArrivalEvent,
    ArrivalTrace,
    adversarial_trace,
    replay_trace,
    stochastic_trace,
    trace_from_instance,
)
from repro.online.competitive import OnlineRunReport, competitive_report

__all__ = [
    "OnlineScheduler",
    "OnlineSchedulerError",
    "replay_state",
    "GreedyScheduler",
    "OnlineBiObjectiveScheduler",
    "HindsightOracle",
    "OnlineEntry",
    "register_online",
    "get_online_entry",
    "available_online_schedulers",
    "describe_online_schedulers",
    "create_online",
    "ArrivalEvent",
    "ArrivalTrace",
    "stochastic_trace",
    "adversarial_trace",
    "trace_from_instance",
    "replay_trace",
    "OnlineRunReport",
    "competitive_report",
]
