"""The :class:`OnlineScheduler` protocol — streaming counterpart of ``solve()``.

An online scheduler is constructed for a fixed processor count ``m`` and
consumes an arrival sequence one task at a time::

    scheduler = SomeScheduler(m=4)
    for task in arrivals:
        processor = scheduler.submit(task)     # irrevocable placement
    result = scheduler.finalize()              # SolveResult, like solve()

``submit`` returns the chosen processor index — the placement is
*irrevocable*, which is what makes the mode online.  ``finalize`` wraps
the accumulated placement in the package-wide
:class:`~repro.solvers.result.SolveResult` protocol (measured objectives,
a-priori guarantee tuple, provenance with the canonical online spec), so
everything downstream of ``solve()`` — the wire protocol's result
payload, experiment tables, report code — works on online runs unchanged.

Subclasses implement one method, :meth:`OnlineScheduler._place`, choosing
a processor for the next arrival from the running per-processor loads and
memories; the base class owns all bookkeeping (duplicate-id rejection,
prefix objective values, snapshot/finalize plumbing).
"""

from __future__ import annotations

import abc
import time
from typing import Dict, List, Optional, Tuple

from repro.core.instance import Instance
from repro.core.objectives import evaluate
from repro.core.schedule import Schedule
from repro.core.task import Task, TaskSet
from repro.solvers.result import SolveResult

__all__ = ["OnlineScheduler", "OnlineSchedulerError", "replay_state"]


class OnlineSchedulerError(ValueError):
    """Misuse of the online protocol (duplicate id, submit after finalize).

    Subclasses :class:`ValueError` so code written against the original
    ``repro.extensions.online`` scheduler (which raised ``ValueError`` on
    duplicate submissions) keeps working unchanged.
    """


class OnlineScheduler(abc.ABC):
    """Base class of every online scheduler (the streaming solve protocol).

    Parameters
    ----------
    m:
        Number of identical processors; fixed for the scheduler's lifetime.

    Attributes
    ----------
    name:
        Registry entry name (set by :func:`repro.online.registry.create_online`;
        defaults to the class name for directly constructed schedulers).
    spec:
        Canonical bound spec string, e.g. ``"online_sbo(delta=1.0)"``.
    """

    def __init__(self, m: int) -> None:
        if not isinstance(m, int) or isinstance(m, bool):
            raise TypeError(f"m must be an int, got {type(m).__name__}")
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        self.m = m
        self.name: str = type(self).__name__
        self.spec: str = type(self).__name__
        #: Fully-bound registry parameters (set by ``create_online``).
        self.bound_params: Dict[str, object] = {}
        self._loads: List[float] = [0.0] * m
        self._memories: List[float] = [0.0] * m
        self._tasks: List[Task] = []
        self._assignment: Dict[object, int] = {}
        self._finalized: Optional[SolveResult] = None
        self._sealed = False
        self._wall_time = 0.0

    # ------------------------------------------------------------------ #
    # the online interface
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _place(self, task: Task) -> int:
        """Choose a processor for the next arrival (loads/memories exclude it)."""

    def submit(self, task: Task) -> int:
        """Irrevocably place one arriving task; returns the processor chosen."""
        if self._sealed:
            raise OnlineSchedulerError(
                f"scheduler {self.spec!r} is finalized; no further submissions"
            )
        if task.id in self._assignment:
            raise OnlineSchedulerError(f"task {task.id!r} was already submitted")
        started = time.perf_counter()
        proc = self._place(task)
        if not (0 <= proc < self.m):
            raise OnlineSchedulerError(
                f"scheduler {self.spec!r} placed task {task.id!r} on invalid "
                f"processor {proc!r} (m={self.m})"
            )
        self._loads[proc] += task.p
        self._memories[proc] += task.s
        self._tasks.append(task)
        self._assignment[task.id] = proc
        self._wall_time += time.perf_counter() - started
        return proc

    def submit_many(self, tasks) -> List[int]:
        """Submit a sequence of tasks; returns the chosen processors in order."""
        return [self.submit(t) for t in tasks]

    # ------------------------------------------------------------------ #
    # running state
    # ------------------------------------------------------------------ #
    @property
    def cmax(self) -> float:
        """Current makespan of the online schedule."""
        return max(self._loads) if self._loads else 0.0

    @property
    def mmax(self) -> float:
        """Current maximum memory occupation."""
        return max(self._memories) if self._memories else 0.0

    @property
    def n_submitted(self) -> int:
        """Number of tasks placed so far."""
        return len(self._tasks)

    @property
    def is_finalized(self) -> bool:
        return self._finalized is not None

    @property
    def is_sealed(self) -> bool:
        """True once submissions are refused (sealed or finalized)."""
        return self._sealed

    def has_task(self, task_id: object) -> bool:
        """True when a task with this id was already submitted."""
        return task_id in self._assignment

    def seal(self) -> None:
        """Refuse further submissions (idempotent; implied by finalize).

        Sealing before an expensive :meth:`finalize` lets callers move the
        finalization off-thread without racing late submissions: the
        scheduler's state is frozen from the seal onward.
        """
        self._sealed = True

    def assignment(self) -> Dict[object, int]:
        """Copy of the placement so far (task id -> processor)."""
        return dict(self._assignment)

    def export_state(self) -> Dict[str, object]:
        """Serializable ledger state: the arrival stream and its placements.

        Every scheduler in the package is deterministic, so the arrival
        sequence *is* the full ledger state: replaying the tasks in order
        through a fresh scheduler of the same bound spec reproduces every
        internal ledger (loads, memories, routed subsets, running
        averages) exactly.  The exported placements double as a checksum:
        :func:`replay_state` verifies each replayed placement against
        them and refuses a divergent import.  The payload is JSON-safe —
        it travels over the ``session_export`` / ``session_restore`` wire
        ops during cross-shard session handoff.
        """
        tasks = [
            [task.id, float(task.p), float(task.s), task.label]
            for task in self._tasks
        ]
        return {
            "spec": self.spec,
            "name": self.name,
            "m": self.m,
            "params": dict(self.bound_params),
            "tasks": tasks,
            "placements": [self._assignment[task.id] for task in self._tasks],
            "sealed": self._sealed,
        }

    def current_instance(self) -> Instance:
        """The tasks seen so far as an offline :class:`Instance` (arrival order)."""
        return Instance(TaskSet(self._tasks), m=self.m, name="online-prefix")

    def current_schedule(self) -> Schedule:
        """Snapshot of the placement so far as an offline :class:`Schedule`."""
        return Schedule(self.current_instance(), dict(self._assignment))

    # ------------------------------------------------------------------ #
    # finalize
    # ------------------------------------------------------------------ #
    def guarantee(self) -> Tuple[float, ...]:
        """A-priori guarantee tuple of this scheduler (``inf`` = unbounded)."""
        inf = float("inf")
        return (inf, inf)

    def provenance_extras(self) -> Dict[str, object]:
        """Scheduler-specific provenance merged into the finalized result."""
        return {}

    def _final_schedule(self) -> Schedule:
        """The schedule :meth:`finalize` evaluates (hook for oracle subclasses)."""
        return self.current_schedule()

    def finalize(self) -> SolveResult:
        """Seal the run into a :class:`SolveResult` (idempotent).

        The result mirrors what ``solve()`` returns for offline specs:
        measured objectives of the produced schedule, the scheduler's
        a-priori guarantee tuple, cumulative wall time spent placing
        tasks, and provenance carrying the canonical online spec.
        """
        if self._finalized is not None:
            return self._finalized
        self._sealed = True
        started = time.perf_counter()
        schedule = self._final_schedule()
        objectives = evaluate(schedule)
        self._wall_time += time.perf_counter() - started

        from repro import __version__

        provenance: Dict[str, object] = {
            "solver": self.name,
            "spec": self.spec,
            "params": dict(self.bound_params),
            "version": __version__,
            "mode": "online",
            "n_submitted": self.n_submitted,
        }
        provenance.update(self.provenance_extras())
        self._finalized = SolveResult(
            schedule=schedule,
            objectives=objectives,
            guarantee=tuple(self.guarantee()),
            wall_time=self._wall_time,
            provenance=provenance,
            raw=self,
        )
        return self._finalized


def replay_state(state: Dict[str, object]) -> OnlineScheduler:
    """Rebuild a scheduler from :meth:`OnlineScheduler.export_state` output.

    A fresh scheduler of the exported bound spec is created and the
    recorded arrival stream is replayed through it in order.  Because the
    schedulers are deterministic, the replay reproduces the exported
    ledgers bit-for-bit; every replayed placement is verified against the
    exported one and a mismatch raises :class:`OnlineSchedulerError`
    (a divergent import must never silently corrupt a migrated session).
    """
    from repro.online.registry import create_online

    spec = state.get("spec")
    m = state.get("m")
    if not isinstance(spec, str) or not spec:
        raise OnlineSchedulerError("exported state is missing its 'spec' string")
    if not isinstance(m, int) or isinstance(m, bool) or m < 1:
        raise OnlineSchedulerError("exported state is missing a valid 'm'")
    # ``state["params"]`` is informational: the canonical bound spec string
    # already pins every parameter, so the spec alone rebuilds the family.
    scheduler = create_online(spec, m=m)
    tasks = state.get("tasks") or []
    placements = state.get("placements") or []
    if len(tasks) != len(placements):
        raise OnlineSchedulerError(
            f"exported state is inconsistent: {len(tasks)} tasks but "
            f"{len(placements)} placements"
        )
    for record, expected in zip(tasks, placements):
        try:
            task_id, p, s = record[0], record[1], record[2]
            label = record[3] if len(record) > 3 else None
            task = Task(id=task_id, p=p, s=s, label=label)
        except (IndexError, KeyError, TypeError, ValueError) as exc:
            raise OnlineSchedulerError(
                f"exported task record {record!r} is malformed: {exc}"
            ) from None
        proc = scheduler.submit(task)
        if proc != expected:
            raise OnlineSchedulerError(
                f"replay diverged: task {task_id!r} placed on processor "
                f"{proc}, exported state says {expected} — refusing the import"
            )
    if state.get("sealed"):
        scheduler.seal()
    return scheduler
