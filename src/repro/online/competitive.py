"""Prefix-wise competitive-ratio measurement for online runs.

The competitive ratio of an online scheduler on a trace is the worst,
over arrival prefixes, of ``online objective / offline reference`` where
the reference sees the whole prefix in advance.  Two references are
supported:

* ``"lb"`` (default) — the Graham lower bounds
  (:func:`~repro.core.bounds.cmax_lower_bound`,
  :func:`~repro.core.bounds.mmax_lower_bound`) of the prefix instance.
  ``LB <= OPT``, so the reported ratios *upper-bound* the true
  competitive ratios — a ratio below a guarantee certifies the
  guarantee.  This reference is O(n) per prefix and exact enough for the
  ``2 - 1/m`` fallback checks (Graham's bound is proven against LB).
* ``"oracle"`` — an offline :class:`~repro.online.schedulers.HindsightOracle`
  solve of each prefix with a configurable inner spec; tighter but far
  more expensive (one offline solve per measured prefix).

:func:`competitive_report` replays a trace through a spec and returns an
:class:`OnlineRunReport` augmented with per-prefix ratio rows — the
payload behind ``repro online`` and
:mod:`repro.experiments.online_ratio`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.bounds import cmax_lower_bound, mmax_lower_bound
from repro.online.arrivals import ArrivalTrace, OnlineRunReport, replay_trace
from repro.online.registry import create_online
from repro.solvers.spec import SolverSpec

__all__ = ["CompetitiveRow", "OnlineCompetitiveReport", "competitive_report"]


@dataclass(frozen=True)
class CompetitiveRow:
    """Ratios of one measured prefix (``nan``-free: empty refs give inf)."""

    k: int
    cmax: float
    mmax: float
    cmax_ref: float
    mmax_ref: float

    @property
    def cmax_ratio(self) -> float:
        return self.cmax / self.cmax_ref if self.cmax_ref > 0 else (0.0 if self.cmax == 0 else float("inf"))

    @property
    def mmax_ratio(self) -> float:
        return self.mmax / self.mmax_ref if self.mmax_ref > 0 else (0.0 if self.mmax == 0 else float("inf"))


@dataclass
class OnlineCompetitiveReport:
    """A replayed run plus its prefix-wise competitive ratios."""

    run: OnlineRunReport
    reference: str
    rows: List[CompetitiveRow] = field(default_factory=list)

    @property
    def cmax_competitive(self) -> float:
        """Worst (largest) prefix ``Cmax`` ratio."""
        return max((row.cmax_ratio for row in self.rows), default=0.0)

    @property
    def mmax_competitive(self) -> float:
        """Worst (largest) prefix ``Mmax`` ratio."""
        return max((row.mmax_ratio for row in self.rows), default=0.0)

    @property
    def final_row(self) -> Optional[CompetitiveRow]:
        return self.rows[-1] if self.rows else None


def _default_prefixes(n: int) -> List[int]:
    """Quartile prefixes plus the full stream (deduplicated, sorted)."""
    if n == 0:
        return []
    marks = sorted({max(1, (n * q) // 4) for q in (1, 2, 3)} | {n})
    return marks


def _references(
    trace: ArrivalTrace,
    prefixes: Sequence[int],
    reference: str,
    oracle_inner: str,
) -> Dict[int, Tuple[float, float]]:
    refs: Dict[int, Tuple[float, float]] = {}
    for k in prefixes:
        prefix_instance = trace.prefix(k).instance()
        if reference == "lb":
            refs[k] = (cmax_lower_bound(prefix_instance), mmax_lower_bound(prefix_instance))
        else:  # oracle
            from repro.solvers.api import solve

            offline = solve(prefix_instance, oracle_inner, cache=False)
            refs[k] = (offline.cmax, offline.mmax)
    return refs


def competitive_report(
    trace: ArrivalTrace,
    spec: Union[str, SolverSpec] = "online_sbo(delta=1.0)",
    prefixes: Optional[Sequence[int]] = None,
    reference: str = "lb",
    oracle_inner: str = "sbo(delta=1.0)",
    simulate: bool = True,
) -> OnlineCompetitiveReport:
    """Replay ``trace`` through ``spec`` and measure prefix ratios.

    Parameters
    ----------
    trace:
        The arrival sequence.
    spec:
        Online registry spec (``"online_sbo(delta=1.0)"``).
    prefixes:
        Prefix lengths to measure; defaults to the quartiles plus the
        full stream.  Values are clamped to ``[1, len(trace)]``.
    reference:
        ``"lb"`` (Graham lower bounds, default) or ``"oracle"`` (offline
        solve of each prefix with ``oracle_inner``).
    simulate:
        Forwarded to :func:`~repro.online.arrivals.replay_trace`.
    """
    if reference not in ("lb", "oracle"):
        raise ValueError(f"reference must be 'lb' or 'oracle', got {reference!r}")
    n = len(trace)
    if prefixes is None:
        ks = _default_prefixes(n)
    else:
        ks = sorted({min(max(1, int(k)), n) for k in prefixes}) if n else []
    scheduler = create_online(spec, m=trace.m)
    run = replay_trace(trace, scheduler, simulate=simulate)
    refs = _references(trace, ks, reference, oracle_inner)
    prefix_values = {k: (cmax, mmax) for k, cmax, mmax in run.prefix_rows}
    rows = [
        CompetitiveRow(
            k=k,
            cmax=prefix_values[k][0],
            mmax=prefix_values[k][1],
            cmax_ref=refs[k][0],
            mmax_ref=refs[k][1],
        )
        for k in ks
    ]
    return OnlineCompetitiveReport(run=run, reference=reference, rows=rows)
