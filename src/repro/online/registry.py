"""Registry of online schedulers, mirroring :mod:`repro.solvers.registry`.

Spec strings in the same mini-language (:mod:`repro.solvers.spec`) name a
scheduler *family* plus its parameters; :func:`create_online` resolves a
spec into a fresh, stateful :class:`~repro.online.base.OnlineScheduler`
instance for a given processor count::

    scheduler = create_online("online_sbo(delta=2.0)", m=4)

Registered families::

    online_greedy(objective=time|memory)   # Graham list scheduling, 2 - 1/m
    online_sbo(delta=)                     # threshold bi-objective scheduler
    online_hindsight(inner='sbo(delta=1.0)')  # offline-in-hindsight oracle

Entries reuse :class:`~repro.solvers.registry.ParamSpec` for typed
parameter validation, so malformed specs fail with the same quality of
message as the offline registry.  The registry is open:
:func:`register_online` accepts new entries.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple, Union

from repro.online.base import OnlineScheduler
from repro.solvers.registry import ParamSpec, bind_spec_params, canonical_bound_spec
from repro.solvers.spec import SolverSpec, SpecError

__all__ = [
    "OnlineEntry",
    "register_online",
    "get_online_entry",
    "available_online_schedulers",
    "describe_online_schedulers",
    "create_online",
]


@dataclass(frozen=True)
class OnlineEntry:
    """One registered online scheduler family."""

    name: str
    summary: str
    params: Tuple[ParamSpec, ...]
    #: ``factory(m, bound_params) -> OnlineScheduler`` — a *fresh* stateful
    #: scheduler per call (unlike offline entries, which are pure functions).
    factory: Callable[[int, Dict[str, object]], OnlineScheduler]

    def bind(self, raw: Mapping[str, object]) -> Dict[str, object]:
        """Merge raw spec parameters with defaults and validate types."""
        return bind_spec_params(self.name, self.params, raw, noun="online scheduler")

    def canonical_spec(self, bound: Mapping[str, object]) -> str:
        """Canonical fully-bound spec string (``None`` optionals dropped)."""
        return canonical_bound_spec(self.name, bound)


_REGISTRY: Dict[str, OnlineEntry] = {}
_DEFAULTS_REGISTERED = False


def _ensure_registered() -> None:
    global _DEFAULTS_REGISTERED
    if not _DEFAULTS_REGISTERED:
        _DEFAULTS_REGISTERED = True
        _register_defaults()


def register_online(entry: OnlineEntry, replace: bool = False) -> None:
    """Add an online entry to the registry (``replace=True`` to override)."""
    _ensure_registered()
    if entry.name in _REGISTRY and not replace:
        raise ValueError(f"online scheduler {entry.name!r} is already registered")
    _REGISTRY[entry.name] = entry


def get_online_entry(name: str) -> OnlineEntry:
    """Look up an entry; raises :class:`SpecError` listing the alternatives."""
    _ensure_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        options = sorted(_REGISTRY)
        close = difflib.get_close_matches(name, options, n=3)
        hint = f"; did you mean {', '.join(map(repr, close))}?" if close else ""
        raise SpecError(
            f"unknown online scheduler {name!r}; available: {', '.join(options)}{hint}"
        ) from None


def available_online_schedulers() -> List[str]:
    """Sorted names of every registered online scheduler family."""
    _ensure_registered()
    return sorted(_REGISTRY)


def describe_online_schedulers() -> List[Dict[str, object]]:
    """One record per registered family (name, summary, params)."""
    _ensure_registered()
    return [
        {
            "name": name,
            "summary": _REGISTRY[name].summary,
            "params": ", ".join(
                f"{p.name}:{p.type.__name__}" + ("(required)" if p.required else "")
                for p in _REGISTRY[name].params
            ),
        }
        for name in sorted(_REGISTRY)
    ]


def create_online(
    spec: Union[str, SolverSpec],
    m: int,
    **params: object,
) -> OnlineScheduler:
    """Instantiate a fresh online scheduler from a spec string.

    ``params`` are keyword overrides merged into the spec's parameters,
    exactly like :func:`repro.solvers.solve`.  The returned scheduler
    carries its registry ``name``, canonical bound ``spec`` string, and
    ``bound_params`` for provenance.
    """
    parsed = SolverSpec.parse(spec)
    if params:
        parsed = parsed.with_params(**params)
    entry = get_online_entry(parsed.name)
    bound = entry.bind(parsed.params)
    scheduler = entry.factory(m, bound)
    scheduler.name = entry.name
    scheduler.spec = entry.canonical_spec(bound)
    scheduler.bound_params = dict(bound)
    return scheduler


# --------------------------------------------------------------------------- #
# default entries
# --------------------------------------------------------------------------- #
def _register_defaults() -> None:
    from repro.online.schedulers import (
        GreedyScheduler,
        HindsightOracle,
        OnlineBiObjectiveScheduler,
    )

    register_online(OnlineEntry(
        name="online_greedy",
        summary="Graham list scheduling online: least-loaded (time) or "
                "least-full (memory) placement, 2 - 1/m on the greedy objective",
        params=(
            ParamSpec("objective", str, default="time", choices=("time", "memory"),
                      doc="which objective the greedy rule minimizes"),
        ),
        factory=lambda m, p: GreedyScheduler(m, objective=str(p["objective"])),
    ))
    register_online(OnlineEntry(
        name="online_sbo",
        summary="threshold bi-objective scheduler: density-classified arrivals, "
                "greedy per objective (2 - 1/m fallback on each routed subset)",
        params=(
            ParamSpec("delta", float, default=1.0, positive=True,
                      doc="routing threshold Δ > 0 (larger routes more by memory)"),
        ),
        factory=lambda m, p: OnlineBiObjectiveScheduler(m, delta=float(p["delta"])),  # type: ignore[arg-type]
    ))
    register_online(OnlineEntry(
        name="online_hindsight",
        summary="offline-in-hindsight oracle: provisional greedy stream, "
                "finalize() re-solves the revealed instance with an offline spec",
        params=(
            ParamSpec("inner", str, default="sbo(delta=1.0)",
                      doc="offline solver spec run on the revealed instance"),
        ),
        factory=lambda m, p: HindsightOracle(m, inner=str(p["inner"])),
    ))
