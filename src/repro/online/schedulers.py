"""The online scheduler adapters behind the :class:`OnlineScheduler` protocol.

Three families:

* :class:`GreedyScheduler` — Graham's list scheduling run online on one
  objective: each arrival goes to the least-loaded (``objective="time"``)
  or least-full (``objective="memory"``) processor.  The classical
  ``2 - 1/m`` bound holds for *every prefix* of the arrival sequence on
  the greedy objective (the proof is prefix-closed: load of the chosen
  processor ≤ average + max).
* :class:`OnlineBiObjectiveScheduler` — the ``SBO_Δ``-inspired threshold
  scheduler that used to live in ``repro.extensions.online``, now a
  first-class protocol citizen.  Each arrival is classified by comparing
  its time density against its memory density relative to the running
  averages, then placed greedily on the corresponding objective.  The
  certified fallback: tasks routed by time satisfy the ``2 - 1/m`` Graham
  bound *on the time-routed subset*, and symmetrically for memory.
* :class:`HindsightOracle` — the offline-in-hindsight reference for
  competitive-ratio measurement: placements during the stream are
  provisional greedy moves, but :meth:`finalize` re-solves the full
  revealed instance with an offline spec (default ``sbo(delta=1.0)``).
  The ratio of an online scheduler's objectives to the oracle's is the
  empirical competitive ratio.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.schedule import Schedule
from repro.core.task import Task
from repro.online.base import OnlineScheduler
from repro.solvers.result import SolveResult

__all__ = ["GreedyScheduler", "OnlineBiObjectiveScheduler", "HindsightOracle"]


def _argmin(values: List[float]) -> int:
    """Index of the smallest value, lowest index winning ties."""
    return min(range(len(values)), key=lambda q: (values[q], q))


class GreedyScheduler(OnlineScheduler):
    """Online Graham list scheduling on a single objective.

    Parameters
    ----------
    m:
        Number of processors.
    objective:
        ``"time"`` places each arrival on the least-loaded processor
        (``2 - 1/m`` on ``Cmax``); ``"memory"`` on the least-full one
        (``2 - 1/m`` on ``Mmax``).
    """

    def __init__(self, m: int, objective: str = "time") -> None:
        super().__init__(m)
        if objective not in ("time", "memory"):
            raise ValueError(f"objective must be 'time' or 'memory', got {objective!r}")
        self.objective = objective

    def _place(self, task: Task) -> int:
        if self.objective == "time":
            return _argmin(self._loads)
        return _argmin(self._memories)

    def guarantee(self) -> Tuple[float, ...]:
        inf = float("inf")
        bound = 2.0 - 1.0 / self.m
        return (bound, inf) if self.objective == "time" else (inf, bound)

    def provenance_extras(self) -> Dict[str, object]:
        return {"objective": self.objective}


class OnlineBiObjectiveScheduler(OnlineScheduler):
    """Online threshold scheduler for the bi-objective problem.

    Each arriving task is classified by comparing its *time density*
    against its *memory density* relative to the running averages of the
    tasks seen so far (itself included, so the first task is
    well-defined), in the spirit of ``SBO_Δ`` without the offline
    reference values ``C`` and ``M``: a task follows the memory-greedy
    placement when ``p_i / avg_p < delta * s_i / avg_s``, and the
    time-greedy placement otherwise.

    Placement runs each routed subset on its **own Graham ledger**: a
    time-routed task goes to the processor with the smallest cumulative
    *time-routed* load, a memory-routed task to the one with the smallest
    cumulative *memory-routed* storage.  Each subset is therefore exactly
    online list scheduling on its own values, which makes the fallback
    guarantee hold on **every arrival prefix** (Graham's argument is
    prefix-closed): the time-routed subset's makespan is within
    ``2 - 1/m`` of the Graham lower bound of those tasks, and
    symmetrically for the memory-routed subset.  (The earlier
    ``repro.extensions.online`` prototype placed against the *combined*
    ledgers, which empirically violates the per-subset bound — the
    property tests pin the corrected behaviour.)  We do not claim the
    paper's offline guarantee on the combined objectives.

    Parameters
    ----------
    m:
        Number of processors.
    delta:
        Threshold parameter playing the role of ``Δ`` in ``SBO_Δ``:
        larger values route more tasks by memory.
    """

    def __init__(self, m: int, delta: float = 1.0) -> None:
        super().__init__(m)
        delta = float(delta)
        if delta <= 0:
            raise ValueError(f"delta must be > 0, got {delta}")
        self.delta = delta
        self._memory_routed: List[object] = []
        self._sum_p = 0.0
        self._sum_s = 0.0
        # Per-subset Graham ledgers (placement state; the base class keeps
        # tracking the combined loads/memories for cmax/mmax gauges).
        self._time_loads: List[float] = [0.0] * m
        self._memory_stores: List[float] = [0.0] * m

    def _place(self, task: Task) -> int:
        sum_p = self._sum_p + task.p
        sum_s = self._sum_s + task.s
        n = self.n_submitted + 1
        avg_p = sum_p / n
        avg_s = sum_s / n
        if avg_s == 0:
            memory_routed = False
        elif avg_p == 0:
            memory_routed = True
        else:
            memory_routed = (task.p / avg_p) < self.delta * (task.s / avg_s)

        if memory_routed:
            proc = _argmin(self._memory_stores)
            self._memory_stores[proc] += task.s
            self._memory_routed.append(task.id)
        else:
            proc = _argmin(self._time_loads)
            self._time_loads[proc] += task.p
        self._sum_p = sum_p
        self._sum_s = sum_s
        return proc

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def memory_routed_tasks(self) -> Tuple[object, ...]:
        """Ids of tasks that were routed by the memory rule."""
        return tuple(self._memory_routed)

    @property
    def time_routed_tasks(self) -> Tuple[object, ...]:
        """Ids of tasks that were routed by the time rule."""
        routed = set(self._memory_routed)
        return tuple(t.id for t in self._tasks if t.id not in routed)

    def competitive_bounds(self) -> Tuple[float, float]:
        """The ``(2 - 1/m, 2 - 1/m)`` greedy bounds applying to each routed subset."""
        bound = 2.0 - 1.0 / self.m
        return (bound, bound)

    def guarantee(self) -> Tuple[float, ...]:
        # The 2 - 1/m bounds certify the routed subsets, not the combined
        # objectives — report them as inf (unbounded) like pareto_approx.
        inf = float("inf")
        return (inf, inf)

    def provenance_extras(self) -> Dict[str, object]:
        return {
            "delta": self.delta,
            "memory_routed": len(self._memory_routed),
            "fallback_bound": 2.0 - 1.0 / self.m,
        }


class HindsightOracle(OnlineScheduler):
    """Offline-in-hindsight reference scheduler for competitive ratios.

    Streams like any :class:`OnlineScheduler` (placements during the run
    are provisional least-loaded moves so prefix gauges stay meaningful),
    but :meth:`finalize` *re-solves the fully revealed instance offline*
    with ``inner`` — a :mod:`repro.solvers` spec string — and returns that
    result's schedule and objectives.  Dividing an online scheduler's
    final ``Cmax`` / ``Mmax`` by the oracle's yields the empirical
    competitive ratio of the run.

    Parameters
    ----------
    m:
        Number of processors.
    inner:
        Offline spec to solve the revealed instance with
        (default ``"sbo(delta=1.0)"``).
    """

    def __init__(self, m: int, inner: str = "sbo(delta=1.0)") -> None:
        super().__init__(m)
        from repro.solvers.spec import SolverSpec

        self.inner = str(SolverSpec.parse(inner))  # validate early
        self._offline: Optional[SolveResult] = None

    def _place(self, task: Task) -> int:
        return _argmin(self._loads)

    def _solve_offline(self) -> SolveResult:
        if self._offline is None:
            from repro.solvers.api import solve

            self._offline = solve(self.current_instance(), self.inner, cache=False)
        return self._offline

    def _final_schedule(self) -> Schedule:
        return self._solve_offline().schedule

    def guarantee(self) -> Tuple[float, ...]:
        if self._offline is not None:
            return tuple(self._offline.guarantee)
        inf = float("inf")
        return (inf, inf)

    def provenance_extras(self) -> Dict[str, object]:
        offline = self._offline
        extras: Dict[str, object] = {"hindsight": True, "inner": self.inner}
        if offline is not None:
            extras["inner_spec"] = offline.spec
        return extras
