"""Arrival models: how tasks are revealed to an online scheduler.

Three model families produce the same serialisable artifact — an
:class:`ArrivalTrace`, an ordered sequence of ``(time, task)`` events:

* :func:`stochastic_trace` — Poisson-style arrivals with processing times
  and storage sizes drawn from :mod:`repro.workloads.distributions`
  samplers (reproducible from a seed);
* :func:`adversarial_trace` — a hostile permutation of an existing
  offline instance's tasks (decreasing work first, memory spikes first,
  alternating extremes), the classical way to probe online lower bounds;
* :func:`trace_from_instance` — replay of an offline instance in
  insertion order (or with explicit arrival times), turning any workload
  or recorded job log into a stream.

:func:`replay_trace` drives a trace through an
:class:`~repro.online.base.OnlineScheduler` *and* the discrete-event
simulator (:mod:`repro.simulator.engine`), honouring release dates: a
task placed on a busy processor waits for it, a task arriving after the
processor idles starts at its arrival time.  The replay records the
prefix-wise objective values the competitive-ratio experiments and the
``repro online`` CLI report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.instance import Instance
from repro.core.task import Task, TaskSet
from repro.online.base import OnlineScheduler
from repro.solvers.result import SolveResult
from repro.workloads.distributions import Sampler, uniform_sampler

__all__ = [
    "ArrivalEvent",
    "ArrivalTrace",
    "stochastic_trace",
    "adversarial_trace",
    "trace_from_instance",
    "replay_trace",
    "OnlineRunReport",
    "ADVERSARIAL_MODES",
]

#: Supported hostile permutations of :func:`adversarial_trace`.
ADVERSARIAL_MODES = ("lpt_first", "memory_first", "alternating", "density_waves")


@dataclass(frozen=True)
class ArrivalEvent:
    """One arrival: a task revealed at an absolute time."""

    time: float
    task: Task

    def __post_init__(self) -> None:
        if not (self.time >= 0.0):
            raise ValueError(f"arrival time must be >= 0, got {self.time!r}")


class ArrivalTrace:
    """An ordered, serialisable arrival sequence for ``m`` processors.

    Events must be supplied in non-decreasing time order (the order *is*
    the adversary's choice for ties, so it is preserved verbatim).
    """

    __slots__ = ("events", "m", "name")

    def __init__(
        self,
        events: Iterable[ArrivalEvent],
        m: int,
        name: Optional[str] = None,
    ) -> None:
        events = list(events)
        for prev, nxt in zip(events, events[1:]):
            if nxt.time < prev.time:
                raise ValueError(
                    f"arrival times must be non-decreasing; "
                    f"{nxt.task.id!r}@{nxt.time:g} after {prev.task.id!r}@{prev.time:g}"
                )
        seen = set()
        for event in events:
            if event.task.id in seen:
                raise ValueError(f"duplicate task id {event.task.id!r} in trace")
            seen.add(event.task.id)
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        self.events: List[ArrivalEvent] = events
        self.m = int(m)
        self.name = name

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def tasks(self) -> List[Task]:
        """The tasks in arrival order."""
        return [event.task for event in self.events]

    def prefix(self, k: int) -> "ArrivalTrace":
        """The first ``k`` arrivals as a trace."""
        return ArrivalTrace(self.events[:k], m=self.m, name=self.name)

    def instance(self) -> Instance:
        """The full revealed workload as an offline :class:`Instance`."""
        return Instance(TaskSet(self.tasks), m=self.m, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = f" {self.name!r}" if self.name else ""
        return f"ArrivalTrace({name} n={len(self)}, m={self.m})"

    # ------------------------------------------------------------------ #
    # (de)serialisation — the ``repro online --trace`` file format
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "arrival_trace",
            "name": self.name,
            "m": self.m,
            "events": [
                {"time": e.time, "id": e.task.id, "p": e.task.p, "s": e.task.s,
                 **({"label": e.task.label} if e.task.label else {})}
                for e in self.events
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ArrivalTrace":
        if data.get("kind", "arrival_trace") != "arrival_trace":
            raise ValueError(f"not an arrival trace payload: kind={data.get('kind')!r}")
        events = [
            ArrivalEvent(
                time=float(rec["time"]),  # type: ignore[index]
                task=Task(id=rec["id"], p=rec["p"], s=rec["s"], label=rec.get("label")),  # type: ignore[index]
            )
            for rec in data["events"]  # type: ignore[index]
        ]
        return cls(events, m=int(data["m"]), name=data.get("name"))  # type: ignore[arg-type]

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ArrivalTrace":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ArrivalTrace":
        return cls.from_json(Path(path).read_text())


# --------------------------------------------------------------------------- #
# generators
# --------------------------------------------------------------------------- #
def stochastic_trace(
    n: int,
    m: int,
    rate: float = 1.0,
    p_sampler: Optional[Sampler] = None,
    s_sampler: Optional[Sampler] = None,
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> ArrivalTrace:
    """Poisson-style stream: exponential inter-arrival times, sampled tasks.

    ``rate`` is the mean number of arrivals per time unit; ``p_sampler``
    and ``s_sampler`` default to ``uniform_sampler(1, 10)``.  Fully
    deterministic given ``seed``.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    rng = np.random.default_rng(seed)
    p_sampler = p_sampler or uniform_sampler(1.0, 10.0)
    s_sampler = s_sampler or uniform_sampler(1.0, 10.0)
    gaps = rng.exponential(scale=1.0 / rate, size=n)
    times = np.cumsum(gaps)
    p = p_sampler(rng, n)
    s = s_sampler(rng, n)
    events = [
        ArrivalEvent(time=float(times[i]), task=Task(id=i, p=float(p[i]), s=float(s[i])))
        for i in range(n)
    ]
    return ArrivalTrace(events, m=m, name=name or f"stochastic(n={n},m={m},seed={seed})")


def adversarial_trace(
    instance: Instance,
    mode: str = "alternating",
    name: Optional[str] = None,
) -> ArrivalTrace:
    """A hostile permutation of an offline instance, revealed at unit ticks.

    Modes (``ADVERSARIAL_MODES``):

    * ``lpt_first`` — longest tasks first, so greedy commits big work
      before the small equalizers arrive (the classical Graham adversary
      reversed);
    * ``memory_first`` — heaviest storage first, stressing memory routing;
    * ``alternating`` — strict big/small alternation on processing time,
      maximizing the regret of every irrevocable placement;
    * ``density_waves`` — waves sorted by time-per-memory density, so the
      running averages a threshold scheduler adapts to keep shifting.
    """
    if mode not in ADVERSARIAL_MODES:
        raise ValueError(
            f"unknown adversarial mode {mode!r}; expected one of {', '.join(ADVERSARIAL_MODES)}"
        )
    tasks = list(instance.tasks)
    if mode == "lpt_first":
        ranked = sorted(tasks, key=lambda t: (-t.p, str(t.id)))
    elif mode == "memory_first":
        ranked = sorted(tasks, key=lambda t: (-t.s, str(t.id)))
    elif mode == "alternating":
        by_p = sorted(tasks, key=lambda t: (-t.p, str(t.id)))
        ranked = []
        lo, hi = 0, len(by_p) - 1
        while lo <= hi:
            ranked.append(by_p[lo])
            if lo != hi:
                ranked.append(by_p[hi])
            lo += 1
            hi -= 1
    else:  # density_waves
        by_density = sorted(tasks, key=lambda t: (t.density, str(t.id)))
        wave = max(1, len(by_density) // 4)
        ranked = []
        for start in range(0, len(by_density), wave):
            chunk = by_density[start:start + wave]
            ranked.extend(reversed(chunk) if (start // wave) % 2 else chunk)
    events = [ArrivalEvent(time=float(i), task=t) for i, t in enumerate(ranked)]
    base = instance.name or "instance"
    return ArrivalTrace(events, m=instance.m, name=name or f"adversarial({mode},{base})")


def trace_from_instance(
    instance: Instance,
    times: Optional[Sequence[float]] = None,
    name: Optional[str] = None,
) -> ArrivalTrace:
    """Reveal an offline instance in insertion order (optionally timed)."""
    tasks = list(instance.tasks)
    if times is None:
        times = [float(i) for i in range(len(tasks))]
    if len(times) != len(tasks):
        raise ValueError(f"got {len(times)} arrival times for {len(tasks)} tasks")
    events = [ArrivalEvent(time=float(t), task=task) for t, task in zip(times, tasks)]
    return ArrivalTrace(events, m=instance.m, name=name or instance.name)


# --------------------------------------------------------------------------- #
# replay
# --------------------------------------------------------------------------- #
@dataclass
class OnlineRunReport:
    """Outcome of replaying one trace through one online scheduler.

    Attributes
    ----------
    spec:
        Canonical spec of the scheduler that ran.
    trace_name:
        Name of the replayed trace.
    m:
        Processor count.
    placements:
        ``(task id, processor)`` in arrival order.
    prefix_rows:
        One row per arrival: ``(k, cmax, mmax)`` — the objective values
        after the first ``k`` placements (load-based, release dates
        ignored, matching the classical list-scheduling analysis).
    result:
        The finalized :class:`~repro.solvers.result.SolveResult`.
    sim_makespan:
        Arrival-aware makespan measured by replaying the placements
        through the discrete-event simulator with release dates honoured
        (``>=`` the load-based ``cmax`` by construction).
    sim_completions:
        Per-task completion times from the same simulator replay (empty
        when ``simulate=False``).  Deadline-aware callers — e.g. the
        periodic cross-check in
        :func:`repro.workloads.periodic.trace_from_periodic` tests — feed
        this straight into
        :func:`repro.core.objectives.deadline_metrics`.
    """

    spec: str
    trace_name: Optional[str]
    m: int
    placements: List[Tuple[object, int]] = field(default_factory=list)
    prefix_rows: List[Tuple[int, float, float]] = field(default_factory=list)
    result: Optional[SolveResult] = None
    sim_makespan: float = 0.0
    sim_completions: Dict[object, float] = field(default_factory=dict)


def replay_trace(
    trace: ArrivalTrace,
    scheduler: OnlineScheduler,
    simulate: bool = True,
) -> OnlineRunReport:
    """Drive every arrival of ``trace`` through ``scheduler`` and finalize.

    The scheduler must be fresh (no prior submissions) and sized for the
    trace (``scheduler.m == trace.m``).  When ``simulate`` is true the
    resulting placements are additionally replayed through
    :class:`~repro.simulator.engine.SimulationEngine` with release dates:
    a task starts at ``max(arrival time, processor ready time)``, and the
    engine independently re-measures the memory per processor (a
    cross-check the tests assert).
    """
    if scheduler.m != trace.m:
        raise ValueError(
            f"scheduler has m={scheduler.m} but the trace was recorded for m={trace.m}"
        )
    if scheduler.n_submitted:
        raise ValueError(
            f"scheduler already holds {scheduler.n_submitted} tasks; replay needs a fresh one"
        )
    report = OnlineRunReport(spec=scheduler.spec, trace_name=trace.name, m=trace.m)
    ready = [0.0] * trace.m
    starts: List[Tuple[object, int, float, Task]] = []
    for event in trace.events:
        proc = scheduler.submit(event.task)
        report.placements.append((event.task.id, proc))
        report.prefix_rows.append((scheduler.n_submitted, scheduler.cmax, scheduler.mmax))
        start = max(event.time, ready[proc])
        ready[proc] = start + event.task.p
        starts.append((event.task.id, proc, start, event.task))
    report.result = scheduler.finalize()

    if simulate and starts:
        from repro.simulator.engine import SimulationEngine

        engine = SimulationEngine(m=trace.m, strict=True)
        for task_id, proc, start, task in starts:
            engine.submit_task(task_id, proc, start=start, duration=task.p, storage=task.s)
        report.sim_makespan = engine.run()
        report.sim_completions = dict(engine.completion_times)
        measured = engine.memory_per_processor
        expected_mmax = max(measured) if measured else 0.0
        # Cross-check against the *streaming* placements (scheduler.mmax),
        # not the finalized result: a hindsight oracle re-solves offline and
        # legitimately reports a different assignment.
        if abs(expected_mmax - scheduler.mmax) > 1e-9 * max(1.0, expected_mmax):
            raise RuntimeError(
                f"simulator memory check failed: engine measured Mmax={expected_mmax!r}, "
                f"scheduler reported {scheduler.mmax!r}"
            )
    return report
