"""repro — a reproduction of *Scheduling with Storage Constraints* (IPDPS 2008).

This package implements the bi-objective scheduling framework of
Saule, Dutot and Mounié: scheduling tasks on identical processors while
simultaneously minimizing the makespan ``Cmax`` and the maximum cumulative
memory occupation ``Mmax`` of any processor.

Top-level convenience re-exports cover the public API most users need:

* the problem model (:class:`~repro.core.task.Task`,
  :class:`~repro.core.instance.Instance`,
  :class:`~repro.core.instance.DAGInstance`,
  :class:`~repro.core.schedule.Schedule`),
* the paper's algorithms (:func:`~repro.core.sbo.sbo`,
  :func:`~repro.core.rls.rls`, :func:`~repro.core.trio.tri_objective_schedule`,
  :func:`~repro.core.constrained.solve_constrained`),
* the single-objective sub-solvers (``repro.algorithms``),
* lower bounds and Pareto utilities,
* the inapproximability constructions of Section 4
  (``repro.core.impossibility``),
* DAG generators, workload generators, and the discrete-event simulator.

Every algorithm is also reachable through the unified solver facade
(:mod:`repro.solvers`): :func:`solve` executes a spec string like
``"sbo(delta=1.0, inner=lpt)"`` against the capability-aware registry and
returns a uniform :class:`~repro.solvers.result.SolveResult`;
:func:`solve_many` batches (instance × spec) jobs over a process pool.

Quick start::

    from repro import Instance, solve

    inst = Instance.from_lists(p=[4, 3, 2, 2, 1], s=[1, 5, 2, 4, 3], m=2)
    result = solve(inst, "sbo(delta=1.0)")
    print(result.cmax, result.mmax, result.guarantee)
"""

from __future__ import annotations

from repro.core.task import Task, TaskSet
from repro.core.instance import Instance, DAGInstance
from repro.core.schedule import Schedule, DAGSchedule
from repro.core.objectives import evaluate, ObjectiveValues
from repro.core.bounds import (
    cmax_lower_bound,
    mmax_lower_bound,
    graham_memory_lower_bound,
    critical_path_lower_bound,
    sum_ci_lower_bound,
)
from repro.core.pareto import ParetoFront, dominates, pareto_filter
from repro.core.sbo import sbo, SBOResult, sbo_tradeoff_curve
from repro.core.rls import rls, RLSResult, minimum_feasible_delta
from repro.core.trio import tri_objective_schedule, TriObjectiveResult
from repro.core.constrained import solve_constrained, ConstrainedResult
from repro.core.pareto_approx import (
    ApproximateParetoSet,
    approximate_pareto_set,
    approximate_pareto_set_dag,
)
from repro.core import impossibility
from repro.periodic import HyperperiodBudgetError, PeriodicInstance, PeriodicTask
from repro.simulator import simulate_schedule, SimulationReport
from repro.solvers import (
    DiskCache,
    LRUCache,
    SolveResult,
    SolverCapabilityError,
    SolverSpec,
    SpecError,
    available_solvers,
    configure_cache,
    default_cache,
    solve,
    solve_many,
)

__version__ = "1.2.0"

__all__ = [
    "Task",
    "TaskSet",
    "Instance",
    "DAGInstance",
    "Schedule",
    "DAGSchedule",
    "ObjectiveValues",
    "evaluate",
    "cmax_lower_bound",
    "mmax_lower_bound",
    "graham_memory_lower_bound",
    "critical_path_lower_bound",
    "sum_ci_lower_bound",
    "ParetoFront",
    "dominates",
    "pareto_filter",
    "sbo",
    "SBOResult",
    "sbo_tradeoff_curve",
    "rls",
    "RLSResult",
    "minimum_feasible_delta",
    "tri_objective_schedule",
    "TriObjectiveResult",
    "solve_constrained",
    "ConstrainedResult",
    "ApproximateParetoSet",
    "approximate_pareto_set",
    "approximate_pareto_set_dag",
    "impossibility",
    "PeriodicTask",
    "PeriodicInstance",
    "HyperperiodBudgetError",
    "simulate_schedule",
    "SimulationReport",
    "solve",
    "solve_many",
    "SolverSpec",
    "SolveResult",
    "SpecError",
    "SolverCapabilityError",
    "available_solvers",
    "configure_cache",
    "default_cache",
    "LRUCache",
    "DiskCache",
    "__version__",
]
