"""Extension: uniform (related) machines — ``Q | p_j, s_j | Cmax, Mmax``.

The paper's future work mentions non-identical processors.  This module
prototypes the natural generalisation where processor ``q`` has speed
``v_q`` (a task of work ``p_i`` takes ``p_i / v_q`` time on it) while the
storage model is unchanged (code size does not depend on speed).

Two heuristics are provided, with the honest caveat that they carry the
classical uniform-machines guarantees only on the makespan side:

* :func:`uniform_list_schedule` — earliest-completion-time list scheduling,
  the standard 2-approximation-style heuristic for ``Q || Cmax``;
* :func:`uniform_rls` — the RLS_Δ recipe transplanted: a per-processor
  memory budget ``Δ · LB`` (the memory lower bound is speed-independent)
  and earliest-completion-time placement among processors with remaining
  budget.  Memory satisfies ``Mmax ≤ Δ · LB`` by construction whenever the
  run completes; the makespan bound is heuristic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.bounds import mmax_lower_bound
from repro.core.instance import DAGInstance, Instance
from repro.core.rls import InfeasibleDeltaError
from repro.core.schedule import DAGSchedule
from repro.core.task import Task, TaskSet

__all__ = ["UniformInstance", "uniform_list_schedule", "uniform_rls", "uniform_cmax_lower_bound"]


class UniformInstance(Instance):
    """An instance on uniform (related) machines.

    Parameters
    ----------
    tasks:
        The tasks (work ``p`` and storage ``s``).
    speeds:
        Per-processor speeds ``v_q > 0``; ``m`` is implied by their number.
        A task of work ``p_i`` runs for ``p_i / v_q`` time units on
        processor ``q``.
    """

    __slots__ = ("speeds",)

    def __init__(self, tasks, speeds: Sequence[float], name: Optional[str] = None) -> None:
        speeds = [float(v) for v in speeds]
        if not speeds:
            raise ValueError("at least one processor speed is required")
        if any(v <= 0 or not math.isfinite(v) for v in speeds):
            raise ValueError(f"all speeds must be finite and > 0, got {speeds}")
        super().__init__(tasks, m=len(speeds), name=name)
        self.speeds: List[float] = speeds

    @classmethod
    def from_lists(  # type: ignore[override]
        cls,
        p: Sequence[float],
        s: Sequence[float],
        speeds: Sequence[float],
        ids: Optional[Sequence[object]] = None,
        name: Optional[str] = None,
    ) -> "UniformInstance":
        """Build a uniform-machines instance from parallel lists."""
        return cls(TaskSet.from_lists(p, s, ids=ids), speeds=speeds, name=name)

    def _fingerprint_parts(self) -> List[str]:
        parts = super()._fingerprint_parts()
        parts[0] = "kind=uniform"
        parts.extend(f"speed={v!r}" for v in self.speeds)
        return parts

    def execution_time(self, task_id: object, processor: int) -> float:
        """Running time of a task on a given processor (``p_i / v_q``)."""
        return self.task(task_id).p / self.speeds[processor]

    def as_identical(self) -> Instance:
        """Drop the speeds (treat every processor as speed 1)."""
        return Instance(self.tasks, m=self.m, name=self.name)

    # ------------------------------------------------------------------ #
    # (de)serialisation — the ``"uniform"`` wire kind
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON form with ``kind="uniform"`` (``m`` is implied by speeds)."""
        data = super().to_dict()
        data["kind"] = "uniform"
        data["speeds"] = list(self.speeds)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "UniformInstance":
        """Inverse of :meth:`to_dict`; validates ``m`` against the speeds."""
        speeds = [float(v) for v in data["speeds"]]  # type: ignore[union-attr]
        declared_m = data.get("m")
        if declared_m is not None and int(declared_m) != len(speeds):  # type: ignore[arg-type]
            raise ValueError(
                f"uniform payload declares m={declared_m} but carries "
                f"{len(speeds)} speeds"
            )
        tasks = TaskSet(
            Task(id=rec["id"], p=rec["p"], s=rec["s"], label=rec.get("label"))
            for rec in data["tasks"]  # type: ignore[index]
        )
        return cls(tasks, speeds=speeds, name=data.get("name"))  # type: ignore[arg-type]


def uniform_cmax_lower_bound(instance: UniformInstance) -> float:
    """Lower bound on ``C*max`` for uniform machines.

    ``max(total work / total speed, max_i p_i / v_max)`` — the fluid bound
    and the largest-task-on-the-fastest-machine bound.
    """
    total_speed = sum(instance.speeds)
    v_max = max(instance.speeds)
    total_work = instance.tasks.total_p
    max_task = instance.tasks.max_p
    if total_speed == 0:
        return 0.0
    return max(total_work / total_speed, max_task / v_max if v_max > 0 else 0.0)


@dataclass(frozen=True)
class UniformScheduleResult:
    """Outcome of the uniform-machines heuristics."""

    schedule: DAGSchedule
    cmax: float
    mmax: float
    memory_budget: Optional[float]


def _build_schedule(
    instance: UniformInstance,
    assignment: Dict[object, int],
    starts: Dict[object, float],
    finishes: Dict[object, float],
) -> DAGSchedule:
    # DAGSchedule computes completion as start + p, which is wrong under
    # speeds; we therefore store *stretched* start times so that the
    # intervals [start, start + p/v] map onto an identical-machines timeline
    # only for reporting purposes.  To keep objective values exact we build
    # the schedule on a speed-scaled clone of the tasks.
    scaled_tasks = TaskSet(
        t.scaled(p_factor=1.0 / instance.speeds[assignment[t.id]]) for t in instance.tasks
    )
    scaled_instance = DAGInstance(scaled_tasks, m=instance.m, name=instance.name)
    return DAGSchedule(scaled_instance, assignment, starts)


def uniform_list_schedule(
    instance: UniformInstance,
    order: str = "lpt",
) -> UniformScheduleResult:
    """Earliest-completion-time list scheduling on uniform machines.

    Tasks are considered in the given order (LPT by default) and each is
    placed on the processor where it would *complete* first, accounting for
    speeds.
    """
    ranked = instance.tasks.sorted_by("p", reverse=(order == "lpt")) if order in ("lpt", "spt") else instance.tasks.tasks
    ready_time = [0.0] * instance.m
    assignment: Dict[object, int] = {}
    starts: Dict[object, float] = {}
    finishes: Dict[object, float] = {}
    for task in ranked:
        best_q = min(
            range(instance.m),
            key=lambda q: (ready_time[q] + task.p / instance.speeds[q], q),
        )
        starts[task.id] = ready_time[best_q]
        finishes[task.id] = ready_time[best_q] + task.p / instance.speeds[best_q]
        ready_time[best_q] = finishes[task.id]
        assignment[task.id] = best_q
    schedule = _build_schedule(instance, assignment, starts, finishes)
    memories = [0.0] * instance.m
    for task in instance.tasks:
        memories[assignment[task.id]] += task.s
    return UniformScheduleResult(
        schedule=schedule,
        cmax=max(finishes.values(), default=0.0),
        mmax=max(memories, default=0.0),
        memory_budget=None,
    )


def uniform_rls(
    instance: UniformInstance,
    delta: float,
    order: str = "lpt",
) -> UniformScheduleResult:
    """Memory-budgeted earliest-completion-time scheduling on uniform machines.

    The RLS_Δ recipe with speeds: the Graham memory bound ``LB`` is
    speed-independent, every processor's cumulative storage is capped at
    ``Δ · LB``, and each task goes to the feasible processor where it
    completes first.  ``Δ >= 2`` is always feasible by the same argument as
    in the identical-machines case.
    """
    if delta <= 0:
        raise ValueError(f"delta must be > 0, got {delta}")
    lb = mmax_lower_bound(instance)
    budget = delta * lb
    eps = 1e-12 * max(1.0, budget)
    ranked = instance.tasks.sorted_by("p", reverse=(order == "lpt")) if order in ("lpt", "spt") else instance.tasks.tasks
    ready_time = [0.0] * instance.m
    memories = [0.0] * instance.m
    assignment: Dict[object, int] = {}
    starts: Dict[object, float] = {}
    finishes: Dict[object, float] = {}
    for task in ranked:
        feasible = [q for q in range(instance.m) if memories[q] + task.s <= budget + eps]
        if not feasible:
            raise InfeasibleDeltaError(task.id, delta, budget)
        best_q = min(feasible, key=lambda q: (ready_time[q] + task.p / instance.speeds[q], q))
        starts[task.id] = ready_time[best_q]
        finishes[task.id] = ready_time[best_q] + task.p / instance.speeds[best_q]
        ready_time[best_q] = finishes[task.id]
        memories[best_q] += task.s
        assignment[task.id] = best_q
    schedule = _build_schedule(instance, assignment, starts, finishes)
    return UniformScheduleResult(
        schedule=schedule,
        cmax=max(finishes.values(), default=0.0),
        mmax=max(memories, default=0.0),
        memory_budget=budget,
    )
