"""Extension: online bi-objective scheduling (tasks revealed one at a time).

Graham's List Scheduling is naturally online-over-list: it places each task
knowing nothing about the future and still guarantees ``2 - 1/m`` on the
makespan.  The same greedy placement applied to memory guarantees
``2 - 1/m`` on ``Mmax``.  This extension combines the two in the spirit of
``SBO_Δ`` without needing the offline reference values ``C`` and ``M``:

each arriving task is classified by comparing its *time density* against
its *memory density* relative to the running averages of the tasks seen so
far, and is then placed greedily on the least-loaded (resp. least-full)
processor.  Every prefix of the arrival sequence satisfies

* ``Cmax ≤ (2 - 1/m) · C*max + (max seen density ratio) · M*max``-style mixed
  bounds; we do not claim the paper's offline guarantee.  What *is*
  guaranteed — and tested — is the pair of single-objective fallbacks:
  tasks routed by time are within ``2 - 1/m`` of the optimal makespan of
  *those* tasks, and symmetrically for memory-routed tasks.

The class is deliberately small: it demonstrates how the threshold idea
carries over to an online setting, which the paper leaves as perspective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.core.task import Task, TaskSet

__all__ = ["OnlineBiObjectiveScheduler"]


@dataclass
class OnlineBiObjectiveScheduler:
    """Online threshold scheduler for the bi-objective problem.

    Parameters
    ----------
    m:
        Number of processors.
    delta:
        Threshold parameter playing the role of ``Δ`` in ``SBO_Δ``: a task
        follows the memory-greedy placement when
        ``p_i / avg_p < delta * s_i / avg_s`` (densities relative to the
        running averages of what has been seen so far).
    """

    m: int
    delta: float = 1.0
    _loads: List[float] = field(default_factory=list, repr=False)
    _memories: List[float] = field(default_factory=list, repr=False)
    _tasks: List[Task] = field(default_factory=list, repr=False)
    _assignment: Dict[object, int] = field(default_factory=dict, repr=False)
    _memory_routed: List[object] = field(default_factory=list, repr=False)
    _sum_p: float = 0.0
    _sum_s: float = 0.0

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError(f"m must be >= 1, got {self.m}")
        if self.delta <= 0:
            raise ValueError(f"delta must be > 0, got {self.delta}")
        self._loads = [0.0] * self.m
        self._memories = [0.0] * self.m

    # ------------------------------------------------------------------ #
    # online interface
    # ------------------------------------------------------------------ #
    def submit(self, task: Task) -> int:
        """Place one arriving task; returns the processor chosen."""
        if task.id in self._assignment:
            raise ValueError(f"task {task.id!r} was already submitted")
        # Classify against the running averages (the task itself included so
        # the very first task is well-defined).
        sum_p = self._sum_p + task.p
        sum_s = self._sum_s + task.s
        n = len(self._tasks) + 1
        avg_p = sum_p / n
        avg_s = sum_s / n
        if avg_s == 0:
            memory_routed = False
        elif avg_p == 0:
            memory_routed = True
        else:
            memory_routed = (task.p / avg_p) < self.delta * (task.s / avg_s)

        if memory_routed:
            proc = min(range(self.m), key=lambda q: (self._memories[q], q))
            self._memory_routed.append(task.id)
        else:
            proc = min(range(self.m), key=lambda q: (self._loads[q], q))

        self._loads[proc] += task.p
        self._memories[proc] += task.s
        self._tasks.append(task)
        self._assignment[task.id] = proc
        self._sum_p = sum_p
        self._sum_s = sum_s
        return proc

    def submit_many(self, tasks) -> List[int]:
        """Submit a sequence of tasks; returns the chosen processors in order."""
        return [self.submit(t) for t in tasks]

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #
    @property
    def cmax(self) -> float:
        """Current makespan of the online schedule."""
        return max(self._loads) if self._loads else 0.0

    @property
    def mmax(self) -> float:
        """Current maximum memory occupation."""
        return max(self._memories) if self._memories else 0.0

    @property
    def n_submitted(self) -> int:
        """Number of tasks placed so far."""
        return len(self._tasks)

    @property
    def memory_routed_tasks(self) -> Tuple[object, ...]:
        """Ids of tasks that were routed by the memory rule."""
        return tuple(self._memory_routed)

    def current_schedule(self) -> Schedule:
        """Snapshot of the placement so far as an offline :class:`Schedule`."""
        instance = Instance(TaskSet(self._tasks), m=self.m, name="online-snapshot")
        return Schedule(instance, dict(self._assignment))

    def competitive_bounds(self) -> Tuple[float, float]:
        """The ``(2 - 1/m, 2 - 1/m)`` greedy bounds that apply to each routed subset."""
        bound = 2.0 - 1.0 / self.m
        return (bound, bound)
