"""Deprecated location of the online scheduler — use :mod:`repro.online`.

The online bi-objective scheduler graduated from an extension prototype
into the first-class streaming subsystem :mod:`repro.online` (protocol,
registry, arrival models, sessioned serving).  This module remains
importable so existing code keeps working, but it only re-exports the
moved class and warns on import::

    from repro.online import OnlineBiObjectiveScheduler   # new home
    from repro.online import create_online                # spec-driven
    create_online("online_sbo(delta=1.0)", m=4)
"""

from __future__ import annotations

import warnings

from repro.online.schedulers import OnlineBiObjectiveScheduler

__all__ = ["OnlineBiObjectiveScheduler"]

warnings.warn(
    "repro.extensions.online is deprecated; the online scheduler moved to "
    "repro.online (spec 'online_sbo(delta=...)' via repro.online.create_online)",
    DeprecationWarning,
    stacklevel=2,
)
