"""Model extensions beyond the paper's core results.

The paper's concluding remarks (§7) call for "more realistic model
extensions [...] such as conditional task graphs or non identical
processors".  This package prototypes two of those directions, clearly
labelled as extensions (they carry heuristic or weaker guarantees, not the
paper's theorems):

* :mod:`~repro.extensions.uniform_machines` — processors with different
  speeds (``Q | p_j, s_j | Cmax, Mmax``): speed-aware list scheduling and a
  memory-budgeted RLS analogue;
* :mod:`~repro.extensions.online` — tasks revealed one at a time (online
  over list): a threshold rule in the spirit of ``SBO_Δ`` that needs no
  knowledge of future tasks.
"""

from __future__ import annotations

from repro.extensions.uniform_machines import (
    UniformInstance,
    uniform_list_schedule,
    uniform_rls,
)
from repro.extensions.online import OnlineBiObjectiveScheduler

__all__ = [
    "UniformInstance",
    "uniform_list_schedule",
    "uniform_rls",
    "OnlineBiObjectiveScheduler",
]
