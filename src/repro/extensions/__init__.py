"""Model extensions beyond the paper's core results.

The paper's concluding remarks (§7) call for "more realistic model
extensions [...] such as conditional task graphs or non identical
processors".  This package prototypes one of those directions, clearly
labelled as an extension (heuristic or weaker guarantees, not the
paper's theorems):

* :mod:`~repro.extensions.uniform_machines` — processors with different
  speeds (``Q | p_j, s_j | Cmax, Mmax``): speed-aware list scheduling and a
  memory-budgeted RLS analogue.

The online scheduler that used to live here graduated into the
first-class streaming subsystem :mod:`repro.online`;
``repro.extensions.online`` remains as a deprecated shim.
"""

from __future__ import annotations

from repro.extensions.uniform_machines import (
    UniformInstance,
    uniform_list_schedule,
    uniform_rls,
)

__all__ = [
    "UniformInstance",
    "uniform_list_schedule",
    "uniform_rls",
    "OnlineBiObjectiveScheduler",
]


def __getattr__(name: str):
    # Lazy so `import repro.extensions` (e.g. for uniform machines) does not
    # fire the repro.extensions.online deprecation warning.
    if name == "OnlineBiObjectiveScheduler":
        from repro.extensions.online import OnlineBiObjectiveScheduler

        return OnlineBiObjectiveScheduler
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
