"""Distributed request tracing: span ring, trace ids, wire propagation.

A *trace* is one request's journey through the serving stack; a *span*
is one named phase of it (``recv``, ``admission``, ``queue_wait``,
``cache_consult``, ``route``, ``dispatch``, ``kernel``, ``encode``, plus
the client-side root ``request``).  Trace context rides the wire as an
optional ``trace`` field on request payloads::

    {"op": "solve", ..., "trace": {"id": "6f2c...", "span": "a1b2..."}}

The id is generated at the ingress (``ServiceClient`` or the cluster
router) when absent and propagated router → shard → worker unchanged;
each layer that records a span substitutes its own span id as the
downstream parent, so the dump reconstructs the nesting
client → router → shard → kernel.

Spans land in :data:`RECORDER`, a bounded per-process ring — recording
is lock-protected append into a ``deque``, export is JSONL.  The
recorder is **disabled by default**; every instrumented hot path guards
on the single ``RECORDER.enabled`` attribute, and the wire field is
simply absent when no ingress generates it, keeping the protocol
byte-identical to the untraced format.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

__all__ = [
    "SpanRecorder",
    "RECORDER",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "new_trace_id",
    "new_span_id",
    "parse_wire_trace",
    "wire_trace",
    "SPAN_NAMES",
]

#: The span taxonomy (documented in DESIGN.md "Observability layer").
SPAN_NAMES = (
    "request",       # client: whole round trip
    "recv",          # server: bytes read + decode of one request
    "admission",     # service: backpressure / QoS admission wait
    "queue_wait",    # service: admitted job waiting for a worker slot
    "cache_consult", # service: read-through cache lookup
    "route",         # router: shard selection + forward round trip
    "dispatch",      # service: unique-job lifetime (admission → result)
    "kernel",        # service: solver execution in the worker pool
    "encode",        # server: response encode
)


def new_trace_id() -> str:
    """A fresh 64-bit trace id (16 lowercase hex chars)."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 32-bit span id (8 lowercase hex chars)."""
    return os.urandom(4).hex()


def wire_trace(trace_id: str, span_id: str) -> Dict[str, str]:
    """The wire form of a trace context (the ``trace`` request field)."""
    return {"id": trace_id, "span": span_id}


def parse_wire_trace(value: object) -> Optional[Tuple[str, Optional[str]]]:
    """``(trace_id, parent_span_id)`` from a wire ``trace`` field, else None.

    Tolerant by design: tracing must never fail a request, so anything
    that is not a dict with a string ``id`` is treated as absent.
    """
    if not isinstance(value, dict):
        return None
    trace_id = value.get("id")
    if not isinstance(trace_id, str) or not trace_id:
        return None
    span = value.get("span")
    return (trace_id, span if isinstance(span, str) and span else None)


class SpanRecorder:
    """Bounded, thread-safe per-process span ring.

    ``enabled`` is the one attribute hot paths check; when False (the
    default) instrumented code skips span creation entirely.  The ring
    holds the most recent ``capacity`` spans — tracing a busy service
    never grows memory without bound.
    """

    DEFAULT_CAPACITY = 4096

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.enabled = False
        self._capacity = capacity
        self._spans: "deque[Dict[str, object]]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._dropped = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def dropped(self) -> int:
        """Spans evicted by the ring bound since the last :meth:`clear`."""
        return self._dropped

    def resize(self, capacity: int) -> None:
        """Re-bound the ring (keeps the most recent spans that fit)."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        with self._lock:
            self._capacity = capacity
            self._spans = deque(self._spans, maxlen=capacity)

    def record(
        self,
        name: str,
        component: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        start: float,
        duration: float,
        **extra: object,
    ) -> str:
        """Append one finished span to the ring; returns ``span_id``.

        ``start`` is a monotonic timestamp (``time.perf_counter``) —
        comparable within one process, not across processes; ordering
        across processes comes from the parent/child links.
        """
        span: Dict[str, object] = {
            "trace": trace_id,
            "span": span_id,
            "parent": parent_id,
            "name": name,
            "component": component,
            "start": start,
            "dur": duration,
        }
        if extra:
            span.update(extra)
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self._dropped += 1
            self._spans.append(span)
        return span_id

    def span(
        self,
        name: str,
        component: str,
        trace_id: str,
        parent_id: Optional[str] = None,
        **extra: object,
    ) -> "_Span":
        """Context manager recording a span around a ``with`` block."""
        return _Span(self, name, component, trace_id, parent_id, extra)

    def snapshot(self, trace_id: Optional[str] = None) -> List[Dict[str, object]]:
        """Copies of the recorded spans, optionally filtered by trace id."""
        with self._lock:
            spans = [dict(span) for span in self._spans]
        if trace_id is not None:
            spans = [span for span in spans if span.get("trace") == trace_id]
        return spans

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def to_jsonl(self, trace_id: Optional[str] = None) -> str:
        """The ring as JSON Lines (one span object per line)."""
        return "\n".join(
            json.dumps(span, sort_keys=True) for span in self.snapshot(trace_id)
        )


class _Span:
    """Measures a ``with`` block and records it on exit (exceptions too)."""

    __slots__ = ("_recorder", "name", "component", "trace_id", "parent_id",
                 "span_id", "extra", "_start")

    def __init__(self, recorder: SpanRecorder, name: str, component: str,
                 trace_id: str, parent_id: Optional[str], extra: Dict[str, object]) -> None:
        self._recorder = recorder
        self.name = name
        self.component = component
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.span_id = new_span_id()
        self.extra = extra
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        if exc_type is not None:
            self.extra = {**self.extra, "error": exc_type.__name__}
        self._recorder.record(
            self.name, self.component, self.trace_id, self.span_id,
            self.parent_id, self._start, duration, **self.extra,
        )


#: The process-wide recorder every serving layer records into.
RECORDER = SpanRecorder()


def enable_tracing(capacity: Optional[int] = None) -> None:
    """Turn span recording on process-wide (optionally re-bounding the ring)."""
    if capacity is not None:
        RECORDER.resize(capacity)
    RECORDER.enabled = True


def disable_tracing(clear: bool = False) -> None:
    """Turn span recording off; ``clear=True`` also empties the ring."""
    RECORDER.enabled = False
    if clear:
        RECORDER.clear()


def tracing_enabled() -> bool:
    return RECORDER.enabled
