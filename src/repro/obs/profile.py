"""Opt-in phase profiling: where does a solve spend its time?

:data:`PROFILER` accumulates ``(family, phase)`` wall-time totals; the
solver facade (:mod:`repro.solvers.api`) reports its phases into it —
``validation`` (spec parse + capability checks), ``hashing`` (content
hash / cache key), ``kernel`` (the placement kernel itself), and
``serialization`` (cache store round-trips).  The split answers the
profile-guided-speed question the ROADMAP asks ("is the time in the
kernel or around it?") per solver family, without an external profiler.

Everything is off by default: :class:`ProfileScope` costs one attribute
check when disabled, and the facade guards its explicit ``add`` calls
the same way.

::

    from repro.obs.profile import PROFILER, ProfileScope

    PROFILER.enabled = True
    with ProfileScope("sbo", "kernel"):
        run_kernel()
    PROFILER.snapshot()
    # {"sbo": {"kernel": {"seconds": ..., "count": 1}}}
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Tuple

__all__ = [
    "Profiler",
    "ProfileScope",
    "PROFILER",
    "enable_profiling",
    "disable_profiling",
    "PROFILE_PHASES",
]

#: The phase taxonomy the solver facade reports (free-form names are
#: accepted; these are the documented ones).
PROFILE_PHASES = ("validation", "hashing", "kernel", "serialization")


class Profiler:
    """Thread-safe ``(family, phase) -> (total seconds, count)`` ledger."""

    def __init__(self) -> None:
        self.enabled = False
        self._data: Dict[Tuple[str, str], List[float]] = {}
        self._lock = threading.Lock()

    def add(self, family: str, phase: str, seconds: float) -> None:
        """Account ``seconds`` to ``(family, phase)`` (call when enabled)."""
        key = (family, phase)
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self._data[key] = [seconds, 1]
            else:
                entry[0] += seconds
                entry[1] += 1

    def snapshot(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """``{family: {phase: {"seconds": total, "count": n}}}``."""
        with self._lock:
            items = list(self._data.items())
        out: Dict[str, Dict[str, Dict[str, float]]] = {}
        for (family, phase), (seconds, count) in sorted(items):
            out.setdefault(family, {})[phase] = {
                "seconds": seconds, "count": int(count),
            }
        return out

    def reset(self) -> None:
        with self._lock:
            self._data.clear()


#: The process-wide profiler (off by default).
PROFILER = Profiler()


class ProfileScope:
    """Context manager charging a ``with`` block to ``(family, phase)``.

    Checks :data:`PROFILER` ``enabled`` once on entry; when off, entry
    and exit are each a single attribute check.
    """

    __slots__ = ("family", "phase", "_start")

    def __init__(self, family: str, phase: str) -> None:
        self.family = family
        self.phase = phase
        self._start = -1.0

    def __enter__(self) -> "ProfileScope":
        if PROFILER.enabled:
            self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start >= 0.0:
            PROFILER.add(self.family, self.phase, time.perf_counter() - self._start)


def enable_profiling() -> None:
    PROFILER.enabled = True


def disable_profiling(reset: bool = False) -> None:
    PROFILER.enabled = False
    if reset:
        PROFILER.reset()
