"""Unified metrics: Counter / Gauge / Histogram + Prometheus exposition.

The registry holds typed metric families, each optionally labelled::

    reg = MetricsRegistry()
    reqs = reg.counter("repro_requests_total", "Requests", ("family",))
    reqs.inc(1, "sbo")
    lat = reg.histogram("repro_latency_seconds", "Latency", ("family",))
    lat.observe(0.012, "sbo")
    print(reg.render())          # Prometheus text exposition

Histograms use **fixed boundaries**, so merging two histograms is exact
bucket-count addition: the merge of per-shard histograms equals the
histogram of the concatenated samples — the guarantee the old
count-weighted percentile merge in :mod:`repro.cluster.stats` could not
make (that path is kept for the legacy ``stats`` op; the ``metrics`` op
uses this one).  Quantiles are then *estimated* from bucket boundaries
(upper-bound-of-bucket rule), which is the standard Prometheus
trade-off: exact merge, approximate quantile — the reverse of the old
one.

``to_dict`` / ``from_dict`` / ``merge`` give the structured wire form
the cluster router uses to fold shard registries into one.

The process-global :data:`REGISTRY` is what live serving code records
into; it is **disabled by default** and hot paths guard on the single
``REGISTRY.enabled`` attribute.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default latency bucket upper bounds (seconds): 100 µs .. 30 s.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_LabelKey = Tuple[str, ...]


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _format_value(value: float) -> str:
    if value != value:  # nan
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_str(labelnames: Sequence[str], labelvalues: _LabelKey,
               extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = [f'{name}="{_escape_label_value(str(value))}"'
             for name, value in zip(labelnames, labelvalues)]
    pairs.extend(f'{name}="{_escape_label_value(value)}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Metric:
    """Common shape: a named family of label-keyed series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        if not name:
            raise ValueError("metric name must be non-empty")
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labelvalues: Tuple[object, ...]) -> _LabelKey:
        if len(labelvalues) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected {len(self.labelnames)} label value(s) "
                f"{self.labelnames}, got {len(labelvalues)}"
            )
        return tuple(str(v) for v in labelvalues)

    def _header(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Metric):
    """Monotonically increasing value (per label set)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, *labelvalues: object) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only increase, got {amount}")
        key = self._key(labelvalues)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def set_total(self, value: float, *labelvalues: object) -> None:
        """Overwrite the total — for adapters mirroring an external counter."""
        key = self._key(labelvalues)
        with self._lock:
            self._values[key] = float(value)

    def value(self, *labelvalues: object) -> float:
        with self._lock:
            return self._values.get(self._key(labelvalues), 0.0)

    def collect(self) -> Dict[_LabelKey, float]:
        with self._lock:
            return dict(self._values)

    def render(self) -> List[str]:
        values = self.collect()
        lines = self._header()
        for key in sorted(values):
            lines.append(
                f"{self.name}{_label_str(self.labelnames, key)} "
                f"{_format_value(values[key])}"
            )
        return lines


class Gauge(_Metric):
    """Instantaneous value that can go up or down (per label set)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[_LabelKey, float] = {}

    def set(self, value: float, *labelvalues: object) -> None:
        key = self._key(labelvalues)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, *labelvalues: object) -> None:
        key = self._key(labelvalues)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, *labelvalues: object) -> None:
        self.inc(-amount, *labelvalues)

    def value(self, *labelvalues: object) -> float:
        with self._lock:
            return self._values.get(self._key(labelvalues), 0.0)

    def collect(self) -> Dict[_LabelKey, float]:
        with self._lock:
            return dict(self._values)

    def render(self) -> List[str]:
        values = self.collect()
        lines = self._header()
        for key in sorted(values):
            lines.append(
                f"{self.name}{_label_str(self.labelnames, key)} "
                f"{_format_value(values[key])}"
            )
        return lines


class _HistogramSeries:
    __slots__ = ("buckets", "total", "count")

    def __init__(self, nbuckets: int) -> None:
        self.buckets = [0] * nbuckets   # one per boundary + one overflow
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-boundary histogram; merging is exact bucket addition.

    ``boundaries`` are the inclusive upper bounds of the finite buckets
    (Prometheus ``le`` semantics); one implicit ``+Inf`` bucket catches
    the overflow.  Two histograms with identical boundaries merge by
    adding bucket counts, counts, and sums — exactly the histogram the
    concatenated sample stream would have produced.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError(f"{name}: at least one bucket boundary required")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"{name}: boundaries must be strictly increasing")
        if any(b != b or b == math.inf for b in bounds):
            raise ValueError(f"{name}: boundaries must be finite (got {bounds})")
        self.boundaries: Tuple[float, ...] = bounds
        self._series: Dict[_LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, *labelvalues: object) -> None:
        key = self._key(labelvalues)
        index = bisect.bisect_left(self.boundaries, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.boundaries) + 1)
            series.buckets[index] += 1
            series.total += value
            series.count += 1

    def collect(self) -> Dict[_LabelKey, Dict[str, object]]:
        with self._lock:
            return {
                key: {"buckets": list(s.buckets), "sum": s.total, "count": s.count}
                for key, s in self._series.items()
            }

    def quantile(self, q: float, *labelvalues: object) -> float:
        """Estimated ``q``-quantile (0..1): upper bound of the covering bucket.

        ``nan`` when the series is empty; ``+Inf``-bucket hits report the
        largest finite boundary (the standard Prometheus convention).
        """
        key = self._key(labelvalues)
        with self._lock:
            series = self._series.get(key)
            if series is None or series.count == 0:
                return math.nan
            buckets, count = list(series.buckets), series.count
        rank = max(1, math.ceil(q * count))
        cumulative = 0
        for index, bucket_count in enumerate(buckets):
            cumulative += bucket_count
            if cumulative >= rank:
                return self.boundaries[min(index, len(self.boundaries) - 1)]
        return self.boundaries[-1]

    def merge_series(self, key: _LabelKey, buckets: Sequence[int],
                     total: float, count: int) -> None:
        """Fold one external series (same boundaries) into this histogram."""
        if len(buckets) != len(self.boundaries) + 1:
            raise ValueError(
                f"{self.name}: cannot merge series with {len(buckets)} buckets "
                f"into {len(self.boundaries) + 1}"
            )
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.boundaries) + 1)
            for index, bucket_count in enumerate(buckets):
                series.buckets[index] += int(bucket_count)
            series.total += float(total)
            series.count += int(count)

    def render(self) -> List[str]:
        collected = self.collect()
        lines = self._header()
        for key in sorted(collected):
            data = collected[key]
            cumulative = 0
            for boundary, bucket_count in zip(self.boundaries, data["buckets"]):
                cumulative += bucket_count
                lines.append(
                    f"{self.name}_bucket"
                    f"{_label_str(self.labelnames, key, (('le', f'{boundary:g}'),))} "
                    f"{cumulative}"
                )
            cumulative += data["buckets"][-1]
            lines.append(
                f"{self.name}_bucket"
                f"{_label_str(self.labelnames, key, (('le', '+Inf'),))} {cumulative}"
            )
            lines.append(
                f"{self.name}_sum{_label_str(self.labelnames, key)} "
                f"{_format_value(data['sum'])}"
            )
            lines.append(
                f"{self.name}_count{_label_str(self.labelnames, key)} {data['count']}"
            )
        return lines


class MetricsRegistry:
    """A named collection of metrics with get-or-create accessors.

    ``enabled`` gates *recording* on the process-global instance — the
    registry object itself always works (adapters build throwaway
    registries from stats snapshots regardless of the flag).
    """

    def __init__(self) -> None:
        self.enabled = False
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: Sequence[str], **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}{existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "", labelnames: Sequence[str] = (),
                  boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, boundaries=boundaries
        )  # type: ignore[return-value]

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    def render(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")

    # ------------------------------------------------------------------ #
    # structured wire form (the `metrics` op payload; exact cross-shard
    # merge happens on these dicts)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        with self._lock:
            metrics = dict(self._metrics)
        out: Dict[str, object] = {}
        for name, metric in sorted(metrics.items()):
            entry: Dict[str, object] = {
                "kind": metric.kind,
                "help": metric.help,
                "labels": list(metric.labelnames),
            }
            if isinstance(metric, Histogram):
                entry["boundaries"] = list(metric.boundaries)
            entry["series"] = {
                "\t".join(key): value for key, value in metric.collect().items()
            }
            out[name] = entry
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "MetricsRegistry":
        registry = cls()
        registry.merge(payload)
        return registry

    def merge(self, payload: Mapping[str, object]) -> None:
        """Fold a :meth:`to_dict` payload into this registry.

        Counters and histogram series **add**; gauges add too (the
        cluster reading of a gauge like queue depth is the sum over
        shards).  Histogram addition is exact: same boundaries, bucket
        counts summed.
        """
        for name, entry in payload.items():
            if not isinstance(entry, Mapping):
                continue
            kind = entry.get("kind")
            help_text = str(entry.get("help", ""))
            labelnames = tuple(str(n) for n in entry.get("labels", ()))
            series = entry.get("series", {})
            if not isinstance(series, Mapping):
                continue
            if kind == "histogram":
                boundaries = tuple(
                    float(b) for b in entry.get("boundaries", DEFAULT_LATENCY_BUCKETS)
                )
                metric = self.histogram(name, help_text, labelnames, boundaries)
                for packed, data in series.items():
                    if not isinstance(data, Mapping):
                        continue
                    key = tuple(str(packed).split("\t")) if labelnames else ()
                    metric.merge_series(
                        key,
                        [int(c) for c in data.get("buckets", [])],
                        float(data.get("sum", 0.0)),
                        int(data.get("count", 0)),
                    )
            elif kind == "gauge":
                metric = self.gauge(name, help_text, labelnames)
                for packed, value in series.items():
                    key = tuple(str(packed).split("\t")) if labelnames else ()
                    metric.inc(float(value), *key)
            elif kind == "counter":
                metric = self.counter(name, help_text, labelnames)
                for packed, value in series.items():
                    key = tuple(str(packed).split("\t")) if labelnames else ()
                    metric.inc(float(value), *key)


#: The process-wide live registry serving code records into (off by default).
REGISTRY = MetricsRegistry()

#: Live request-latency histograms recorded by the service hot path when
#: :data:`REGISTRY` is enabled.  Families are the solver registry entry
#: names; phases mirror the ``phases`` stats breakdown.
REQUEST_LATENCY = REGISTRY.histogram(
    "repro_request_latency_seconds",
    "End-to-end request latency by solver family",
    ("family",),
)
PHASE_LATENCY = REGISTRY.histogram(
    "repro_phase_latency_seconds",
    "Unique-job phase latency (queue_wait / exec) by solver family",
    ("phase", "family"),
)


def enable_metrics() -> None:
    """Turn live metric recording on process-wide."""
    REGISTRY.enabled = True


def disable_metrics() -> None:
    REGISTRY.enabled = False


def metrics_enabled() -> bool:
    return REGISTRY.enabled


def merge_registry_dicts(payloads: Iterable[Mapping[str, object]]) -> MetricsRegistry:
    """One registry holding the exact sum of several ``to_dict`` payloads."""
    merged = MetricsRegistry()
    for payload in payloads:
        merged.merge(payload)
    return merged


__all__.append("merge_registry_dicts")
__all__.extend(["REQUEST_LATENCY", "PHASE_LATENCY"])
