"""A tiny asyncio HTTP endpoint serving Prometheus text exposition.

``repro serve --metrics-port N`` (and the cluster equivalent) starts
one of these next to the wire-protocol listener.  It speaks just enough
HTTP/1.1 for a scraper: any ``GET`` path returns the current exposition
(conventionally scraped at ``/metrics``), everything else is a 405.
One registry render per request — no background sampling loop, no
threads, no third-party dependency.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Union

__all__ = ["start_metrics_server", "CONTENT_TYPE"]

#: The Prometheus text exposition content type (format version 0.0.4).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

Provider = Callable[[], Union[str, Awaitable[str]]]

_MAX_REQUEST_BYTES = 16384


async def _handle_scrape(
    provider: Provider,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        request_line = await reader.readline()
        # Drain headers until the blank line; scrapers send few and small.
        consumed = len(request_line)
        while consumed < _MAX_REQUEST_BYTES:
            line = await reader.readline()
            consumed += len(line)
            if line in (b"\r\n", b"\n", b""):
                break
        parts = request_line.decode("latin-1", "replace").split()
        method = parts[0].upper() if parts else ""
        if method not in ("GET", "HEAD"):
            body = b"metrics endpoint: GET only\n"
            status = "405 Method Not Allowed"
        else:
            text = provider()
            if asyncio.iscoroutine(text):
                text = await text
            body = str(text).encode("utf-8")
            status = "200 OK"
        head = (
            f"HTTP/1.1 {status}\r\n"
            f"Content-Type: {CONTENT_TYPE}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head if method == "HEAD" else head + body)
        await writer.drain()
    except (ConnectionError, asyncio.IncompleteReadError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def start_metrics_server(
    provider: Provider,
    host: str = "127.0.0.1",
    port: int = 0,
) -> asyncio.AbstractServer:
    """Serve ``provider()`` (the exposition text) over HTTP on ``host:port``.

    ``provider`` may be sync or async; it is called once per scrape.
    Returns the listening server (``server.sockets[0].getsockname()[1]``
    reports the bound port — ``port=0`` picks a free one).
    """

    async def handler(reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        await _handle_scrape(provider, reader, writer)

    return await asyncio.start_server(handler, host, port)
