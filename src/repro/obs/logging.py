"""Structured JSON event logging for the events that used to vanish.

``log_event("shard_dead", shard="shard-1", reason="probe")`` emits one
JSON object per line to the configured sink (stderr by default) — shard
death and reap, session journal replay, autoscale decisions, framing
negotiation, and the slow-request log all go through here.

Off by default: every call site pays one attribute check
(``LOG.enabled``).  The slow-request log is its own opt-in
(``ServiceConfig(slow_request_threshold=...)``) and bypasses the global
flag with ``_force=True`` — configuring a threshold *is* the enable.

The sink is injectable (:func:`set_log_sink`) so tests capture events
without touching stderr; the default sink never raises (a broken pipe
must not take the service down with it).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Callable, Dict, List, Optional

__all__ = [
    "LOG",
    "EventLog",
    "enable_logging",
    "disable_logging",
    "log_event",
    "set_log_sink",
]

Sink = Callable[[Dict[str, object]], None]


def _stderr_sink(record: Dict[str, object]) -> None:
    try:
        sys.stderr.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        sys.stderr.flush()
    except (OSError, ValueError):  # closed stream mid-shutdown: drop, don't raise
        pass


class EventLog:
    """The process-wide structured log: an enabled flag plus a sink."""

    def __init__(self) -> None:
        self.enabled = False
        self._sink: Sink = _stderr_sink
        self._lock = threading.Lock()

    def emit(self, event: str, fields: Dict[str, object]) -> None:
        record: Dict[str, object] = {"event": event, "ts": time.time()}
        record.update(fields)
        with self._lock:
            sink = self._sink
        sink(record)

    def set_sink(self, sink: Optional[Sink]) -> None:
        with self._lock:
            self._sink = sink if sink is not None else _stderr_sink


#: The process-wide event log (off by default).
LOG = EventLog()


def log_event(event: str, _force: bool = False, **fields: object) -> None:
    """Emit one structured event line when logging is on.

    ``_force=True`` bypasses the global flag — used by features that are
    their own opt-in (the slow-request log).
    """
    if not (LOG.enabled or _force):
        return
    LOG.emit(event, fields)


def enable_logging(sink: Optional[Sink] = None) -> None:
    """Turn structured logging on (optionally installing a sink)."""
    if sink is not None:
        LOG.set_sink(sink)
    LOG.enabled = True


def disable_logging() -> None:
    LOG.enabled = False


def set_log_sink(sink: Optional[Sink]) -> None:
    """Install ``sink`` (``None`` restores the stderr default)."""
    LOG.set_sink(sink)


class CapturedEvents:
    """A list-backed sink for tests: ``with CapturedEvents() as events: ...``."""

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []
        self._previous_enabled = False

    def __enter__(self) -> "CapturedEvents":
        self._previous_enabled = LOG.enabled
        LOG.set_sink(self.records.append)
        LOG.enabled = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        LOG.enabled = self._previous_enabled
        LOG.set_sink(None)

    def of(self, event: str) -> List[Dict[str, object]]:
        return [r for r in self.records if r.get("event") == event]


__all__.append("CapturedEvents")
