"""Observability layer: tracing, unified metrics, profiling, structured logs.

One subsystem turns the scattered per-layer stats snapshots
(:mod:`repro.service.stats`, :mod:`repro.qos.stats`,
:mod:`repro.cluster.stats`) into artifacts standard tooling understands:

* :mod:`repro.obs.trace` — distributed request tracing.  A ``trace``
  wire field (id + parent span) rides the existing protocol, spans are
  captured into a bounded per-process ring
  (:data:`~repro.obs.trace.RECORDER`) and exported as JSONL via the
  ``trace`` wire op / ``repro trace dump``.
* :mod:`repro.obs.metrics` — typed ``Counter`` / ``Gauge`` /
  ``Histogram`` primitives with *mergeable* fixed-boundary histograms
  (bucket counts add, so a cross-shard merge is exactly the histogram
  of the concatenated samples), Prometheus text exposition, and a tiny
  asyncio scrape endpoint (``repro serve --metrics-port``).
* :mod:`repro.obs.adapters` — populate a registry from the existing
  stats snapshots without changing them.
* :mod:`repro.obs.profile` — opt-in ``ProfileScope`` phase accounting
  (kernel vs validation vs hashing vs serialization, per family).
* :mod:`repro.obs.logging` — structured JSON event log for the things
  that used to vanish silently (shard death, journal replay, autoscale
  decisions, framing negotiation) plus the slow-request log.

Everything is **off by default and zero-cost when disabled**: hot paths
pay one attribute check, the wire format is byte-identical when no
``trace`` field is present, and the bench floors gate the overhead.
"""

from __future__ import annotations

from repro.obs.logging import (
    LOG,
    CapturedEvents,
    disable_logging,
    enable_logging,
    log_event,
    set_log_sink,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    disable_metrics,
    enable_metrics,
    metrics_enabled,
)
from repro.obs.profile import PROFILER, ProfileScope, disable_profiling, enable_profiling
from repro.obs.trace import (
    RECORDER,
    SpanRecorder,
    disable_tracing,
    enable_tracing,
    new_span_id,
    new_trace_id,
    parse_wire_trace,
    tracing_enabled,
    wire_trace,
)

__all__ = [
    "RECORDER",
    "SpanRecorder",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "new_trace_id",
    "new_span_id",
    "parse_wire_trace",
    "wire_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "PROFILER",
    "ProfileScope",
    "enable_profiling",
    "disable_profiling",
    "LOG",
    "CapturedEvents",
    "enable_logging",
    "disable_logging",
    "log_event",
    "set_log_sink",
]
