"""Adapters: existing stats snapshots → a populated metrics registry.

The serving layers already expose carefully-specified snapshots
(:class:`~repro.service.stats.ServiceStats`, the router counter ledger,
per-tenant QoS slices).  These adapters translate those payload dicts
into typed metrics *without changing the sources* — the `metrics` wire
op and the ``--metrics-port`` scrape endpoint are built on top of the
snapshots plus the live histograms in
:data:`repro.obs.metrics.REGISTRY`.

Metric naming scheme (documented in DESIGN.md):

* ``repro_<counter>_total`` — cumulative counters (``submitted``,
  ``completed``, ``cache_hits``, ...);
* ``repro_<gauge>`` — instantaneous gauges (``queue_depth``,
  ``in_flight``, ``pending``, ``sessions_open``);
* ``repro_family_latency_seconds{family=...,quantile=...}`` — the
  windowed per-family percentile snapshot mirrored as gauges (these are
  window percentiles, not histogram quantiles);
* ``repro_request_latency_seconds`` / ``repro_phase_latency_seconds`` —
  live mergeable histograms (only populated while metrics recording is
  enabled);
* ``repro_tenant_*`` — per-tenant QoS slices;
* ``repro_router_<counter>_total`` / ``repro_shards_alive`` — router
  ledger and shard-set gauges;
* ``repro_profile_seconds_total{family=...,phase=...}`` — profiler
  phase totals.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.profile import PROFILER

__all__ = [
    "registry_from_service_stats",
    "registry_from_router",
    "add_profile_metrics",
    "build_metrics_registry",
]

_STATS_COUNTERS = (
    "submitted", "completed", "failed", "rejected", "timed_out", "cancelled",
    "coalesced", "abandoned", "cache_hits", "cache_misses", "lost",
    "sessions_opened", "sessions_closed", "sessions_expired",
    "sessions_rejected", "sessions_restored", "session_tasks",
)

_STATS_GAUGES = ("queue_depth", "in_flight", "pending", "sessions_open")

_FAMILY_QUANTILES = ("p50", "p90", "p99", "mean", "max")


def _finite(value: object) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    value = float(value)
    return value if math.isfinite(value) else None


def registry_from_service_stats(
    payload: Mapping[str, object],
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Mirror a ``stats`` op payload (service *or* cluster) into metrics.

    Accepts both the flat :meth:`ServiceStats.to_dict` shape and the
    cluster shape (``{"cluster": true, "totals": {...}, ...}``) — the
    cluster totals/families/tenants are read from their nested keys.
    """
    registry = registry if registry is not None else MetricsRegistry()
    counters = payload.get("totals") if payload.get("cluster") else payload
    if not isinstance(counters, Mapping):
        counters = {}

    for name in _STATS_COUNTERS:
        value = _finite(counters.get(name))
        if value is not None:
            registry.counter(
                f"repro_{name}_total", f"Cumulative {name} count"
            ).set_total(value)
    for name in _STATS_GAUGES:
        value = _finite(counters.get(name))
        if value is not None:
            registry.gauge(f"repro_{name}", f"Instantaneous {name}").set(value)

    latency_count = _finite(counters.get("latency_count"))
    if latency_count is not None:
        registry.counter(
            "repro_latency_observations_total", "Recorded request latencies"
        ).set_total(latency_count)

    families = payload.get("families")
    if isinstance(families, Mapping):
        family_gauge = registry.gauge(
            "repro_family_latency_seconds",
            "Windowed per-family latency percentiles (window snapshot, not histogram)",
            ("family", "quantile"),
        )
        family_count = registry.counter(
            "repro_family_requests_total", "Requests recorded per family", ("family",)
        )
        for family, snap in families.items():
            if not isinstance(snap, Mapping):
                continue
            count = _finite(snap.get("count"))
            if count is not None:
                family_count.set_total(count, family)
            for quantile in _FAMILY_QUANTILES:
                value = _finite(snap.get(quantile))
                if value is not None:
                    family_gauge.set(value, family, quantile)

    tenants = payload.get("tenants")
    if isinstance(tenants, Mapping) and tenants:
        _add_tenant_metrics(registry, tenants)

    router = payload.get("router")
    if isinstance(router, Mapping):
        registry_from_router(router, registry)

    shards = payload.get("shards")
    if isinstance(shards, Mapping) and shards:
        registry.gauge("repro_shards_reporting", "Shards in the stats fan-out").set(
            len(shards)
        )

    return registry


def _add_tenant_metrics(registry: MetricsRegistry,
                        tenants: Mapping[str, object]) -> None:
    admitted = registry.counter(
        "repro_tenant_admitted_total", "Admitted requests per tenant", ("tenant",)
    )
    rejected = registry.counter(
        "repro_tenant_rejected_total", "Rejected requests per tenant", ("tenant",)
    )
    in_flight = registry.gauge(
        "repro_tenant_in_flight", "In-flight requests per tenant", ("tenant",)
    )
    backlog = registry.gauge(
        "repro_tenant_backlog", "Queued requests per tenant", ("tenant",)
    )
    share = registry.gauge(
        "repro_tenant_share", "Configured fair-share weight per tenant", ("tenant",)
    )
    for tenant, snap in tenants.items():
        if not isinstance(snap, Mapping):
            continue
        for metric, keys in (
            (admitted, ("admitted",)),
            (rejected, ("rejected", "rejections")),
        ):
            for key in keys:
                value = _finite(snap.get(key))
                if value is not None:
                    metric.set_total(value, tenant)
                    break
        for metric, key in ((in_flight, "in_flight"), (backlog, "backlog"),
                            (share, "weight")):
            value = _finite(snap.get(key))
            if value is not None:
                metric.set(value, tenant)


def registry_from_router(
    counters: Mapping[str, object],
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Mirror the router counter ledger into ``repro_router_*`` metrics."""
    registry = registry if registry is not None else MetricsRegistry()
    gauges = {"shards_alive", "shards_draining", "sessions_pinned",
              "sessions_journaled"}
    for name, value in counters.items():
        number = _finite(value)
        if number is None:
            continue
        if name in gauges:
            registry.gauge(f"repro_{name}", f"Instantaneous {name}").set(number)
        else:
            registry.counter(
                f"repro_router_{name}_total", f"Router cumulative {name}"
            ).set_total(number)
    return registry


def add_profile_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Mirror the profiler ledger as ``repro_profile_seconds_total``."""
    snapshot = PROFILER.snapshot()
    if not snapshot:
        return registry
    seconds = registry.counter(
        "repro_profile_seconds_total", "Profiled wall time", ("family", "phase")
    )
    calls = registry.counter(
        "repro_profile_calls_total", "Profiled call count", ("family", "phase")
    )
    for family, phases in snapshot.items():
        for phase, entry in phases.items():
            seconds.set_total(entry["seconds"], family, phase)
            calls.set_total(entry["count"], family, phase)
    return registry


def build_metrics_registry(
    stats_payload: Optional[Mapping[str, object]] = None,
    router_counters: Optional[Mapping[str, object]] = None,
) -> MetricsRegistry:
    """One registry combining snapshots, live histograms, and the profiler.

    This is what the ``metrics`` wire op and the scrape endpoint serve:
    adapter-mirrored counters/gauges from the given snapshot(s), the
    live mergeable histograms accumulated in the global
    :data:`~repro.obs.metrics.REGISTRY` (empty unless metric recording
    is enabled), and profiler totals (empty unless profiling is on).
    """
    registry = MetricsRegistry()
    if stats_payload is not None:
        registry_from_service_stats(stats_payload, registry)
    if router_counters is not None:
        registry_from_router(router_counters, registry)
    registry.merge(REGISTRY.to_dict())
    add_profile_metrics(registry)
    return registry
