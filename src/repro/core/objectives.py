"""Objective evaluation: ``Cmax``, ``Mmax``, ``sum Ci`` — and deadlines.

This module provides a uniform way to evaluate any schedule object
(:class:`~repro.core.schedule.Schedule` or
:class:`~repro.core.schedule.DAGSchedule`) and package the three objective
values of the paper in a single comparable record.

For the periodic real-time extension (:mod:`repro.periodic`) it adds the
deadline-aware objective family of the ``R | r_j, d_j | sum w^f F_j +
sum w^e E_j`` problem shape: deadline-miss count and ratio, maximum
lateness ``max_j (C_j - d_j)``, and (optionally weighted) earliness
``sum_j w_j * max(0, d_j - C_j)`` and flow time ``sum_j w_j * (C_j -
r_j)``.  :func:`deadline_metrics` computes them from plain completion /
deadline / release tables, so they apply to any timed execution — a
native periodic schedule, a simulator replay, or an unrolled one-shot
schedule with a release side table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple, Union

from repro.core.schedule import DAGSchedule, Schedule

__all__ = [
    "ObjectiveValues",
    "evaluate",
    "ratio_to",
    "DeadlineMetrics",
    "deadline_metrics",
]

AnySchedule = Union[Schedule, DAGSchedule]


@dataclass(frozen=True)
class ObjectiveValues:
    """The three objective values of a schedule.

    ``cmax`` and ``mmax`` are the paper's primary bi-objective pair;
    ``sum_ci`` is the third objective of §5.2.
    """

    cmax: float
    mmax: float
    sum_ci: float

    def as_pair(self) -> Tuple[float, float]:
        """``(Cmax, Mmax)`` pair used for Pareto dominance."""
        return (self.cmax, self.mmax)

    def as_triple(self) -> Tuple[float, float, float]:
        """``(Cmax, Mmax, sum Ci)`` triple."""
        return (self.cmax, self.mmax, self.sum_ci)

    def weakly_dominates(self, other: "ObjectiveValues", include_sum_ci: bool = False) -> bool:
        """True when this point is no worse than ``other`` on every objective."""
        ok = self.cmax <= other.cmax and self.mmax <= other.mmax
        if include_sum_ci:
            ok = ok and self.sum_ci <= other.sum_ci
        return ok

    def dominates(self, other: "ObjectiveValues", include_sum_ci: bool = False) -> bool:
        """Strict Pareto dominance (no worse everywhere, better somewhere)."""
        if not self.weakly_dominates(other, include_sum_ci=include_sum_ci):
            return False
        if include_sum_ci:
            return (self.cmax, self.mmax, self.sum_ci) != (other.cmax, other.mmax, other.sum_ci)
        return (self.cmax, self.mmax) != (other.cmax, other.mmax)

    def isclose(self, other: "ObjectiveValues", rel_tol: float = 1e-9, abs_tol: float = 1e-12) -> bool:
        """Component-wise ``math.isclose`` comparison."""
        return (
            math.isclose(self.cmax, other.cmax, rel_tol=rel_tol, abs_tol=abs_tol)
            and math.isclose(self.mmax, other.mmax, rel_tol=rel_tol, abs_tol=abs_tol)
            and math.isclose(self.sum_ci, other.sum_ci, rel_tol=rel_tol, abs_tol=abs_tol)
        )


def evaluate(schedule: AnySchedule) -> ObjectiveValues:
    """Evaluate the three objectives of a schedule.

    Works on both independent-task :class:`Schedule` objects (where
    completion times follow from back-to-back execution) and timed
    :class:`DAGSchedule` objects.
    """
    return ObjectiveValues(cmax=schedule.cmax, mmax=schedule.mmax, sum_ci=schedule.sum_ci)


def ratio_to(
    values: ObjectiveValues,
    cmax_ref: float,
    mmax_ref: float,
    sum_ci_ref: Optional[float] = None,
) -> Tuple[float, float, Optional[float]]:
    """Performance ratios of ``values`` against reference (optimal or lower-bound) values.

    A reference of ``0`` with a matching achieved value of ``0`` yields a
    ratio of ``1`` (the schedule is trivially optimal on that objective);
    a positive achieved value against a zero reference yields ``inf``.
    """

    def _ratio(achieved: float, ref: float) -> float:
        if ref > 0:
            return achieved / ref
        return 1.0 if achieved <= 0 else math.inf

    r_c = _ratio(values.cmax, cmax_ref)
    r_m = _ratio(values.mmax, mmax_ref)
    r_s = None if sum_ci_ref is None else _ratio(values.sum_ci, sum_ci_ref)
    return (r_c, r_m, r_s)


# --------------------------------------------------------------------------- #
# deadline-aware objectives (periodic / real-time extension)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class DeadlineMetrics:
    """Deadline-aware objective values of one timed execution.

    Attributes
    ----------
    n_jobs:
        Number of jobs evaluated.
    misses:
        Jobs completing after their absolute deadline (beyond tolerance).
    miss_ratio:
        ``misses / n_jobs`` (``0.0`` for an empty job set).
    max_lateness:
        ``max_j (C_j - d_j)`` — negative when every job finishes early;
        ``0.0`` for an empty job set.
    total_tardiness:
        ``sum_j max(0, C_j - d_j)``.
    total_earliness / weighted_earliness:
        ``sum_j [w_j *] max(0, d_j - C_j)``.
    total_flow / weighted_flow:
        ``sum_j [w_j *] (C_j - r_j)`` (releases default to 0).
    """

    n_jobs: int
    misses: int
    miss_ratio: float
    max_lateness: float
    total_tardiness: float
    total_earliness: float
    weighted_earliness: float
    total_flow: float
    weighted_flow: float


def deadline_metrics(
    completions: Mapping[object, float],
    deadlines: Mapping[object, float],
    releases: Optional[Mapping[object, float]] = None,
    weights: Optional[Mapping[object, float]] = None,
    tolerance: float = 1e-9,
) -> DeadlineMetrics:
    """Evaluate the deadline objective family from plain time tables.

    ``completions`` drives the evaluation: every completed job must have
    an entry in ``deadlines``; ``releases`` and ``weights`` default to
    ``0`` and ``1`` per job.  A job *misses* when ``C_j > d_j +
    tolerance`` — the tolerance absorbs float drift from long preemptive
    timelines without hiding real misses.
    """
    misses = 0
    max_lateness = 0.0
    total_tardiness = 0.0
    total_earliness = 0.0
    weighted_earliness = 0.0
    total_flow = 0.0
    weighted_flow = 0.0
    first = True
    for job_id, completion in completions.items():
        try:
            deadline = deadlines[job_id]
        except KeyError:
            raise KeyError(f"no deadline recorded for job {job_id!r}") from None
        release = 0.0 if releases is None else releases.get(job_id, 0.0)
        weight = 1.0 if weights is None else weights.get(job_id, 1.0)
        lateness = completion - deadline
        if lateness > tolerance:
            misses += 1
            total_tardiness += lateness
        if first or lateness > max_lateness:
            max_lateness = lateness
            first = False
        earliness = max(0.0, deadline - completion)
        flow = completion - release
        total_earliness += earliness
        weighted_earliness += weight * earliness
        total_flow += flow
        weighted_flow += weight * flow
    n_jobs = len(completions)
    return DeadlineMetrics(
        n_jobs=n_jobs,
        misses=misses,
        miss_ratio=(misses / n_jobs) if n_jobs else 0.0,
        max_lateness=max_lateness if n_jobs else 0.0,
        total_tardiness=total_tardiness,
        total_earliness=total_earliness,
        weighted_earliness=weighted_earliness,
        total_flow=total_flow,
        weighted_flow=weighted_flow,
    )
