"""Objective evaluation: ``Cmax``, ``Mmax`` and ``sum Ci``.

This module provides a uniform way to evaluate any schedule object
(:class:`~repro.core.schedule.Schedule` or
:class:`~repro.core.schedule.DAGSchedule`) and package the three objective
values of the paper in a single comparable record.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.core.schedule import DAGSchedule, Schedule

__all__ = ["ObjectiveValues", "evaluate", "ratio_to"]

AnySchedule = Union[Schedule, DAGSchedule]


@dataclass(frozen=True)
class ObjectiveValues:
    """The three objective values of a schedule.

    ``cmax`` and ``mmax`` are the paper's primary bi-objective pair;
    ``sum_ci`` is the third objective of §5.2.
    """

    cmax: float
    mmax: float
    sum_ci: float

    def as_pair(self) -> Tuple[float, float]:
        """``(Cmax, Mmax)`` pair used for Pareto dominance."""
        return (self.cmax, self.mmax)

    def as_triple(self) -> Tuple[float, float, float]:
        """``(Cmax, Mmax, sum Ci)`` triple."""
        return (self.cmax, self.mmax, self.sum_ci)

    def weakly_dominates(self, other: "ObjectiveValues", include_sum_ci: bool = False) -> bool:
        """True when this point is no worse than ``other`` on every objective."""
        ok = self.cmax <= other.cmax and self.mmax <= other.mmax
        if include_sum_ci:
            ok = ok and self.sum_ci <= other.sum_ci
        return ok

    def dominates(self, other: "ObjectiveValues", include_sum_ci: bool = False) -> bool:
        """Strict Pareto dominance (no worse everywhere, better somewhere)."""
        if not self.weakly_dominates(other, include_sum_ci=include_sum_ci):
            return False
        if include_sum_ci:
            return (self.cmax, self.mmax, self.sum_ci) != (other.cmax, other.mmax, other.sum_ci)
        return (self.cmax, self.mmax) != (other.cmax, other.mmax)

    def isclose(self, other: "ObjectiveValues", rel_tol: float = 1e-9, abs_tol: float = 1e-12) -> bool:
        """Component-wise ``math.isclose`` comparison."""
        return (
            math.isclose(self.cmax, other.cmax, rel_tol=rel_tol, abs_tol=abs_tol)
            and math.isclose(self.mmax, other.mmax, rel_tol=rel_tol, abs_tol=abs_tol)
            and math.isclose(self.sum_ci, other.sum_ci, rel_tol=rel_tol, abs_tol=abs_tol)
        )


def evaluate(schedule: AnySchedule) -> ObjectiveValues:
    """Evaluate the three objectives of a schedule.

    Works on both independent-task :class:`Schedule` objects (where
    completion times follow from back-to-back execution) and timed
    :class:`DAGSchedule` objects.
    """
    return ObjectiveValues(cmax=schedule.cmax, mmax=schedule.mmax, sum_ci=schedule.sum_ci)


def ratio_to(
    values: ObjectiveValues,
    cmax_ref: float,
    mmax_ref: float,
    sum_ci_ref: Optional[float] = None,
) -> Tuple[float, float, Optional[float]]:
    """Performance ratios of ``values`` against reference (optimal or lower-bound) values.

    A reference of ``0`` with a matching achieved value of ``0`` yields a
    ratio of ``1`` (the schedule is trivially optimal on that objective);
    a positive achieved value against a zero reference yields ``inf``.
    """

    def _ratio(achieved: float, ref: float) -> float:
        if ref > 0:
            return achieved / ref
        return 1.0 if achieved <= 0 else math.inf

    r_c = _ratio(values.cmax, cmax_ref)
    r_m = _ratio(values.mmax, mmax_ref)
    r_s = None if sum_ci_ref is None else _ratio(values.sum_ci, sum_ci_ref)
    return (r_c, r_m, r_s)
