"""Pareto dominance utilities for the bi-objective ``(Cmax, Mmax)`` space.

Section 4 of the paper reasons about Pareto-optimal schedules of small
adversarial instances; the experiment harness additionally computes exact
Pareto fronts of random instances (via :mod:`repro.algorithms.exact`) to
measure how close the algorithms' single-solution trade-offs come to the
front.  This module provides the dominance predicate, a front container
that maintains only non-dominated points, and a filter for batch inputs.

Points are minimization points: smaller is better on every coordinate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generic, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar

__all__ = ["dominates", "weakly_dominates", "pareto_filter", "ParetoPoint", "ParetoFront"]

T = TypeVar("T")


def weakly_dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is no worse than ``b`` on every coordinate."""
    if len(a) != len(b):
        raise ValueError(f"points have different dimensions: {len(a)} vs {len(b)}")
    return all(x <= y for x, y in zip(a, b))


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Strict Pareto dominance: ``a`` no worse everywhere and better somewhere."""
    return weakly_dominates(a, b) and tuple(a) != tuple(b)


def pareto_filter(points: Iterable[Sequence[float]]) -> List[Tuple[float, ...]]:
    """Return the non-dominated subset of ``points`` (duplicates removed).

    The result is sorted lexicographically, which for two-dimensional
    minimization fronts means increasing first coordinate and decreasing
    second coordinate.
    """
    unique = sorted({tuple(float(x) for x in p) for p in points})
    front: List[Tuple[float, ...]] = []
    for p in unique:
        if not any(dominates(q, p) for q in unique if q != p):
            front.append(p)
    return front


@dataclass(frozen=True)
class ParetoPoint(Generic[T]):
    """An objective vector together with the artefact (e.g. schedule) achieving it."""

    values: Tuple[float, ...]
    payload: Optional[T] = None

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)


class ParetoFront(Generic[T]):
    """An incrementally-maintained Pareto front of minimization points.

    Adding a point discards it if it is dominated by an existing point and
    evicts any existing points it dominates.  Weakly-dominated duplicates
    (equal objective vectors) are kept only once — the first payload wins.
    """

    def __init__(self, dim: int = 2) -> None:
        if dim < 1:
            raise ValueError("dimension must be >= 1")
        self._dim = dim
        self._points: List[ParetoPoint[T]] = []

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add(self, values: Sequence[float], payload: Optional[T] = None) -> bool:
        """Try to insert a point; returns ``True`` when it enters the front."""
        values = tuple(float(v) for v in values)
        if len(values) != self._dim:
            raise ValueError(f"expected a {self._dim}-dimensional point, got {len(values)}")
        if any(not math.isfinite(v) for v in values):
            raise ValueError(f"point coordinates must be finite, got {values}")
        for existing in self._points:
            if weakly_dominates(existing.values, values):
                return False
        self._points = [pt for pt in self._points if not dominates(values, pt.values)]
        self._points.append(ParetoPoint(values=values, payload=payload))
        return True

    def extend(self, items: Iterable[Tuple[Sequence[float], Optional[T]]]) -> int:
        """Add several ``(values, payload)`` pairs; returns how many entered the front."""
        return sum(1 for values, payload in items if self.add(values, payload))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[ParetoPoint[T]]:
        return iter(self.points())

    def points(self) -> List[ParetoPoint[T]]:
        """Front points sorted lexicographically by objective vector."""
        return sorted(self._points, key=lambda pt: pt.values)

    def values(self) -> List[Tuple[float, ...]]:
        """Objective vectors on the front, sorted lexicographically."""
        return [pt.values for pt in self.points()]

    def payloads(self) -> List[Optional[T]]:
        """Payloads in the same order as :meth:`values`."""
        return [pt.payload for pt in self.points()]

    def dominates_point(self, values: Sequence[float]) -> bool:
        """True when some front point strictly dominates ``values``."""
        values = tuple(float(v) for v in values)
        return any(dominates(pt.values, values) for pt in self._points)

    def contains(self, values: Sequence[float], rel_tol: float = 1e-9) -> bool:
        """True when a front point matches ``values`` up to relative tolerance."""
        values = tuple(float(v) for v in values)
        for pt in self._points:
            if all(
                math.isclose(a, b, rel_tol=rel_tol, abs_tol=1e-12)
                for a, b in zip(pt.values, values)
            ):
                return True
        return False

    def best_on(self, coordinate: int) -> ParetoPoint[T]:
        """The front point minimizing a single coordinate (ties: lexicographic)."""
        if not self._points:
            raise ValueError("the Pareto front is empty")
        if not (0 <= coordinate < self._dim):
            raise ValueError(f"coordinate must be in [0, {self._dim}), got {coordinate}")
        return min(self._points, key=lambda pt: (pt.values[coordinate], pt.values))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParetoFront(dim={self._dim}, size={len(self)})"
