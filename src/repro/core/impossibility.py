"""Inapproximability constructions and bounds of Section 4.

The paper proves that no algorithm returning a *single* schedule can have
an approximation ratio pair better than a whole region of the
``(Cmax ratio, Mmax ratio)`` plane.  The proofs are constructive: small
instances whose exact Pareto fronts leave a gap no single solution can
cover.  This module rebuilds those instances, their closed-form Pareto
fronts, and the impossibility region itself (Figure 3):

* :func:`instance_lemma1` and :func:`lemma1_pareto_values` — §4.1's
  two-processor, three-task instance showing nothing beats ``(1, 2)`` /
  ``(2, 1)``;
* :func:`instance_lemma2` and :func:`lemma2_frontier` — §4.2's
  generalisation to ``m`` processors and ``km + m - 1`` tasks, giving the
  continuous staircase ``(1 + i/(km), 1 + (m-1)(1 - i/k))``;
* :func:`instance_lemma3` and :func:`lemma3_pareto_values` — §4.3's second
  two-processor instance proving nothing beats ``(3/2, 3/2)``;
* :func:`impossibility_domain` and :func:`is_ratio_impossible` — the
  union of all excluded regions, i.e. the shaded domain of Figure 3;
* :func:`figure3_series` — the exact data series (staircases for
  ``m = 2..6``, the Lemma 3 point, and the dashed SBO trade-off curve)
  plotted in Figure 3.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.instance import Instance
from repro.core.sbo import sbo_tradeoff_curve
from repro.core.task import Task, TaskSet

__all__ = [
    "instance_lemma1",
    "lemma1_pareto_values",
    "instance_lemma2",
    "lemma2_frontier",
    "instance_lemma3",
    "lemma3_pareto_values",
    "impossibility_domain",
    "is_ratio_impossible",
    "figure3_series",
]

#: Default value of the vanishing parameter epsilon used by the constructions.
DEFAULT_EPSILON = 1e-3


# --------------------------------------------------------------------------- #
# Lemma 1 (§4.1): m = 2, three tasks.
# --------------------------------------------------------------------------- #
def instance_lemma1(epsilon: float = DEFAULT_EPSILON) -> Instance:
    """The §4.1 instance: ``p = (1, 1/2, 1/2)``, ``s = (ε, 1, 1)``, ``m = 2``.

    Its optimal makespan is 1 and optimal memory consumption is ``1 + ε``;
    its Pareto front is ``{(1, 2), (3/2, 1 + ε)}``, so no algorithm can be
    ``(1, 2 - δ)``- or ``(3/2 - δ, ...)``-approximate simultaneously —
    Lemma 1 follows.
    """
    if not (0 < epsilon < 0.5):
        raise ValueError(f"epsilon must be in (0, 0.5), got {epsilon}")
    return Instance.from_lists(
        p=[1.0, 0.5, 0.5],
        s=[epsilon, 1.0, 1.0],
        m=2,
        name=f"lemma1(eps={epsilon:g})",
    )


def lemma1_pareto_values(epsilon: float = DEFAULT_EPSILON) -> List[Tuple[float, float]]:
    """Closed-form Pareto front ``{(1, 2), (3/2, 1 + ε)}`` of the §4.1 instance."""
    if not (0 < epsilon < 0.5):
        raise ValueError(f"epsilon must be in (0, 0.5), got {epsilon}")
    return [(1.0, 2.0), (1.5, 1.0 + epsilon)]


def lemma1_optima(epsilon: float = DEFAULT_EPSILON) -> Tuple[float, float]:
    """``(C*max, M*max) = (1, 1 + ε)`` for the §4.1 instance."""
    return (1.0, 1.0 + epsilon)


# --------------------------------------------------------------------------- #
# Lemma 2 (§4.2): m processors, km + m - 1 tasks.
# --------------------------------------------------------------------------- #
def instance_lemma2(m: int, k: int, epsilon: float = DEFAULT_EPSILON) -> Instance:
    """The §4.2 instance for ``m`` processors and granularity ``k``.

    ``m - 1`` *long* tasks (``p = 1``, ``s = ε``) and ``km`` *heavy* tasks
    (``p = 1/(km)``, ``s = 1``).  Optimal makespan 1, optimal memory
    ``k + ε``.
    """
    if m < 2:
        raise ValueError(f"m must be >= 2, got {m}")
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if not (0 < epsilon < 1):
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    tasks = []
    for i in range(m - 1):
        tasks.append(Task(id=f"long{i}", p=1.0, s=epsilon, label="long"))
    for i in range(k * m):
        tasks.append(Task(id=f"heavy{i}", p=1.0 / (k * m), s=1.0, label="heavy"))
    return Instance(TaskSet(tasks), m=m, name=f"lemma2(m={m},k={k},eps={epsilon:g})")


def lemma2_optima(m: int, k: int, epsilon: float = DEFAULT_EPSILON) -> Tuple[float, float]:
    """``(C*max, M*max) = (1, k + ε)`` for the §4.2 instance."""
    if m < 2 or k < 2:
        raise ValueError("m and k must both be >= 2")
    return (1.0, float(k) + epsilon)


def lemma2_frontier(m: int, k: int) -> List[Tuple[float, float]]:
    """The excluded-ratio staircase of Lemma 2 for given ``m`` and ``k``.

    Returns the ``k + 1`` ratio pairs ``(1 + i/(km), 1 + (m-1)(1 - i/k))``
    for ``i = 0..k``; no algorithm can beat any of them simultaneously.
    """
    if m < 2:
        raise ValueError(f"m must be >= 2, got {m}")
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    return [
        (1.0 + i / (k * m), 1.0 + (m - 1) * (1.0 - i / k))
        for i in range(k + 1)
    ]


def lemma2_pareto_values(m: int, k: int, epsilon: float = DEFAULT_EPSILON) -> List[Tuple[float, float]]:
    """Objective values of the ``k + 1`` Pareto-optimal schedules of the §4.2 instance.

    Solution ``i`` (``i = 0..k``) schedules ``i`` heavy tasks and one long
    task on each of the first ``m - 1`` processors and the remaining heavy
    tasks on the last one; its makespan is ``1 + i/(km)`` and its memory is
    ``k + (k - i)(m - 1)`` for ``i < k`` and ``k + ε`` for ``i = k``.
    """
    values: List[Tuple[float, float]] = []
    for i in range(k + 1):
        cmax = 1.0 + i / (k * m)
        if i == k:
            mmax = float(k) + epsilon
        else:
            mmax = float(k + (k - i) * (m - 1))
        values.append((cmax, mmax))
    return values


# --------------------------------------------------------------------------- #
# Lemma 3 (§4.3): the (3/2, 3/2) bound.
# --------------------------------------------------------------------------- #
def instance_lemma3(epsilon: float = DEFAULT_EPSILON) -> Instance:
    """The §4.3 instance: ``p = (1, ε, 1-ε)``, ``s = (ε, 1, 1-ε)``, ``m = 2``.

    Optimal makespan and optimal memory are both 1; the Pareto front is
    ``{(1, 2-ε), (1+ε, 1+ε), (2-ε, 1)}``.  Taking ``ε`` close to ``1/2``
    proves Lemma 3: no algorithm beats ``(3/2, 3/2)``.
    """
    if not (0 < epsilon < 0.5):
        raise ValueError(f"epsilon must be in (0, 0.5), got {epsilon}")
    return Instance.from_lists(
        p=[1.0, epsilon, 1.0 - epsilon],
        s=[epsilon, 1.0, 1.0 - epsilon],
        m=2,
        name=f"lemma3(eps={epsilon:g})",
    )


def lemma3_pareto_values(epsilon: float = DEFAULT_EPSILON) -> List[Tuple[float, float]]:
    """Closed-form Pareto front ``{(1, 2-ε), (1+ε, 1+ε), (2-ε, 1)}`` of the §4.3 instance."""
    if not (0 < epsilon < 0.5):
        raise ValueError(f"epsilon must be in (0, 0.5), got {epsilon}")
    return [(1.0, 2.0 - epsilon), (1.0 + epsilon, 1.0 + epsilon), (2.0 - epsilon, 1.0)]


def lemma3_optima(epsilon: float = DEFAULT_EPSILON) -> Tuple[float, float]:
    """``(C*max, M*max) = (1, 1)`` for the §4.3 instance."""
    return (1.0, 1.0)


# --------------------------------------------------------------------------- #
# The impossibility domain of Figure 3.
# --------------------------------------------------------------------------- #
def is_ratio_impossible(
    cmax_ratio: float,
    mmax_ratio: float,
    m: int,
    k_max: int = 64,
    strict: bool = True,
) -> bool:
    """Whether a ``(Cmax, Mmax)`` approximation-ratio pair is proven impossible.

    The pair is impossible on ``m`` processors when it (strictly) beats a
    Lemma 2 point for some ``k <= k_max`` and ``i``, or beats the Lemma 3
    pair ``(3/2, 3/2)`` (valid for every ``m >= 2``), or beats the Lemma 1
    corners ``(1, 2)`` / ``(2, 1)``.  Symmetric pairs (``Cmax`` and ``Mmax``
    ratios swapped) are also checked, since every construction can be
    mirrored (§4.2).
    """
    if m < 2:
        return False

    def beats(a: Tuple[float, float], b: Tuple[float, float]) -> bool:
        # "a beats b" = a is at least as good everywhere and strictly better
        # somewhere (strict=True), which is what contradicts an instance whose
        # Pareto front pins b as unbeatable.
        if strict:
            return a[0] <= b[0] and a[1] <= b[1] and a != b
        return a[0] < b[0] and a[1] < b[1]

    candidates = [(cmax_ratio, mmax_ratio), (mmax_ratio, cmax_ratio)]
    for pair in candidates:
        if beats(pair, (1.5, 1.5)):
            return True
        if beats(pair, (1.0, 2.0)) or beats(pair, (2.0, 1.0)):
            return True
        for k in range(2, k_max + 1):
            for point in lemma2_frontier(m, k):
                if beats(pair, point):
                    return True
    return False


def impossibility_domain(
    m: int,
    k: int = 32,
) -> List[Tuple[float, float]]:
    """The boundary of the excluded region for ``m`` processors (Lemma 2 + Lemma 3).

    Returns the non-dominated (from below) set of excluded ratio pairs:
    the Lemma 2 staircase at granularity ``k`` for the given ``m``,
    augmented with the Lemma 3 point ``(3/2, 3/2)`` and the universal
    Lemma 1 corners.  Sorted by increasing ``Cmax`` ratio.
    """
    points = set(lemma2_frontier(m, k))
    points.add((1.5, 1.5))
    points.update({(1.0, 2.0), (2.0, 1.0)})
    # Keep only the lower envelope (points not dominated from below by another
    # point: q dominates-from-below p when q <= p componentwise and q != p —
    # those q are the binding bounds).
    envelope = []
    for p in points:
        if not any(q != p and q[0] <= p[0] and q[1] <= p[1] for q in points):
            envelope.append(p)
    return sorted(envelope)


def figure3_series(
    m_values: Sequence[int] = (2, 3, 4, 5, 6),
    k: int = 32,
    deltas: Sequence[float] = tuple(0.05 * i for i in range(2, 81)),
) -> Dict[str, object]:
    """All data series of Figure 3.

    Returns a dictionary with:

    * ``"staircases"`` — mapping ``m -> impossibility_domain(m, k)``;
    * ``"lemma3_point"`` — the ``(3/2, 3/2)`` bound;
    * ``"lemma1_points"`` — the ``(1, 2)`` and ``(2, 1)`` corners;
    * ``"sbo_curve"`` — the dashed achievable curve ``(1 + Δ, 1 + 1/Δ)``
      from Section 3 (PTAS sub-solvers, ``ε -> 0``).
    """
    staircases = {m: impossibility_domain(m, k) for m in m_values}
    curve = [(c, mm) for (_, c, mm) in sbo_tradeoff_curve(list(deltas))]
    return {
        "staircases": staircases,
        "lemma3_point": (1.5, 1.5),
        "lemma1_points": [(1.0, 2.0), (2.0, 1.0)],
        "sbo_curve": curve,
    }
