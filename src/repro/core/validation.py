"""Feasibility checking of schedules.

All algorithms in the library return schedules that are validated by the
functions here (and the test suite re-validates them).  Three kinds of
constraints are checked:

* assignment completeness — every task is on exactly one processor;
* machine exclusivity — tasks on the same processor never overlap in time
  (timed schedules only);
* precedence — no task starts before all of its predecessors completed
  (timed schedules on DAG instances only);
* optional memory capacity — ``Mmax <= capacity`` when a capacity is given,
  which is the original strictly-constrained problem of §2.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.core.instance import DAGInstance
from repro.core.schedule import DAGSchedule, Schedule

__all__ = ["ValidationError", "ValidationReport", "validate_schedule", "check_schedule"]

_EPS = 1e-9


class ValidationError(Exception):
    """Raised by :func:`check_schedule` when a schedule is infeasible."""


@dataclass
class ValidationReport:
    """Outcome of schedule validation.

    ``ok`` is ``True`` when no violation was found; ``violations`` lists
    human-readable descriptions of every violated constraint.
    """

    ok: bool
    violations: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok

    def raise_if_invalid(self) -> None:
        """Raise :class:`ValidationError` when the schedule is infeasible."""
        if not self.ok:
            raise ValidationError("; ".join(self.violations))


def _validate_assignment(schedule: Union[Schedule, DAGSchedule], violations: List[str]) -> None:
    instance = schedule.instance
    assignment = schedule.assignment
    for task in instance.tasks:
        if task.id not in assignment:
            violations.append(f"task {task.id!r} is not assigned")
            continue
        proc = assignment[task.id]
        if not (0 <= proc < instance.m):
            violations.append(f"task {task.id!r} assigned to invalid processor {proc!r}")


def _validate_overlap(schedule: DAGSchedule, violations: List[str], eps: float) -> None:
    instance = schedule.instance
    for proc in range(instance.m):
        intervals = [
            (schedule.start_of(tid), schedule.completion_of(tid), tid)
            for tid in schedule.tasks_on(proc)
        ]
        intervals.sort(key=lambda x: (x[0], x[1]))
        for (s1, c1, t1), (s2, c2, t2) in zip(intervals, intervals[1:]):
            if s2 < c1 - eps:
                violations.append(
                    f"tasks {t1!r} and {t2!r} overlap on processor {proc}: "
                    f"[{s1:g}, {c1:g}) and [{s2:g}, {c2:g})"
                )


def _validate_precedence(schedule: DAGSchedule, violations: List[str], eps: float) -> None:
    instance = schedule.instance
    if not isinstance(instance, DAGInstance):
        return
    for u, v in instance.graph.edges():
        if schedule.start_of(v) < schedule.completion_of(u) - eps:
            violations.append(
                f"precedence violated: task {v!r} starts at {schedule.start_of(v):g} "
                f"before predecessor {u!r} completes at {schedule.completion_of(u):g}"
            )


def _validate_capacity(
    schedule: Union[Schedule, DAGSchedule], capacity: float, violations: List[str], eps: float
) -> None:
    for proc, mem in enumerate(schedule.memories):
        if mem > capacity + eps:
            violations.append(
                f"processor {proc} uses {mem:g} memory units, exceeding the capacity {capacity:g}"
            )


def validate_schedule(
    schedule: Union[Schedule, DAGSchedule],
    memory_capacity: Optional[float] = None,
    eps: float = _EPS,
) -> ValidationReport:
    """Validate a schedule and return a :class:`ValidationReport`.

    Parameters
    ----------
    schedule:
        The schedule to check.
    memory_capacity:
        Optional per-processor memory capacity ``M``; when given, the
        strictly-constrained feasibility ``Mmax <= M`` of §2.2 is checked
        as well.
    eps:
        Numerical tolerance used for all floating-point comparisons.
    """
    violations: List[str] = []
    _validate_assignment(schedule, violations)
    if isinstance(schedule, DAGSchedule):
        _validate_overlap(schedule, violations, eps)
        _validate_precedence(schedule, violations, eps)
    if memory_capacity is not None:
        _validate_capacity(schedule, memory_capacity, violations, eps)
    return ValidationReport(ok=not violations, violations=violations)


def check_schedule(
    schedule: Union[Schedule, DAGSchedule],
    memory_capacity: Optional[float] = None,
    eps: float = _EPS,
) -> None:
    """Validate a schedule, raising :class:`ValidationError` on any violation."""
    validate_schedule(schedule, memory_capacity=memory_capacity, eps=eps).raise_if_invalid()
