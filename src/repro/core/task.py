"""Task model: processing time and cumulative storage requirement.

The paper's model (§2.1): a task ``i`` takes ``p_i`` time units to execute
and occupies ``s_i`` memory units on the processor it is assigned to for the
whole lifetime of the application (code storage in a multi-SoC, or result
storage in scientific computing).  Memory is *cumulative per processor*:
a processor that executes tasks ``A`` and ``B`` permanently holds
``s_A + s_B`` memory units.

Processing time and memory requirement are unrelated quantities — this is
exactly what makes the bi-objective problem non-trivial.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


__all__ = ["Task", "TaskSet"]


def _check_finite_nonnegative(value: float, what: str, task_id: object) -> float:
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{what} of task {task_id!r} must be finite, got {value!r}")
    if value < 0:
        raise ValueError(f"{what} of task {task_id!r} must be >= 0, got {value!r}")
    return value


@dataclass(frozen=True)
class Task:
    """A single task of the scheduling instance.

    Parameters
    ----------
    id:
        Hashable identifier, unique within an instance.  Generators use
        consecutive integers but any hashable value (e.g. a string name)
        is accepted.
    p:
        Processing time ``p_i >= 0``.
    s:
        Storage (memory) requirement ``s_i >= 0``.
    label:
        Optional human readable label used in traces and Gantt charts.
    """

    id: object
    p: float
    s: float
    label: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "p", _check_finite_nonnegative(self.p, "processing time", self.id))
        object.__setattr__(self, "s", _check_finite_nonnegative(self.s, "storage size", self.id))

    @property
    def density(self) -> float:
        """Time-per-memory density ``p_i / s_i``.

        This is the quantity SBO_Δ thresholds on (tasks with a small
        density are memory-dominated and follow the memory-oriented
        schedule).  Returns ``inf`` for tasks with zero storage and
        ``0`` for zero-length tasks with positive storage; a task with
        both ``p == 0`` and ``s == 0`` has density ``0`` by convention
        (it is irrelevant to both objectives).
        """
        if self.s == 0:
            return math.inf if self.p > 0 else 0.0
        return self.p / self.s

    def with_id(self, new_id: object) -> "Task":
        """Return a copy of this task carrying a different identifier."""
        return Task(id=new_id, p=self.p, s=self.s, label=self.label)

    def scaled(self, p_factor: float = 1.0, s_factor: float = 1.0) -> "Task":
        """Return a copy with processing time and storage scaled."""
        return Task(id=self.id, p=self.p * p_factor, s=self.s * s_factor, label=self.label)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lbl = f", label={self.label!r}" if self.label else ""
        return f"Task(id={self.id!r}, p={self.p:g}, s={self.s:g}{lbl})"


class TaskSet:
    """An ordered, id-indexed collection of :class:`Task` objects.

    The container preserves insertion order (which matters for algorithms
    that use "an arbitrary total ordering of tasks to break ties", §5.1)
    and provides O(1) lookup by task id.
    """

    __slots__ = ("_tasks", "_by_id")

    def __init__(self, tasks: Iterable[Task] = ()) -> None:
        self._tasks: List[Task] = []
        self._by_id: Dict[object, Task] = {}
        for task in tasks:
            self.add(task)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_lists(
        cls,
        p: Sequence[float],
        s: Sequence[float],
        ids: Optional[Sequence[object]] = None,
    ) -> "TaskSet":
        """Build a task set from parallel lists of processing times and sizes."""
        if len(p) != len(s):
            raise ValueError(f"p and s must have the same length, got {len(p)} and {len(s)}")
        if ids is None:
            ids = list(range(len(p)))
        elif len(ids) != len(p):
            raise ValueError("ids must have the same length as p and s")
        return cls(Task(id=i, p=pi, s=si) for i, pi, si in zip(ids, p, s))

    def add(self, task: Task) -> None:
        """Append a task; raises :class:`ValueError` on duplicate ids."""
        if not isinstance(task, Task):
            raise TypeError(f"expected Task, got {type(task).__name__}")
        if task.id in self._by_id:
            raise ValueError(f"duplicate task id {task.id!r}")
        self._tasks.append(task)
        self._by_id[task.id] = task

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __contains__(self, task_id: object) -> bool:
        return task_id in self._by_id

    def __getitem__(self, task_id: object) -> Task:
        try:
            return self._by_id[task_id]
        except KeyError:
            raise KeyError(f"no task with id {task_id!r}") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskSet):
            return NotImplemented
        return self._tasks == other._tasks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskSet(n={len(self)}, total_p={self.total_p:g}, total_s={self.total_s:g})"

    # ------------------------------------------------------------------ #
    # views and aggregates
    # ------------------------------------------------------------------ #
    @property
    def ids(self) -> List[object]:
        """Task identifiers in insertion order."""
        return [t.id for t in self._tasks]

    @property
    def tasks(self) -> List[Task]:
        """Tasks in insertion order (a copy; mutating it does not affect the set)."""
        return list(self._tasks)

    @property
    def total_p(self) -> float:
        """Total processing requirement ``sum_i p_i``."""
        return sum(t.p for t in self._tasks)

    @property
    def total_s(self) -> float:
        """Total storage requirement ``sum_i s_i``."""
        return sum(t.s for t in self._tasks)

    @property
    def max_p(self) -> float:
        """Largest processing time, ``0`` for an empty set."""
        return max((t.p for t in self._tasks), default=0.0)

    @property
    def max_s(self) -> float:
        """Largest storage requirement, ``0`` for an empty set."""
        return max((t.s for t in self._tasks), default=0.0)

    def processing_times(self) -> Dict[object, float]:
        """Mapping task id -> ``p_i``."""
        return {t.id: t.p for t in self._tasks}

    def storage_sizes(self) -> Dict[object, float]:
        """Mapping task id -> ``s_i``."""
        return {t.id: t.s for t in self._tasks}

    # ------------------------------------------------------------------ #
    # orderings used by the algorithms
    # ------------------------------------------------------------------ #
    def sorted_by(self, key: str, reverse: bool = False) -> List[Task]:
        """Return tasks sorted by ``"p"``, ``"s"`` or ``"density"``.

        Ties are broken by insertion order (Python's sort is stable), which
        is the "arbitrary total ordering" of the paper.
        """
        if key == "p":
            keyfunc = lambda t: t.p  # noqa: E731
        elif key == "s":
            keyfunc = lambda t: t.s  # noqa: E731
        elif key == "density":
            keyfunc = lambda t: t.density  # noqa: E731
        else:
            raise ValueError(f"unknown sort key {key!r}; expected 'p', 's' or 'density'")
        return sorted(self._tasks, key=keyfunc, reverse=reverse)

    def spt_order(self) -> List[Task]:
        """Shortest Processing Time first (optimal order for ``sum Ci``)."""
        return self.sorted_by("p")

    def lpt_order(self) -> List[Task]:
        """Longest Processing Time first (Graham's 4/3-approximation order)."""
        return self.sorted_by("p", reverse=True)

    def lms_order(self) -> List[Task]:
        """Largest Memory Size first — the storage analogue of LPT."""
        return self.sorted_by("s", reverse=True)

    # ------------------------------------------------------------------ #
    # transforms
    # ------------------------------------------------------------------ #
    def swapped(self) -> "TaskSet":
        """Return a task set with ``p`` and ``s`` exchanged.

        With independent tasks the two objectives are symmetric (§2.1), so
        swapping the two vectors turns an ``Mmax`` question into a ``Cmax``
        question.  The algorithms exploit this symmetry.
        """
        return TaskSet(Task(id=t.id, p=t.s, s=t.p, label=t.label) for t in self._tasks)

    def subset(self, ids: Iterable[object]) -> "TaskSet":
        """Return the sub-task-set restricted to ``ids`` (in this set's order)."""
        wanted = set(ids)
        missing = wanted - set(self._by_id)
        if missing:
            raise KeyError(f"unknown task ids: {sorted(map(repr, missing))}")
        return TaskSet(t for t in self._tasks if t.id in wanted)

    def as_tuples(self) -> List[Tuple[object, float, float]]:
        """Return ``(id, p, s)`` triples in insertion order."""
        return [(t.id, t.p, t.s) for t in self._tasks]
