"""Lower bounds on the optimal objective values.

The paper's analyses rest on a small set of classical lower bounds:

* the *area* (or average-load) bound ``sum_i p_i / m`` and the
  *largest-task* bound ``max_i p_i`` on ``C*max`` — together they form the
  Graham lower bound;
* the symmetric bound ``max(max_i s_i, sum_i s_i / m)`` on ``M*max`` — this
  is the ``LB`` computed by Algorithm 2 (RLS_Δ);
* the *critical path* bound on ``C*max`` for DAG instances (§5.1 uses
  ``|CP| <= C*max``);
* the SPT bound on ``sum Ci`` for independent tasks (SPT list scheduling is
  optimal on ``sum Ci``, §5.2).

These bounds are used both inside the algorithms (RLS_Δ caps per-processor
memory at ``Δ · LB``) and by the experiment harness to measure empirical
approximation ratios when exact optima are out of reach.
"""

from __future__ import annotations

from typing import Union

import networkx as nx

from repro.core.instance import DAGInstance, Instance

__all__ = [
    "cmax_lower_bound",
    "mmax_lower_bound",
    "graham_memory_lower_bound",
    "critical_path_lower_bound",
    "critical_path_length",
    "sum_ci_lower_bound",
]


def _area_and_max(values, m: int) -> float:
    values = list(values)
    if not values:
        return 0.0
    return max(max(values), sum(values) / m)


def mmax_lower_bound(instance: Instance) -> float:
    """Graham lower bound on ``M*max``: ``max(max_i s_i, sum_i s_i / m)``.

    This is the ``LB`` of Algorithm 2 and is valid for independent tasks
    and DAG instances alike (precedence constraints cannot reduce the
    memory footprint of an assignment).
    """
    return _area_and_max((t.s for t in instance.tasks), instance.m)


#: Alias matching the paper's terminology for the bound used by RLS_Δ.
graham_memory_lower_bound = mmax_lower_bound


def critical_path_length(instance: Union[Instance, DAGInstance]) -> float:
    """Length of the longest chain of the precedence graph (in processing time).

    For independent tasks the critical path degenerates to the longest
    single task.  The chain length includes the processing times of both
    endpoints.
    """
    if not isinstance(instance, DAGInstance) or instance.is_independent():
        return instance.tasks.max_p
    graph = instance.graph
    p = instance.tasks.processing_times()
    longest: dict = {}
    for node in nx.topological_sort(graph):
        best_pred = max((longest[u] for u in graph.predecessors(node)), default=0.0)
        longest[node] = best_pred + p[node]
    return max(longest.values(), default=0.0)


def critical_path_lower_bound(instance: Union[Instance, DAGInstance]) -> float:
    """Critical-path lower bound on ``C*max`` (``|CP| <= C*max``, §5.1)."""
    return critical_path_length(instance)


def cmax_lower_bound(instance: Union[Instance, DAGInstance]) -> float:
    """Graham lower bound on ``C*max``.

    ``max(max_i p_i, sum_i p_i / m)`` for independent tasks, additionally
    combined with the critical-path length for DAG instances.
    """
    area = _area_and_max((t.p for t in instance.tasks), instance.m)
    return max(area, critical_path_length(instance))


def sum_ci_lower_bound(instance: Instance) -> float:
    """Optimal ``sum Ci`` for independent tasks (SPT list scheduling value).

    SPT list scheduling is optimal for ``P || sum Ci`` (§5.2 recalls this),
    so the value it achieves *is* the optimum and serves as an exact
    reference for the tri-objective experiments.  For DAG instances this is
    only a lower bound (the same relaxation ignoring precedence).
    """
    tasks = sorted(instance.tasks, key=lambda t: (t.p, str(t.id)))
    m = instance.m
    loads = [0.0] * m
    total = 0.0
    for task in tasks:
        q = min(range(m), key=lambda j: loads[j])
        loads[q] += task.p
        total += loads[q]
    return total
