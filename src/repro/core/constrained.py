"""Resolving the original storage-constrained problem (§2.2 and §7).

The industrially-relevant problem is: *minimize ``Cmax`` subject to
``Mmax <= M``* for a given per-processor capacity ``M``.  Section 2.2 shows
this cannot be approximated (deciding feasibility is already strongly
NP-complete), which is why the paper turns the constraint into an
objective.  Section 7 then explains how the bi-objective machinery resolves
the constrained problem in practice:

* compute the Graham lower bound ``LB`` on ``M*max``; if ``M < LB`` the
  instance is certainly infeasible;
* otherwise set ``Δ = M / LB``: when ``Δ >= 2``, ``RLS_Δ`` is guaranteed to
  return a schedule with ``Mmax <= Δ·LB = M``, with the makespan guarantee
  of Corollary 3 read off at that ``Δ``;
* for independent tasks, the solution can be tentatively improved by a
  binary search on the parameter (here: on SBO's ``Δ`` and on RLS's ``Δ``),
  keeping the best feasible schedule found;
* when ``Δ < 2`` ("it is difficult to fit the tasks due to the memory
  constraint") no guarantee is possible; the solver still tries RLS at the
  given budget and reports failure honestly if nothing feasible is found.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.core.bounds import mmax_lower_bound
from repro.core.instance import DAGInstance, Instance
from repro.core.rls import InfeasibleDeltaError, rls, rls_guarantee
from repro.core.sbo import sbo
from repro.core.schedule import DAGSchedule, Schedule

__all__ = ["ConstrainedResult", "solve_constrained"]

AnySchedule = Union[Schedule, DAGSchedule]


@dataclass(frozen=True)
class ConstrainedResult:
    """Outcome of :func:`solve_constrained`.

    Attributes
    ----------
    feasible:
        ``True`` when a schedule respecting the memory capacity was found.
    certified_infeasible:
        ``True`` when the instance is provably infeasible
        (``capacity < max_i s_i``, a single task does not fit anywhere).
    schedule:
        The best feasible schedule found (``None`` when ``feasible`` is
        ``False``).
    cmax:
        Its makespan (``inf`` when infeasible).
    mmax:
        Its memory consumption.
    delta:
        The effective ``Δ = capacity / LB`` implied by the capacity.
    cmax_guarantee:
        The Corollary 3 makespan guarantee available at that ``Δ``
        (``inf`` when ``Δ <= 2``).
    strategy:
        Which method produced the returned schedule (``"rls"``,
        ``"rls-binary-search"``, ``"sbo-binary-search"``).
    """

    feasible: bool
    certified_infeasible: bool
    schedule: Optional[AnySchedule]
    cmax: float
    mmax: float
    delta: float
    cmax_guarantee: float
    strategy: Optional[str]


def _try_rls(
    instance: Union[Instance, DAGInstance], delta: float, order: str
) -> Optional[DAGSchedule]:
    try:
        return rls(instance, delta, order=order).schedule
    except InfeasibleDeltaError:
        return None


def solve_constrained(
    instance: Union[Instance, DAGInstance],
    memory_capacity: float,
    order: str = "arbitrary",
    refine_iterations: int = 20,
    sbo_solver: str = "lpt",
) -> ConstrainedResult:
    """Best-effort resolution of ``min Cmax s.t. Mmax <= memory_capacity``.

    Parameters
    ----------
    instance:
        Independent-task or DAG instance.
    memory_capacity:
        Per-processor memory capacity ``M``.
    order:
        Tie-breaking order passed to ``RLS_Δ``.
    refine_iterations:
        Number of binary-search refinement steps on the ``Δ`` parameters.
    sbo_solver:
        Single-objective sub-solver used by the SBO refinement on
        independent tasks.
    """
    if memory_capacity < 0:
        raise ValueError(f"memory_capacity must be >= 0, got {memory_capacity}")
    lb = mmax_lower_bound(instance)
    max_task = max((t.s for t in instance.tasks), default=0.0)
    eps = 1e-9 * max(1.0, memory_capacity)

    # A task larger than the capacity fits nowhere: provably infeasible.
    if max_task > memory_capacity + eps:
        return ConstrainedResult(
            feasible=False,
            certified_infeasible=True,
            schedule=None,
            cmax=math.inf,
            mmax=math.inf,
            delta=memory_capacity / lb if lb > 0 else math.inf,
            cmax_guarantee=math.inf,
            strategy=None,
        )

    if lb == 0:
        # No memory demand at all: the constraint is vacuous; return the
        # memory-budget-free RLS schedule (plain list scheduling).
        schedule = rls(instance, delta=2.0, order=order).schedule
        return ConstrainedResult(
            feasible=True,
            certified_infeasible=False,
            schedule=schedule,
            cmax=schedule.cmax,
            mmax=schedule.mmax,
            delta=math.inf,
            cmax_guarantee=rls_guarantee(3.0, instance.m)[0],
            strategy="rls",
        )

    delta_cap = memory_capacity / lb
    candidates: List[Tuple[str, AnySchedule]] = []

    # 1. Direct RLS at the capacity-implied delta (the §7 recipe).
    direct = _try_rls(instance, delta_cap, order)
    if direct is not None and direct.mmax <= memory_capacity + eps:
        candidates.append(("rls", direct))

    # 2. Binary search on the RLS delta: a smaller delta keeps memory further
    #    below the capacity (slack for later tasks) but may lengthen the
    #    schedule or become infeasible; scan a few values and keep the best.
    lo = max_task / lb if lb > 0 else 0.0
    hi = delta_cap
    if hi > lo:
        for _ in range(refine_iterations):
            mid = 0.5 * (lo + hi)
            trial = _try_rls(instance, mid, order)
            if trial is not None and trial.mmax <= memory_capacity + eps:
                candidates.append(("rls-binary-search", trial))
                hi = mid
            else:
                lo = mid

    # 3. On independent tasks, also binary-search the SBO parameter: the
    #    smallest delta whose schedule still fits the capacity gives the best
    #    makespan among SBO solutions (Section 7's suggestion).
    is_independent = not isinstance(instance, DAGInstance) or instance.is_independent()
    if is_independent:
        base = instance.as_independent() if isinstance(instance, DAGInstance) else instance
        lo_d, hi_d = 1e-3, 64.0
        best_sbo: Optional[Schedule] = None
        hi_result = sbo(base, hi_d, cmax_solver=sbo_solver)
        if hi_result.schedule.mmax <= memory_capacity + eps:
            best_sbo = hi_result.schedule
            for _ in range(refine_iterations):
                mid = math.sqrt(lo_d * hi_d)
                trial = sbo(base, mid, cmax_solver=sbo_solver).schedule
                if trial.mmax <= memory_capacity + eps:
                    best_sbo = trial if trial.cmax < best_sbo.cmax else best_sbo
                    hi_d = mid
                else:
                    lo_d = mid
        if best_sbo is not None:
            candidates.append(("sbo-binary-search", best_sbo))

    if not candidates:
        return ConstrainedResult(
            feasible=False,
            certified_infeasible=False,
            schedule=None,
            cmax=math.inf,
            mmax=math.inf,
            delta=delta_cap,
            cmax_guarantee=rls_guarantee(delta_cap, instance.m)[0],
            strategy=None,
        )

    strategy, best = min(candidates, key=lambda item: (item[1].cmax, item[1].mmax))
    return ConstrainedResult(
        feasible=True,
        certified_infeasible=False,
        schedule=best,
        cmax=best.cmax,
        mmax=best.mmax,
        delta=delta_cap,
        cmax_guarantee=rls_guarantee(delta_cap, instance.m)[0],
        strategy=strategy,
    )
