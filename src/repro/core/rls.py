"""``RLS_Δ`` — Restricted List Scheduling (Algorithm 2, §5.1).

``RLS_Δ`` extends Graham's list scheduling to the bi-objective problem with
precedence constraints.  It first computes the Graham lower bound on the
optimal memory consumption,

    ``LB = max(max_i s_i, sum_i s_i / m)``,

and then never lets any processor exceed the memory budget ``Δ · LB``.
Scheduling proceeds greedily: among the *ready* tasks (all predecessors
scheduled), each is tentatively placed on the least-loaded processor that
still has memory budget for it, and the task that can start the soonest is
committed (ties broken by a caller-chosen total order on tasks — the SPT
order yields the tri-objective guarantee of §5.2).

Guarantees (Corollaries 2 and 3), for ``Δ > 2``:

* ``Mmax <= Δ · LB <= Δ · M*max``,
* ``Cmax <= (2 + 1/(Δ-2) - (Δ-1)/(m(Δ-2))) · C*max``.

For ``Δ < 2`` a ready task may not fit on any processor; the implementation
then raises :class:`InfeasibleDeltaError` (Lemma 4 explains why values of
``Δ <= 2`` cannot be guaranteed).  ``Δ = 2`` is always feasible (the
least-full processor holds at most ``LB`` and every task has ``s_i <= LB``)
but carries no makespan guarantee.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple, Union

import networkx as nx

from repro.core.bounds import mmax_lower_bound
from repro.core.instance import DAGInstance, Instance
from repro.core.schedule import DAGSchedule

__all__ = [
    "InfeasibleDeltaError",
    "RLSResult",
    "rls",
    "rls_guarantee",
    "minimum_feasible_delta",
]


class InfeasibleDeltaError(RuntimeError):
    """Raised when some task cannot fit on any processor under the ``Δ·LB`` budget."""

    def __init__(self, task_id: object, delta: float, budget: float) -> None:
        super().__init__(
            f"task {task_id!r} does not fit on any processor under the memory budget "
            f"delta*LB = {budget:g} (delta = {delta:g}); values of delta >= 2 are always feasible"
        )
        self.task_id = task_id
        self.delta = delta
        self.budget = budget


@dataclass(frozen=True)
class RLSResult:
    """Outcome of :func:`rls`.

    ``marked_processors`` is the analysis quantity of Lemma 4: processors
    that were at least once skipped because their memory budget could not
    accommodate the task under consideration.  Lemma 4 proves there are at
    most ``floor(m / (Δ - 1))`` of them.
    """

    schedule: DAGSchedule
    delta: float
    memory_lower_bound: float
    memory_budget: float
    cmax_guarantee: float
    mmax_guarantee: float
    marked_processors: Tuple[int, ...]
    order: str

    @property
    def cmax(self) -> float:
        """Makespan of the schedule."""
        return self.schedule.cmax

    @property
    def mmax(self) -> float:
        """Maximum memory consumption of the schedule."""
        return self.schedule.mmax

    @property
    def sum_ci(self) -> float:
        """Sum of completion times (relevant for the §5.2 extension)."""
        return self.schedule.sum_ci


def rls_guarantee(delta: float, m: int) -> Tuple[float, float]:
    """``(Cmax, Mmax)`` guarantee pair of Corollary 3 for ``RLS_Δ``.

    Returns ``(inf, inf)`` when ``Δ < 2`` (no guarantee), ``(inf, Δ)`` when
    ``Δ == 2`` (memory guaranteed, makespan not).
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if delta < 2.0:
        return (math.inf, math.inf)
    if delta == 2.0:
        return (math.inf, float(delta))
    cmax_ratio = 2.0 + 1.0 / (delta - 2.0) - (delta - 1.0) / (m * (delta - 2.0))
    return (cmax_ratio, float(delta))


def _priority_rank(instance: DAGInstance, order: Union[str, Sequence[object]]) -> Dict[object, int]:
    """Total order on tasks used to break ties (smaller rank = higher priority)."""
    if not isinstance(order, str):
        ids = list(order)
        if set(ids) != set(instance.tasks.ids) or len(ids) != instance.n:
            raise ValueError("explicit order must list every task id exactly once")
        return {tid: i for i, tid in enumerate(ids)}
    if order == "arbitrary":
        return {t.id: i for i, t in enumerate(instance.tasks)}
    if order == "spt":
        ranked = sorted(instance.tasks, key=lambda t: (t.p, str(t.id)))
    elif order == "lpt":
        ranked = sorted(instance.tasks, key=lambda t: (-t.p, str(t.id)))
    elif order == "bottom-level":
        # Longest path (in processing time) from the task to any sink,
        # including the task itself — the classic critical-path priority.
        levels: Dict[object, float] = {}
        p = instance.tasks.processing_times()
        for node in reversed(list(nx.topological_sort(instance.graph))):
            succ_best = max((levels[v] for v in instance.graph.successors(node)), default=0.0)
            levels[node] = p[node] + succ_best
        ranked = sorted(instance.tasks, key=lambda t: (-levels[t.id], str(t.id)))
    else:
        raise ValueError(
            f"unknown order {order!r}; expected 'arbitrary', 'spt', 'lpt', 'bottom-level' "
            "or an explicit task-id sequence"
        )
    return {t.id: i for i, t in enumerate(ranked)}


def rls(
    instance: Union[Instance, DAGInstance],
    delta: float,
    order: Union[str, Sequence[object]] = "arbitrary",
) -> RLSResult:
    """Run ``RLS_Δ`` (Algorithm 2) on an instance (independent tasks or DAG).

    Parameters
    ----------
    instance:
        The instance to schedule; independent-task instances are treated as
        DAGs with no edges.
    delta:
        Memory degradation budget ``Δ``.  Values ``>= 2`` are always
        feasible; the makespan guarantee requires ``Δ > 2``.
    order:
        Tie-breaking total order: ``"arbitrary"`` (instance order),
        ``"spt"`` (yields Corollary 4 on independent tasks), ``"lpt"``,
        ``"bottom-level"``, or an explicit sequence of task ids.

    Raises
    ------
    InfeasibleDeltaError
        When ``Δ < 2`` and some ready task fits on no processor.
    """
    if delta <= 0:
        raise ValueError(f"delta must be > 0, got {delta}")
    dag = instance if isinstance(instance, DAGInstance) else instance.as_dag()
    rank = _priority_rank(dag, order)
    graph = dag.graph
    m = dag.m
    p = dag.tasks.processing_times()
    s = dag.tasks.storage_sizes()

    lb = mmax_lower_bound(dag)
    budget = delta * lb
    eps = 1e-12 * max(1.0, budget)
    budget_eps = budget + eps

    load = [0.0] * m
    memsize = [0.0] * m
    marked: Set[int] = set()
    assignment: Dict[object, int] = {}
    starts: Dict[object, float] = {}
    completion: Dict[object, float] = {}

    remaining_preds = {tid: graph.in_degree(tid) for tid in dag.tasks.ids}
    ready: Set[object] = {tid for tid, deg in remaining_preds.items() if deg == 0}
    # A task's release time is fixed the moment it becomes ready (every
    # predecessor has completed), so it is computed once on entry to the
    # ready set instead of once per ready task per step.
    release_of: Dict[object, float] = {tid: 0.0 for tid in ready}
    n_scheduled = 0

    while n_scheduled < dag.n:
        # The (load, index) machine ordering is the same for every ready
        # task in this step — loads only change when a task commits — so
        # sort it once per step, not once per ready task.
        machine_order = sorted(range(m), key=lambda q: (load[q], q))
        min_load = load[machine_order[0]]
        best: Optional[Tuple[float, int, object, int]] = None  # (ready time, rank, task, proc)
        for tid in ready:
            # Least-loaded processor that still has memory budget for the task.
            proc: Optional[int] = None
            s_tid = s[tid]
            for j in machine_order:
                if memsize[j] + s_tid <= budget_eps:
                    proc = j
                    break
            if proc is None:
                raise InfeasibleDeltaError(tid, delta, budget)
            # Analysis bookkeeping of Lemma 4: processors strictly less loaded
            # than the chosen one were skipped because of their memory budget.
            # (No machine qualifies unless even the least-loaded one does.)
            if min_load < load[proc] - eps:
                for j in range(m):
                    if load[j] < load[proc] - eps:
                        marked.add(j)
            release = release_of[tid]
            start = release if release > load[proc] else load[proc]
            key = (start, rank[tid], tid, proc)
            if best is None or (key[0], key[1]) < (best[0], best[1]):
                best = key
        assert best is not None
        start, _, tid, proc = best
        assignment[tid] = proc
        starts[tid] = start
        completion[tid] = start + p[tid]
        load[proc] = completion[tid]
        memsize[proc] += s[tid]
        ready.discard(tid)
        n_scheduled += 1
        for succ in graph.successors(tid):
            remaining_preds[succ] -= 1
            if remaining_preds[succ] == 0:
                ready.add(succ)
                release_of[succ] = max(
                    (completion[u] for u in graph.predecessors(succ)), default=0.0
                )

    schedule = DAGSchedule(dag, assignment, starts)
    cmax_g, mmax_g = rls_guarantee(delta, m)
    order_name = order if isinstance(order, str) else "explicit"
    return RLSResult(
        schedule=schedule,
        delta=delta,
        memory_lower_bound=lb,
        memory_budget=budget,
        cmax_guarantee=cmax_g,
        mmax_guarantee=mmax_g,
        marked_processors=tuple(sorted(marked)),
        order=order_name,
    )


def minimum_feasible_delta(
    instance: Union[Instance, DAGInstance],
    order: Union[str, Sequence[object]] = "arbitrary",
    tolerance: float = 1e-3,
) -> float:
    """Smallest ``Δ`` (up to ``tolerance``) for which ``RLS_Δ`` completes.

    Section 7 observes that the Graham lower bound lets one compute which
    parameter is usable; ``Δ = 2`` always works, and smaller values may
    work when the tasks happen to pack well.  This helper binary-searches
    the smallest feasible value, assuming feasibility is monotone in ``Δ``
    (true for the thresholding scheme: enlarging every processor's budget
    can only keep previously-feasible placements feasible).
    """
    lb = mmax_lower_bound(instance)
    if lb == 0:
        return 0.0
    # The largest single task must fit: delta >= max_i s_i / LB.
    lo = max((t.s for t in instance.tasks), default=0.0) / lb
    hi = 2.0

    def feasible(d: float) -> bool:
        try:
            rls(instance, d, order=order)
            return True
        except InfeasibleDeltaError:
            return False

    if feasible(lo):
        return lo
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if feasible(mid):
            hi = mid
        else:
            lo = mid
    return hi
