"""Schedules and their objective values.

Two schedule classes mirror the two problem variants of the paper:

* :class:`Schedule` — an *assignment* ``π : T → Q`` of tasks to processors,
  which is all that matters for independent tasks (§2.1).  Each processor
  executes its tasks back to back; an optional per-processor order fixes the
  sequencing (needed for the ``sum Ci`` objective of §5.2).
* :class:`DAGSchedule` — an assignment plus explicit start times ``σ(i)``,
  as required once precedence constraints are present (§5).

Both classes are immutable once built and expose ``cmax``, ``mmax``,
``sum_ci``, per-processor loads/memory, and per-task completion times.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.instance import DAGInstance, Instance

__all__ = ["Schedule", "DAGSchedule"]


class Schedule:
    """An assignment of independent tasks to processors.

    Parameters
    ----------
    instance:
        The instance being scheduled.
    assignment:
        Mapping ``task id -> processor index`` in ``range(instance.m)``.
        Every task of the instance must be assigned.
    order:
        Optional explicit execution order per processor, as a mapping
        ``processor index -> sequence of task ids``.  When omitted, each
        processor executes its tasks in instance (insertion) order.  The
        order only affects per-task completion times (hence ``sum Ci``);
        ``Cmax`` and ``Mmax`` are order-independent for independent tasks.
    """

    __slots__ = ("instance", "_assignment", "_order", "_loads", "_memories", "_completion")

    def __init__(
        self,
        instance: Instance,
        assignment: Mapping[object, int],
        order: Optional[Mapping[int, Sequence[object]]] = None,
    ) -> None:
        self.instance = instance
        assignment = dict(assignment)
        missing = [t.id for t in instance.tasks if t.id not in assignment]
        if missing:
            raise ValueError(f"assignment is missing tasks: {missing[:5]!r}{'...' if len(missing) > 5 else ''}")
        extra = [tid for tid in assignment if tid not in instance.tasks]
        if extra:
            raise ValueError(f"assignment references unknown tasks: {extra[:5]!r}")
        for tid, proc in assignment.items():
            if not isinstance(proc, int) or isinstance(proc, bool) or not (0 <= proc < instance.m):
                raise ValueError(
                    f"task {tid!r} assigned to invalid processor {proc!r} (m={instance.m})"
                )
        self._assignment: Dict[object, int] = assignment
        self._order = self._normalise_order(order)
        self._loads: Optional[List[float]] = None
        self._memories: Optional[List[float]] = None
        self._completion: Optional[Dict[object, float]] = None

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _normalise_order(
        self, order: Optional[Mapping[int, Sequence[object]]]
    ) -> Dict[int, List[object]]:
        per_proc: Dict[int, List[object]] = {q: [] for q in range(self.instance.m)}
        if order is None:
            for task in self.instance.tasks:
                per_proc[self._assignment[task.id]].append(task.id)
            return per_proc
        seen = set()
        for proc, ids in order.items():
            if proc not in per_proc:
                raise ValueError(f"order references invalid processor {proc!r}")
            for tid in ids:
                if tid not in self._assignment:
                    raise ValueError(f"order references unknown task {tid!r}")
                if self._assignment[tid] != proc:
                    raise ValueError(
                        f"order places task {tid!r} on processor {proc} but it is assigned to "
                        f"processor {self._assignment[tid]}"
                    )
                if tid in seen:
                    raise ValueError(f"task {tid!r} appears twice in the order")
                seen.add(tid)
                per_proc[proc].append(tid)
        # Any task not mentioned in the explicit order is appended in
        # instance order after the ordered prefix of its processor.
        for task in self.instance.tasks:
            if task.id not in seen:
                per_proc[self._assignment[task.id]].append(task.id)
        return per_proc

    @classmethod
    def _trusted(
        cls,
        instance: Instance,
        assignment: Dict[object, int],
        order: Dict[int, List[object]],
    ) -> "Schedule":
        """Kernel-internal constructor that skips validation.

        The placement kernels (:mod:`repro.algorithms`) build complete,
        valid ``assignment``/``order`` structures by construction; paying
        the public constructor's O(n) re-validation per solve is pure
        overhead on the serving hot path.  Callers *must* hand over a
        fully-populated assignment and a per-processor order dict keyed
        by every ``q in range(instance.m)``; ownership of both transfers
        to the schedule (no defensive copies).
        """
        self = object.__new__(cls)
        self.instance = instance
        self._assignment = assignment
        self._order = order
        self._loads = None
        self._memories = None
        self._completion = None
        return self

    @classmethod
    def from_processor_lists(
        cls, instance: Instance, processors: Sequence[Sequence[object]]
    ) -> "Schedule":
        """Build a schedule from an explicit list of task ids per processor."""
        if len(processors) > instance.m:
            raise ValueError(
                f"got {len(processors)} processor lists for an instance with m={instance.m}"
            )
        assignment: Dict[object, int] = {}
        order: Dict[int, List[object]] = {}
        for q, ids in enumerate(processors):
            order[q] = list(ids)
            for tid in ids:
                if tid in assignment:
                    raise ValueError(f"task {tid!r} appears on more than one processor")
                assignment[tid] = q
        return cls(instance, assignment, order=order)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def assignment(self) -> Dict[object, int]:
        """Copy of the task → processor mapping."""
        return dict(self._assignment)

    def processor_of(self, task_id: object) -> int:
        """Processor index the task is assigned to."""
        return self._assignment[task_id]

    def tasks_on(self, proc: int) -> List[object]:
        """Task ids executed by ``proc`` in execution order."""
        if not (0 <= proc < self.instance.m):
            raise ValueError(f"invalid processor index {proc}")
        return list(self._order[proc])

    # ------------------------------------------------------------------ #
    # objective values
    # ------------------------------------------------------------------ #
    @property
    def loads(self) -> List[float]:
        """Per-processor total processing time."""
        if self._loads is None:
            loads = [0.0] * self.instance.m
            for task in self.instance.tasks:
                loads[self._assignment[task.id]] += task.p
            self._loads = loads
        return list(self._loads)

    @property
    def memories(self) -> List[float]:
        """Per-processor cumulative memory occupation."""
        if self._memories is None:
            mems = [0.0] * self.instance.m
            for task in self.instance.tasks:
                mems[self._assignment[task.id]] += task.s
            self._memories = mems
        return list(self._memories)

    @property
    def cmax(self) -> float:
        """Makespan: the largest per-processor load."""
        return max(self.loads) if self.instance.m else 0.0

    @property
    def mmax(self) -> float:
        """Maximum cumulative memory occupation over processors."""
        return max(self.memories) if self.instance.m else 0.0

    def completion_times(self) -> Dict[object, float]:
        """Per-task completion time under back-to-back execution in order."""
        if self._completion is None:
            completion: Dict[object, float] = {}
            for proc in range(self.instance.m):
                clock = 0.0
                for tid in self._order[proc]:
                    clock += self.instance.task(tid).p
                    completion[tid] = clock
            self._completion = completion
        return dict(self._completion)

    @property
    def sum_ci(self) -> float:
        """Sum of completion times (the third objective of §5.2)."""
        return sum(self.completion_times().values())

    # ------------------------------------------------------------------ #
    # conversions & misc
    # ------------------------------------------------------------------ #
    def objective_tuple(self) -> Tuple[float, float]:
        """``(Cmax, Mmax)`` pair for Pareto reasoning."""
        return (self.cmax, self.mmax)

    def as_dag_schedule(self, dag_instance: Optional[DAGInstance] = None) -> "DAGSchedule":
        """Lift to a timed :class:`DAGSchedule` (back-to-back start times)."""
        instance = dag_instance if dag_instance is not None else self.instance.as_dag() if not isinstance(self.instance, DAGInstance) else self.instance
        starts: Dict[object, float] = {}
        for proc in range(self.instance.m):
            clock = 0.0
            for tid in self._order[proc]:
                starts[tid] = clock
                clock += self.instance.task(tid).p
        return DAGSchedule(instance, self._assignment, starts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schedule(n={self.instance.n}, m={self.instance.m}, cmax={self.cmax:g}, mmax={self.mmax:g})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self.instance == other.instance and self._assignment == other._assignment and self._order == other._order


class DAGSchedule:
    """A timed schedule (assignment + start times) for a DAG instance.

    Parameters
    ----------
    instance:
        The (possibly precedence-constrained) instance.
    assignment:
        Mapping ``task id -> processor index``.
    start_times:
        Mapping ``task id -> start time σ(i) >= 0``.
    """

    __slots__ = ("instance", "_assignment", "_starts", "_memories")

    def __init__(
        self,
        instance: Instance,
        assignment: Mapping[object, int],
        start_times: Mapping[object, float],
    ) -> None:
        self.instance = instance
        assignment = dict(assignment)
        starts = {tid: float(t) for tid, t in start_times.items()}
        for task in instance.tasks:
            if task.id not in assignment:
                raise ValueError(f"assignment is missing task {task.id!r}")
            if task.id not in starts:
                raise ValueError(f"start_times is missing task {task.id!r}")
            if starts[task.id] < 0:
                raise ValueError(f"task {task.id!r} has a negative start time {starts[task.id]!r}")
            proc = assignment[task.id]
            if not isinstance(proc, int) or isinstance(proc, bool) or not (0 <= proc < instance.m):
                raise ValueError(f"task {task.id!r} assigned to invalid processor {proc!r}")
        extra = [tid for tid in assignment if tid not in instance.tasks]
        if extra:
            raise ValueError(f"assignment references unknown tasks: {extra[:5]!r}")
        self._assignment = assignment
        self._starts = starts
        self._memories: Optional[List[float]] = None

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def assignment(self) -> Dict[object, int]:
        """Copy of the task → processor mapping."""
        return dict(self._assignment)

    @property
    def start_times(self) -> Dict[object, float]:
        """Copy of the task → start time mapping."""
        return dict(self._starts)

    def processor_of(self, task_id: object) -> int:
        """Processor executing the task."""
        return self._assignment[task_id]

    def start_of(self, task_id: object) -> float:
        """Start time ``σ(i)``."""
        return self._starts[task_id]

    def completion_of(self, task_id: object) -> float:
        """Completion time ``C_i = σ(i) + p_i``."""
        return self._starts[task_id] + self.instance.task(task_id).p

    def completion_times(self) -> Dict[object, float]:
        """All task completion times."""
        return {t.id: self.completion_of(t.id) for t in self.instance.tasks}

    def tasks_on(self, proc: int) -> List[object]:
        """Task ids run by ``proc``, sorted by start time."""
        ids = [t.id for t in self.instance.tasks if self._assignment[t.id] == proc]
        return sorted(ids, key=lambda tid: (self._starts[tid], str(tid)))

    # ------------------------------------------------------------------ #
    # objective values
    # ------------------------------------------------------------------ #
    @property
    def cmax(self) -> float:
        """Makespan ``max_i C_i`` (0 for an empty instance)."""
        if self.instance.n == 0:
            return 0.0
        return max(self.completion_of(t.id) for t in self.instance.tasks)

    @property
    def memories(self) -> List[float]:
        """Per-processor cumulative memory occupation."""
        if self._memories is None:
            mems = [0.0] * self.instance.m
            for task in self.instance.tasks:
                mems[self._assignment[task.id]] += task.s
            self._memories = mems
        return list(self._memories)

    @property
    def loads(self) -> List[float]:
        """Per-processor busy time (sum of processing times of assigned tasks)."""
        loads = [0.0] * self.instance.m
        for task in self.instance.tasks:
            loads[self._assignment[task.id]] += task.p
        return loads

    @property
    def mmax(self) -> float:
        """Maximum cumulative memory occupation over processors."""
        return max(self.memories) if self.instance.m else 0.0

    @property
    def sum_ci(self) -> float:
        """Sum of completion times."""
        return sum(self.completion_times().values())

    def objective_tuple(self) -> Tuple[float, float]:
        """``(Cmax, Mmax)`` pair for Pareto reasoning."""
        return (self.cmax, self.mmax)

    # ------------------------------------------------------------------ #
    # conversions & misc
    # ------------------------------------------------------------------ #
    def as_assignment_schedule(self) -> Schedule:
        """Project onto an (order-preserving) assignment-only :class:`Schedule`."""
        base = self.instance.as_independent() if isinstance(self.instance, DAGInstance) else self.instance
        order = {q: self.tasks_on(q) for q in range(self.instance.m)}
        return Schedule(base, self._assignment, order=order)

    def idle_time(self) -> float:
        """Total idle processor time before the makespan."""
        return self.instance.m * self.cmax - sum(t.p for t in self.instance.tasks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DAGSchedule(n={self.instance.n}, m={self.instance.m}, "
            f"cmax={self.cmax:g}, mmax={self.mmax:g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DAGSchedule):
            return NotImplemented
        return (
            self.instance == other.instance
            and self._assignment == other._assignment
            and self._starts == other._starts
        )
