"""Tri-objective extension of ``RLS_Δ`` on independent tasks (§5.2).

Running ``RLS_Δ`` with the SPT order as the tie-breaking total order keeps
the bi-objective guarantees of Corollary 3 *and* adds a guarantee on the
sum of completion times.  The argument (Lemma 6) is that forbidding a
fraction of the processors degrades an SPT schedule's ``sum Ci`` by at most
``(1/ρ + 1)`` where ``ρ`` is the fraction of processors kept; since RLS_Δ
always keeps ``m (Δ-2)/(Δ-1)`` processors unconstrained, Corollary 4 gives

    ``(Cmax, Mmax, sum Ci)``-ratios of
    ``(2 + 1/(Δ-2) - (Δ-1)/(m(Δ-2)),  Δ,  2 + 1/(Δ-2))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple, Union

from repro.core.bounds import sum_ci_lower_bound
from repro.core.instance import DAGInstance, Instance
from repro.core.rls import RLSResult, rls, rls_guarantee
from repro.core.schedule import DAGSchedule

__all__ = ["TriObjectiveResult", "tri_objective_schedule", "tri_objective_guarantee"]


@dataclass(frozen=True)
class TriObjectiveResult:
    """Outcome of :func:`tri_objective_schedule`.

    Wraps the underlying :class:`~repro.core.rls.RLSResult` and adds the
    ``sum Ci`` reference value (the SPT optimum) and guarantee.
    """

    rls_result: RLSResult
    sum_ci_optimal: float
    sum_ci_guarantee: float

    @property
    def schedule(self) -> DAGSchedule:
        """The produced schedule."""
        return self.rls_result.schedule

    @property
    def cmax(self) -> float:
        return self.rls_result.cmax

    @property
    def mmax(self) -> float:
        return self.rls_result.mmax

    @property
    def sum_ci(self) -> float:
        return self.rls_result.sum_ci

    @property
    def guarantees(self) -> Tuple[float, float, float]:
        """``(Cmax, Mmax, sum Ci)`` guarantee triple of Corollary 4."""
        return (
            self.rls_result.cmax_guarantee,
            self.rls_result.mmax_guarantee,
            self.sum_ci_guarantee,
        )


def tri_objective_guarantee(delta: float, m: int) -> Tuple[float, float, float]:
    """The ``(2 + 1/(Δ-2) - (Δ-1)/(m(Δ-2)), Δ, 2 + 1/(Δ-2))`` triple of Corollary 4."""
    cmax_g, mmax_g = rls_guarantee(delta, m)
    sum_ci_g = math.inf if delta <= 2.0 else 2.0 + 1.0 / (delta - 2.0)
    return (cmax_g, mmax_g, sum_ci_g)


def tri_objective_schedule(
    instance: Union[Instance, DAGInstance],
    delta: float,
) -> TriObjectiveResult:
    """Run ``RLS_Δ`` with SPT tie-breaking on an independent-task instance.

    Precedence-constrained instances are rejected: the ``sum Ci`` guarantee
    of Corollary 4 only holds for independent tasks (SPT is only optimal
    there).
    """
    if isinstance(instance, DAGInstance) and not instance.is_independent():
        raise ValueError(
            "the tri-objective guarantee of Corollary 4 only holds for independent tasks"
        )
    base = instance.as_independent() if isinstance(instance, DAGInstance) else instance
    result = rls(base, delta, order="spt")
    optimal = sum_ci_lower_bound(base)
    _, _, sum_ci_g = tri_objective_guarantee(delta, base.m)
    return TriObjectiveResult(
        rls_result=result,
        sum_ci_optimal=optimal,
        sum_ci_guarantee=sum_ci_g,
    )
