"""``SBO_Δ`` — the Symmetric Bi-Objective algorithm (Algorithm 1, §3).

The algorithm runs two single-objective solvers on *all* the tasks:

* ``π1`` — a ``ρ1``-approximation on the makespan (ignoring memory),
* ``π2`` — a ``ρ2``-approximation on the memory consumption (ignoring time),

and then picks, task by task, which of the two allocations to follow.  The
choice thresholds the time-per-memory ratio: task ``i`` follows the
memory-oriented allocation ``π2`` when ``p_i / C < Δ · s_i / M`` (it is
memory-dominated at scale Δ) and the makespan-oriented allocation ``π1``
otherwise, where ``C = Cmax(π1)`` and ``M = Mmax(π2)``.

Guarantees (Properties 1 and 2):

* ``Cmax(π_Δ) <= (1 + Δ) · ρ1 · C*max``,
* ``Mmax(π_Δ) <= (1 + 1/Δ) · ρ2 · M*max``.

With the PTAS as sub-solver (``ρ1 = ρ2 = 1 + ε``) this yields Corollary 1's
``(1 + Δ + ε, 1 + 1/Δ + ε)`` family, and ``Δ = 1`` gives the balanced
``(2 + ε, 2 + ε)`` point.

The algorithm only works for independent tasks: feeding it a
:class:`~repro.core.instance.DAGInstance` with precedence edges raises
``ValueError`` (use :func:`repro.core.rls.rls` instead, §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from repro.solvers.single import SolverFn, get_single_objective_solver
from repro.core.instance import DAGInstance, Instance
from repro.core.schedule import Schedule

__all__ = ["SBOResult", "sbo", "sbo_guarantee", "sbo_tradeoff_curve"]


@dataclass(frozen=True)
class SBOResult:
    """Outcome of :func:`sbo`.

    Attributes
    ----------
    schedule:
        The combined schedule ``π_Δ``.
    delta:
        The trade-off parameter Δ used.
    pi1, pi2:
        The two single-objective schedules that were combined.
    reference_cmax:
        ``C`` — the makespan of ``π1`` used in the threshold test.
    reference_mmax:
        ``M`` — the memory consumption of ``π2`` used in the threshold test.
    rho1, rho2:
        Approximation ratios guaranteed by the two sub-solvers.
    cmax_guarantee, mmax_guarantee:
        The resulting guarantees ``(1 + Δ)ρ1`` and ``(1 + 1/Δ)ρ2``.
    memory_driven_tasks:
        Ids of tasks that followed the memory-oriented allocation ``π2``
        (the set ``S2`` of the proofs).
    """

    schedule: Schedule
    delta: float
    pi1: Schedule
    pi2: Schedule
    reference_cmax: float
    reference_mmax: float
    rho1: float
    rho2: float
    cmax_guarantee: float
    mmax_guarantee: float
    memory_driven_tasks: Tuple[object, ...]

    @property
    def cmax(self) -> float:
        """Makespan of the combined schedule."""
        return self.schedule.cmax

    @property
    def mmax(self) -> float:
        """Maximum memory consumption of the combined schedule."""
        return self.schedule.mmax


def sbo_guarantee(delta: float, rho1: float = 1.0, rho2: float = 1.0) -> Tuple[float, float]:
    """The ``((1 + Δ)ρ1, (1 + 1/Δ)ρ2)`` guarantee pair of Properties 1–2."""
    if delta <= 0:
        raise ValueError(f"delta must be > 0, got {delta}")
    return ((1.0 + delta) * rho1, (1.0 + 1.0 / delta) * rho2)


def sbo_tradeoff_curve(
    deltas: Sequence[float], rho1: float = 1.0, rho2: float = 1.0
) -> List[Tuple[float, float, float]]:
    """Theoretical trade-off curve ``Δ -> ((1+Δ)ρ1, (1+1/Δ)ρ2)``.

    This is the dashed curve of Figure 3 (with ``ρ1 = ρ2 = 1``, i.e. the
    PTAS limit ``ε -> 0``).  Returns ``(delta, cmax_ratio, mmax_ratio)``
    triples.
    """
    return [(d, *sbo_guarantee(d, rho1, rho2)) for d in deltas]


def _as_independent(instance: Union[Instance, DAGInstance]) -> Instance:
    if isinstance(instance, DAGInstance):
        if not instance.is_independent():
            raise ValueError(
                "SBO_delta only handles independent tasks (the paper's Section 3); "
                "use repro.core.rls.rls for precedence-constrained instances"
            )
        return instance.as_independent()
    return instance


def sbo(
    instance: Union[Instance, DAGInstance],
    delta: float,
    cmax_solver: Union[str, SolverFn] = "lpt",
    mmax_solver: Union[str, SolverFn, None] = None,
) -> SBOResult:
    """Run ``SBO_Δ`` (Algorithm 1) on an independent-task instance.

    Parameters
    ----------
    instance:
        The instance to schedule.  Precedence constraints are rejected.
    delta:
        Trade-off parameter ``Δ > 0``.  Small Δ favours the makespan
        (few tasks follow the memory schedule); large Δ favours memory.
    cmax_solver:
        Name of a registered solver (see
        :func:`repro.solvers.available_single_objective_solvers`) or a callable
        ``(instance, objective) -> (schedule, rho)`` used to build ``π1``.
    mmax_solver:
        Solver used to build ``π2``; defaults to the same solver as
        ``cmax_solver`` (exploiting the symmetry of the two objectives).
    """
    if delta <= 0:
        raise ValueError(f"delta must be > 0, got {delta}")
    inst = _as_independent(instance)

    solver1 = (
        get_single_objective_solver(cmax_solver) if isinstance(cmax_solver, str) else cmax_solver
    )
    if mmax_solver is None:
        solver2 = solver1
    else:
        solver2 = (
            get_single_objective_solver(mmax_solver) if isinstance(mmax_solver, str) else mmax_solver
        )

    pi1, rho1 = solver1(inst, "time")
    pi2, rho2 = solver2(inst, "memory")
    reference_cmax = pi1.cmax
    reference_mmax = pi2.mmax

    assignment: Dict[object, int] = {}
    memory_driven: List[object] = []
    # The zero-reference degenerate cases are loop-invariant, so the
    # per-task work reduces to the cross-multiplied threshold test of
    # Algorithm 1 (p_i / C < delta * s_i / M, robust to C or M being 0).
    assign1 = pi1.assignment
    assign2 = pi2.assignment
    if reference_cmax == 0.0:
        if reference_mmax == 0.0:
            assignment = dict(assign1)
        else:
            # Every task has zero processing time; memory is the only concern.
            assignment = dict(assign2)
            memory_driven = [t.id for t in inst.tasks]
    elif reference_mmax == 0.0:
        # Every task has zero storage; makespan is the only concern.
        assignment = dict(assign1)
    else:
        for task in inst.tasks:
            tid = task.id
            if task.p * reference_mmax < delta * task.s * reference_cmax:
                assignment[tid] = assign2[tid]
                memory_driven.append(tid)
            else:
                assignment[tid] = assign1[tid]

    schedule = Schedule(inst, assignment)
    cmax_guarantee, mmax_guarantee = sbo_guarantee(delta, rho1, rho2)
    return SBOResult(
        schedule=schedule,
        delta=delta,
        pi1=pi1,
        pi2=pi2,
        reference_cmax=reference_cmax,
        reference_mmax=reference_mmax,
        rho1=rho1,
        rho2=rho2,
        cmax_guarantee=cmax_guarantee,
        mmax_guarantee=mmax_guarantee,
        memory_driven_tasks=tuple(memory_driven),
    )
