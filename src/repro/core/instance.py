"""Scheduling instances: independent tasks and precedence-constrained DAGs.

Two instance classes mirror the two problems of the paper:

* :class:`Instance` — ``P | p_j, s_j | Cmax, Mmax`` (independent tasks, §2–4),
* :class:`DAGInstance` — ``P | p_j, s_j, prec | Cmax, Mmax`` (§5).

A :class:`DAGInstance` with no edges behaves exactly like an
:class:`Instance`; :meth:`DAGInstance.as_independent` and
:meth:`Instance.as_dag` convert between the two.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.core.task import Task, TaskSet

__all__ = ["Instance", "DAGInstance"]


def _check_m(m: int) -> int:
    if not isinstance(m, int) or isinstance(m, bool):
        raise TypeError(f"number of processors m must be an int, got {type(m).__name__}")
    if m < 1:
        raise ValueError(f"number of processors m must be >= 1, got {m}")
    return m


class Instance:
    """An independent-task instance of ``P | p_j, s_j | Cmax, Mmax``.

    Parameters
    ----------
    tasks:
        The tasks to schedule (a :class:`TaskSet` or any iterable of
        :class:`Task`).
    m:
        Number of identical processors.
    name:
        Optional name used in experiment reports.
    """

    __slots__ = ("tasks", "m", "name", "_content_hash")

    def __init__(self, tasks: Iterable[Task], m: int, name: Optional[str] = None) -> None:
        self.tasks: TaskSet = tasks if isinstance(tasks, TaskSet) else TaskSet(tasks)
        self.m: int = _check_m(m)
        self.name: Optional[str] = name
        self._content_hash: Optional[str] = None

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_lists(
        cls,
        p: Sequence[float],
        s: Sequence[float],
        m: int,
        ids: Optional[Sequence[object]] = None,
        name: Optional[str] = None,
    ) -> "Instance":
        """Build an instance from parallel ``p`` / ``s`` vectors."""
        return cls(TaskSet.from_lists(p, s, ids=ids), m=m, name=name)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of tasks."""
        return len(self.tasks)

    @property
    def total_p(self) -> float:
        return self.tasks.total_p

    @property
    def total_s(self) -> float:
        return self.tasks.total_s

    def task(self, task_id: object) -> Task:
        """Lookup a task by id."""
        return self.tasks[task_id]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = f" {self.name!r}" if self.name else ""
        return f"Instance({name} n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance) or isinstance(other, DAGInstance) != isinstance(self, DAGInstance):
            return NotImplemented
        return self.m == other.m and self.tasks == other.tasks

    # ------------------------------------------------------------------ #
    # content addressing
    # ------------------------------------------------------------------ #
    def _fingerprint_parts(self) -> List[str]:
        """Canonical lines hashed by :meth:`content_hash` (subclasses extend)."""
        parts = ["kind=independent", f"m={self.m}"]
        parts.extend(f"task={t.id!r}|{t.p!r}|{t.s!r}" for t in self.tasks)
        return parts

    def content_hash(self) -> str:
        """SHA-256 hex digest of the instance *content*.

        The digest covers everything a (deterministic) solver can observe:
        the processor count, the tasks — id, processing time and storage,
        in insertion order, because task order is the "arbitrary total
        ordering" solvers break ties with — and, in subclasses, precedence
        edges and processor speeds.  Cosmetic attributes (``name``, task
        ``label``) are excluded, so renaming an instance does not change
        its hash.  The digest is stable across processes and Python
        sessions, which makes ``(content_hash, canonical spec)`` a
        persistent cache key for solver results
        (:mod:`repro.solvers.cache`).
        """
        # Instances are immutable after construction, so the digest is
        # computed once and memoized.  ``getattr`` guards objects
        # unpickled from caches written before the slot existed.
        cached = getattr(self, "_content_hash", None)
        if cached is not None:
            return cached
        payload = "\n".join(self._fingerprint_parts())
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        self._content_hash = digest
        return digest

    # ------------------------------------------------------------------ #
    # transforms
    # ------------------------------------------------------------------ #
    def swapped(self) -> "Instance":
        """Exchange the roles of ``p`` and ``s`` (objective symmetry, §2.1)."""
        return Instance(self.tasks.swapped(), m=self.m, name=self.name)

    def with_m(self, m: int) -> "Instance":
        """Return a copy of the instance with a different processor count."""
        return Instance(self.tasks, m=m, name=self.name)

    def as_dag(self) -> "DAGInstance":
        """Lift to a :class:`DAGInstance` with an empty precedence relation."""
        return DAGInstance(self.tasks, m=self.m, edges=(), name=self.name)

    # ------------------------------------------------------------------ #
    # (de)serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable dictionary representation."""
        return {
            "kind": "independent",
            "name": self.name,
            "m": self.m,
            "tasks": [
                {"id": t.id, "p": t.p, "s": t.s, "label": t.label} for t in self.tasks
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Instance":
        """Inverse of :meth:`to_dict`."""
        tasks = TaskSet(
            Task(id=rec["id"], p=rec["p"], s=rec["s"], label=rec.get("label"))
            for rec in data["tasks"]  # type: ignore[index]
        )
        return cls(tasks, m=int(data["m"]), name=data.get("name"))  # type: ignore[arg-type]

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Instance":
        """Deserialise from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


class DAGInstance(Instance):
    """A precedence-constrained instance of ``P | p_j, s_j, prec | Cmax, Mmax``.

    Precedence constraints are stored as a directed acyclic graph on task
    ids; an edge ``(u, v)`` means task ``v`` cannot start before task ``u``
    completes.  The graph is validated at construction time (all endpoints
    must be known task ids, no self loops, no cycles).
    """

    __slots__ = ("graph",)

    def __init__(
        self,
        tasks: Iterable[Task],
        m: int,
        edges: Iterable[Tuple[object, object]] = (),
        name: Optional[str] = None,
    ) -> None:
        super().__init__(tasks, m=m, name=name)
        graph = nx.DiGraph()
        graph.add_nodes_from(self.tasks.ids)
        known = set(self.tasks.ids)
        for u, v in edges:
            if u not in known or v not in known:
                raise ValueError(f"precedence edge ({u!r}, {v!r}) references an unknown task id")
            if u == v:
                raise ValueError(f"self-loop on task {u!r} is not allowed")
            graph.add_edge(u, v)
        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise ValueError(f"precedence constraints contain a cycle: {cycle}")
        self.graph: nx.DiGraph = graph

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_lists(
        cls,
        p: Sequence[float],
        s: Sequence[float],
        m: int,
        edges: Iterable[Tuple[object, object]] = (),
        ids: Optional[Sequence[object]] = None,
        name: Optional[str] = None,
    ) -> "DAGInstance":
        """Build a DAG instance from parallel ``p`` / ``s`` vectors and an edge list."""
        return cls(TaskSet.from_lists(p, s, ids=ids), m=m, edges=edges, name=name)

    @classmethod
    def from_networkx(
        cls,
        graph: nx.DiGraph,
        m: int,
        p_attr: str = "p",
        s_attr: str = "s",
        name: Optional[str] = None,
    ) -> "DAGInstance":
        """Build a DAG instance from a ``networkx`` graph with node attributes.

        Node attributes ``p_attr`` and ``s_attr`` give processing time and
        storage requirement; missing attributes default to ``0``.
        """
        tasks = TaskSet(
            Task(id=node, p=float(data.get(p_attr, 0.0)), s=float(data.get(s_attr, 0.0)))
            for node, data in graph.nodes(data=True)
        )
        return cls(tasks, m=m, edges=graph.edges(), name=name)

    # ------------------------------------------------------------------ #
    # precedence accessors (the paper's pred()/succ())
    # ------------------------------------------------------------------ #
    @property
    def n_edges(self) -> int:
        """Number of precedence edges."""
        return self.graph.number_of_edges()

    def predecessors(self, task_id: object) -> List[object]:
        """``pred(i)`` — direct predecessors of a task."""
        return list(self.graph.predecessors(task_id))

    def successors(self, task_id: object) -> List[object]:
        """``succ(i)`` — direct successors of a task."""
        return list(self.graph.successors(task_id))

    def sources(self) -> List[object]:
        """Tasks with no predecessor (ready at time 0)."""
        return [v for v in self.graph.nodes if self.graph.in_degree(v) == 0]

    def sinks(self) -> List[object]:
        """Tasks with no successor."""
        return [v for v in self.graph.nodes if self.graph.out_degree(v) == 0]

    def topological_order(self) -> List[object]:
        """A topological order of the task ids (deterministic for a given instance)."""
        return list(nx.lexicographical_topological_sort(self.graph, key=lambda x: str(x)))

    def is_independent(self) -> bool:
        """True when there are no precedence constraints."""
        return self.graph.number_of_edges() == 0

    def as_independent(self) -> Instance:
        """Drop the precedence constraints (only meaningful when independent)."""
        return Instance(self.tasks, m=self.m, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = f" {self.name!r}" if self.name else ""
        return f"DAGInstance({name} n={self.n}, m={self.m}, edges={self.n_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DAGInstance):
            return NotImplemented
        return (
            self.m == other.m
            and self.tasks == other.tasks
            and set(self.graph.edges()) == set(other.graph.edges())
        )

    def _fingerprint_parts(self) -> List[str]:
        parts = super()._fingerprint_parts()
        parts[0] = "kind=dag"
        parts.extend(
            f"edge={u}|{v}"
            for u, v in sorted((repr(u), repr(v)) for u, v in self.graph.edges())
        )
        return parts

    # ------------------------------------------------------------------ #
    # transforms & serialisation
    # ------------------------------------------------------------------ #
    def swapped(self) -> "DAGInstance":
        """Exchange ``p`` and ``s`` while keeping the precedence relation."""
        return DAGInstance(self.tasks.swapped(), m=self.m, edges=self.graph.edges(), name=self.name)

    def with_m(self, m: int) -> "DAGInstance":
        """Return a copy of the instance with a different processor count."""
        return DAGInstance(self.tasks, m=m, edges=self.graph.edges(), name=self.name)

    def to_dict(self) -> Dict[str, object]:
        data = super().to_dict()
        data["kind"] = "dag"
        data["edges"] = [[u, v] for u, v in self.graph.edges()]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DAGInstance":
        tasks = TaskSet(
            Task(id=rec["id"], p=rec["p"], s=rec["s"], label=rec.get("label"))
            for rec in data["tasks"]  # type: ignore[index]
        )
        edges = [tuple(e) for e in data.get("edges", [])]  # type: ignore[union-attr]
        return cls(tasks, m=int(data["m"]), edges=edges, name=data.get("name"))  # type: ignore[arg-type]
