"""Core problem model and the paper's algorithms.

Sub-modules
-----------

``task``
    The :class:`Task` record (processing time ``p``, storage size ``s``)
    and the :class:`TaskSet` container.
``instance``
    Independent-task instances (:class:`Instance`) and precedence
    constrained instances (:class:`DAGInstance`).
``schedule``
    Assignment-only schedules (:class:`Schedule`) for independent tasks and
    timed schedules (:class:`DAGSchedule`) for DAGs.
``objectives``
    Evaluation of ``Cmax``, ``Mmax`` and ``sum Ci``.
``validation``
    Feasibility checking of schedules.
``bounds``
    Lower bounds used throughout the paper (Graham area bounds, critical
    path, ``LB`` of Algorithm 2).
``pareto``
    Pareto dominance and front maintenance.
``sbo``
    Algorithm 1 — the Symmetric Bi-Objective algorithm ``SBO_Δ`` (§3).
``rls``
    Algorithm 2 — Restricted List Scheduling ``RLS_Δ`` (§5.1).
``trio``
    The tri-objective extension on independent tasks (§5.2).
``constrained``
    Resolution of the original storage-constrained problem (§7).
``impossibility``
    The inapproximability constructions and bounds of §4.
"""

from __future__ import annotations

__all__ = [
    "task",
    "instance",
    "schedule",
    "objectives",
    "validation",
    "bounds",
    "pareto",
    "sbo",
    "rls",
    "trio",
    "constrained",
    "impossibility",
]
