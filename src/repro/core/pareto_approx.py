"""Approximate Pareto-set generation by sweeping the Δ parameter.

Section 6 of the paper contrasts absolute approximation (one solution
approximating all objectives — the route the paper takes) with *Pareto set
approximation* (return a set of solutions such that every feasible point is
within ``(1+ε)`` of some returned point, in the sense of Papadimitriou &
Yannakakis).  The paper notes that all of its algorithms "can be tuned using
the Δ parameter", which is exactly what is needed to build such a set:

* for independent tasks, sweep ``SBO_Δ`` over a geometric grid of Δ values —
  the guarantee ``((1+Δ)ρ, (1+1/Δ)ρ)`` of adjacent grid points differs by at
  most the grid step, so the returned set is an ``(1+ε)``-cover of the
  guarantee curve;
* for DAGs, sweep ``RLS_Δ`` over Δ > 2.

The returned set is filtered to its non-dominated subset and each point
carries the schedule achieving it, so a decision maker (or the constrained
solver) can pick a trade-off after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.core.instance import DAGInstance, Instance
from repro.core.pareto import ParetoFront
from repro.core.rls import InfeasibleDeltaError, rls
from repro.core.sbo import sbo
from repro.core.schedule import DAGSchedule, Schedule

__all__ = [
    "ApproximateParetoSet",
    "delta_grid",
    "approximate_pareto_set",
    "approximate_pareto_set_dag",
]

AnySchedule = Union[Schedule, DAGSchedule]


@dataclass(frozen=True)
class ApproximateParetoSet:
    """An approximate Pareto set of schedules for one instance.

    Attributes
    ----------
    front:
        The non-dominated ``(Cmax, Mmax)`` points with their schedules.
    deltas:
        The Δ grid that was swept.
    epsilon:
        The grid ratio: adjacent Δ values differ by a factor ``1 + epsilon``.
    algorithm:
        ``"sbo"`` or ``"rls"``.
    """

    front: ParetoFront[AnySchedule]
    deltas: Tuple[float, ...]
    epsilon: float
    algorithm: str

    @property
    def points(self) -> List[Tuple[float, float]]:
        """The non-dominated objective vectors, sorted by increasing ``Cmax``."""
        return [(v[0], v[1]) for v in self.front.values()]

    def schedules(self) -> List[AnySchedule]:
        """Schedules achieving the front points (same order as :attr:`points`)."""
        return [p for p in self.front.payloads() if p is not None]

    def best_under_memory(self, capacity: float) -> Optional[AnySchedule]:
        """The best-makespan schedule of the set whose ``Mmax`` fits ``capacity``."""
        best: Optional[AnySchedule] = None
        for point in self.front.points():
            if point.values[1] <= capacity + 1e-9 and point.payload is not None:
                if best is None or point.payload.cmax < best.cmax:
                    best = point.payload
        return best

    def best_under_makespan(self, deadline: float) -> Optional[AnySchedule]:
        """The lowest-memory schedule of the set whose ``Cmax`` fits ``deadline``."""
        best: Optional[AnySchedule] = None
        for point in self.front.points():
            if point.values[0] <= deadline + 1e-9 and point.payload is not None:
                if best is None or point.payload.mmax < best.mmax:
                    best = point.payload
        return best

    def __len__(self) -> int:
        return len(self.front)


def delta_grid(
    epsilon: float,
    delta_min: float,
    delta_max: float,
) -> List[float]:
    """Geometric grid of Δ values with ratio ``1 + epsilon`` covering ``[delta_min, delta_max]``."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be > 0, got {epsilon}")
    if not (0 < delta_min <= delta_max):
        raise ValueError(f"need 0 < delta_min <= delta_max, got {delta_min}, {delta_max}")
    grid = [delta_min]
    while grid[-1] < delta_max:
        grid.append(min(grid[-1] * (1.0 + epsilon), delta_max))
        if len(grid) > 10_000:  # pragma: no cover - guards absurd inputs
            break
    return grid


def approximate_pareto_set(
    instance: Union[Instance, DAGInstance],
    epsilon: float = 0.25,
    solver: str = "lpt",
    delta_min: float = 1.0 / 16.0,
    delta_max: float = 16.0,
) -> ApproximateParetoSet:
    """Approximate Pareto set for independent tasks by sweeping ``SBO_Δ``.

    The grid covers ``[delta_min, delta_max]`` with ratio ``1 + epsilon``;
    because the SBO guarantee pair moves continuously (and monotonically in
    each coordinate) with Δ, the guarantee curve is covered within a factor
    ``1 + epsilon`` in each objective by the returned set.
    """
    base = instance.as_independent() if isinstance(instance, DAGInstance) else instance
    grid = delta_grid(epsilon, delta_min, delta_max)
    front: ParetoFront[AnySchedule] = ParetoFront(dim=2)
    for delta in grid:
        schedule = sbo(base, delta, cmax_solver=solver).schedule
        front.add((schedule.cmax, schedule.mmax), schedule)
    return ApproximateParetoSet(
        front=front, deltas=tuple(grid), epsilon=epsilon, algorithm="sbo"
    )


def approximate_pareto_set_dag(
    instance: Union[Instance, DAGInstance],
    epsilon: float = 0.25,
    order: str = "bottom-level",
    delta_min: float = 2.0,
    delta_max: float = 16.0,
) -> ApproximateParetoSet:
    """Approximate Pareto set for DAG instances by sweeping ``RLS_Δ`` over ``Δ >= 2``.

    Values of Δ below 2 are attempted too (down to the smallest feasible
    budget) but silently skipped when infeasible, so the returned set always
    contains at least the guaranteed Δ ∈ [2, delta_max] sweep.
    """
    if delta_min <= 0:
        raise ValueError(f"delta_min must be > 0, got {delta_min}")
    dag = instance if isinstance(instance, DAGInstance) else instance.as_dag()
    grid = delta_grid(epsilon, delta_min, delta_max)
    front: ParetoFront[AnySchedule] = ParetoFront(dim=2)
    swept: List[float] = []
    for delta in grid:
        try:
            schedule = rls(dag, delta, order=order).schedule
        except InfeasibleDeltaError:
            continue
        swept.append(delta)
        front.add((schedule.cmax, schedule.mmax), schedule)
    return ApproximateParetoSet(
        front=front, deltas=tuple(swept), epsilon=epsilon, algorithm="rls"
    )
