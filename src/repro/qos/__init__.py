"""Multi-tenant admission & QoS for the serving stack.

The paper treats scheduling as a bi-objective resource-allocation
problem; this package applies the same lens to the serving stack itself.
Worker capacity is the machine set, tenants are the jobs competing for
it, and the dequeue policy that decides who is admitted next is the
repo's own list-scheduling ledger transposed
(:mod:`repro.qos.fairshare`).  The pieces:

* :mod:`repro.qos.tenants` — :class:`TenantConfig` /
  :class:`TenantRegistry` (quota, rate, weight, priority class) and the
  structured rejection errors with stable wire codes;
* :mod:`repro.qos.bucket` — the token-bucket rate limiter;
* :mod:`repro.qos.fairshare` — pluggable dequeue policies
  (weighted-fair on the Graham ledger, FIFO baseline);
* :mod:`repro.qos.queue` — the priority-class-first, weighted-fair
  admission queue over a bounded slot pool;
* :mod:`repro.qos.admission` — :class:`AdmissionController`, the one
  object a serving process consults per request (rate → quota →
  backpressure → fair dequeue) and reports per-tenant stats from;
* :mod:`repro.qos.stats` — the tenant snapshot shape and the
  cluster-wide cross-shard merge.

Configure it by handing a tenants file (or mapping, or registry) to
:class:`~repro.service.config.ServiceConfig` /
:class:`~repro.cluster.config.ClusterConfig` — or ``repro serve
--tenants tenants.json``.  With no tenants configured the whole layer
is inert and the serving stack behaves exactly as before.
"""

from .admission import AdmissionController
from .bucket import TokenBucket
from .fairshare import (
    DequeuePolicy,
    FairShareLedger,
    FifoPolicy,
    WeightedFairPolicy,
    create_policy,
)
from .queue import AdmissionQueue
from .stats import merge_tenant_snapshots, tenant_snapshot
from .tenants import (
    CLASS_URGENCY,
    PRIORITY_CLASSES,
    BackpressureError,
    OverQuotaError,
    QosError,
    RateLimitedError,
    TenantConfig,
    TenantRegistry,
    UnknownTenantError,
    load_tenants,
)

__all__ = [
    "AdmissionController",
    "AdmissionQueue",
    "TokenBucket",
    "DequeuePolicy",
    "FairShareLedger",
    "FifoPolicy",
    "WeightedFairPolicy",
    "create_policy",
    "merge_tenant_snapshots",
    "tenant_snapshot",
    "CLASS_URGENCY",
    "PRIORITY_CLASSES",
    "BackpressureError",
    "OverQuotaError",
    "QosError",
    "RateLimitedError",
    "TenantConfig",
    "TenantRegistry",
    "UnknownTenantError",
    "load_tenants",
]
