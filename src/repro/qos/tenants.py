"""The tenant model: who is asking, and what are they entitled to.

A *tenant* is one identified consumer of the serving stack — an
interactive notebook user, a bulk experiment grid, a CI pipeline.  Each
is described by a :class:`TenantConfig`:

* ``quota`` — maximum *concurrently admitted* unique jobs (the tenant's
  slice of ``max_pending``); exceeding it is an immediate structured
  ``over_quota`` rejection, never a wait;
* ``rate`` / ``burst`` — a token-bucket request-rate limit
  (:mod:`repro.qos.bucket`); an empty bucket is an immediate
  ``rate_limited`` rejection;
* ``weight`` — the tenant's weighted-fair share of dequeue capacity
  relative to other tenants of the same priority class
  (:mod:`repro.qos.fairshare`);
* ``priority`` — the tenant's class.  ``"interactive"`` requests
  preempt ``"batch"`` requests *in the admission queue* (never
  mid-solve: a running job is never revoked), which is what bounds an
  interactive tenant's queue wait under any bulk backlog.

A :class:`TenantRegistry` holds the tenant set plus the optional
*default tenant* untagged requests are attributed to.  Registries load
from a JSON file (``repro serve --tenants tenants.json``)::

    {
      "default": "bulk",
      "tenants": [
        {"name": "alice", "priority": "interactive", "rate": 50},
        {"name": "bulk",  "weight": 2.0, "quota": 16}
      ]
    }

(A plain ``{"name": {...}, ...}`` mapping without the ``tenants`` key is
accepted too.)
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Union

__all__ = [
    "PRIORITY_CLASSES",
    "CLASS_URGENCY",
    "TenantConfig",
    "TenantRegistry",
    "load_tenants",
    "QosError",
    "UnknownTenantError",
    "OverQuotaError",
    "RateLimitedError",
    "BackpressureError",
]

#: Priority classes in strict dequeue order: every queued request of an
#: earlier class is granted before any request of a later class.
PRIORITY_CLASSES = ("interactive", "batch")

#: Scale-up urgency of one queued request per class — the weights behind
#: the autoscaler's QoS-weighted backlog signal: a pile of batch work is
#: real load, but it does not warrant the same urgency as interactive
#: backlog (batch tenants are *expected* to absorb queueing).
CLASS_URGENCY = {"interactive": 1.0, "batch": 0.25}


class QosError(RuntimeError):
    """Base class of the admission/QoS-layer errors."""

    #: Stable machine-readable rejection code carried on wire responses
    #: (the ``error.code`` field); subclasses override.
    code: Optional[str] = None


class UnknownTenantError(QosError):
    """The request names no registered tenant and there is no default."""

    code = "unknown_tenant"


class OverQuotaError(QosError):
    """The tenant already has ``quota`` jobs admitted and unfinished."""

    code = "over_quota"


class RateLimitedError(QosError):
    """The tenant's token bucket is empty (sustained rate exceeded)."""

    code = "rate_limited"


class BackpressureError(QosError):
    """Every admission slot is taken and the policy is ``"reject"``."""

    code = "backpressure"


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's entitlements (immutable; see the module docstring)."""

    name: str
    quota: Optional[int] = None
    rate: Optional[float] = None
    burst: Optional[float] = None
    weight: float = 1.0
    priority: str = "batch"

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("tenant name must be a non-empty string")
        if self.quota is not None and (
            not isinstance(self.quota, int) or isinstance(self.quota, bool) or self.quota < 1
        ):
            raise ValueError(
                f"tenant {self.name!r}: quota must be a positive int or None, "
                f"got {self.quota!r}"
            )
        if self.rate is not None and not self.rate > 0:
            raise ValueError(
                f"tenant {self.name!r}: rate must be > 0 requests/s or None, "
                f"got {self.rate!r}"
            )
        if self.burst is not None:
            if self.rate is None:
                raise ValueError(
                    f"tenant {self.name!r}: burst needs a rate to apply to"
                )
            if not self.burst >= 1:
                raise ValueError(
                    f"tenant {self.name!r}: burst must be >= 1, got {self.burst!r}"
                )
        if not self.weight > 0:
            raise ValueError(
                f"tenant {self.name!r}: weight must be > 0, got {self.weight!r}"
            )
        if self.priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"tenant {self.name!r}: priority must be one of "
                f"{PRIORITY_CLASSES}, got {self.priority!r}"
            )

    @classmethod
    def from_dict(cls, name: str, data: Mapping[str, object]) -> "TenantConfig":
        """Build one tenant from its JSON form (unknown keys rejected)."""
        known = {"name", "quota", "rate", "burst", "weight", "priority"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"tenant {name!r}: unknown keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known - {'name'})}"
            )
        fields = {key: data[key] for key in known & set(data) if key != "name"}
        if "quota" in fields and fields["quota"] is not None:
            fields["quota"] = int(fields["quota"])  # type: ignore[arg-type]
        for key in ("rate", "burst", "weight"):
            if key in fields and fields[key] is not None:
                fields[key] = float(fields[key])  # type: ignore[arg-type]
        return cls(name=name, **fields)  # type: ignore[arg-type]


class TenantRegistry:
    """An immutable set of tenants plus the optional default attribution.

    ``resolve(None)`` maps an untagged request to the default tenant; a
    missing default makes untagged requests an ``unknown_tenant``
    rejection — with a registry configured, *every* request is
    attributed to someone.
    """

    def __init__(
        self,
        tenants: Iterable[TenantConfig],
        default: Optional[str] = None,
    ) -> None:
        self._tenants: Dict[str, TenantConfig] = {}
        for tenant in tenants:
            if tenant.name in self._tenants:
                raise ValueError(f"duplicate tenant {tenant.name!r}")
            self._tenants[tenant.name] = tenant
        if not self._tenants:
            raise ValueError("a tenant registry needs at least one tenant")
        if default is not None and default not in self._tenants:
            raise ValueError(
                f"default tenant {default!r} is not in the registry "
                f"({sorted(self._tenants)})"
            )
        self.default = default

    def __len__(self) -> int:
        return len(self._tenants)

    def __iter__(self):
        return iter(self._tenants.values())

    def __contains__(self, name: object) -> bool:
        return name in self._tenants

    def names(self) -> list:
        return sorted(self._tenants)

    def get(self, name: str) -> Optional[TenantConfig]:
        return self._tenants.get(name)

    def resolve(self, name: Optional[str]) -> TenantConfig:
        """The tenant a request belongs to; :class:`UnknownTenantError` otherwise."""
        if name is None:
            if self.default is None:
                raise UnknownTenantError(
                    "request names no tenant and the registry has no default "
                    "tenant (configure one with \"default\": NAME)"
                )
            return self._tenants[self.default]
        tenant = self._tenants.get(name)
        if tenant is None:
            raise UnknownTenantError(
                f"unknown tenant {name!r}; registered: {', '.join(self.names())}"
            )
        return tenant

    def with_default(self, default: Optional[str]) -> "TenantRegistry":
        """A copy of this registry with another default tenant."""
        return TenantRegistry(list(self), default=default)

    @classmethod
    def from_payload(cls, data: object, default: Optional[str] = None) -> "TenantRegistry":
        """Build a registry from the JSON forms the module docstring shows.

        ``default`` (the CLI's ``--default-tenant``) overrides a
        ``"default"`` key in the payload.
        """
        if not isinstance(data, Mapping):
            raise ValueError(
                f"tenants payload must be a JSON object, got {type(data).__name__}"
            )
        payload_default = data.get("default")
        if payload_default is not None and not isinstance(payload_default, str):
            raise ValueError("'default' must be a tenant name string")
        entries = data.get("tenants", None)
        tenants = []
        if entries is not None:
            if not isinstance(entries, list):
                raise ValueError("'tenants' must be a JSON array of tenant objects")
            for item in entries:
                if not isinstance(item, Mapping) or not isinstance(item.get("name"), str):
                    raise ValueError(
                        "each tenant entry must be an object with a 'name' string"
                    )
                tenants.append(TenantConfig.from_dict(item["name"], item))
        else:
            for name, item in data.items():
                if name == "default":
                    continue
                if not isinstance(item, Mapping):
                    raise ValueError(
                        f"tenant {name!r} must map to a JSON object of fields"
                    )
                tenants.append(TenantConfig.from_dict(name, item))
        return cls(tenants, default=default or payload_default)

    @classmethod
    def load(cls, path: Union[str, Path], default: Optional[str] = None) -> "TenantRegistry":
        """Load a registry from a ``tenants.json`` file."""
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"cannot load tenants file {path}: {exc}") from None
        return cls.from_payload(data, default=default)


def load_tenants(
    source: object, default: Optional[str] = None
) -> Optional[TenantRegistry]:
    """Normalize any accepted ``tenants`` config value into a registry.

    ``None``/``False`` disable QoS (returns ``None``); a
    :class:`TenantRegistry` passes through (re-defaulted when ``default``
    is given); a mapping is parsed like a tenants file payload; a string
    or path loads the file.
    """
    if source is None or source is False:
        if default is not None:
            raise ValueError("default_tenant needs a tenant registry to resolve in")
        return None
    if isinstance(source, TenantRegistry):
        return source.with_default(default) if default is not None else source
    if isinstance(source, Mapping):
        return TenantRegistry.from_payload(source, default=default)
    if isinstance(source, (str, Path)):
        return TenantRegistry.load(source, default=default)
    raise TypeError(
        f"tenants must be None, a mapping, a path, or a TenantRegistry; "
        f"got {type(source).__name__}"
    )
