"""The admission controller: one object deciding every request's fate.

:class:`AdmissionController` is the QoS layer's single entry point for a
serving process (a :class:`~repro.service.service.SolverService` or a
cluster router).  It owns, per tenant:

* the **token bucket** enforcing ``rate``/``burst``,
* the **quota gauge** (``in_use`` admitted-and-unfinished unique jobs),
* the **counter ledger** (submitted / admitted / rejected — with a
  per-code rejection breakdown — completed / failed / abandoned /
  cache_hits / coalesced / busy seconds), and
* a **queue-wait window** (sliding percentiles of time spent waiting
  for an admission slot — the quantity the fairness benchmark bounds),

plus the shared :class:`~repro.qos.queue.AdmissionQueue` that arbitrates
slots between tenants.

The per-tenant ledger keeps the same balance invariant the service's
global ledger does: every request that passed :meth:`begin` ends exactly
once in ``admitted`` or ``rejected`` (property-tested), so per-tenant
``lost`` is always zero.  Rejections raised *by* the controller
(:class:`~repro.qos.tenants.RateLimitedError` etc.) carry stable
``code`` strings that become the wire ``error.code`` field.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from .bucket import TokenBucket
from .queue import AdmissionQueue
from .stats import tenant_snapshot
from .tenants import (
    CLASS_URGENCY,
    BackpressureError,
    OverQuotaError,
    RateLimitedError,
    TenantConfig,
    TenantRegistry,
)

__all__ = ["AdmissionController"]


class _TenantState:
    """Mutable per-tenant ledger (controller-internal)."""

    __slots__ = ("cfg", "bucket", "queue_wait", "counters", "rejected_by",
                 "in_use", "queued", "busy_s")

    def __init__(self, cfg: TenantConfig, clock: Callable[[], float], window: int) -> None:
        # Imported here, not at module top: repro.service imports this
        # module, so a top-level import back into repro.service.stats would
        # make the import order between the two packages matter.
        from repro.service.stats import LatencyWindow

        self.cfg = cfg
        self.bucket = TokenBucket(cfg.rate, cfg.burst, clock=clock)
        self.queue_wait = LatencyWindow(window)
        self.counters: Dict[str, int] = {
            name: 0
            for name in ("submitted", "admitted", "rejected", "completed",
                         "failed", "abandoned", "cache_hits", "coalesced")
        }
        self.rejected_by: Dict[str, int] = {}
        self.in_use = 0
        self.queued = 0
        self.busy_s = 0.0

    def reject(self, code: str) -> None:
        self.counters["rejected"] += 1
        self.rejected_by[code] = self.rejected_by.get(code, 0) + 1


class AdmissionController:
    """Per-tenant admission for one serving process (see module docstring).

    ``capacity`` is the total number of admission slots (the service's
    ``max_pending``; a router's routable-shard aggregate).  ``clock`` is
    injectable for deterministic tests.
    """

    def __init__(
        self,
        registry: TenantRegistry,
        capacity: int,
        policy: str = "wfq",
        clock: Callable[[], float] = time.monotonic,
        window: int = 2048,
    ) -> None:
        self.registry = registry
        self._clock = clock
        self._queue = AdmissionQueue(capacity, policy=policy)
        self._states: Dict[str, _TenantState] = {
            cfg.name: _TenantState(cfg, clock, window) for cfg in registry
        }
        #: Requests naming no known tenant (they have no ledger row).
        self.unknown_rejected = 0

    # -- request lifecycle --------------------------------------------

    def begin(self, tenant: Optional[str]) -> TenantConfig:
        """Attribute a request and pass it through the rate limiter.

        Raises :class:`UnknownTenantError` (no attribution possible) or
        :class:`RateLimitedError` (bucket empty).  On success the tenant's
        ``submitted`` counter is charged and the caller must end the
        request in exactly one ``admitted``/``rejected`` outcome.
        """
        try:
            cfg = self.registry.resolve(tenant)
        except Exception:
            self.unknown_rejected += 1
            raise
        state = self._states[cfg.name]
        state.counters["submitted"] += 1
        if not state.bucket.take():
            state.reject(RateLimitedError.code)
            raise RateLimitedError(
                f"tenant {cfg.name!r} exceeded its rate of {cfg.rate:g} req/s "
                f"(burst {state.bucket.burst:g})"
            )
        return cfg

    def admit_fast(self, cfg: TenantConfig, kind: Optional[str] = None) -> None:
        """Admit without a slot: cache hits and coalesced joins.

        ``kind`` (``"cache_hits"`` / ``"coalesced"``) also charges the
        matching per-tenant counter.
        """
        state = self._states[cfg.name]
        state.counters["admitted"] += 1
        if kind is not None:
            state.counters[kind] += 1

    async def acquire_slot(self, cfg: TenantConfig, reject_on_full: bool) -> bool:
        """Take one admission slot, enforcing quota and backpressure.

        Mirrors the flat semaphore's contract: with ``reject_on_full``
        a full queue is an immediate :class:`BackpressureError`; otherwise
        the request waits its weighted-fair turn.  Returns whether it had
        to wait.  Cancellation while queued is ledgered as a rejection
        (code ``"cancelled"``) so the tenant's balance stays exact.
        """
        state = self._states[cfg.name]
        if cfg.quota is not None and state.in_use >= cfg.quota:
            state.reject(OverQuotaError.code)
            raise OverQuotaError(
                f"tenant {cfg.name!r} is at its quota of {cfg.quota} "
                f"concurrently admitted jobs"
            )
        if reject_on_full and self._queue.free == 0:
            state.reject(BackpressureError.code)
            raise BackpressureError(
                f"service at capacity ({self._queue.capacity} admission slots); "
                f"retry later or use backpressure='wait'"
            )
        started = self._clock()
        state.queued += 1
        try:
            waited = await self._queue.acquire(cfg)
        except BaseException:
            state.queued -= 1
            state.reject("cancelled")
            raise
        state.queued -= 1
        state.queue_wait.record(self._clock() - started)
        state.in_use += 1
        return waited

    def release_slot(self, cfg: TenantConfig) -> None:
        """Return a slot taken by :meth:`acquire_slot`."""
        state = self._states[cfg.name]
        state.in_use -= 1
        self._queue.release()

    def job_admitted(self, cfg: TenantConfig) -> None:
        """The slot turned into a real unique job: count the admission."""
        self._states[cfg.name].counters["admitted"] += 1

    def reject(self, cfg: TenantConfig, code: str) -> None:
        """Ledger a rejection decided by the caller (e.g. service closed)."""
        self._states[cfg.name].reject(code)

    def finish(self, cfg: TenantConfig, outcome: str) -> None:
        """Record a unique job's end: ``completed``/``failed``/``abandoned``."""
        self._states[cfg.name].counters[outcome] += 1

    def charge_usage(self, cfg: TenantConfig, seconds: float) -> None:
        """Accumulate worker-busy seconds against the tenant."""
        self._states[cfg.name].busy_s += seconds

    # -- capacity & signals -------------------------------------------

    @property
    def capacity(self) -> int:
        return self._queue.capacity

    def set_capacity(self, capacity: int) -> None:
        """Retarget total slots (routers follow shard churn with this)."""
        self._queue.set_capacity(capacity)

    @property
    def slots_in_use(self) -> int:
        return self._queue.granted

    @property
    def slots_free(self) -> int:
        return self._queue.free

    def backlog_by_class(self) -> Dict[str, int]:
        """Queued (not yet admitted) requests per priority class."""
        return self._queue.depth_by_class()

    def in_use_by_class(self) -> Dict[str, int]:
        """Held admission slots per priority class (the admitted-work mix)."""
        mix: Dict[str, int] = {}
        for state in self._states.values():
            if state.in_use:
                cls = state.cfg.priority
                mix[cls] = mix.get(cls, 0) + state.in_use
        return mix

    def weighted_backlog(self) -> float:
        """Priority-class-weighted queue depth — the autoscaler's signal.

        Each queued request contributes its class's
        :data:`~repro.qos.tenants.CLASS_URGENCY`, so interactive backlog
        drives scale-up at full strength while batch backlog is damped.
        """
        return sum(
            depth * CLASS_URGENCY.get(cls, 1.0)
            for cls, depth in self._queue.depth_by_class().items()
        )

    # -- observability -------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """``{tenant: ledger}`` — JSON-friendly, for ``stats()`` payloads."""
        return {
            name: tenant_snapshot(
                state.cfg,
                counters=state.counters,
                rejected_by=state.rejected_by,
                in_use=state.in_use,
                queued=state.queued,
                busy_s=state.busy_s,
                queue_wait=state.queue_wait.snapshot(),
            )
            for name, state in sorted(self._states.items())
        }
