"""The weighted-fair admission queue: who gets the next free slot.

:class:`AdmissionQueue` guards a fixed number of *admission slots* (the
QoS replacement for the service's flat ``max_pending`` semaphore).  When
every slot is taken, requests wait in per-tenant FIFO queues, and each
freed slot is granted by a two-level decision:

1. **Priority class first** — any queued ``interactive`` request is
   granted before any ``batch`` request, always.  This is queue-level
   preemption only: a running job is never revoked, so an interactive
   burst overtakes the *backlog*, not the workers.
2. **Weighted-fair within the class** — among backlogged tenants of the
   chosen class, the pluggable :class:`~repro.qos.fairshare.DequeuePolicy`
   (per class, so ledgers never mix classes) picks the tenant with the
   least normalized service, exactly like list scheduling picks the
   least-loaded machine.

Per-tenant FIFO order is preserved: fairness is decided *between*
tenants, never by reordering one tenant's own requests.

Everything here runs on the service's event loop (no locks needed); the
waiters are plain futures, and a waiter cancelled while queued is
dropped without charging the ledger or leaking a slot.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict, Optional

from .fairshare import DequeuePolicy, create_policy
from .tenants import PRIORITY_CLASSES, TenantConfig

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """Priority-class / weighted-fair gate over ``capacity`` admission slots."""

    def __init__(self, capacity: int, policy: str = "wfq") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._granted = 0
        self._policy_name = policy
        # One ledger per priority class: the strict class ordering already
        # decides *between* classes, so fair shares are tracked within one.
        self._policies: Dict[str, DequeuePolicy] = {
            cls: create_policy(policy) for cls in PRIORITY_CLASSES
        }
        self._waiting: Dict[str, Dict[str, Deque["_Waiter"]]] = {
            cls: {} for cls in PRIORITY_CLASSES
        }
        self._weights: Dict[str, float] = {}

    # -- introspection -------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def granted(self) -> int:
        """Slots currently held (the QoS analogue of ``pending``)."""
        return self._granted

    @property
    def free(self) -> int:
        return max(0, self._capacity - self._granted)

    def depth(self) -> int:
        """Total requests waiting for a slot."""
        return sum(self.depth_by_class().values())

    def depth_by_class(self) -> Dict[str, int]:
        """Waiting requests per priority class (the autoscaler's signal)."""
        return {
            cls: sum(len(q) for q in queues.values())
            for cls, queues in self._waiting.items()
        }

    def set_capacity(self, capacity: int) -> None:
        """Retarget the slot count (cluster capacity follows shard churn).

        Growing dispatches newly-free slots immediately; shrinking never
        revokes held slots — the surplus drains as they are released.
        """
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._dispatch()

    # -- the gate ------------------------------------------------------

    async def acquire(self, tenant: TenantConfig) -> bool:
        """Wait for (and take) one admission slot for ``tenant``.

        Returns ``True`` when the request had to queue, ``False`` when a
        slot was free immediately (the caller records queue wait either
        way; this mirrors the flat path's ``waited`` flag that re-checks
        the cache after a queue wait).  Cancellation while queued cleanly
        removes the waiter; cancellation in the hand-off instant returns
        the already-granted slot.
        """
        self._weights[tenant.name] = tenant.weight
        queues = self._waiting[tenant.priority]
        if self._granted < self._capacity and not any(queues.values()):
            # Fast path: a free slot and nobody of this class queued ahead.
            # (A queued *lower* class never blocks this: strict priority.)
            if tenant.priority == PRIORITY_CLASSES[0] or not self._any_waiting():
                self._granted += 1
                self._policies[tenant.priority].charge(tenant.name, tenant.weight)
                return False
        waiter = _Waiter(tenant)
        bucket = queues.get(tenant.name)
        if bucket is None:
            bucket = queues[tenant.name] = deque()
        if not bucket:
            self._policies[tenant.priority].activate(tenant.name, tenant.weight)
        bucket.append(waiter)
        self._dispatch()
        try:
            await waiter.future
        except asyncio.CancelledError:
            if waiter.future.cancelled() or not waiter.future.done():
                # Still queued: unlink so it can never be granted.
                try:
                    bucket.remove(waiter)
                except ValueError:
                    pass
            else:
                # Granted in the same instant we were cancelled: the slot
                # is ours and must go back.
                self.release()
            raise
        return True

    def release(self) -> None:
        """Return one slot and hand it to the best waiter, if any."""
        if self._granted <= 0:
            raise RuntimeError("release() without a matching acquire()")
        self._granted -= 1
        self._dispatch()

    # -- internals -----------------------------------------------------

    def _any_waiting(self) -> bool:
        return any(
            bucket for queues in self._waiting.values() for bucket in queues.values()
        )

    def _dispatch(self) -> None:
        while self._granted < self._capacity:
            waiter = self._pop_next()
            if waiter is None:
                return
            self._granted += 1
            waiter.future.set_result(None)

    def _pop_next(self) -> Optional["_Waiter"]:
        """The next grant: strict class order, then the fair-share pick."""
        for cls in PRIORITY_CLASSES:
            queues = self._waiting[cls]
            while True:
                eligible = {
                    name: self._weights.get(name, 1.0)
                    for name, bucket in queues.items()
                    if bucket
                }
                if not eligible:
                    break
                name = self._policies[cls].pick(eligible)
                bucket = queues[name]
                while bucket:
                    waiter = bucket.popleft()
                    if waiter.future.done():
                        continue  # cancelled while queued; skip, charge nothing
                    self._policies[cls].charge(name, self._weights.get(name, 1.0))
                    return waiter
                # Tenant's queue held only cancelled waiters; re-pick.
        return None


class _Waiter:
    __slots__ = ("tenant", "future")

    def __init__(self, tenant: TenantConfig) -> None:
        self.tenant = tenant
        self.future: "asyncio.Future[None]" = asyncio.get_running_loop().create_future()
