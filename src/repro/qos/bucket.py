"""Token-bucket rate limiting (the per-tenant ``rate`` / ``burst`` knobs).

The classic shape: a bucket holds up to ``burst`` tokens and refills
continuously at ``rate`` tokens per second; each admitted request takes
one token, and an empty bucket means the tenant has exceeded its
sustained rate — the caller turns that into a structured
``rate_limited`` rejection.  Refill is computed lazily from the elapsed
monotonic time on every ``take``, so an idle bucket costs nothing.

The clock is injectable, which keeps the fairness/starvation property
tests deterministic (they step a fake clock instead of sleeping).
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["TokenBucket"]


class TokenBucket:
    """A token bucket: ``rate`` tokens/second, capacity ``burst``.

    ``rate=None`` builds an unlimited bucket (``take`` always succeeds)
    so callers need no special-casing for rate-exempt tenants.  When
    ``burst`` is omitted it defaults to ``max(1, rate)`` — one second of
    headroom, and never so small that a conforming tenant is rejected on
    its very first request.
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate is not None and not rate > 0:
            raise ValueError(f"rate must be > 0 or None, got {rate!r}")
        if burst is not None and not burst >= 1:
            raise ValueError(f"burst must be >= 1, got {burst!r}")
        self.rate = float(rate) if rate is not None else None
        self.burst = (
            float(burst) if burst is not None
            else (max(1.0, self.rate) if self.rate is not None else None)
        )
        self._clock = clock
        self._tokens = self.burst if self.burst is not None else 0.0
        self._refilled_at = clock()

    @property
    def unlimited(self) -> bool:
        return self.rate is None

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._refilled_at
        self._refilled_at = now
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def take(self, n: float = 1.0) -> bool:
        """Consume ``n`` tokens if available; ``False`` means rate-limited."""
        if self.rate is None:
            return True
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    def available(self) -> float:
        """Current token count (after refill); ``inf`` for unlimited buckets."""
        if self.rate is None:
            return float("inf")
        self._refill()
        return self._tokens
