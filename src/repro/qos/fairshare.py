"""Weighted-fair dequeue built on the repo's own list-scheduling ledger.

The serving stack schedules *tenants onto worker capacity* with exactly
the machinery the paper's solvers use to schedule *tasks onto machines*.
:func:`repro.algorithms.list_scheduling.list_schedule` keeps one
accumulated-load ledger per machine and places each task on the machine
of least load (``min(range(m), key=lambda j: (loads[j], j))``).
:class:`FairShareLedger` transposes that step: each **tenant** is a
machine, each admission grant is a unit task whose "processing time" is
``cost / weight`` (normalized service), and dequeueing picks the tenant
with the least accumulated normalized service.  Graham's argument that
no machine ledger can run ahead of another by more than one task weight
becomes the weighted-fairness bound: over any interval in which a set of
tenants stays backlogged, their grant counts track ``weight``
proportions to within one grant per tenant — which is why the shares
converge (property-tested in ``tests/test_qos.py``).

Dequeue policies are pluggable (:class:`DequeuePolicy`):
:class:`WeightedFairPolicy` is the ledger above; :class:`FifoPolicy`
ignores weights and serves tenants round-robin-by-arrival, useful as a
baseline and for debugging fairness regressions.
"""

from __future__ import annotations

import abc
from typing import Dict, Mapping, Optional

__all__ = [
    "DequeuePolicy",
    "FairShareLedger",
    "WeightedFairPolicy",
    "FifoPolicy",
    "POLICY_NAMES",
    "create_policy",
]


class DequeuePolicy(abc.ABC):
    """Chooses which backlogged tenant's request is granted next.

    The admission queue calls :meth:`activate` when a tenant's queue goes
    from empty to non-empty, :meth:`pick` to select among backlogged
    tenants of the same priority class, and :meth:`charge` when a grant
    is issued.  Implementations must be deterministic: identical call
    sequences must produce identical picks (the cluster relies on it).
    """

    @abc.abstractmethod
    def activate(self, name: str, weight: float) -> None:
        """A tenant became backlogged (its queue was empty a moment ago)."""

    @abc.abstractmethod
    def pick(self, eligible: Mapping[str, float]) -> str:
        """Choose one tenant from ``{name: weight}`` (non-empty)."""

    @abc.abstractmethod
    def charge(self, name: str, weight: float, cost: float = 1.0) -> None:
        """Record one grant of ``cost`` against the tenant's ledger."""


class FairShareLedger:
    """Per-tenant normalized-service ledger (the Graham ledger transposed)."""

    def __init__(self) -> None:
        self._served: Dict[str, float] = {}

    def activate(self, name: str, weight: float) -> None:
        """Join (or re-join) the backlogged set without a catch-up advantage.

        A tenant idle for a while has a stale, low ledger; letting it keep
        that value would hand it an unbounded burst of back-to-back grants
        ("catch-up") that starves the tenants that kept the workers busy.
        The standard virtual-time fix: on re-activation the ledger jumps
        to at least the *minimum ledger of the currently tracked tenants*
        — fairness is measured over backlogged intervals only.
        """
        floor = min(self._served.values()) if self._served else 0.0
        self._served[name] = max(self._served.get(name, 0.0), floor)

    def pick(self, eligible: Mapping[str, float]) -> str:
        """The eligible tenant of least normalized service (ties by name).

        The exact shape of list scheduling's placement step — argmin over
        ledgers with a deterministic index tie-break — with tenants in
        the machine role.
        """
        if not eligible:
            raise ValueError("pick() needs at least one eligible tenant")
        return min(eligible, key=lambda name: (self._served.get(name, 0.0), name))

    def charge(self, name: str, weight: float, cost: float = 1.0) -> None:
        self._served[name] = self._served.get(name, 0.0) + cost / weight

    def served(self, name: str) -> float:
        """Accumulated normalized service of one tenant (0.0 when unseen)."""
        return self._served.get(name, 0.0)


class WeightedFairPolicy(DequeuePolicy):
    """Weighted-fair queueing via the :class:`FairShareLedger`."""

    def __init__(self, ledger: Optional[FairShareLedger] = None) -> None:
        self.ledger = ledger or FairShareLedger()

    def activate(self, name: str, weight: float) -> None:
        self.ledger.activate(name, weight)

    def pick(self, eligible: Mapping[str, float]) -> str:
        return self.ledger.pick(eligible)

    def charge(self, name: str, weight: float, cost: float = 1.0) -> None:
        self.ledger.charge(name, weight, cost)


class FifoPolicy(DequeuePolicy):
    """Weight-blind baseline: backlogged tenants served round-robin.

    Grants rotate over the backlogged set in activation order; weights
    are ignored.  Exists to make fairness regressions visible ("what
    would the flat queue have done?") and as the degenerate policy for
    single-tenant registries.
    """

    def __init__(self) -> None:
        self._order: Dict[str, int] = {}
        self._seq = 0

    def activate(self, name: str, weight: float) -> None:
        self._seq += 1
        self._order[name] = self._seq

    def pick(self, eligible: Mapping[str, float]) -> str:
        return min(eligible, key=lambda name: (self._order.get(name, 0), name))

    def charge(self, name: str, weight: float, cost: float = 1.0) -> None:
        # Move the served tenant to the back of the rotation.
        self._seq += 1
        self._order[name] = self._seq


#: Named dequeue policies accepted by configs and the CLI.
POLICY_NAMES = ("wfq", "fifo")


def create_policy(name: str = "wfq") -> DequeuePolicy:
    """Instantiate a dequeue policy by name (``"wfq"`` or ``"fifo"``)."""
    if name == "wfq":
        return WeightedFairPolicy()
    if name == "fifo":
        return FifoPolicy()
    raise ValueError(f"unknown dequeue policy {name!r}; expected one of {POLICY_NAMES}")
