"""Per-tenant observability: snapshot shape and the cross-shard merge.

A *tenant snapshot* is the JSON-friendly ledger one serving process
reports per tenant inside its ``stats()`` payload (the ``tenants`` key):
cumulative counters, the per-code rejection breakdown, instantaneous
gauges, accumulated worker-busy seconds, queue-wait percentiles over the
sliding window, and the tenant's configured entitlements (so a stats
reader needs no side channel to interpret the numbers).

:func:`merge_tenant_snapshots` folds the per-shard tenant slices into
cluster-wide ones the same way :mod:`repro.cluster.stats` merges family
latencies: counters, gauges, and busy seconds sum; queue-wait
percentiles merge count-weighted (an approximation, in monitoring's
favor); entitlement fields pass through (identical on every shard by
construction — the registry is distributed from one file).

Each snapshot's ``lost`` is derived exactly like the service-global
ledger's: a submitted request must end in ``admitted`` or ``rejected``
— nonzero per-tenant ``lost`` indicates an accounting bug, and the
property tests assert it stays zero through load, cancellation, and
shard kills.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping

from .tenants import TenantConfig

__all__ = ["tenant_snapshot", "snapshot_lost", "merge_tenant_snapshots"]

#: Counter keys (cumulative) — summed in the cluster merge.
COUNTER_KEYS = ("submitted", "admitted", "rejected", "completed", "failed",
                "abandoned", "cache_hits", "coalesced")

#: Gauge keys (instantaneous) — also summed (a tenant's cluster-wide
#: in-use count is the sum of its per-shard in-use counts).
GAUGE_KEYS = ("in_use", "queued")

_WEIGHTED_KEYS = ("p50", "p90", "p99", "mean")

_EMPTY_WINDOW = {"count": 0, "p50": math.nan, "p90": math.nan,
                 "p99": math.nan, "mean": math.nan, "max": math.nan}


def tenant_snapshot(
    cfg: TenantConfig,
    counters: Mapping[str, int],
    rejected_by: Mapping[str, int],
    in_use: int,
    queued: int,
    busy_s: float,
    queue_wait: Mapping[str, float],
) -> Dict[str, object]:
    """Assemble one tenant's JSON-friendly ledger snapshot."""
    snap: Dict[str, object] = {key: int(counters.get(key, 0)) for key in COUNTER_KEYS}
    snap["rejected_by"] = {code: int(n) for code, n in sorted(rejected_by.items())}
    snap["in_use"] = int(in_use)
    snap["queued"] = int(queued)
    snap["busy_s"] = float(busy_s)
    snap["queue_wait"] = dict(queue_wait)
    snap["lost"] = snapshot_lost(snap)
    snap["config"] = {
        "quota": cfg.quota,
        "rate": cfg.rate,
        "weight": cfg.weight,
        "priority": cfg.priority,
    }
    return snap


def snapshot_lost(snap: Mapping[str, object]) -> int:
    """Requests unaccounted for in one tenant ledger (0 unless buggy)."""
    return int(snap.get("submitted", 0)) - int(snap.get("admitted", 0)) - int(  # type: ignore[call-overload]
        snap.get("rejected", 0)  # type: ignore[arg-type]
    )


def _merge_windows(windows: List[Mapping[str, float]]) -> Dict[str, float]:
    """Count-weighted merge of queue-wait windows (see module docstring)."""
    merged: Dict[str, float] = {"count": 0, "max": -math.inf,
                                **{key: 0.0 for key in _WEIGHTED_KEYS}}
    for snap in windows:
        count = int(snap.get("count", 0))
        if count <= 0:
            continue
        for key in _WEIGHTED_KEYS:
            value = float(snap.get(key, math.nan))
            if not math.isnan(value):
                merged[key] += count * value
        merged["count"] += count
        maximum = float(snap.get("max", math.nan))
        if not math.isnan(maximum):
            merged["max"] = max(merged["max"], maximum)
    count = merged["count"]
    for key in _WEIGHTED_KEYS:
        merged[key] = merged[key] / count if count else math.nan
    if merged["max"] == -math.inf:
        merged["max"] = math.nan
    merged["count"] = int(count)
    return merged


def merge_tenant_snapshots(
    slices: List[Mapping[str, Mapping[str, object]]],
) -> Dict[str, Dict[str, object]]:
    """Fold per-process ``{tenant: snapshot}`` slices into cluster-wide ones."""
    merged: Dict[str, Dict[str, object]] = {}
    windows: Dict[str, List[Mapping[str, float]]] = {}
    for tenant_slice in slices:
        for name, snap in tenant_slice.items():
            bucket = merged.get(name)
            if bucket is None:
                bucket = merged[name] = {
                    **{key: 0 for key in COUNTER_KEYS},
                    **{key: 0 for key in GAUGE_KEYS},
                    "rejected_by": {},
                    "busy_s": 0.0,
                }
                windows[name] = []
            for key in COUNTER_KEYS + GAUGE_KEYS:
                value = snap.get(key, 0)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    bucket[key] += int(value)  # type: ignore[operator]
            rejected_by = snap.get("rejected_by")
            if isinstance(rejected_by, Mapping):
                codes: Dict[str, int] = bucket["rejected_by"]  # type: ignore[assignment]
                for code, n in rejected_by.items():
                    codes[code] = codes.get(code, 0) + int(n)  # type: ignore[arg-type]
            busy = snap.get("busy_s", 0.0)
            if isinstance(busy, (int, float)) and not isinstance(busy, bool):
                bucket["busy_s"] += float(busy)  # type: ignore[operator]
            queue_wait = snap.get("queue_wait")
            if isinstance(queue_wait, Mapping):
                windows[name].append(queue_wait)  # type: ignore[arg-type]
            config = snap.get("config")
            if isinstance(config, Mapping) and "config" not in bucket:
                bucket["config"] = dict(config)
    for name, bucket in merged.items():
        bucket["rejected_by"] = {
            code: bucket["rejected_by"][code]  # type: ignore[index]
            for code in sorted(bucket["rejected_by"])  # type: ignore[arg-type]
        }
        bucket["queue_wait"] = (
            _merge_windows(windows[name]) if windows[name] else dict(_EMPTY_WINDOW)
        )
        bucket["lost"] = snapshot_lost(bucket)
    return {name: merged[name] for name in sorted(merged)}
