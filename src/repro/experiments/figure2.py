"""FIG-2 — the three Pareto-optimal schedules of the §4.3 instance.

Figure 2 of the paper shows, for ``p = (1, ε, 1-ε)``, ``s = (ε, 1, 1-ε)`` on
two processors, the three Pareto-optimal schedules with values
``(1, 2-ε)``, ``(1+ε, 1+ε)`` and ``(2-ε, 1)``.  Taking ``ε`` towards ``1/2``
yields Lemma 3 (nothing beats ``(3/2, 3/2)``).  We reproduce the front
exactly and check both the closed form and the limiting bound, and we
overlay the achieved points of the paper's tunable algorithms (selected
via :mod:`repro.solvers` spec strings); real schedules must be weakly
dominated by the exact front.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.algorithms.exact import pareto_front_exact
from repro.core.impossibility import (
    instance_lemma3,
    lemma3_optima,
    lemma3_pareto_values,
)
from repro.experiments.harness import ExperimentResult, overlay_against_front
from repro.simulator.trace import render_gantt

__all__ = ["run_figure2"]

#: Algorithms overlaid on the exact front, named through the solver facade.
DEFAULT_OVERLAY_SPECS = ("sbo(delta=1.0, inner=lpt)", "rls(delta=2.5)")


def run_figure2(
    epsilon: float = 0.25,
    overlay_specs: Sequence[str] = DEFAULT_OVERLAY_SPECS,
) -> ExperimentResult:
    """Reproduce Figure 2 (the Pareto front of the second inapproximability instance)."""
    instance = instance_lemma3(epsilon)
    front = pareto_front_exact(instance, keep_schedules=True)
    expected = sorted(lemma3_pareto_values(epsilon))
    measured = sorted(front.values())
    cmax_opt, mmax_opt = lemma3_optima(epsilon)

    result = ExperimentResult(
        experiment_id="FIG-2",
        title="Pareto-optimal schedules of the Section 4.3 instance (m=2, 3 tasks)",
        headers=["schedule", "Cmax", "Mmax", "Cmax ratio", "Mmax ratio", "paper value"],
    )
    for idx, point in enumerate(front.points()):
        cmax, mmax = point.values
        paper = expected[idx] if idx < len(expected) else ("-", "-")
        result.add_row(**{
            "schedule": f"pareto-{idx}",
            "Cmax": cmax,
            "Mmax": mmax,
            "Cmax ratio": cmax / cmax_opt,
            "Mmax ratio": mmax / mmax_opt,
            "paper value": f"({paper[0]:g}, {paper[1]:g})",
        })

    matches = len(measured) == len(expected) and all(
        math.isclose(a[0], b[0], rel_tol=1e-9) and math.isclose(a[1], b[1], rel_tol=1e-9)
        for a, b in zip(measured, expected)
    )
    result.add_check("front has exactly three points (epsilon < 1/2)", len(measured) == 3)
    result.add_check("front matches the paper's closed form {(1,2-eps),(1+eps,1+eps),(2-eps,1)}", matches)
    # Lemma 3 in the limit eps -> 1/2: no point of the front is strictly
    # better than (1.5, 1.5) on both coordinates for eps close to 1/2; for the
    # finite eps used here we check the instance-specific statement: nothing
    # beats (1 + eps, 1 + eps).
    no_better = not any(
        c < 1.0 + epsilon - 1e-12 and m < 1.0 + epsilon - 1e-12 for c, m in measured
    )
    result.add_check("no schedule beats (1+eps, 1+eps) on both objectives (Lemma 3 mechanism)", no_better)

    # Spec-driven overlay: what the tunable algorithms achieve on the instance.
    overlay_lines, overlays_dominated = overlay_against_front(
        instance, overlay_specs, measured, cmax_opt, mmax_opt
    )
    result.add_check(
        "spec-driven algorithm overlays are weakly dominated by the exact front",
        overlays_dominated,
    )

    result.summary.append(
        f"epsilon = {epsilon:g}; C*max = M*max = 1; as epsilon -> 1/2 the middle point tends to (3/2, 3/2)"
    )
    result.summary.extend(overlay_lines)
    for idx, point in enumerate(front.points()):
        if point.payload is not None:
            result.summary.append("")
            result.summary.append(f"pareto-{idx} (Cmax={point.values[0]:g}, Mmax={point.values[1]:g}):")
            result.summary.append(render_gantt(point.payload, width=40))
    return result
