"""EXT-A1 — ablation of the single-objective sub-solver inside SBO_Δ.

Algorithm 1 is agnostic to which ``ρ1``/``ρ2`` approximations it combines.
This ablation swaps List Scheduling, LPT, MULTIFIT and the dual-
approximation PTAS in and out and compares the resulting measured
objectives and certified guarantees, plus the two memory-/makespan-
oblivious corner baselines the combined schedule is supposed to dominate
in guarantee terms.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.algorithms.baselines import makespan_oblivious_schedule, memory_oblivious_schedule
from repro.core.bounds import cmax_lower_bound, mmax_lower_bound
from repro.experiments.harness import ExperimentResult, run_spec
from repro.workloads.independent import workload_suite

__all__ = ["run_sbo_ablation"]


def run_sbo_ablation(
    solvers: Sequence[str] = ("list", "lpt", "multifit", "ptas"),
    delta: float = 1.0,
    n: int = 60,
    m: int = 4,
    seeds: Sequence[int] = (0, 1, 2),
) -> ExperimentResult:
    """Compare sub-solvers inside SBO_Δ at a fixed Δ."""
    result = ExperimentResult(
        experiment_id="EXT-A1",
        title=f"SBO_delta sub-solver ablation (delta = {delta})",
        headers=[
            "workload", "solver",
            "Cmax/LB (mean)", "Mmax/LB (mean)",
            "Cmax guarantee", "Mmax guarantee",
        ],
    )

    guarantees_ordered = True
    corners_behave = True
    for family in ("uniform", "anti-correlated", "bimodal"):
        per_solver_guarantee = {}
        for solver in solvers:
            rc: List[float] = []
            rm: List[float] = []
            g_c = g_m = 0.0
            for seed in seeds:
                instance = workload_suite(n, m, seed=seed)[family]
                lb_c = cmax_lower_bound(instance)
                lb_m = mmax_lower_bound(instance)
                outcome = run_spec(instance, "sbo", delta=delta, inner=solver)
                g_c, g_m = outcome.guarantee_pair()
                rc.append(outcome.cmax / lb_c if lb_c > 0 else 1.0)
                rm.append(outcome.mmax / lb_m if lb_m > 0 else 1.0)
            per_solver_guarantee[solver] = (g_c, g_m)
            result.add_row(**{
                "workload": family,
                "solver": solver,
                "Cmax/LB (mean)": round(sum(rc) / len(rc), 4),
                "Mmax/LB (mean)": round(sum(rm) / len(rm), 4),
                "Cmax guarantee": round(g_c, 4),
                "Mmax guarantee": round(g_m, 4),
            })
        # Better single-objective solvers must yield tighter certified guarantees.
        if "list" in per_solver_guarantee and "lpt" in per_solver_guarantee:
            if per_solver_guarantee["lpt"][0] > per_solver_guarantee["list"][0] + 1e-12:
                guarantees_ordered = False
        # Corner baselines for context.
        for seed in seeds[:1]:
            instance = workload_suite(n, m, seed=seed)[family]
            lb_c = cmax_lower_bound(instance)
            lb_m = mmax_lower_bound(instance)
            mem_obl = memory_oblivious_schedule(instance)
            mk_obl = makespan_oblivious_schedule(instance)
            result.add_row(**{
                "workload": family,
                "solver": "baseline: memory-oblivious LPT",
                "Cmax/LB (mean)": round(mem_obl.cmax / lb_c, 4),
                "Mmax/LB (mean)": round(mem_obl.mmax / lb_m, 4),
                "Cmax guarantee": round(4.0 / 3.0 - 1.0 / (3 * m), 4),
                "Mmax guarantee": "inf",
            })
            result.add_row(**{
                "workload": family,
                "solver": "baseline: makespan-oblivious LMS",
                "Cmax/LB (mean)": round(mk_obl.cmax / lb_c, 4),
                "Mmax/LB (mean)": round(mk_obl.mmax / lb_m, 4),
                "Cmax guarantee": "inf",
                "Mmax guarantee": round(4.0 / 3.0 - 1.0 / (3 * m), 4),
            })
            # The corner schedules are good on their own objective by design:
            # any list schedule satisfies Cmax <= avg + max <= 2 * LB.
            if mem_obl.cmax / lb_c > 2.0 + 1e-6 or mk_obl.mmax / lb_m > 2.0 + 1e-6:
                corners_behave = False

    result.add_check("tighter sub-solvers yield tighter certified guarantees (lpt <= list)", guarantees_ordered)
    result.add_check("corner baselines stay within 2x the Graham bound on their own objective", corners_behave)
    result.summary.append(
        f"n = {n}, m = {m}, delta = {delta}, {len(seeds)} seeds; ratios are against Graham lower bounds"
    )
    return result
