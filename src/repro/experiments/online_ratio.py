"""EXT-O1 — competitive ratios of the online schedulers across arrival models.

Sweeps the online registry over ``delta × arrival model × (n, m)``:
each cell replays one deterministic arrival trace through
``online_sbo(delta=...)`` and measures the prefix-wise competitive
ratios against the Graham lower bounds of each revealed prefix
(:mod:`repro.online.competitive`).  Because ``LB <= OPT``, every
reported ratio upper-bounds the true competitive ratio.

Shapes that must hold (the paper leaves online scheduling as a
perspective, so these are the *transplanted* classical facts, not its
theorems):

* **fallback bounds** — within every measured prefix, the time-routed
  subset of tasks satisfies Graham's ``2 - 1/m`` bound on its own
  makespan lower bound, and symmetrically for the memory-routed subset
  (the prefix-closed list-scheduling argument);
* **threshold direction** — summed over the sweep, raising Δ never
  lowers the total number of memory-routed tasks (more tasks follow the
  memory rule as the threshold loosens);
* **sanity** — every ratio is finite and ``>= 1`` would be expected of
  exact references; against lower bounds a ratio may dip below 1 only
  for the *non-greedy* objective, so the check is on the greedy side.

The golden profile (``seeds=(0,)``, the default grid) is pinned
bit-for-bit in ``tests/golden/online_ratio.json`` — regenerate with
``PYTHONPATH=src python tests/make_online_golden.py`` when a change is
intended.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.core.bounds import cmax_lower_bound, mmax_lower_bound
from repro.experiments.harness import ExperimentResult
from repro.online.arrivals import ArrivalTrace, adversarial_trace, stochastic_trace
from repro.online.competitive import competitive_report
from repro.workloads.independent import workload_suite

__all__ = ["run_online_ratio"]


def _traces(
    arrival: str, n: int, m: int, seed: int
) -> ArrivalTrace:
    if arrival == "stochastic":
        return stochastic_trace(n, m, rate=1.0, seed=seed)
    if arrival == "adversarial":
        base = workload_suite(n, m, seed=seed)["anti-correlated"]
        return adversarial_trace(base, mode="alternating")
    raise ValueError(f"unknown arrival model {arrival!r}")


def _routed_subset_ok(scheduler, routed_ids: Sequence[object], objective: str) -> bool:
    """Graham's ``2 - 1/m`` fallback on one routed subset (empty = trivially ok)."""
    routed = set(routed_ids)
    tasks = [t for t in scheduler._tasks if t.id in routed]
    if not tasks:
        return True
    from repro.core.instance import Instance
    from repro.core.task import TaskSet

    subset = Instance(TaskSet(tasks), m=scheduler.m)
    bound = 2.0 - 1.0 / scheduler.m
    loads = [0.0] * scheduler.m
    assignment = scheduler.assignment()
    for task in tasks:
        loads[assignment[task.id]] += task.p if objective == "time" else task.s
    achieved = max(loads)
    reference = (
        cmax_lower_bound(subset) if objective == "time" else mmax_lower_bound(subset)
    )
    return achieved <= bound * reference + 1e-9


def run_online_ratio(
    deltas: Sequence[float] = (0.5, 1.0, 2.0),
    arrivals: Sequence[str] = ("stochastic", "adversarial"),
    sizes: Sequence[Tuple[int, int]] = ((40, 2), (60, 4)),
    seeds: Sequence[int] = (0,),
) -> ExperimentResult:
    """Measure online competitive ratios over the delta × arrival × size grid."""
    result = ExperimentResult(
        experiment_id="EXT-O1",
        title="Online threshold scheduler: prefix competitive ratios vs Graham lower bounds",
        headers=[
            "arrival", "n", "m", "delta", "seed",
            "Cmax ratio (final)", "Cmax ratio (worst prefix)",
            "Mmax ratio (final)", "Mmax ratio (worst prefix)",
            "memory routed",
        ],
    )
    fallback_ok = True
    routed_by_delta: Dict[float, int] = {d: 0 for d in deltas}
    worst_cmax = 0.0
    all_finite = True
    for arrival in arrivals:
        for n, m in sizes:
            for seed in seeds:
                trace = _traces(arrival, n, m, seed)
                for delta in deltas:
                    report = competitive_report(
                        trace, f"online_sbo(delta={delta})", reference="lb",
                        simulate=False,
                    )
                    scheduler = report.run.result.raw
                    fallback_ok = fallback_ok and _routed_subset_ok(
                        scheduler, scheduler.memory_routed_tasks, "memory"
                    ) and _routed_subset_ok(
                        scheduler, scheduler.time_routed_tasks, "time"
                    )
                    routed_by_delta[delta] += len(scheduler.memory_routed_tasks)
                    final = report.final_row
                    worst_cmax = max(worst_cmax, report.cmax_competitive)
                    values = (
                        final.cmax_ratio, report.cmax_competitive,
                        final.mmax_ratio, report.mmax_competitive,
                    )
                    all_finite = all_finite and all(v == v and v != float("inf") for v in values)
                    result.add_row(**{
                        "arrival": arrival, "n": n, "m": m, "delta": delta, "seed": seed,
                        "Cmax ratio (final)": round(final.cmax_ratio, 6),
                        "Cmax ratio (worst prefix)": round(report.cmax_competitive, 6),
                        "Mmax ratio (final)": round(final.mmax_ratio, 6),
                        "Mmax ratio (worst prefix)": round(report.mmax_competitive, 6),
                        "memory routed": len(scheduler.memory_routed_tasks),
                    })
    ordered = [routed_by_delta[d] for d in sorted(deltas)]
    result.add_check("2-1/m fallback holds on every routed subset", fallback_ok)
    result.add_check(
        "raising delta routes at least as many tasks by memory",
        all(a <= b for a, b in zip(ordered, ordered[1:])),
    )
    result.add_check("all measured ratios are finite", all_finite)
    # 2x the fallback bound is a very loose sanity ceiling: combined-objective
    # ratios can exceed 2 - 1/m, but anything past ~4 means the harness broke.
    result.add_check("worst prefix Cmax ratio stays below 4", worst_cmax < 4.0)
    result.summary.append(
        f"memory-routed totals by delta (ascending): {ordered} "
        f"(grid: {len(result.rows)} cells, reference: Graham lower bounds)"
    )
    return result
