"""FIG-1 — the two Pareto-optimal schedules of the §4.1 instance.

The paper's Figure 1 shows, for the instance ``p = (1, 1/2, 1/2)``,
``s = (ε, 1, 1)`` on two processors, the two Pareto-optimal schedules with
objective values ``(1, 2)`` and ``(3/2, 1 + ε)``.  We re-derive the front
exactly (exhaustive enumeration), check it against the closed form, verify
that the derived inapproximability statement (Lemma 1) holds, and render
the two schedules as ASCII Gantt charts.  As context we overlay what the
paper's tunable algorithms — selected by :mod:`repro.solvers` spec strings
— actually achieve on the instance; being real schedules, the overlay
points must be weakly dominated by the exact front.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.algorithms.exact import pareto_front_exact
from repro.core.impossibility import (
    DEFAULT_EPSILON,
    instance_lemma1,
    lemma1_optima,
    lemma1_pareto_values,
)
from repro.experiments.harness import ExperimentResult, overlay_against_front
from repro.simulator.trace import render_gantt

__all__ = ["run_figure1"]

#: Algorithms overlaid on the exact front, named through the solver facade.
DEFAULT_OVERLAY_SPECS = ("sbo(delta=1.0, inner=lpt)", "rls(delta=2.5)")


def run_figure1(
    epsilon: float = DEFAULT_EPSILON,
    overlay_specs: Sequence[str] = DEFAULT_OVERLAY_SPECS,
) -> ExperimentResult:
    """Reproduce Figure 1 (the Pareto front of the first inapproximability instance)."""
    instance = instance_lemma1(epsilon)
    front = pareto_front_exact(instance, keep_schedules=True)
    expected = sorted(lemma1_pareto_values(epsilon))
    measured = sorted(front.values())
    cmax_opt, mmax_opt = lemma1_optima(epsilon)

    result = ExperimentResult(
        experiment_id="FIG-1",
        title="Pareto-optimal schedules of the Section 4.1 instance (m=2, 3 tasks)",
        headers=["schedule", "Cmax", "Mmax", "Cmax ratio", "Mmax ratio", "paper value"],
    )
    for idx, point in enumerate(front.points()):
        cmax, mmax = point.values
        paper = expected[idx] if idx < len(expected) else ("-", "-")
        result.add_row(**{
            "schedule": f"pareto-{idx}",
            "Cmax": cmax,
            "Mmax": mmax,
            "Cmax ratio": cmax / cmax_opt,
            "Mmax ratio": mmax / mmax_opt,
            "paper value": f"({paper[0]:g}, {paper[1]:g})",
        })

    same_size = len(measured) == len(expected)
    matches = same_size and all(
        math.isclose(a[0], b[0], rel_tol=1e-9) and math.isclose(a[1], b[1], rel_tol=1e-9)
        for a, b in zip(measured, expected)
    )
    result.add_check("front has exactly two points", len(measured) == 2)
    result.add_check("front matches the paper's closed form {(1,2), (3/2,1+eps)}", matches)
    # Lemma 1 mechanism: among makespan-optimal schedules the best achievable
    # memory is exactly 2 (ratio 2/(1+eps) -> 2 as eps -> 0), so no algorithm
    # can guarantee a ratio pair better than (1, 2).
    best_memory_at_optimal_cmax = min(
        (mm for c, mm in measured if c <= cmax_opt + 1e-12), default=math.inf
    )
    result.add_check(
        "the best memory among makespan-optimal schedules is exactly 2 (Lemma 1)",
        math.isclose(best_memory_at_optimal_cmax, 2.0, rel_tol=1e-9),
    )

    # Spec-driven overlay: what the tunable algorithms achieve on the instance.
    overlay_lines, overlays_dominated = overlay_against_front(
        instance, overlay_specs, measured, cmax_opt, mmax_opt
    )
    result.add_check(
        "spec-driven algorithm overlays are weakly dominated by the exact front",
        overlays_dominated,
    )

    result.summary.append(f"epsilon = {epsilon:g}; C*max = {cmax_opt:g}, M*max = {mmax_opt:g}")
    result.summary.extend(overlay_lines)
    for idx, point in enumerate(front.points()):
        if point.payload is not None:
            result.summary.append("")
            result.summary.append(f"pareto-{idx} (Cmax={point.values[0]:g}, Mmax={point.values[1]:g}):")
            result.summary.append(render_gantt(point.payload, width=40))
    return result
